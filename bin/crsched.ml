(* crsched — command-line front end for the CRSharing library.

   Subcommands: gen, solve, compare, campaign, render, graph, normalize,
   reduce, simulate. Instances are text files (one processor per line,
   jobs as rationals; see Instance.of_string). *)

open Cmdliner
module Q = Crs_num.Rational
module T_render = Crs_render.Table
open Crs_core

let read_instance path =
  match if path = "-" then Instance.of_string (In_channel.input_all stdin) else Instance.load path with
  | Ok i -> i
  | Error msg ->
    Printf.eprintf "error: cannot read instance %s: %s\n" path msg;
    exit 1

let instance_arg =
  let doc = "Instance file (one processor per line; '-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTANCE" ~doc)

(* All algorithm names and dispatch come from the registry, so the CLI,
   the campaign runner and the benches agree on names and semantics. *)
module Registry = Crs_algorithms.Registry

(* Schedule-producing subcommands (solve, render, graph, normalize,
   export) accept any solver that returns a witness schedule. *)
let witnessed_solvers = List.filter Registry.witness Registry.all

let algo_conv = Arg.enum (List.map (fun s -> (Registry.name s, s)) witnessed_solvers)

let algo_arg =
  let doc =
    "Algorithm: "
    ^ String.concat ", " (List.map Registry.name witnessed_solvers)
    ^ " (see `crsched algorithms')."
  in
  Arg.(
    value
    & opt algo_conv (Registry.find_exn Registry.Names.greedy_balance)
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

(* Dispatch through the registry with the capability check surfaced as a
   clean CLI error instead of an exception trace. *)
let schedule_of solver instance =
  (match Registry.applicability solver instance with
  | Ok () -> ()
  | Error reason ->
    Printf.eprintf "error: %s\n" reason;
    exit 1);
  match (Registry.solve solver instance).Registry.schedule with
  | Some schedule -> schedule
  | None -> assert false (* witnessed solvers only *)

(* ---- algorithms ---- *)

let algorithm_rows () =
  List.map
    (fun s ->
      let r = Registry.requires s in
      let m_range =
        match r.Registry.max_m with
        | Some mx when mx = r.Registry.min_m -> string_of_int mx
        | Some mx -> Printf.sprintf "%d-%d" r.Registry.min_m mx
        | None -> Printf.sprintf "%d+" r.Registry.min_m
      in
      [
        Registry.name s;
        Registry.kind_to_string (Registry.kind s);
        m_range;
        (if r.Registry.unit_size_only then "unit" else "any");
        (if r.Registry.fuel_aware then "yes" else "no");
        (if Registry.witness s then "yes" else "no");
        Registry.about s;
      ])
    Registry.all

let algorithms_header =
  [ "name"; "kind"; "m"; "sizes"; "fuel"; "witness"; "about" ]

let algorithms_cmd =
  let long =
    Arg.(
      value & flag
      & info [ "long" ]
          ~doc:
            "Emit a GitHub-flavoured markdown table instead of the plain \
             one (the README's Algorithms section is generated from this).")
  in
  let run long =
    let rows = algorithm_rows () in
    if long then begin
      let line cells = "| " ^ String.concat " | " cells ^ " |" in
      print_endline (line algorithms_header);
      print_endline (line (List.map (fun _ -> "---") algorithms_header));
      List.iter
        (function
          | name :: rest -> print_endline (line (("`" ^ name ^ "`") :: rest))
          | [] -> ())
        rows
    end
    else
      print_string (T_render.render ~header:algorithms_header rows)
  in
  Cmd.v
    (Cmd.info "algorithms"
       ~doc:"List every registered solver with its capability record."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "One row per solver in the registry: canonical name, kind \
              (exact/approx/heuristic/online), accepted processor counts, \
              accepted job sizes, whether fuel budgets meter it, and whether \
              it produces a witness schedule (only witnessed solvers can be \
              used with solve/render/export). With --long, the same table is \
              emitted as markdown for the README.";
         ])
    Term.(const run $ long)

(* ---- gen ---- *)

let gen_cmd =
  let family =
    let doc =
      "Family: uniform, heavy-tailed, balanced, rr-worst (Fig. 3), \
       gb-worst (Fig. 5), figure1, figure2."
    in
    Arg.(value & opt string "uniform" & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)
  in
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Number of processors.") in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Jobs per processor (or family size parameter).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let granularity =
    Arg.(value & opt int 20 & info [ "granularity" ] ~doc:"Requirement grid 1/g.")
  in
  let run family m n seed granularity =
    let st = Random.State.make [| seed |] in
    let spec =
      { Crs_generators.Random_gen.default_spec with m; jobs_min = n; jobs_max = n; granularity }
    in
    let instance =
      match family with
      | "uniform" -> Crs_generators.Random_gen.instance ~spec st
      | "heavy-tailed" -> Crs_generators.Random_gen.heavy_tailed ~spec st
      | "balanced" -> Crs_generators.Random_gen.balanced_load ~spec st
      | "rr-worst" -> Crs_generators.Adversarial.round_robin_family ~n
      | "gb-worst" -> Crs_generators.Adversarial.greedy_balance_family ~m ~blocks:n ()
      | "figure1" -> Crs_generators.Adversarial.figure1
      | "figure2" -> Crs_generators.Adversarial.figure2
      | other ->
        Printf.eprintf "error: unknown family %s\n" other;
        exit 1
    in
    print_string (Instance.to_string instance)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a CRSharing instance.")
    Term.(const run $ family $ m $ n $ seed $ granularity)

(* ---- solve ---- *)

let solve_cmd =
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Render the schedule as a Gantt chart.")
  in
  let run path solver gantt =
    let instance = read_instance path in
    let schedule = schedule_of solver instance in
    let trace = Execution.run_exn instance schedule in
    Printf.printf "%s makespan: %d\n" (Registry.name solver) (Execution.makespan trace);
    Printf.printf "%s\n" (Crs_render.Gantt.summary trace);
    if gantt then print_string (Crs_render.Gantt.render trace)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run one algorithm on an instance.")
    Term.(const run $ instance_arg $ algo_arg $ gantt)

(* ---- compare ---- *)

let compare_cmd =
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact optimum (small instances only).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit JSONL records (campaign schema) instead of a table.")
  in
  let run path exact json =
    let instance = read_instance path in
    (* Exact solvers join the comparison only under --exact; whatever the
       registry rejects for this instance is skipped (table) or recorded
       as not_applicable (JSONL), never a crash. *)
    let names =
      List.filter
        (fun n ->
          match Registry.kind (Registry.find_exn n) with
          | Registry.Exact -> exact
          | _ -> true)
        Crs_campaign.Runner.default_names
    in
    if json then begin
      let baseline =
        if exact then Crs_campaign.Spec.Exact else Crs_campaign.Spec.Lower_bound
      in
      List.iter
        (fun r -> print_endline (Crs_campaign.Report.to_json r))
        (Crs_campaign.Runner.compare_records ~names ~baseline ~family:"file"
           instance)
    end
    else begin
    let lb = Crs_algorithms.Solver.certified_lower_bound instance in
    let opt = if exact then Some (Crs_algorithms.Solver.optimal_makespan instance) else None in
    let skipped = ref [] in
    let rows =
      List.filter_map
        (fun name ->
          let solver = Registry.find_exn name in
          match Registry.applicability solver instance with
          | Error reason ->
            skipped := (name, reason) :: !skipped;
            None
          | Ok () ->
            let schedule =
              match (Registry.solve solver instance).Registry.schedule with
              | Some s -> s
              | None -> assert false (* default_names are witnessed *)
            in
            let trace = Execution.run_exn instance schedule in
            let ms = Execution.makespan trace in
            let base = match opt with Some o -> o | None -> lb in
            Some
              [
                name;
                string_of_int ms;
                Printf.sprintf "%.3f" (float_of_int ms /. float_of_int (max 1 base));
                Q.to_string (Execution.unused_capacity trace);
              ])
        names
    in
    let denom = if exact then "ratio(opt)" else "ratio(LB)" in
    print_string
      (Crs_render.Table.render
         ~header:[ "algorithm"; "makespan"; denom; "unused" ]
         rows);
    List.iter
      (fun (name, reason) ->
        Printf.printf "skipped %s: %s\n" name reason)
      (List.rev !skipped);
    Printf.printf "certified lower bound: %d\n" lb;
    Option.iter (Printf.printf "exact optimum: %d\n") opt
    end
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all algorithms on an instance.")
    Term.(const run $ instance_arg $ exact $ json)

(* ---- campaign ---- *)

let campaign_cmd =
  let family =
    Arg.(value & opt string "uniform"
         & info [ "f"; "family" ] ~docv:"FAMILY"
             ~doc:"Generator family: uniform, heavy-tailed, balanced.")
  in
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Number of processors.") in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Jobs per processor.") in
  let granularity =
    Arg.(value & opt int 10 & info [ "granularity" ] ~doc:"Requirement grid 1/g.")
  in
  let seeds =
    Arg.(value & opt (pair ~sep:'-' int int) (1, 50)
         & info [ "seeds" ] ~docv:"LO-HI"
             ~doc:"Inclusive seed range; one instance per seed.")
  in
  let algos =
    Arg.(value & opt_all string [ Registry.Names.greedy_balance ]
         & info [ "a"; "algorithm" ] ~docv:"ALGO"
             ~doc:"Algorithm to evaluate (repeatable); any registered name \
                   (see `crsched algorithms'). Solvers whose capability \
                   record rejects the family are reported not_applicable.")
  in
  let baseline =
    Arg.(value & opt string "exact"
         & info [ "baseline" ]
             ~doc:"Denominator of the ratio: exact (fuel-metered optimum) or lower-bound.")
  in
  let fuel =
    Arg.(value & opt int 2_000_000
         & info [ "fuel" ]
             ~doc:"Per-solve work budget (solver ticks); 0 disables metering. \
                   Exhausted budgets are recorded as timeout outcomes.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"K"
             ~doc:"Work-stealing executor size; 1 runs sequentially, 0 uses \
                   every recommended hardware core. Results are identical at \
                   any size.")
  in
  let out =
    Arg.(value & opt string "data"
         & info [ "out" ] ~docv:"DIR" ~doc:"Output directory for JSONL + summary.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect the crs_obs metrics registry during the run \
                   (outcome counters, per-solver work counters) and write \
                   its snapshot to DIR/campaign-metrics.json.")
  in
  let run family m n granularity (seed_lo, seed_hi) algos baseline fuel domains
      out metrics =
    let fam =
      match Crs_campaign.Spec.family_of_string family with
      | Some f -> f
      | None ->
        Printf.eprintf "error: unknown family %s\n" family;
        exit 1
    in
    let bl =
      match Crs_campaign.Spec.baseline_of_string baseline with
      | Some b -> b
      | None ->
        Printf.eprintf "error: unknown baseline %s (exact | lower-bound)\n" baseline;
        exit 1
    in
    let spec =
      {
        Crs_campaign.Spec.family = fam;
        m;
        n;
        granularity;
        seed_lo;
        seed_hi;
        algorithms = algos;
        baseline = bl;
        fuel = (if fuel = 0 then None else Some fuel);
      }
    in
    (match Crs_campaign.Spec.validate spec with
    | Ok _ -> ()
    | Error msg ->
      Printf.eprintf "error: invalid campaign: %s\n" msg;
      exit 1);
    Printf.printf "campaign: %s\n" (Crs_campaign.Spec.describe spec);
    let domains =
      if domains = 0 then Domain.recommended_domain_count () else max 1 domains
    in
    Printf.printf "items: %d on %d domain%s\n%!"
      (Array.length (Crs_campaign.Spec.expand spec))
      domains
      (if domains > 1 then "s" else "");
    if metrics then Crs_obs.Metrics.set_enabled true;
    let t0 = Unix.gettimeofday () in
    let records = Crs_campaign.Runner.run ~domains spec in
    let elapsed = Unix.gettimeofday () -. t0 in
    if metrics then begin
      let snapshot = Crs_obs.Metrics.snapshot () in
      Crs_obs.Metrics.set_enabled false;
      if not (Sys.file_exists out) then Sys.mkdir out 0o755;
      let metrics_path = Filename.concat out "campaign-metrics.json" in
      Out_channel.with_open_text metrics_path (fun oc ->
          Out_channel.output_string oc (snapshot ^ "\n"));
      Printf.printf "metrics: %s\nwrote %s\n" snapshot metrics_path
    end;
    let summary = Crs_campaign.Report.summarize records in
    let jsonl_path = Filename.concat out "campaign.jsonl" in
    let summary_path = Filename.concat out "campaign-summary.json" in
    Crs_campaign.Report.write_jsonl jsonl_path records;
    Crs_campaign.Report.write_summary summary_path summary;
    (* Retain the worst-case instance for replay with solve/compare. *)
    (match summary.Crs_campaign.Report.worst with
    | Some w -> (
      match w.Crs_campaign.Report.seed with
      | Some seed ->
        let worst_path = Filename.concat out "campaign-worst.instance" in
        Instance.save worst_path (Crs_campaign.Spec.instance spec ~seed);
        Printf.printf "worst instance (seed %d) retained at %s\n" seed worst_path
      | None -> ())
    | None -> ());
    print_string (Crs_campaign.Report.render_summary summary);
    Printf.printf "wall %.3f s (%.1f items/s)\nwrote %s and %s\n" elapsed
      (float_of_int (Array.length records) /. Float.max elapsed 1e-9)
      jsonl_path summary_path
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a parallel batch-evaluation campaign over random instances."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Expands a (family, seed range, algorithm list) spec into \
              independent items, evaluates them on a pool of OCaml domains, \
              and writes per-item JSONL records plus an aggregate summary \
              under the output directory. Per-item seeding is deterministic \
              and timeouts are fuel-based, so the result payload is \
              byte-identical at any pool size.";
         ])
    Term.(
      const run $ family $ m $ n $ granularity $ seeds $ algos $ baseline $ fuel
      $ domains $ out $ metrics)

(* ---- fuzz / replay ---- *)

let fuzz_cmd =
  let oracles =
    Arg.(value & opt_all string []
         & info [ "oracle" ] ~docv:"NAME"
             ~doc:("Oracle to run (repeatable); default all. One of: "
                   ^ String.concat ", " Crs_fuzz.Oracle.names ^ "."))
  in
  let seed_range =
    Arg.(value & opt string "1..50"
         & info [ "seed-range" ] ~docv:"A..B"
             ~doc:"Inclusive seed range; one instance per seed.")
  in
  let family =
    Arg.(value & opt string "uniform"
         & info [ "f"; "family" ] ~docv:"FAMILY"
             ~doc:"Generator family: uniform, heavy-tailed, balanced.")
  in
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Number of processors.") in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Jobs per processor.") in
  let granularity =
    Arg.(value & opt int 10 & info [ "granularity" ] ~doc:"Requirement grid 1/g.")
  in
  let fuel =
    Arg.(value & opt int 2_000_000
         & info [ "fuel" ]
             ~doc:"Per-seed work budget (solver ticks); 0 disables metering.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"K"
             ~doc:"Domain-pool size; reports are byte-identical at any size.")
  in
  let shrink =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"Minimize every failing seed's instance before reporting it.")
  in
  let pin =
    Arg.(value & opt (some string) None
         & info [ "pin" ] ~docv:"DIR"
             ~doc:"Save each (shrunken) counterexample as a corpus entry in \
                   DIR with expect=\"fail\"; flip to \"pass\" once fixed.")
  in
  let run oracles seed_range family m n granularity fuel domains shrink pin =
    let fam =
      match Crs_campaign.Spec.family_of_string family with
      | Some f -> f
      | None ->
        Printf.eprintf "error: unknown family %s\n" family;
        exit 1
    in
    let seed_lo, seed_hi =
      let bad () =
        Printf.eprintf "error: bad seed range %s (expected A..B with A <= B)\n"
          seed_range;
        exit 1
      in
      match String.index_opt seed_range '.' with
      | Some i
        when i + 1 < String.length seed_range && seed_range.[i + 1] = '.' -> (
        match
          ( int_of_string_opt (String.sub seed_range 0 i),
            int_of_string_opt
              (String.sub seed_range (i + 2) (String.length seed_range - i - 2))
          )
        with
        | Some lo, Some hi when lo <= hi -> (lo, hi)
        | _ -> bad ())
      | _ -> bad ()
    in
    let selected =
      match oracles with
      | [] -> Crs_fuzz.Oracle.all
      | names ->
        List.map
          (fun name ->
            match Crs_fuzz.Oracle.find name with
            | Some o -> o
            | None ->
              Printf.eprintf "error: unknown oracle %s (valid: %s)\n" name
                (String.concat ", " Crs_fuzz.Oracle.names);
              exit 1)
          names
    in
    let config =
      {
        Crs_fuzz.Driver.family = fam;
        m;
        n;
        granularity;
        seed_lo;
        seed_hi;
        fuel = (if fuel = 0 then None else Some fuel);
      }
    in
    let any_failure = ref false in
    List.iter
      (fun oracle ->
        let report = Crs_fuzz.Driver.run ~domains config oracle in
        print_string (Crs_fuzz.Driver.render report);
        let failing = Crs_fuzz.Driver.failing_cases report in
        if failing <> [] then any_failure := true;
        if shrink then
          List.iter
            (fun (seed, _) ->
              let minimized, stats =
                Crs_fuzz.Driver.shrink_failure config oracle ~seed
              in
              let msg =
                match oracle.Crs_fuzz.Oracle.check minimized with
                | Error m -> m
                | Ok () -> "(not reproducible without fuel metering)"
              in
              Printf.printf
                "shrunk seed %d to %d jobs on %d processors (%d checks): %s\n%s"
                seed
                (Instance.total_jobs minimized)
                (Instance.m minimized)
                stats.Crs_fuzz.Shrink.checks msg
                (Instance.to_string minimized);
              match pin with
              | None -> ()
              | Some dir ->
                let entry =
                  Crs_fuzz.Corpus.make
                    ~name:
                      (Printf.sprintf "%s-seed%d" oracle.Crs_fuzz.Oracle.name
                         seed)
                    ~oracle:oracle.Crs_fuzz.Oracle.name
                    ~expect:Crs_fuzz.Corpus.Fail
                    ~note:
                      (Printf.sprintf
                         "shrunken counterexample from fuzz seed %d (%s)" seed
                         (Crs_campaign.Spec.family_to_string fam))
                    minimized
                in
                Printf.printf "pinned %s\n" (Crs_fuzz.Corpus.save ~dir entry))
            failing)
      selected;
    if !any_failure then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Sweep differential/metamorphic oracles over seeded random instances."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs each selected oracle over one instance per seed on a \
              domain pool with fuel-based timeouts. Reports are \
              deterministic: the same seed range produces byte-identical \
              output at any pool size. With --shrink, failing instances are \
              greedily minimized (drop processors, drop jobs, round \
              requirements toward {0, 1/2, 1}, shrink sizes); with --pin \
              DIR, each counterexample is saved as a corpus entry for \
              `crsched replay'. Exits 1 if any oracle failed.";
         ])
    Term.(
      const run $ oracles $ seed_range $ family $ m $ n $ granularity $ fuel
      $ domains $ shrink $ pin)

let replay_cmd =
  let dir =
    Arg.(value & pos 0 string "data/corpus"
         & info [] ~docv:"DIR" ~doc:"Corpus directory of *.json entries.")
  in
  let run dir =
    let entries = Crs_fuzz.Corpus.load_dir dir in
    if entries = [] then begin
      Printf.eprintf "error: no corpus entries under %s\n" dir;
      exit 1
    end;
    let failures = ref 0 in
    List.iter
      (fun (path, parsed) ->
        match parsed with
        | Error msg ->
          incr failures;
          Printf.printf "%-40s PARSE ERROR: %s\n" (Filename.basename path) msg
        | Ok entry -> (
          match Crs_fuzz.Corpus.replay entry with
          | Ok () ->
            Printf.printf "%-40s ok (oracle %s)\n" (Filename.basename path)
              entry.Crs_fuzz.Corpus.oracle
          | Error msg ->
            incr failures;
            Printf.printf "%-40s FAILED: %s\n" (Filename.basename path) msg))
      entries;
    Printf.printf "replayed %d entries, %d failure%s\n" (List.length entries)
      !failures
      (if !failures = 1 then "" else "s");
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay the pinned regression corpus (digests, seeds, oracles).")
    Term.(const run $ dir)

(* ---- render / graph ---- *)

let render_cmd =
  let run path solver =
    let instance = read_instance path in
    let trace = Execution.run_exn instance (schedule_of solver instance) in
    Printf.printf "algorithm: %s\n%s\n" (Registry.name solver)
      (Crs_render.Gantt.summary trace);
    print_string (Crs_render.Gantt.render trace);
    print_newline ();
    print_string (Crs_render.Gantt.render_compact trace)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render an algorithm's schedule as Gantt charts.")
    Term.(const run $ instance_arg $ algo_arg)

let graph_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write dot to FILE.")
  in
  let run path solver output =
    let instance = read_instance path in
    let trace = Execution.run_exn instance (schedule_of solver instance) in
    let graph = Crs_hypergraph.Sched_graph.of_trace trace in
    Format.printf "%a@." Crs_hypergraph.Sched_graph.pp graph;
    match output with
    | Some file ->
      Crs_render.Dot.save file graph;
      Printf.printf "wrote %s\n" file
    | None -> print_string (Crs_render.Dot.of_graph graph)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Build and print the scheduling hypergraph (Section 3.2).")
    Term.(const run $ instance_arg $ algo_arg $ output)

(* ---- normalize ---- *)

let normalize_cmd =
  let run path solver =
    let instance = read_instance path in
    let schedule = schedule_of solver instance in
    let normalized = Transform.normalize instance schedule in
    let before = Execution.run_exn instance schedule in
    let after = Execution.run_exn instance normalized in
    Printf.printf "input  (%s): %s\n" (Registry.name solver)
      (Crs_render.Gantt.summary before);
    Printf.printf "output (Lemma 1): %s\n" (Crs_render.Gantt.summary after);
    print_string (Crs_render.Gantt.render after)
  in
  Cmd.v
    (Cmd.info "normalize"
       ~doc:"Apply the Lemma 1 transformation (non-wasting, progressive, nested).")
    Term.(const run $ instance_arg $ algo_arg)

(* ---- reduce ---- *)

let reduce_cmd =
  let elements =
    Arg.(
      non_empty & pos_all int []
      & info [] ~docv:"ELEMENTS" ~doc:"Partition elements (positive integers).")
  in
  let decide = Arg.(value & flag & info [ "decide" ] ~doc:"Also solve exactly and decide.") in
  let run elements decide =
    let p = Crs_reduction.Partition.make (Array.of_list elements) in
    (try
       let instance = Crs_reduction.Reduce.to_crsharing p in
       print_string (Instance.to_string instance);
       if decide then begin
         let answer =
           Crs_reduction.Reduce.decide ~exact:Crs_algorithms.Opt_config.makespan p
         in
         Printf.printf "partition: %s (optimal makespan %d iff YES)\n"
           (if answer then "YES" else "NO")
           Crs_reduction.Reduce.yes_makespan
       end
     with Invalid_argument msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1)
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Transform a Partition instance (Theorem 4 gadget).")
    Term.(const run $ elements $ decide)

(* ---- verify ---- *)

let verify_cmd =
  let sched_arg =
    let doc = "Schedule file (one line per step, shares as rationals)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCHEDULE" ~doc)
  in
  let run path sched_path =
    let instance = read_instance path in
    match Schedule.load sched_path with
    | Error msg ->
      Printf.eprintf "error: cannot read schedule: %s\n" msg;
      exit 1
    | Ok schedule -> (
      match Execution.run instance schedule with
      | Error msg ->
        Printf.printf "INFEASIBLE: %s\n" msg;
        exit 1
      | Ok trace ->
        if not trace.Execution.completed then begin
          Printf.printf "INCOMPLETE: schedule does not finish all jobs\n";
          exit 1
        end;
        Printf.printf "%s\n" (Crs_render.Gantt.summary trace);
        List.iter
          (fun (name, result) ->
            match result with
            | Ok () -> Printf.printf "  %-12s ok\n" name
            | Error v ->
              Format.printf "  %-12s VIOLATED (%a)@." name Properties.pp_violation v)
          (Properties.check_all trace);
        let lb = Crs_algorithms.Solver.certified_lower_bound instance in
        Printf.printf "certified lower bound %d => ratio at most %.3f\n" lb
          (float_of_int (Execution.makespan trace) /. float_of_int (max 1 lb)))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Validate an external schedule against an instance.")
    Term.(const run $ instance_arg $ sched_arg)

(* ---- bounds ---- *)

let bounds_cmd =
  let run path =
    let instance = read_instance path in
    let gb_trace =
      Execution.run_exn instance (Crs_algorithms.Greedy_balance.schedule instance)
    in
    let graph = Crs_hypergraph.Sched_graph.of_trace gb_trace in
    let rows =
      [
        [ "Observation 1 (total work)"; string_of_int (Lower_bounds.total_work instance) ];
        [ "job count (max_i n_i)"; string_of_int (Lower_bounds.job_count instance) ];
        [ "Lemma 5 (components)"; string_of_int (Crs_hypergraph.Bounds.lemma5 graph) ];
        [ "Lemma 6 (classes)"; string_of_int (Crs_hypergraph.Bounds.lemma6_int graph) ];
        [
          "bin-packing relaxation";
          string_of_int (Crs_binpack.Splittable.crsharing_relaxation_bound instance);
        ];
      ]
    in
    print_string (T_render.render ~header:[ "lower bound"; "value" ] rows);
    Printf.printf "GreedyBalance achieves: %d\n" (Execution.makespan gb_trace)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print every certified lower bound for an instance.")
    Term.(const run $ instance_arg)

(* ---- export ---- *)

let export_cmd =
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV.") in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc:"Write the schedule as SVG.") in
  let sched_out =
    Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"FILE" ~doc:"Write the raw schedule matrix.")
  in
  let run path solver csv svg sched_out =
    let instance = read_instance path in
    let schedule = schedule_of solver instance in
    let trace = Execution.run_exn instance schedule in
    Printf.printf "%s: %s\n" (Registry.name solver) (Crs_render.Gantt.summary trace);
    Option.iter
      (fun f ->
        Crs_render.Export.save f (Crs_render.Export.trace_to_csv trace);
        Printf.printf "wrote %s\n" f)
      csv;
    Option.iter
      (fun f ->
        Crs_render.Svg.save f trace;
        Printf.printf "wrote %s\n" f)
      svg;
    Option.iter
      (fun f ->
        Schedule.save f schedule;
        Printf.printf "wrote %s\n" f)
      sched_out
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Run an algorithm and export trace artifacts (CSV/SVG/schedule).")
    Term.(const run $ instance_arg $ algo_arg $ csv $ svg $ sched_out)

(* ---- gallery ---- *)

let gallery_cmd =
  let dir =
    Arg.(value & opt string "gallery" & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let emit name instance schedule =
      let trace = Execution.run_exn instance schedule in
      Instance.save (Filename.concat dir (name ^ ".instance")) instance;
      Schedule.save (Filename.concat dir (name ^ ".schedule")) schedule;
      Crs_render.Svg.save (Filename.concat dir (name ^ ".svg")) trace;
      Crs_render.Export.save
        (Filename.concat dir (name ^ ".csv"))
        (Crs_render.Export.trace_to_csv trace);
      if Instance.is_unit_size instance && trace.Execution.completed then begin
        let graph = Crs_hypergraph.Sched_graph.of_trace trace in
        Crs_render.Dot.save (Filename.concat dir (name ^ ".dot")) graph
      end;
      Printf.printf "%-24s %s\n" name (Crs_render.Gantt.summary trace)
    in
    let module A = Crs_generators.Adversarial in
    emit "figure1-greedy" A.figure1
      (Policy.run Crs_algorithms.Heuristics.smallest_requirement_first A.figure1);
    emit "figure2-nested" A.figure2 A.figure2_nested_schedule;
    emit "figure2-unnested" A.figure2 A.figure2_unnested_schedule;
    let rr = A.round_robin_family ~n:10 in
    emit "figure3-roundrobin" rr (Crs_algorithms.Round_robin.schedule rr);
    emit "figure3-optimal" rr (A.round_robin_family_opt_schedule ~n:10);
    let p = Crs_reduction.Partition.make [| 1; 2; 3 |] in
    let gadget = Crs_reduction.Reduce.to_crsharing p in
    (match Crs_reduction.Partition.solve p with
    | Some cert ->
      emit "figure4-yes-witness" gadget (Crs_reduction.Reduce.yes_witness_schedule p cert)
    | None -> ());
    let fam = A.greedy_balance_family ~m:3 ~blocks:3 () in
    emit "figure5-greedybalance" fam (Crs_algorithms.Greedy_balance.schedule fam);
    emit "figure5-staircase" fam
      (Policy.run Crs_algorithms.Heuristics.staircase fam);
    Printf.printf "artifacts written to %s/\n" dir
  in
  Cmd.v
    (Cmd.info "gallery"
       ~doc:"Regenerate every figure of the paper as SVG/CSV/dot artifacts.")
    Term.(const run $ dir)

(* ---- simulate ---- *)

let simulate_cmd =
  let cores = Arg.(value & opt int 8 & info [ "cores" ] ~doc:"Number of cores.") in
  let workload =
    Arg.(value & opt string "mixed-vm" & info [ "w"; "workload" ] ~doc:"Workload: mixed-vm, io-burst, streaming.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc:"Replay a workload trace file instead of a synthetic workload.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Write the greedy-balance run as per-tick CSV.")
  in
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write the greedy-balance run as a timeline SVG.")
  in
  let run cores workload seed trace_file csv svg =
    let st = Random.State.make [| seed |] in
    let tasks =
      match trace_file with
      | Some path -> (
        match Crs_manycore.Trace_format.load path with
        | Ok tasks -> tasks
        | Error msg ->
          Printf.eprintf "error: cannot read trace %s: %s\n" path msg;
          exit 1)
      | None -> (
        match workload with
        | "mixed-vm" -> Crs_manycore.Workload.mixed_vm ~cores st
        | "io-burst" -> Crs_manycore.Workload.io_burst ~cores ~phases:4 ~io_intensity:0.8 st
        | "streaming" -> Crs_manycore.Workload.streaming ~cores ~length:10.0 st
        | other ->
          Printf.eprintf "error: unknown workload %s\n" other;
          exit 1)
    in
    let rows =
      List.map
        (fun (p : Crs_manycore.Policy.t) ->
          let r = Crs_manycore.Engine.run p tasks in
          p.name :: Crs_manycore.Stats.to_row (Crs_manycore.Stats.of_result tasks r))
        Crs_manycore.Policy.all
    in
    print_string
      (Crs_render.Table.render ~header:("policy" :: Crs_manycore.Stats.header) rows);
    if csv <> None || svg <> None then begin
      let r = Crs_manycore.Engine.run Crs_manycore.Policy.greedy_balance tasks in
      Option.iter
        (fun f ->
          Crs_render.Export.save f (Crs_manycore.Trace_format.run_to_csv r);
          Printf.printf "wrote %s\n" f)
        csv;
      Option.iter
        (fun f ->
          Crs_render.Export.save f (Crs_manycore.Trace_format.timeline_svg tasks r);
          Printf.printf "wrote %s\n" f)
        svg
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the many-core bus simulator and compare bandwidth policies.")
    Term.(const run $ cores $ workload $ seed $ trace_file $ csv $ svg)

(* ---- trace ---- *)

let trace_out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Where to write the trace. Chrome trace_event JSON by default — \
           load it in Perfetto (ui.perfetto.dev) or chrome://tracing.")

let trace_jsonl_arg =
  Arg.(
    value & flag
    & info [ "jsonl" ]
        ~doc:
          "Write one JSON object per span (raw nanosecond timestamps) \
           instead of Chrome trace_event JSON.")

let write_trace ~jsonl path =
  let payload =
    if jsonl then Crs_obs.Trace.to_jsonl ()
    else Crs_obs.Trace.to_chrome () ^ "\n"
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc payload);
  Printf.printf "wrote %s (%d spans)\n" path
    (List.length (Crs_obs.Trace.spans ()))

let trace_solve_cmd =
  let run path solver out jsonl =
    let instance = read_instance path in
    (match Registry.applicability solver instance with
    | Ok () -> ()
    | Error reason ->
      Printf.eprintf "error: %s\n" reason;
      exit 1);
    Crs_obs.Trace.set_enabled true;
    Crs_obs.Metrics.set_enabled true;
    let result = Registry.solve solver instance in
    Crs_obs.Trace.set_enabled false;
    Crs_obs.Metrics.set_enabled false;
    Printf.printf "%s makespan: %d\n\nspan tree:\n%s\n" (Registry.name solver)
      result.Registry.makespan
      (Crs_obs.Trace.signature ());
    write_trace ~jsonl out;
    Printf.printf "metrics: %s\n" (Crs_obs.Metrics.snapshot ())
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Solve one instance with tracing on; write the span trace."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the solver through the registry with the crs_obs tracer \
              and metrics registry enabled, prints the reconstructed span \
              tree (names and attributes, no timestamps) and the metrics \
              snapshot, and writes the full trace to --trace-out. See \
              EXPERIMENTS.md, section 'Reading a trace', for a walkthrough.";
         ])
    Term.(const run $ instance_arg $ algo_arg $ trace_out_arg $ trace_jsonl_arg)

let trace_campaign_cmd =
  let family =
    Arg.(value & opt string "uniform"
         & info [ "f"; "family" ] ~docv:"FAMILY"
             ~doc:"Generator family: uniform, heavy-tailed, balanced.")
  in
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Number of processors.") in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Jobs per processor.") in
  let granularity =
    Arg.(value & opt int 10 & info [ "granularity" ] ~doc:"Requirement grid 1/g.")
  in
  let seeds =
    Arg.(value & opt (pair ~sep:'-' int int) (1, 8)
         & info [ "seeds" ] ~docv:"LO-HI"
             ~doc:"Inclusive seed range; one instance per seed.")
  in
  let algos =
    Arg.(value & opt_all string [ Registry.Names.greedy_balance ]
         & info [ "a"; "algorithm" ] ~docv:"ALGO"
             ~doc:"Algorithm to evaluate (repeatable).")
  in
  let fuel =
    Arg.(value & opt int 2_000_000
         & info [ "fuel" ] ~doc:"Per-solve work budget; 0 disables metering.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"K"
             ~doc:"Domain-pool size. The merged trace is sorted \
                   deterministically, so the span TREE is identical at any \
                   size (timestamps and thread ids differ).")
  in
  let run family m n granularity (seed_lo, seed_hi) algos fuel domains out jsonl
      =
    let fam =
      match Crs_campaign.Spec.family_of_string family with
      | Some f -> f
      | None ->
        Printf.eprintf "error: unknown family %s\n" family;
        exit 1
    in
    let spec =
      {
        Crs_campaign.Spec.family = fam;
        m;
        n;
        granularity;
        seed_lo;
        seed_hi;
        algorithms = algos;
        baseline = Crs_campaign.Spec.Lower_bound;
        fuel = (if fuel = 0 then None else Some fuel);
      }
    in
    (match Crs_campaign.Spec.validate spec with
    | Ok _ -> ()
    | Error msg ->
      Printf.eprintf "error: invalid campaign: %s\n" msg;
      exit 1);
    Crs_obs.Trace.set_enabled true;
    let records = Crs_campaign.Runner.run ~domains spec in
    Crs_obs.Trace.set_enabled false;
    Printf.printf "campaign: %s (%d records)\n\nspan tree:\n%s\n"
      (Crs_campaign.Spec.describe spec)
      (Array.length records)
      (Crs_obs.Trace.signature ());
    write_trace ~jsonl out
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a small campaign with tracing on; write the merged trace."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs a (family, seed range, algorithm list) campaign on a \
              domain pool with per-item spans enabled. Each item's span \
              carries its id, family, seed and algorithm, and the merged \
              forest is sorted on stable attributes — so the printed span \
              tree is independent of the pool size.";
         ])
    Term.(
      const run $ family $ m $ n $ granularity $ seeds $ algos $ fuel $ domains
      $ trace_out_arg $ trace_jsonl_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Run a workload with the crs_obs tracer enabled and export spans.")
    [ trace_solve_cmd; trace_campaign_cmd ]

(* ---- serve ---- *)

(* Startup failures get distinct exit codes so supervisors can tell a
   configuration typo (3: unparseable --listen) from an environment
   conflict (4: bind failed, e.g. the socket path already exists). *)
let exit_bad_listen = 3
let exit_bind_failed = 4

let serve_cmd =
  let module Server = Crs_serve.Server in
  let d = Server.default_config in
  let listen =
    Arg.(
      value
      & opt string "unix:/tmp/crsched.sock"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Listen address: $(b,unix:)$(i,PATH) or $(b,tcp:)$(i,HOST:PORT).")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve a single session on stdin/stdout instead of a socket \
             (useful for pipelines and tests); --listen is ignored.")
  in
  let workers =
    Arg.(
      value & opt int d.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains for batch work.")
  in
  let queue =
    Arg.(
      value & opt int d.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: work requests beyond $(docv) per batch are \
             answered with status $(b,overloaded).")
  in
  let cache =
    Arg.(
      value & opt int d.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Memo-cache capacity in entries; 0 disables caching.")
  in
  let fuel =
    Arg.(
      value
      & opt int (Option.value d.default_fuel ~default:0)
      & info [ "fuel" ] ~docv:"TICKS"
          ~doc:
            "Default per-request fuel deadline for requests that do not set \
             one; 0 means unlimited.")
  in
  let max_conns =
    Arg.(
      value & opt int d.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent-connection bound: connections beyond $(docv) are \
             answered with one structured $(b,overloaded) response and \
             closed.")
  in
  let backlog =
    Arg.(
      value & opt int d.backlog
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog for the accepting socket.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float d.idle_timeout_s
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection read deadline: a connection that starts a frame \
             but completes no further byte for $(docv) seconds is evicted \
             with a structured response (slow-loris defence). Idle \
             connections with no partial frame are never evicted. 0 \
             disables the deadline.")
  in
  let warm_state =
    Arg.(
      value & opt string ""
      & info [ "warm-state" ] ~docv:"DIR"
          ~doc:
            "Cache-warming state directory (created if missing). On \
             graceful drain the server snapshots its canonical-key set to \
             $(docv)/$(i,ID).crs-warm.jsonl (crs-warm/1); on startup an \
             existing snapshot is replayed through the real solve path \
             before the first connection is served. Empty disables \
             warming.")
  in
  let warm_id =
    Arg.(
      value & opt string "serve"
      & info [ "warm-id" ] ~docv:"ID"
          ~doc:
            "Snapshot name under $(b,--warm-state) — give each member of \
             a sharded tier its own (the balancer passes shard-$(i,N)).")
  in
  let run listen stdio workers queue cache fuel max_conns backlog idle_timeout
      warm_state warm_id =
    if
      workers < 1 || queue < 1 || cache < 0 || fuel < 0 || max_conns < 1
      || backlog < 1 || idle_timeout < 0.0
    then begin
      Printf.eprintf
        "error: invalid serve parameters (workers %d, queue %d, cache %d, \
         fuel %d, max-conns %d, backlog %d, idle-timeout %g)\n"
        workers queue cache fuel max_conns backlog idle_timeout;
      exit 1
    end;
    let config =
      {
        Server.default_config with
        Server.workers;
        queue;
        cache_capacity = cache;
        default_fuel = (if fuel = 0 then None else Some fuel);
        max_conns;
        backlog;
        idle_timeout_s = idle_timeout;
      }
    in
    (* Warm wiring: install the drain-time snapshot hook, then replay any
       existing snapshot through the real solve path before the server
       takes traffic. A corrupt snapshot warns and starts cold — warming
       is an optimization, never a reason to refuse to serve. *)
    let wire_warm server =
      if warm_state <> "" then begin
        (try Unix.mkdir warm_state 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path =
          Filename.concat warm_state (warm_id ^ ".crs-warm.jsonl")
        in
        Server.set_on_drain server (fun s ->
            let n = Crs_serve.Warm.save s ~path in
            Printf.eprintf "crsched serve: warm snapshot %s (%d entries)\n%!"
              path n);
        match Crs_serve.Warm.load_and_replay server ~path with
        | Ok { Crs_serve.Warm.entries = 0; _ } -> ()
        | Ok r ->
          Printf.eprintf
            "crsched serve: warm replay %s: %d/%d entries (%d failed)\n%!"
            path r.Crs_serve.Warm.replayed r.Crs_serve.Warm.entries
            r.Crs_serve.Warm.failed
        | Error msg ->
          Printf.eprintf "crsched serve: warm replay skipped: %s\n%!" msg
      end
    in
    if stdio then begin
      let server = Server.create config in
      wire_warm server;
      Server.serve_io server ~input:Unix.stdin ~output:Unix.stdout;
      Server.drain server
    end
    else
      match Server.parse_address listen with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit exit_bad_listen
      | Ok addr -> (
        match Server.bind_address ~backlog addr with
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit exit_bind_failed
        | Ok fd ->
          let server = Server.create config in
          wire_warm server;
          Printf.eprintf "crsched serve: listening on %s\n%!"
            (Server.address_to_string addr);
          Fun.protect
            ~finally:(fun () ->
              Server.close_address addr fd;
              Server.drain server)
            (fun () -> Server.serve server fd))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the solver-as-a-service daemon (crs-serve/1)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Long-running daemon speaking the line-delimited crs-serve/1 \
              JSON protocol: one request object per line, one response per \
              line, in per-connection order. Connections are served \
              concurrently (one reader per connection, bounded by \
              $(b,--max-conns)); solve and campaign requests run on a \
              bounded worker pool behind shared admission control; \
              canonically equivalent instances (processor permutation, \
              zero-requirement padding) are answered from a memo cache \
              without re-solving. Idle connections are evicted after \
              $(b,--idle-timeout) seconds; a shutdown request drains all \
              live connections gracefully.";
           `P
             "Example: echo \
              '{\"proto\":\"crs-serve/1\",\"kind\":\"solve\",\"instance\":\"1/2 \
              1/3\\n1/4\"}' | crsched serve --stdio";
         ])
    Term.(
      const run $ listen $ stdio $ workers $ queue $ cache $ fuel $ max_conns
      $ backlog $ idle_timeout $ warm_state $ warm_id)

(* ---- balance ---- *)

let exit_shards_failed = 5

let balance_cmd =
  let module Server = Crs_serve.Server in
  let module Balancer = Crs_serve.Balancer in
  let sd = Server.default_config in
  let listen =
    Arg.(
      value
      & opt string "unix:/tmp/crsched-balance.sock"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Public listen address: $(b,unix:)$(i,PATH) or \
             $(b,tcp:)$(i,HOST:PORT).")
  in
  let shards =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N" ~doc:"Worker processes to run.")
  in
  let socket_dir =
    Arg.(
      value
      & opt string "/tmp/crsched-shards"
      & info [ "socket-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the private per-shard Unix sockets (created if \
             missing; owned by the tier — stale shard sockets in it are \
             unlinked).")
  in
  let warm_state =
    Arg.(
      value & opt string ""
      & info [ "warm-state" ] ~docv:"DIR"
          ~doc:
            "Passed to every shard: each persists its canonical-key set to \
             $(docv)/shard-$(i,N).crs-warm.jsonl on drain and replays it on \
             startup. Empty disables warming.")
  in
  let workers =
    Arg.(
      value & opt int sd.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains per shard.")
  in
  let queue =
    Arg.(
      value & opt int sd.queue
      & info [ "queue" ] ~docv:"N" ~doc:"Admission bound per shard.")
  in
  let cache =
    Arg.(
      value & opt int sd.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Memo-cache capacity per shard; 0 disables caching.")
  in
  let fuel =
    Arg.(
      value
      & opt int (Option.value sd.default_fuel ~default:0)
      & info [ "fuel" ] ~docv:"TICKS"
          ~doc:"Default per-request fuel deadline per shard; 0 = unlimited.")
  in
  let max_conns =
    Arg.(
      value & opt int sd.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent client connections at the balancer; beyond $(docv) \
             a connection gets one structured $(b,overloaded) response and \
             is closed.")
  in
  let backlog =
    Arg.(
      value & opt int sd.backlog
      & info [ "backlog" ] ~docv:"N"
          ~doc:"listen(2) backlog for the public socket.")
  in
  let health_interval =
    Arg.(
      value & opt float 1.0
      & info [ "health-interval" ] ~docv:"SECONDS"
          ~doc:"Delay between per-shard stats-ping sweeps.")
  in
  let restart_backoff =
    Arg.(
      value & opt float 0.05
      & info [ "restart-backoff" ] ~docv:"SECONDS"
          ~doc:
            "First respawn delay after a worker death; doubles per \
             consecutive failure (capped at 2s), resets when a respawn \
             comes up healthy.")
  in
  let run listen shards socket_dir warm_state workers queue cache fuel
      max_conns backlog health_interval restart_backoff =
    if
      shards < 1 || workers < 1 || queue < 1 || cache < 0 || fuel < 0
      || max_conns < 1 || backlog < 1 || health_interval <= 0.0
      || restart_backoff <= 0.0
    then begin
      Printf.eprintf
        "error: invalid balance parameters (shards %d, workers %d, queue %d, \
         cache %d, fuel %d, max-conns %d, backlog %d, health-interval %g, \
         restart-backoff %g)\n"
        shards workers queue cache fuel max_conns backlog health_interval
        restart_backoff;
      exit 1
    end;
    let shard_argv ~index ~socket =
      let base =
        [
          Sys.executable_name; "serve";
          "--listen"; "unix:" ^ socket;
          "--workers"; string_of_int workers;
          "--queue"; string_of_int queue;
          "--cache"; string_of_int cache;
          "--fuel"; string_of_int fuel;
        ]
      in
      let warm =
        if warm_state = "" then []
        else
          [
            "--warm-state"; warm_state;
            "--warm-id"; Printf.sprintf "shard-%d" index;
          ]
      in
      Array.of_list (base @ warm)
    in
    let cfg =
      {
        (Balancer.default_config ~shards ~socket_dir ~shard_argv) with
        Balancer.health_interval_s = health_interval;
        restart_backoff_s = restart_backoff;
        max_conns;
      }
    in
    match Server.parse_address listen with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit exit_bad_listen
    | Ok addr -> (
      match Server.bind_address ~backlog addr with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit exit_bind_failed
      | Ok fd -> (
        match Balancer.create cfg with
        | Error msg ->
          Server.close_address addr fd;
          Printf.eprintf "error: %s\n" msg;
          exit exit_shards_failed
        | Ok balancer ->
          Printf.eprintf
            "crsched balance: listening on %s (%d shards in %s)\n%!"
            (Server.address_to_string addr)
            shards socket_dir;
          Fun.protect
            ~finally:(fun () ->
              Server.close_address addr fd;
              Balancer.drain balancer)
            (fun () -> Balancer.serve balancer fd)))
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:"Run a process-sharded serve tier behind one listen address."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Forks $(b,--shards) $(b,crsched serve) worker processes on \
              private Unix sockets and balances the crs-serve/1 protocol \
              across them: every solve request is routed by rendezvous hash \
              of its canonical instance key, so canonically equivalent \
              instances always hit the same shard's memo cache and \
              responses stay byte-identical under sharding. Dead workers \
              are respawned with exponential backoff; requests to an \
              unreachable shard are answered with a structured \
              $(b,overloaded) refusal naming the shard. $(b,stats) \
              aggregates the tier (per-shard health, routing and warm \
              progress under $(b,balancer.shard)); $(b,shutdown) drains \
              the whole tier — each shard snapshots its warm state when \
              $(b,--warm-state) is set.";
           `P
             "Exit codes: 3 unparseable --listen, 4 public bind failed, 5 \
              shard processes failed to come up.";
         ])
    Term.(
      const run $ listen $ shards $ socket_dir $ warm_state $ workers $ queue
      $ cache $ fuel $ max_conns $ backlog $ health_interval $ restart_backoff)

let main =
  let doc = "Scheduling shared continuous resources on many-cores (SPAA 2014 reproduction)." in
  Cmd.group (Cmd.info "crsched" ~version:"1.0.0" ~doc)
    [
      algorithms_cmd; gen_cmd; solve_cmd; compare_cmd; campaign_cmd; fuzz_cmd;
      replay_cmd; render_cmd; graph_cmd; normalize_cmd; reduce_cmd;
      simulate_cmd; verify_cmd; bounds_cmd; export_cmd; gallery_cmd; trace_cmd;
      serve_cmd; balance_cmd;
    ]

let () = exit (Cmd.eval main)
