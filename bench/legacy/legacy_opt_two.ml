(* FROZEN baseline: the boxed-record Opt_two kernel exactly as it stood
   before the flat-state rewrite (same PR). `bench dp` times the live
   kernel against this copy (the >= 2x gate compares like against
   like), and the differential parity suite in test/ pins makespan,
   schedule-row and counter agreement between the two. Do not "improve"
   this file; re-snapshot it only when intentionally moving the
   baseline. *)

module Q = Crs_num.Rational
open Crs_core

type counters = { cells_expanded : int; relaxations : int }
type solution = { makespan : int; schedule : Schedule.t; counters : counters }

type transition =
  | Start
  | Finish_both  (* both active jobs complete this step *)
  | Finish_fst   (* processor 0's job completes; leftover invested in 1 *)
  | Finish_snd   (* symmetric *)
  | Only_fst     (* processor 1 has no jobs left *)
  | Only_snd

type entry = { t : int; r : Q.t; from : (int * int); via : transition }

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two: unit-size jobs only"

(* Requirement of job [j] (0-based) on processor [i]; zero beyond the end
   (the "dummy job" of the paper's formulation). *)
let req instance i j =
  if j < Instance.n_i instance i then Job.requirement (Instance.job instance i j)
  else Q.zero

let better (t1, r1) (t2, r2) = t1 < t2 || (t1 = t2 && Q.(r1 < r2))

let run_dp instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let table : entry option array array = Array.make_matrix (n1 + 1) (n2 + 1) None in
  let cells = ref 0 and relaxes = ref 0 in
  let relax i1 i2 t r from via =
    incr relaxes;
    match table.(i1).(i2) with
    | Some e when not (better (t, r) (e.t, e.r)) -> ()
    | _ -> table.(i1).(i2) <- Some { t; r; from; via }
  in
  let dp () =
    relax 0 0 0 (Q.add (req instance 0 0) (req instance 1 0)) (-1, -1) Start;
    (* Transitions raise i1+i2 by 1 or 2, so diagonal order finalizes every
       state before it is expanded. *)
    for level = 0 to n1 + n2 - 1 do
      for i1 = max 0 (level - n2) to min level n1 do
        Crs_util.Fuel.tick ();
        let i2 = level - i1 in
        match table.(i1).(i2) with
        | None -> ()
        | Some e ->
          incr cells;
          let t' = e.t + 1 in
          let fresh1 = req instance 0 (i1 + 1) and fresh2 = req instance 1 (i2 + 1) in
          if i1 >= n1 && i2 < n2 then
            (* Only processor 1 active: one job per step, leftover wasted. *)
            relax i1 (i2 + 1) t' fresh2 (i1, i2) Only_snd
          else if i2 >= n2 && i1 < n1 then
            relax (i1 + 1) i2 t' fresh1 (i1, i2) Only_fst
          else if i1 < n1 && i2 < n2 then begin
            if Q.(e.r <= one) then
              relax (i1 + 1) (i2 + 1) t' (Q.add fresh1 fresh2) (i1, i2) Finish_both
            else begin
              (* r > 1: finish one job (cost <= 1) and invest the leftover
                 in the other, which stays active with remainder r - 1. *)
              relax (i1 + 1) i2 t' (Q.add fresh1 (Q.sub e.r Q.one)) (i1, i2) Finish_fst;
              relax i1 (i2 + 1) t' (Q.add (Q.sub e.r Q.one) fresh2) (i1, i2) Finish_snd
            end
          end
      done
    done
  in
  dp ();
  (table, { cells_expanded = !cells; relaxations = !relaxes })

let makespan instance =
  let table, _ = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  match table.(n1).(n2) with
  | Some e -> e.t
  | None -> failwith "Opt_two.makespan: final state unreachable (bug)"

(* Replay the optimal path, tracking the individual remainders (v1, v2) of
   the active jobs to emit concrete share vectors. *)
let solve instance =
  let table, counters = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let final =
    match table.(n1).(n2) with
    | Some e -> e
    | None -> failwith "Opt_two.solve: final state unreachable (bug)"
  in
  let rec path i1 i2 acc =
    match table.(i1).(i2) with
    | None -> failwith "Opt_two.solve: broken parent chain"
    | Some e ->
      if e.via = Start then acc else path (fst e.from) (snd e.from) (e :: acc)
  in
  let steps = path n1 n2 [] in
  let v1 = ref (req instance 0 0) and v2 = ref (req instance 1 0) in
  let i1 = ref 0 and i2 = ref 0 in
  let rows =
    List.map
      (fun e ->
        let row =
          match e.via with
          | Start -> assert false
          | Finish_both ->
            let row = [| !v1; !v2 |] in
            incr i1;
            incr i2;
            v1 := req instance 0 !i1;
            v2 := req instance 1 !i2;
            row
          | Finish_fst ->
            let give2 = Q.sub Q.one !v1 in
            let row = [| !v1; give2 |] in
            incr i1;
            v2 := Q.sub !v2 give2;
            v1 := req instance 0 !i1;
            row
          | Finish_snd ->
            let give1 = Q.sub Q.one !v2 in
            let row = [| give1; !v2 |] in
            incr i2;
            v1 := Q.sub !v1 give1;
            v2 := req instance 1 !i2;
            row
          | Only_fst ->
            let row = [| !v1; Q.zero |] in
            incr i1;
            v1 := req instance 0 !i1;
            row
          | Only_snd ->
            let row = [| Q.zero; !v2 |] in
            incr i2;
            v2 := req instance 1 !i2;
            row
        in
        (* The replayed remainders must match the stored sufficient
           statistic at the state just reached. *)
        assert (Q.equal (Q.add !v1 !v2) e.r);
        row)
      steps
  in
  let schedule =
    if rows = [] then Schedule.empty ~m:2 else Schedule.of_rows (Array.of_list rows)
  in
  { makespan = final.t; schedule; counters }
