(* FROZEN baseline: the hashtable-of-records Opt_config kernel exactly
   as it stood before the flat-key / frontier-sweep rewrite (same PR),
   minus the tracing hooks (disabled-tracing cost is ~0.5%, noise
   against the 2x gate). `bench dp` times the live kernel against this
   copy, and the parity suite pins makespan and counter agreement plus
   certification of both witnesses. Do not "improve" this file;
   re-snapshot it only when intentionally moving the baseline. *)

module Q = Crs_num.Rational
open Crs_core

type stats = { layers : int list; generated : int }
type solution = { makespan : int; schedule : Schedule.t; stats : stats }

type config = { j : int array; v : Q.t array }
(* j.(i) = jobs completed on processor i; v.(i) = remaining requirement of
   the active job (0 when the processor is done). *)

type node = { config : config; parent : node option; shares : Q.t array }

let req instance i k =
  if k < Instance.n_i instance i then Job.requirement (Instance.job instance i k)
  else Q.zero

let initial instance =
  let m = Instance.m instance in
  { j = Array.make m 0; v = Array.init m (fun i -> req instance i 0) }

let is_final instance c =
  let m = Instance.m instance in
  let rec go i = i >= m || (c.j.(i) >= Instance.n_i instance i && go (i + 1)) in
  go 0

(* Domination (Lemma 4 spirit): within one time layer, [a] dominates [b]
   iff per processor a is strictly ahead in completed jobs or on the same
   job with no more remaining work. *)
let dominates a b =
  let m = Array.length a.j in
  let rec go i =
    i >= m
    || ((a.j.(i) > b.j.(i) || (a.j.(i) = b.j.(i) && Q.(a.v.(i) <= b.v.(i)))) && go (i + 1))
  in
  go 0

let successors instance c =
  let m = Instance.m instance in
  let actives = List.filter (fun i -> c.j.(i) < Instance.n_i instance i) (Crs_util.Misc.range m) in
  let result = ref [] in
  let emit finished partial =
    (* [finished] : processor list whose active jobs complete this step;
       [partial] : optional (processor, invested amount). *)
    let j = Array.copy c.j and v = Array.copy c.v in
    let shares = Array.make m Q.zero in
    List.iter
      (fun i ->
        shares.(i) <- c.v.(i);
        j.(i) <- c.j.(i) + 1;
        v.(i) <- req instance i j.(i))
      finished;
    (match partial with
    | None -> ()
    | Some (p, delta) ->
      shares.(p) <- delta;
      v.(p) <- Q.sub c.v.(p) delta);
    result := ({ j; v }, shares) :: !result
  in
  (* Enumerate non-empty subsets of active processors as finish sets. *)
  let actives_arr = Array.of_list actives in
  let k = Array.length actives_arr in
  for mask = 1 to (1 lsl k) - 1 do
    let finished = ref [] in
    let cost = ref Q.zero in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then begin
        finished := actives_arr.(b) :: !finished;
        cost := Q.add !cost c.v.(actives_arr.(b))
      end
    done;
    if Q.(!cost <= one) then begin
      let leftover = Q.sub Q.one !cost in
      let others = List.filter (fun i -> not (List.mem i !finished)) actives in
      if others = [] || Q.is_zero leftover then emit !finished None
      else begin
        (* Non-wasting: the leftover must go to some still-active job it
           cannot finish; if it could finish one, the larger finish set
           covers that choice. *)
        List.iter
          (fun p -> if Q.(c.v.(p) > leftover) then emit !finished (Some (p, leftover)))
          others
      end
    end
  done;
  !result

let solve ?(prune = true) instance =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_config: unit-size jobs only";
  let start = { config = initial instance; parent = None; shares = [||] } in
  if is_final instance start.config then
    { makespan = 0; schedule = Schedule.empty ~m:(Instance.m instance);
      stats = { layers = []; generated = 0 } }
  else begin
    let seen : (config, unit) Hashtbl.t = Hashtbl.create 1024 in
    Hashtbl.replace seen start.config ();
    let generated = ref 0 in
    let layer_sizes = ref [] in
    let max_layers = Instance.total_jobs instance + 1 in
    let expand_layer layer =
      (* Expand every node; merge duplicates keeping an arbitrary parent
         (all parents at the same t are equally good). *)
      let next : (config, node) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun node ->
          List.iter
            (fun (cfg, shares) ->
              Crs_util.Fuel.tick ();
              incr generated;
              if not (Hashtbl.mem seen cfg) && not (Hashtbl.mem next cfg) then
                Hashtbl.replace next cfg { config = cfg; parent = Some node; shares })
            (successors instance node.config))
        layer;
      let candidates = Hashtbl.fold (fun _ n acc -> n :: acc) next [] in
      (* Mutual domination forces equality, and equal configs were
         merged above, so discarding every dominated candidate never
         empties a non-empty layer. *)
      let survivors =
        if not prune then candidates
        else
          List.filter
            (fun n ->
              not
                (List.exists
                   (fun n' -> n' != n && dominates n'.config n.config)
                   candidates))
            candidates
      in
      List.iter (fun n -> Hashtbl.replace seen n.config ()) survivors;
      layer_sizes := List.length survivors :: !layer_sizes;
      survivors
    in
    let rec grow layer t =
      if t > max_layers then
        failwith "Opt_config.solve: exceeded layer budget (bug)"
      else begin
        let survivors = expand_layer layer in
        match List.find_opt (fun n -> is_final instance n.config) survivors with
        | Some final -> (t, final)
        | None ->
          if survivors = [] then
            failwith "Opt_config.solve: dead end (bug)"
          else grow survivors (t + 1)
      end
    in
    let makespan, final = grow [ start ] 1 in
    let rec collect node acc =
      match node.parent with
      | None -> acc
      | Some p -> collect p (node.shares :: acc)
    in
    let rows = collect final [] in
    let schedule = Schedule.of_rows (Array.of_list rows) in
    {
      makespan;
      schedule;
      stats = { layers = List.rev !layer_sizes; generated = !generated };
    }
  end

let makespan ?prune instance = (solve ?prune instance).makespan
