(* Benchmark & experiment harness.

   The paper has no measured tables; its evaluation artifacts are
   Figures 1-5 and Theorems 3-8. Each experiment below regenerates the
   corresponding series and prints it next to the paper's claim (see
   DESIGN.md section 5 for the index and EXPERIMENTS.md for recorded
   results). Run `dune exec bench/main.exe` for all experiments, pass an
   experiment id (f1 f2 f3 f4 f5 t3 t5 t6 t7 l56 mc ext bp dc fa mr
   ablation campaign registry num obs dp) to run one, `micro` for the
   Bechamel runtime micro-benchmarks, or `smoke` for a tiny-n pass over
   the gated experiments (num obs dp registry) that judges no timing
   gates — this is what `dune build @bench-smoke` runs. `num` also
   accepts `--check` (fast differential sample only) and
   `--record-baseline` (write data/num_baseline.json for the speedup
   gate). *)

module Q = Crs_num.Rational
open Crs_core
module A = Crs_generators.Adversarial
module T = Crs_render.Table
module R = Crs_algorithms.Registry

(* Name-based dispatch through the solver registry; experiments that
   exercise a specific implementation detail (pruning flags, tie-break
   variants) keep their direct module calls. *)
let solve_by name instance = (R.solve (R.find_exn name) instance).R.makespan

let banner id title claim =
  Printf.printf "\n=== %s: %s ===\npaper: %s\n\n" (String.uppercase_ascii id) title claim

(* ---------- F1: Figure 1, hypergraph ---------- *)

let exp_f1 () =
  banner "f1" "scheduling hypergraph of Figure 1"
    "6 edges e1..e6 grouped into components C1..C3 (left to right)";
  let schedule =
    Policy.run Crs_algorithms.Heuristics.smallest_requirement_first A.figure1
  in
  let trace = Execution.run_exn A.figure1 schedule in
  let g = Crs_hypergraph.Sched_graph.of_trace trace in
  Format.printf "%a@." Crs_hypergraph.Sched_graph.pp g;
  Printf.printf "Lemma 5 bound %d, Lemma 6 bound %d, exact optimum %d\n"
    (Crs_hypergraph.Bounds.lemma5 g)
    (Crs_hypergraph.Bounds.lemma6_int g)
    (Crs_algorithms.Solver.optimal_makespan A.figure1)

(* ---------- F2: Figure 2, nested vs unnested ---------- *)

let exp_f2 () =
  banner "f2" "nested vs unnested schedules (Figure 2)"
    "both schedules non-wasting and progressive; only 2b nested";
  let row name sched =
    let trace = Execution.run_exn A.figure2 sched in
    let flag p = if p trace then "yes" else "no" in
    [
      name;
      string_of_int (Execution.makespan trace);
      flag Properties.is_non_wasting;
      flag Properties.is_progressive;
      flag Properties.is_nested;
    ]
  in
  print_string
    (T.render
       ~header:[ "schedule"; "makespan"; "non-wasting"; "progressive"; "nested" ]
       [
         row "Figure 2b" A.figure2_nested_schedule;
         row "Figure 2c" A.figure2_unnested_schedule;
       ])

(* ---------- F3 / T3 lower-bound family ---------- *)

let exp_f3 () =
  banner "f3" "RoundRobin worst-case family (Figure 3)"
    "RoundRobin needs 2n steps, OPT n+1; ratio tends to 2";
  let rows =
    List.map
      (fun n ->
        let instance = A.round_robin_family ~n in
        let rr = Crs_algorithms.Round_robin.makespan instance in
        let witness =
          Execution.makespan
            (Execution.run_exn instance (A.round_robin_family_opt_schedule ~n))
        in
        let prr, popt = A.round_robin_family_predicted ~n in
        [
          string_of_int n;
          string_of_int rr;
          string_of_int prr;
          string_of_int witness;
          string_of_int popt;
          Printf.sprintf "%.4f" (float_of_int rr /. float_of_int witness);
        ])
      [ 5; 10; 25; 50; 100; 250 ]
  in
  print_string
    (T.render
       ~header:[ "n"; "RR"; "RR(pred)"; "OPT"; "OPT(pred)"; "ratio" ]
       rows)

(* ---------- T3: RoundRobin ratio on random instances ---------- *)

let exp_t3 () =
  banner "t3" "Theorem 3 on random instances"
    "RoundRobin <= 2 OPT always (worst case exactly 2)";
  let st = Random.State.make [| 303 |] in
  let trials = 150 in
  let worst = ref Q.zero in
  let sum = ref 0.0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.instance
        ~spec:{ Crs_generators.Random_gen.default_spec with m = 2; jobs_max = 4 }
        st
    in
    let rr = solve_by R.Names.round_robin instance in
    let opt = solve_by R.Names.opt_two instance in
    let ratio = Q.of_ints rr opt in
    if Q.(ratio > !worst) then worst := ratio;
    sum := !sum +. Q.to_float ratio
  done;
  Printf.printf "%d random 2-processor instances: mean ratio %.3f, worst %.3f (bound 2.0)\n"
    trials (!sum /. float_of_int trials) (Q.to_float !worst);
  assert Q.(!worst <= Q.two)

(* ---------- F4: Theorem 4 gadget ---------- *)

let exp_f4 () =
  banner "f4" "Partition reduction (Figure 4 / Theorem 4 / Corollary 1)"
    "optimal makespan 4 iff YES; NO forces >= 5 (5/4 gap)";
  let st = Random.State.make [| 404 |] in
  let rows = ref [] in
  let add p =
    let truth = Crs_reduction.Partition.is_yes p in
    let opt =
      Crs_algorithms.Opt_config.makespan (Crs_reduction.Reduce.to_crsharing p)
    in
    rows :=
      [
        String.concat ";"
          (Array.to_list (Array.map string_of_int p.Crs_reduction.Partition.elements));
        (if truth then "YES" else "NO");
        string_of_int opt;
        (if (opt = 4) = truth then "ok" else "MISMATCH");
      ]
      :: !rows
  in
  add (Crs_reduction.Partition.make [| 1; 2; 3 |]);
  add (Crs_reduction.Partition.make [| 3; 3; 3; 3; 2 |]);
  for _ = 1 to 4 do
    add (Crs_reduction.Partition.random_yes ~n:4 ~max_value:9 st)
  done;
  for _ = 1 to 3 do
    add (Crs_reduction.Partition.random_no ~n:5 ~max_value:7 st)
  done;
  print_string
    (T.render ~header:[ "elements"; "partition"; "opt makespan"; "agree" ]
       (List.rev !rows))

(* ---------- F5 / T8: GreedyBalance worst case ---------- *)

let exp_f5 () =
  banner "f5" "GreedyBalance worst-case family (Figure 5 / Theorem 8)"
    "GreedyBalance spends 2m-1 steps per block, OPT ~m; ratio tends to 2-1/m";
  let rows =
    List.map
      (fun (m, blocks) ->
        let instance = A.greedy_balance_family ~m ~blocks () in
        let gb = solve_by R.Names.greedy_balance instance in
        let pred = A.greedy_balance_family_predicted ~m ~blocks in
        let stair = solve_by R.Names.staircase instance in
        let lb = Lower_bounds.combined instance in
        [
          Printf.sprintf "%d" m;
          Printf.sprintf "%d" blocks;
          string_of_int gb;
          string_of_int pred;
          string_of_int stair;
          string_of_int lb;
          Printf.sprintf "%.4f" (float_of_int gb /. float_of_int stair);
          Printf.sprintf "%.4f" (2.0 -. (1.0 /. float_of_int m));
        ])
      [ (2, 2); (2, 8); (2, 32); (3, 3); (3, 9); (3, 27); (4, 4); (4, 16); (5, 10) ]
  in
  print_string
    (T.render
       ~header:
         [ "m"; "blocks"; "GB"; "GB(pred)"; "staircase"; "work-LB"; "ratio"; "2-1/m" ]
       rows)

(* ---------- T5: two-processor exact algorithm ---------- *)

let exp_t5 () =
  banner "t5" "OptResAssignment (Theorem 5)"
    "optimal for m=2, O(n^2) time; the PQ variant visits fewer states";
  let st = Random.State.make [| 505 |] in
  let agree = ref 0 in
  let trials = 100 in
  for _ = 1 to trials do
    let instance = Helpers_bench.random_two_proc st 3 in
    if
      Crs_algorithms.Opt_two.makespan instance
      = Crs_algorithms.Brute_force.makespan instance
    then incr agree
  done;
  Printf.printf "agreement with brute force: %d/%d\n\n" !agree trials;
  let rows =
    List.map
      (fun n ->
        let instance = Helpers_bench.random_two_proc ~n st 0 in
        let t0 = Unix.gettimeofday () in
        let ms = Crs_algorithms.Opt_two.makespan instance in
        let dt_arr = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let pq = Crs_algorithms.Opt_two_pq.run instance in
        let dt_pq = Unix.gettimeofday () -. t0 in
        assert (ms = pq.Crs_algorithms.Opt_two_pq.makespan);
        let expanded = pq.Crs_algorithms.Opt_two_pq.expanded in
        [
          string_of_int n;
          string_of_int ms;
          Printf.sprintf "%.1f" (dt_arr *. 1000.);
          Printf.sprintf "%.1f" (dt_pq *. 1000.);
          Printf.sprintf "%d" ((n + 1) * (n + 1));
          string_of_int expanded;
        ])
      [ 25; 50; 100; 200; 400 ]
  in
  print_string
    (T.render
       ~header:[ "n per proc"; "OPT"; "array ms"; "pq ms"; "table states"; "pq states" ]
       rows);
  (* Lemma 3 audit: how large do Pareto frontiers get when we refuse to
     collapse each cell to the lexicographic best pair? *)
  let st = Random.State.make [| 515 |] in
  Printf.printf "\nLemma 3 audit (Pareto frontier per DP cell):\n";
  List.iter
    (fun n ->
      let instance = Helpers_bench.random_two_proc ~n st 0 in
      let lex = Crs_algorithms.Opt_two.makespan instance in
      let pareto = Crs_algorithms.Opt_two_pareto.makespan instance in
      let mx, mean = Crs_algorithms.Opt_two_pareto.frontier_sizes instance in
      Printf.printf
        "  n=%-4d lex OPT %d = pareto OPT %d | frontier max %d, mean %.2f\n" n lex
        pareto mx mean;
      assert (lex = pareto))
    [ 10; 20; 40 ]

(* ---------- T6: configuration enumeration ---------- *)

let exp_t6 () =
  banner "t6" "OptResAssignment2 (Theorem 6)"
    "optimal for fixed m; domination pruning keeps layers polynomial";
  let st = Random.State.make [| 606 |] in
  let rows =
    List.concat_map
      (fun m ->
        List.map
          (fun n ->
            let instance =
              Crs_generators.Random_gen.equal_rows ~m ~n ~granularity:10 st
            in
            let sol = Crs_algorithms.Opt_config.solve instance in
            let sol_np = Crs_algorithms.Opt_config.solve ~prune:false instance in
            assert (sol.Crs_algorithms.Opt_config.makespan = sol_np.Crs_algorithms.Opt_config.makespan);
            let stats = sol.Crs_algorithms.Opt_config.stats in
            let stats_np = sol_np.Crs_algorithms.Opt_config.stats in
            let max_layer = List.fold_left max 0 stats.Crs_algorithms.Opt_config.layers in
            let max_layer_np =
              List.fold_left max 0 stats_np.Crs_algorithms.Opt_config.layers
            in
            [
              string_of_int m;
              string_of_int n;
              string_of_int sol.Crs_algorithms.Opt_config.makespan;
              string_of_int stats.Crs_algorithms.Opt_config.generated;
              string_of_int max_layer;
              string_of_int stats_np.Crs_algorithms.Opt_config.generated;
              string_of_int max_layer_np;
            ])
          [ 2; 3; 4 ])
      [ 2; 3; 4 ]
  in
  print_string
    (T.render
       ~header:
         [ "m"; "n"; "OPT"; "generated"; "max layer"; "gen (no prune)"; "layer (no prune)" ]
       rows)

(* ---------- T7: balanced schedules are (2-1/m)-approximations ---------- *)

let exp_t7 () =
  banner "t7" "Theorem 7 on random instances"
    "GreedyBalance <= (2 - 1/m) OPT for every balanced schedule";
  let st = Random.State.make [| 707 |] in
  let rows =
    List.map
      (fun m ->
        let trials = if m = 2 then 120 else 60 in
        let worst = ref 1.0 and sum = ref 0.0 in
        for _ = 1 to trials do
          let instance =
            Crs_generators.Random_gen.instance
              ~spec:
                { Crs_generators.Random_gen.default_spec with m; jobs_min = 1; jobs_max = 3 }
              st
          in
          let gb = Crs_algorithms.Greedy_balance.makespan instance in
          let opt =
            if m = 2 then Crs_algorithms.Opt_two.makespan instance
            else Crs_algorithms.Brute_force.makespan instance
          in
          let r = float_of_int gb /. float_of_int opt in
          if r > !worst then worst := r;
          sum := !sum +. r
        done;
        [
          string_of_int m;
          string_of_int trials;
          Printf.sprintf "%.3f" (!sum /. float_of_int trials);
          Printf.sprintf "%.3f" !worst;
          Printf.sprintf "%.3f" (2.0 -. (1.0 /. float_of_int m));
        ])
      [ 2; 3; 4 ]
  in
  print_string
    (T.render ~header:[ "m"; "trials"; "mean ratio"; "worst ratio"; "bound 2-1/m" ] rows)

(* ---------- L56: component lower bounds ---------- *)

let exp_l56 () =
  banner "l56" "Lemma 5 / Lemma 6 lower bounds"
    "OPT >= sum(#k - 1) and OPT >= n >= sum |Ck|/qk + |CN|/m on balanced schedules";
  let st = Random.State.make [| 56 |] in
  let trials = 100 in
  let ok = ref 0 in
  let tight5 = ref 0 and tight6 = ref 0 and tight_any = ref 0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.instance
        ~spec:{ Crs_generators.Random_gen.default_spec with m = 3; jobs_max = 3 }
        st
    in
    let opt = Crs_algorithms.Brute_force.makespan instance in
    let trace =
      Execution.run_exn instance (Crs_algorithms.Greedy_balance.schedule instance)
    in
    let g = Crs_hypergraph.Sched_graph.of_trace trace in
    let l5 = Crs_hypergraph.Bounds.lemma5 g in
    let l6 = Crs_hypergraph.Bounds.lemma6_int g in
    let comb = Crs_hypergraph.Bounds.combined g instance in
    if l5 <= opt && l6 <= opt then incr ok;
    if l5 = opt then incr tight5;
    if l6 = opt then incr tight6;
    if comb = opt then incr tight_any
  done;
  Printf.printf
    "%d instances: bounds sound on %d; Lemma5 tight %d, Lemma6 tight %d, best-of-all \
     tight %d\n"
    trials !ok !tight5 !tight6 !tight_any

(* ---------- MC: the many-core scenario ---------- *)

let exp_mc () =
  banner "mc" "many-core bus simulation (Section 1 scenario)"
    "bandwidth distribution decides makespan; greedy balancing wins";
  let st = Random.State.make [| 1 |] in
  List.iter
    (fun (wname, tasks) ->
      Printf.printf "-- workload: %s --\n" wname;
      let rows =
        List.map
          (fun (p : Crs_manycore.Policy.t) ->
            let r = Crs_manycore.Engine.run p tasks in
            p.name :: Crs_manycore.Stats.to_row (Crs_manycore.Stats.of_result tasks r))
          Crs_manycore.Policy.all
      in
      print_string
        (T.render ~header:("policy" :: Crs_manycore.Stats.header) rows);
      let instance = Crs_manycore.Workload.to_crsharing ~granularity:20 tasks in
      Printf.printf "exact-model lower bound (any policy): %d ticks\n\n"
        (Lower_bounds.combined instance))
    [
      ("io-burst (12 cores)", Crs_manycore.Workload.io_burst ~cores:12 ~phases:4 ~io_intensity:0.8 st);
      ("mixed-vm (9 cores)", Crs_manycore.Workload.mixed_vm ~cores:9 st);
      ("streaming (8 cores)", Crs_manycore.Workload.streaming ~cores:8 ~length:8.0 st);
    ]

(* ---------- EXT: extensions ---------- *)

let exp_ext () =
  banner "ext" "extensions (Section 9 outlook)"
    "conjecture: results transfer to arbitrary sizes; continuous time removes the \
     step-boundary cost";
  let st = Random.State.make [| 909 |] in
  let trials = 60 in
  let worst_rr = ref 1.0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.sized_jobs ~m:3 ~n:3 ~granularity:8 ~max_size:3 st
    in
    let r =
      Q.to_float
        (Crs_extension.General.ratio_vs_lower_bound
           (fun i ->
             Execution.makespan (Execution.run_exn i (Crs_algorithms.Round_robin.schedule i)))
           instance)
    in
    if r > !worst_rr then worst_rr := r
  done;
  Printf.printf
    "sized jobs (%d trials): worst RoundRobin / certified-LB ratio %.3f (conjectured \
     bound 2)\n"
    trials !worst_rr;
  let overhead_pos = ref 0 and overhead_neg = ref 0 in
  let total_overhead = ref 0.0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.instance
        ~spec:{ Crs_generators.Random_gen.default_spec with m = 3; jobs_max = 4 }
        st
    in
    let o = Q.to_float (Crs_extension.Continuous.discretization_overhead instance) in
    total_overhead := !total_overhead +. o;
    if o > 0.0 then incr overhead_pos else if o < 0.0 then incr overhead_neg
  done;
  Printf.printf
    "continuous vs discrete GreedyBalance (%d trials): mean overhead %.3f steps \
     (positive on %d, negative on %d)\n"
    trials
    (!total_overhead /. float_of_int trials)
    !overhead_pos !overhead_neg

(* ---------- BP: splittable bin packing baseline ---------- *)

let exp_bp () =
  banner "bp" "splittable bin packing with cardinality constraints (Section 2 baseline)"
    "NextFit is an absolute (2 - 1/k)-approximation (Chung et al.; Epstein & van Stee)";
  let module S = Crs_binpack.Splittable in
  let st = Random.State.make [| 111 |] in
  let rows =
    List.map
      (fun k ->
        let trials = 60 in
        let worst = ref 1.0 in
        for _ = 1 to trials do
          let n = 4 + Random.State.int st 12 in
          let sizes =
            Array.init n (fun _ -> Q.of_ints (1 + Random.State.int st 30) 10)
          in
          let t = S.make ~k sizes in
          let nf = S.num_bins (S.next_fit t) in
          let r = float_of_int nf /. float_of_int (max 1 (S.lower_bound t)) in
          if r > !worst then worst := r
        done;
        [
          string_of_int k;
          string_of_int trials;
          Printf.sprintf "%.3f" !worst;
          Printf.sprintf "%.3f" (Q.to_float (S.next_fit_guarantee ~k));
        ])
      [ 2; 3; 4; 6 ]
  in
  print_string
    (T.render ~header:[ "k"; "trials"; "worst NF/LB"; "bound 2-1/k" ] rows);
  (* The interleaved family with certified OPT. *)
  let rows =
    List.map
      (fun n ->
        let t = S.interleave_family ~n in
        let nf = S.num_bins (S.next_fit t) in
        let nfd = S.num_bins (S.next_fit_decreasing t) in
        let opt = S.interleave_family_opt ~n in
        [
          string_of_int n;
          string_of_int nf;
          string_of_int nfd;
          string_of_int opt;
          Printf.sprintf "%.4f" (float_of_int nf /. float_of_int opt);
        ])
      [ 6; 12; 24; 48; 96 ]
  in
  Printf.printf "\ninterleaved family (k=2, certified OPT = n):\n";
  print_string (T.render ~header:[ "n"; "NF"; "NF-decreasing"; "OPT"; "NF/OPT" ] rows);
  (* The relaxation as a CRSharing bound. *)
  let st = Random.State.make [| 112 |] in
  let trials = 60 in
  let tight = ref 0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.instance
        ~spec:{ Crs_generators.Random_gen.default_spec with m = 3; jobs_max = 3 }
        st
    in
    let opt = Crs_algorithms.Brute_force.makespan instance in
    if S.crsharing_relaxation_bound instance = opt then incr tight
  done;
  Printf.printf
    "\nCRSharing relaxation: bound equals the true optimum on %d/%d random instances\n"
    !tight trials

(* ---------- DC: discrete-continuous baseline ---------- *)

let exp_dc () =
  banner "dc" "discrete-continuous scheduling with power rates (Section 2 baseline)"
    "convex f: one job at a time optimal; concave f: parallel optimal (Jozefowska & \
     Weglarz)";
  let module D = Crs_discont.Discont in
  let workloads = [| 4.0; 2.0; 1.0; 1.0 |] in
  let rows =
    List.map
      (fun alpha ->
        let t = D.make ~m:4 ~alpha workloads in
        let seq = D.sequential_makespan t in
        let par = D.parallel_makespan t in
        let winner =
          if Float.abs (seq -. par) < 1e-9 then "tie"
          else if seq < par then "sequential"
          else "parallel"
        in
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.3f" seq;
          Printf.sprintf "%.3f" par;
          winner;
        ])
      [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0 ]
  in
  print_string
    (T.render ~header:[ "alpha"; "sequential"; "parallel"; "winner" ] rows);
  Printf.printf "(crossover at alpha = 1, as the analytical results predict)\n\n";
  (* n > m: the heuristic regime the literature addresses. *)
  let st = Random.State.make [| 113 |] in
  let rows =
    List.map
      (fun alpha ->
        let mean = ref 0.0 in
        let trials = 30 in
        for _ = 1 to trials do
          let n = 6 + Random.State.int st 6 in
          let ws = Array.init n (fun _ -> 0.5 +. Random.State.float st 3.0) in
          let t = D.make ~m:3 ~alpha ws in
          let h = (D.list_heuristic t).D.makespan in
          let seq = D.sequential_makespan t in
          mean := !mean +. (h /. seq)
        done;
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.3f" (!mean /. 30.0);
        ])
      [ 0.25; 0.5; 0.75; 1.0; 1.5 ]
  in
  print_string
    (T.render ~header:[ "alpha"; "heuristic/sequential (m=3, n>m)" ] rows)

(* ---------- FA: price of fixed assignment ---------- *)

let exp_fa () =
  banner "fa" "price of fixed assignment (Section 9 outlook)"
    "dropping the job-to-processor binding turns CRSharing into splittable bin packing";
  let st = Random.State.make [| 114 |] in
  let trials = 80 in
  let zero_gap = ref 0 and sum_gap = ref 0 and max_gap = ref 0 in
  for _ = 1 to trials do
    let instance =
      Crs_generators.Random_gen.instance
        ~spec:{ Crs_generators.Random_gen.default_spec with m = 3; jobs_max = 3 }
        st
    in
    let lb, _ub, fixed =
      Crs_extension.Free_assignment.price_of_fixed_assignment
        ~exact:Crs_algorithms.Brute_force.makespan instance
    in
    let gap = fixed - lb in
    if gap = 0 then incr zero_gap;
    sum_gap := !sum_gap + gap;
    if gap > !max_gap then max_gap := gap
  done;
  Printf.printf
    "%d random instances (m=3): fixed OPT equals the free-assignment lower bound on \
     %d; mean gap %.2f steps, max %d\n"
    trials !zero_gap
    (float_of_int !sum_gap /. float_of_int trials)
    !max_gap;
  (* The family where fixed assignment genuinely hurts: the Theorem 8
     blocks force balancing costs the relaxation does not pay. *)
  List.iter
    (fun (m, blocks) ->
      let instance = A.greedy_balance_family ~m ~blocks () in
      let lb = Crs_extension.Free_assignment.lower_bound instance in
      let ub = Crs_extension.Free_assignment.upper_bound instance in
      let gb = Crs_algorithms.Greedy_balance.makespan instance in
      Printf.printf
        "Theorem-8 family m=%d blocks=%d: free in [%d, %d], fixed GreedyBalance %d\n" m
        blocks lb ub gb)
    [ (3, 5); (4, 5) ]

(* ---------- MR: multiple shared resources ---------- *)

let exp_mr () =
  banner "mr" "several shared continuous resources (Section 9 extension)"
    "Leontief jobs; complementary demands overlap, contended resources gate";
  let module MR = Crs_extension.Multi_resource in
  let st = Random.State.make [| 115 |] in
  let rows =
    List.concat_map
      (fun d ->
        List.map
          (fun correlated ->
            let trials = 30 in
            let sum_ratio = ref 0.0 in
            for _ = 1 to trials do
              let m = 3 in
              let t =
                MR.create ~d
                  (Array.init m (fun _ ->
                       Array.init
                         (2 + Random.State.int st 2)
                         (fun _ ->
                           let base = Q.of_ints (1 + Random.State.int st 10) 10 in
                           MR.unit_job
                             (Array.init d (fun k ->
                                  if correlated || k = 0 then base
                                  else Q.of_ints (1 + Random.State.int st 10) 10)))))
              in
              let greedy = MR.greedy_balance t in
              sum_ratio :=
                !sum_ratio
                +. (float_of_int greedy.MR.makespan /. float_of_int (max 1 (MR.lower_bound t)))
            done;
            [
              string_of_int d;
              (if correlated then "correlated" else "independent");
              Printf.sprintf "%.3f" (!sum_ratio /. 30.0);
            ])
          [ true; false ])
      [ 1; 2; 3 ]
  in
  print_string
    (T.render ~header:[ "resources d"; "demands"; "mean greedy/LB" ] rows);
  Printf.printf
    "(correlated demands behave like d=1; independent demands leave more parallel \
     slack per resource, and greedy exploits it)\n"

(* ---------- ablation: design choices ---------- *)

let exp_ablation () =
  banner "ablation" "design-choice ablations"
    "tie-breaking in GreedyBalance; PQ vs table DP; domination pruning (see t5/t6)";
  let st = Random.State.make [| 808 |] in
  let variants : (string * Policy.t) list =
    [
      ("paper (larger remaining first)", Crs_algorithms.Greedy_balance.policy);
      ( "smaller remaining first",
        Policy.greedy_fill ~by:(fun s a b ->
            let ja = Policy.jobs_remaining s a and jb = Policy.jobs_remaining s b in
            if ja <> jb then ja > jb
            else begin
              let wa = Policy.remaining_work s a and wb = Policy.remaining_work s b in
              Q.(wa < wb)
            end) );
      ( "index tie-break",
        Policy.greedy_fill ~by:(fun s a b ->
            let ja = Policy.jobs_remaining s a and jb = Policy.jobs_remaining s b in
            if ja <> jb then ja > jb else a < b) );
    ]
  in
  let trials = 80 in
  let instances =
    List.init trials (fun _ ->
        Crs_generators.Random_gen.instance
          ~spec:{ Crs_generators.Random_gen.default_spec with m = 3; jobs_max = 3 }
          st)
  in
  let opts = List.map Crs_algorithms.Brute_force.makespan instances in
  let rows =
    List.map
      (fun (name, policy) ->
        let worst = ref 1.0 and sum = ref 0.0 in
        List.iter2
          (fun instance opt ->
            let ms = Crs_algorithms.Heuristics.makespan_of policy instance in
            let r = float_of_int ms /. float_of_int opt in
            if r > !worst then worst := r;
            sum := !sum +. r)
          instances opts;
        [
          name;
          Printf.sprintf "%.3f" (!sum /. float_of_int trials);
          Printf.sprintf "%.3f" !worst;
        ])
      variants
  in
  print_string (T.render ~header:[ "tie-breaking"; "mean ratio"; "worst ratio" ] rows);
  (* On the Theorem 8 family the tie-breaking is immaterial (the job
     counts drive the balancing), but adversaries for other rules exist;
     the bound 2-1/m holds for ALL of them by Theorem 7. *)
  let fam = A.greedy_balance_family ~m:3 ~blocks:6 () in
  List.iter
    (fun (name, policy) ->
      Printf.printf "Theorem-8 family m=3 blocks=6: %-32s -> %d steps\n" name
        (Crs_algorithms.Heuristics.makespan_of policy fam))
    variants

(* ---------- campaign: parallel batch-evaluation subsystem ---------- *)

let exp_campaign () =
  banner "campaign" "work-stealing campaign executor (sequential vs parallel)"
    "greedy-vs-opt ratio sweeps (t5/t6 style) fan out across the Chase-Lev \
     work-stealing executor; payloads and trace signatures are byte-identical \
     at any pool size";
  let module C = Crs_campaign in
  let spec =
    {
      C.Spec.family = C.Spec.Uniform;
      m = 3;
      n = 4;
      granularity = 10;
      seed_lo = 1;
      seed_hi = 60;
      algorithms =
        [
          Crs_algorithms.Registry.Names.greedy_balance;
          Crs_algorithms.Registry.Names.round_robin;
        ];
      baseline = C.Spec.Exact;
      fuel = Some 5_000_000;
    }
  in
  let items = Array.length (C.Spec.expand spec) in
  let hardware_cores = Domain.recommended_domain_count () in
  let domains = 4 in
  let run_seq () = C.Runner.run ~domains:1 spec in
  let run_par () = C.Runner.run ~domains spec in
  (* Paired-reps methodology (same as BENCH_num/BENCH_obs): every timed
     region starts from a settled GC, each rep times both variants
     back-to-back with the order alternating, and the gate uses the
     MEDIAN of the per-rep ratios — machine-speed drift hits both halves
     of a pair, and reps where a slow phase lands between the halves are
     discarded by the median. *)
  let time f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Warmup: first runs in a process carry heap sizing + domain spawn
     cold costs; keep every retained rep in the stable position. *)
  ignore (run_seq ());
  ignore (run_par ());
  let reps = 9 in
  let ratios = Array.make reps 0.0 in
  let seq_best = ref infinity and par_best = ref infinity in
  let payloads_identical = ref true in
  let seq_digest = ref "" in
  for i = 0 to reps - 1 do
    let (seq, seq_s), (par, par_s) =
      if i land 1 = 0 then
        let s = time run_seq in
        (s, time run_par)
      else
        let p = time run_par in
        (time run_seq, p)
    in
    if seq_s < !seq_best then seq_best := seq_s;
    if par_s < !par_best then par_best := par_s;
    ratios.(i) <- seq_s /. Float.max par_s 1e-9;
    seq_digest := C.Report.payload_digest seq;
    payloads_identical :=
      !payloads_identical && String.equal !seq_digest (C.Report.payload_digest par)
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  in
  let speedup = median ratios in
  let rate t = float_of_int items /. Float.max t 1e-9 in
  print_string
    (T.render
       ~header:[ "mode"; "items"; "best wall s"; "items/s" ]
       [
         [ "sequential"; string_of_int items; Printf.sprintf "%.3f" !seq_best;
           Printf.sprintf "%.1f" (rate !seq_best) ];
         [ Printf.sprintf "executor (%d domains)" domains; string_of_int items;
           Printf.sprintf "%.3f" !par_best; Printf.sprintf "%.1f" (rate !par_best) ];
       ]);
  (* Executor behavior under this workload, via the crs_obs counters the
     executor records (zero-cost while the benches above ran untraced). *)
  Crs_obs.Metrics.reset ();
  Crs_obs.Metrics.set_enabled true;
  ignore (run_par ());
  Crs_obs.Metrics.set_enabled false;
  let mval name = Crs_obs.Metrics.counter_value (Crs_obs.Metrics.counter name) in
  let exec_pushes = mval "exec.push" in
  let exec_steals = mval "exec.steal" in
  let exec_parks = mval "exec.park" in
  Crs_obs.Metrics.reset ();
  (* Trace signatures must be byte-identical at any pool size: the spans
     are keyed by item id, not by which worker stole what. A smaller
     sweep keeps the traced runs cheap. *)
  let sig_spec = { spec with C.Spec.seed_hi = 12 } in
  let signature_at domains =
    Crs_obs.Trace.reset ();
    Crs_obs.Trace.set_enabled true;
    ignore (C.Runner.run ~domains sig_spec);
    let s = Crs_obs.Trace.signature () in
    Crs_obs.Trace.set_enabled false;
    Crs_obs.Trace.reset ();
    s
  in
  let sig_1 = signature_at 1 in
  let trace_signature_identical =
    String.equal sig_1 (signature_at 2) && String.equal sig_1 (signature_at domains)
  in
  let summary = C.Report.summarize (run_seq ()) in
  (* On a box with fewer cores than domains the parallel run just
     time-slices one core; the ratio measures executor overhead, not
     scaling, and must not be read as a speedup claim. Both the detected
     core count and the domain count actually used are recorded so the
     flag is auditable. *)
  let speedup_meaningful = hardware_cores >= domains in
  let speedup_gate = 1.8 in
  let gate_met = (not speedup_meaningful) || speedup >= speedup_gate in
  Printf.printf
    "speedup %.2fx median of %d paired reps on %d domains (%d hardware core%s \
     detected)%s\n"
    speedup reps domains hardware_cores
    (if hardware_cores = 1 then "" else "s")
    (if speedup_meaningful then
       Printf.sprintf " — gate >= %.1fx: %s" speedup_gate
         (if gate_met then "met" else "NOT MET")
     else
       " — NOT meaningful: fewer cores than domains, ratio reflects \
        executor overhead only");
  Printf.printf "executor: %d pushes, %d steals, %d parks on the counted run\n"
    exec_pushes exec_steals exec_parks;
  Printf.printf "trace signature identical at domains {1,2,%d}: %b\n" domains
    trace_signature_identical;
  Printf.printf "sweep: %d done, %d timeout, mean ratio %s\n" summary.C.Report.completed
    summary.C.Report.timeouts
    (match summary.C.Report.mean_ratio with
    | Some r -> Printf.sprintf "%.4f" r
    | None -> "-");
  let json =
    Printf.sprintf
      "{\"items\":%d,\"domains\":%d,\"domains_used\":%d,\"hardware_cores\":%d,\
       \"reps\":%d,\"sequential_s\":%.6f,\"parallel_s\":%.6f,\
       \"sequential_items_per_s\":%.2f,\"parallel_items_per_s\":%.2f,\
       \"speedup\":%.4f,\"speedup_gate\":%.2f,\"gate_met\":%b,\
       \"speedup_meaningful\":%b,\"payloads_identical\":%b,\
       \"trace_signature_identical\":%b,\"exec_pushes\":%d,\
       \"exec_steals\":%d,\"exec_parks\":%d}\n"
      items domains domains hardware_cores reps !seq_best !par_best
      (rate !seq_best) (rate !par_best) speedup speedup_gate gate_met
      speedup_meaningful !payloads_identical trace_signature_identical
      exec_pushes exec_steals exec_parks
  in
  Out_channel.with_open_text "BENCH_campaign.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_campaign.json\n";
  assert !payloads_identical;
  assert trace_signature_identical;
  assert gate_met

(* ---------- serve: solver-as-a-service daemon ---------- *)

let exp_serve ?(mode = `Run) () =
  banner "serve" "solver-as-a-service daemon (crs-serve/1)"
    "dynamic arrivals (closed-loop, Poisson, bursty — the workload shapes of \
     dynamic vs batch scheduling) against a long-running daemon, then the \
     concurrent frontend: interleaved connections must answer byte-identically \
     to a single-connection run";
  let module S = Crs_serve.Server in
  let module L = Crs_serve.Loadgen in
  let module P = Crs_serve.Protocol in
  let module J = Crs_util.Stable_json in
  let closed_n, poisson_n, bursty_n, conns, multi_n, ident_per_conn =
    match mode with
    | `Run -> (400, 300, 300, 4, 400, 25)
    | `Smoke -> (40, 20, 20, 2, 24, 6)
  in
  (* Queue sized above the identity pass's worst case (4 connections x
     25 pipelined solves all admitted at once). *)
  let config =
    {
      S.default_config with
      S.workers = 2;
      queue = 128;
      cache_capacity = 128;
      default_fuel = Some 5_000_000;
      drain_grace_s = 0.2;
    }
  in
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server = S.create config in
  let daemon =
    Domain.spawn (fun () ->
        S.serve_io server ~input:server_fd ~output:server_fd;
        S.drain server)
  in
  let client = L.Client.of_fd client_fd in
  (* Eight distinct m=3 instances, cycled — a repeated-instance workload
     where all but the first occurrence of each should hit the cache. *)
  let gen_spec =
    { Crs_generators.Random_gen.default_spec with m = 3; jobs_min = 3; jobs_max = 3 }
  in
  let instances =
    Array.init 8 (fun i ->
        Crs_generators.Random_gen.instance ~spec:gen_spec
          (Random.State.make [| 100 + i |]))
  in
  let solve_line instance =
    J.obj
      [
        ("proto", J.str P.version);
        ("kind", J.str "solve");
        ("instance", J.str (Instance.to_string instance));
        ("algorithm", J.str R.Names.greedy_balance);
      ]
  in
  let workload n = List.init n (fun i -> solve_line instances.(i mod 8)) in
  let closed = L.run client ~arrival:L.Closed_loop ~requests:(workload closed_n) in
  let poisson =
    L.run ~seed:2 client ~arrival:(L.Poisson { rate = 2000.0 })
      ~requests:(workload poisson_n)
  in
  let bursty =
    L.run ~seed:3 client ~arrival:(L.Bursty { burst = 20; rate = 50.0 })
      ~requests:(workload bursty_n)
  in
  (* Canonical equivalence: a processor permutation and a zero-padded
     variant of the same instance must get byte-identical responses. *)
  let base = instances.(0) in
  let permuted = Instance.sub_processors base [ 2; 1; 0 ] in
  let padded = Crs_fuzz.Oracle.zero_pad_instance base in
  let r_base = L.Client.rpc client (solve_line base) in
  let r_perm = L.Client.rpc client (solve_line permuted) in
  let r_pad = L.Client.rpc client (solve_line padded) in
  let byte_identical = String.equal r_base r_perm && String.equal r_base r_pad in
  let stats_line =
    J.obj [ ("proto", J.str P.version); ("kind", J.str "stats") ]
  in
  let hello_line =
    J.obj [ ("proto", J.str P.version); ("kind", J.str "hello") ]
  in
  (* hello seeds the control histogram; the first stats request seeds the
     stats histogram (a request's latency lands after its own response is
     assembled), so the SECOND stats response carries a sample for every
     kind this workload exercised. *)
  ignore (L.Client.rpc client hello_line);
  ignore (L.Client.rpc client stats_line);
  let stats_json =
    match J.parse (L.Client.rpc client stats_line) with
    | Ok v -> v
    | Error msg -> failwith ("serve stats response unparseable: " ^ msg)
  in
  let cache_int field =
    match Option.bind (J.member "cache" stats_json) (J.member field) with
    | Some (J.Int i) -> i
    | _ -> failwith ("serve stats: missing cache." ^ field)
  in
  let lat_int kind field =
    match
      Option.bind (J.member "latency" stats_json) (fun l ->
          Option.bind (J.member kind l) (J.member field))
    with
    | Some (J.Int i) -> i
    | _ -> failwith (Printf.sprintf "serve stats: missing latency.%s.%s" kind field)
  in
  let hits = cache_int "hits" and misses = cache_int "misses" in
  let hit_rate = float_of_int hits /. Float.max 1.0 (float_of_int (hits + misses)) in
  let shutdown_line =
    J.obj [ ("proto", J.str P.version); ("kind", J.str "shutdown") ]
  in
  ignore (L.Client.rpc client shutdown_line);
  Domain.join daemon;
  Unix.close client_fd;
  Unix.close server_fd;
  (* ---- phase 2: the concurrent frontend ---- *)
  (* A fresh server driven through Server.attach over socketpairs — the
     exact reader path the accept loop uses, minus the listener. The
     cache is prewarmed by computing the goldens, so the concurrent run
     is all hits and the responses are the canonical bytes. *)
  let server2 = S.create config in
  let golden = Array.map (fun i -> S.handle_line server2 (solve_line i)) instances in
  let conn_fds =
    Array.init conns (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let readers =
    Array.map
      (fun (sfd, _) ->
        match S.attach server2 sfd with
        | Some th -> th
        | None -> failwith "serve bench: connection refused below max-conns")
      conn_fds
  in
  let clients = Array.map (fun (_, cfd) -> L.Client.of_fd cfd) conn_fds in
  let multi =
    L.run_multi ~seed:5 clients ~arrival:L.Closed_loop ~requests:(workload multi_n)
  in
  (* Interleaved byte-identity: every connection pipelines its whole
     slice in one write (maximal interleaving on the server), then reads
     back positionally; each response must equal the single-connection
     golden for its instance. *)
  let ident_failures = Atomic.make 0 in
  let ident_threads =
    Array.mapi
      (fun c cl ->
        Thread.create
          (fun () ->
            let ks = List.init ident_per_conn (fun j -> (c + j) mod 8) in
            List.iter
              (fun k -> L.Client.send_line cl (solve_line instances.(k)))
              ks;
            List.iter
              (fun k ->
                match L.Client.recv_line cl with
                | Some r when String.equal r golden.(k) -> ()
                | _ -> Atomic.incr ident_failures)
              ks)
          ())
      clients
  in
  Array.iter Thread.join ident_threads;
  let concurrent_byte_identical = Atomic.get ident_failures = 0 in
  let stats2_json =
    match J.parse (J.obj (S.stats_payload server2)) with
    | Ok v -> v
    | Error msg -> failwith ("serve stats payload unparseable: " ^ msg)
  in
  let conn_int field =
    match Option.bind (J.member "connections" stats2_json) (J.member field) with
    | Some (J.Int i) -> i
    | _ -> failwith ("serve stats: missing connections." ^ field)
  in
  let accepted = conn_int "accepted" and refused = conn_int "refused" in
  ignore (L.Client.rpc clients.(0) shutdown_line);
  Array.iter Thread.join readers;
  Array.iter
    (fun (_, cfd) -> try Unix.close cfd with Unix.Unix_error _ -> ())
    conn_fds;
  S.drain server2;
  (* ---- phase 3: the sharded tier ---- *)
  (* The balancer in-process, the shards as real `crsched serve`
     subprocesses — the full `crsched balance` data path minus only the
     public listener. Cold tier: a corpus hit-rate window, closed-loop
     throughput across connections, byte-identity against the phase-2
     single-process goldens (the sharding guarantee), and — in full
     runs — a kill -9 restart under load with exact accounting. The
     drain snapshots every shard's warm state; a second tier on the
     same state must replay it and beat the cold hit rate. *)
  let module B = Crs_serve.Balancer in
  let crsched_exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "crsched.exe"))
  in
  let shards3 = match mode with `Run -> 3 | `Smoke -> 2 in
  let corpus_passes = match mode with `Run -> 5 | `Smoke -> 2 in
  let kill_reqs = match mode with `Run -> 200 | `Smoke -> 0 in
  let fresh_dir name =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "crs-bench-%s-%d" name (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir
  in
  let rec rm_rf path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> (try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let socket_dir = fresh_dir "shards" in
  let warm_dir = fresh_dir "warm" in
  let shard_argv ~index ~socket =
    [|
      crsched_exe; "serve"; "--listen"; "unix:" ^ socket; "--workers"; "1";
      "--queue"; "128"; "--cache"; "128"; "--warm-state"; warm_dir;
      "--warm-id"; Printf.sprintf "shard-%d" index;
    |]
  in
  let tier_cfg =
    {
      (B.default_config ~shards:shards3 ~socket_dir ~shard_argv) with
      B.health_interval_s = 0.5;
      restart_backoff_s = 0.05;
      drain_grace_s = 0.2;
    }
  in
  let with_tier f =
    match B.create tier_cfg with
    | Error msg -> failwith ("serve bench: " ^ msg)
    | Ok t -> Fun.protect ~finally:(fun () -> B.drain t) (fun () -> f t)
  in
  let open_tier_conn t =
    let bfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Without close-on-exec, a respawned shard would inherit the client
       end and the reader would never see EOF. *)
    Unix.set_close_on_exec cfd;
    match B.attach t bfd with
    | Some reader -> (cfd, L.Client.of_fd cfd, reader)
    | None -> failwith "serve bench: balancer refused a connection"
  in
  let close_tier_conn (cfd, _, reader) =
    (try Unix.close cfd with Unix.Unix_error _ -> ());
    Thread.join reader
  in
  let tier_stat t path =
    match J.parse (J.obj (B.stats_payload t)) with
    | Error msg -> failwith ("balancer stats unparseable: " ^ msg)
    | Ok json -> (
      let rec walk json = function
        | [] -> Some json
        | k :: rest -> (
          match (json, int_of_string_opt k) with
          | J.List items, Some i when i >= 0 && i < List.length items ->
            walk (List.nth items i) rest
          | _ -> Option.bind (J.member k json) (fun j -> walk j rest))
      in
      match walk json path with
      | Some (J.Int v) -> v
      | _ -> failwith ("balancer stats lack " ^ String.concat "." path))
  in
  (* Hit rate over a bounded request window (stat deltas), not lifetime
     counters — warm replay itself counts as misses on the shard, which
     is exactly the cost warming moves off the request path. *)
  let hit_window t f =
    let h0 = tier_stat t [ "cache"; "hits" ]
    and m0 = tier_stat t [ "cache"; "misses" ] in
    f ();
    let dh = tier_stat t [ "cache"; "hits" ] - h0
    and dm = tier_stat t [ "cache"; "misses" ] - m0 in
    float_of_int dh /. Float.max 1.0 (float_of_int (dh + dm))
  in
  let corpus = List.init (corpus_passes * 8) (fun i -> i mod 8) in
  let sharded_ident_failures = ref 0 in
  let cold_hit_rate = ref 0.0 in
  let sharded = ref None in
  let restart_ok = ref (kill_reqs = 0) in
  let restart_refused = ref 0 in
  let restart_restarts = ref 0 in
  let accounting_ok = ref false in
  with_tier (fun t ->
      let conns3 = Array.init conns (fun _ -> open_tier_conn t) in
      Fun.protect
        ~finally:(fun () -> Array.iter close_tier_conn conns3)
        (fun () ->
          let _, c0, _ = conns3.(0) in
          cold_hit_rate :=
            hit_window t (fun () ->
                List.iter
                  (fun k ->
                    ignore (L.Client.rpc c0 (solve_line instances.(k))))
                  corpus);
          Array.iteri
            (fun k i ->
              let m = Instance.m i in
              let permuted =
                Instance.sub_processors i (List.init m (fun j -> m - 1 - j))
              in
              let padded = Crs_fuzz.Oracle.zero_pad_instance i in
              List.iter
                (fun v ->
                  if
                    not
                      (String.equal golden.(k)
                         (L.Client.rpc c0 (solve_line v)))
                  then incr sharded_ident_failures)
                [ i; permuted; padded ])
            instances;
          let clients3 = Array.map (fun (_, c, _) -> c) conns3 in
          sharded :=
            Some
              (L.run_multi ~seed:7 clients3 ~arrival:L.Closed_loop
                 ~requests:(workload multi_n));
          if kill_reqs > 0 then begin
            let statuses = Array.make kill_reqs "?" in
            let driver =
              Thread.create
                (fun () ->
                  for i = 0 to kill_reqs - 1 do
                    let r = L.Client.rpc c0 (solve_line instances.(i mod 8)) in
                    statuses.(i) <-
                      (match J.parse r with
                      | Ok j -> (
                        match J.member "status" j with
                        | Some (J.Str s) -> s
                        | _ -> "?")
                      | Error _ -> "?")
                  done)
                ()
            in
            Thread.delay 0.01;
            let victim = (B.shard_pids t).(0) in
            if victim > 0 then Unix.kill victim Sys.sigkill;
            Thread.join driver;
            (* The tier must answer ok again for a key routed to the
               killed shard — proof the monitor brought it back. *)
            let routed0 =
              Array.to_list instances
              |> List.find_opt (fun i ->
                     B.route ~shards:shards3 (Crs_serve.Canon.key i) = 0)
            in
            let recovered =
              match routed0 with
              | None -> true
              | Some i ->
                let rec go n =
                  n > 0
                  &&
                  match
                    J.parse (L.Client.rpc c0 (solve_line i))
                    |> Result.to_option
                    |> Fun.flip Option.bind (J.member "status")
                  with
                  | Some (J.Str "ok") -> true
                  | _ ->
                    Thread.delay 0.01;
                    go (n - 1)
                in
                go 400
            in
            let count s =
              Array.fold_left
                (fun acc x -> if String.equal x s then acc + 1 else acc)
                0 statuses
            in
            restart_refused := count "overloaded";
            restart_ok :=
              recovered && count "ok" + !restart_refused = kill_reqs;
            (* The kill wiped the victim's cache; one full corpus pass
               repopulates it so the drain snapshot (and the warm gate)
               covers all eight keys again. *)
            Array.iter
              (fun i -> ignore (L.Client.rpc c0 (solve_line i)))
              instances
          end;
          accounting_ok :=
            tier_stat t [ "balancer"; "accepted" ]
            = tier_stat t [ "balancer"; "answered" ]
              + tier_stat t [ "balancer"; "refused" ];
          restart_restarts := tier_stat t [ "balancer"; "restarts" ]));
  let warm_hit_rate = ref 0.0 in
  let warm_replayed = ref 0 in
  with_tier (fun t ->
      for s = 0 to shards3 - 1 do
        warm_replayed :=
          !warm_replayed
          + tier_stat t
              [ "balancer"; "shard"; string_of_int s; "warm"; "replayed" ]
      done;
      let conn = open_tier_conn t in
      Fun.protect
        ~finally:(fun () -> close_tier_conn conn)
        (fun () ->
          let _, c, _ = conn in
          warm_hit_rate :=
            hit_window t (fun () ->
                List.iter
                  (fun k ->
                    if
                      not
                        (String.equal golden.(k)
                           (L.Client.rpc c (solve_line instances.(k))))
                    then incr sharded_ident_failures)
                  corpus)));
  rm_rf socket_dir;
  rm_rf warm_dir;
  let sharded =
    match !sharded with Some s -> s | None -> failwith "sharded stats missing"
  in
  let row name (s : L.stats) =
    [
      name; string_of_int s.L.sent; string_of_int s.L.received;
      Printf.sprintf "%.0f" s.L.throughput_rps;
      Printf.sprintf "%.3f" s.L.p50_ms; Printf.sprintf "%.3f" s.L.p99_ms;
    ]
  in
  print_string
    (T.render
       ~header:[ "arrival"; "sent"; "recv"; "req/s"; "p50 ms"; "p99 ms" ]
       [ row "closed-loop" closed; row "poisson(2000/s)" poisson;
         row "bursty(20@50/s)" bursty;
         row (Printf.sprintf "multi-conn(%d)" conns) multi;
         row (Printf.sprintf "sharded(%d)" shards3) sharded ]);
  Printf.printf
    "sharded tier: cold hit rate %.3f, warm hit rate %.3f (replayed %d), \
     restarts %d, refused during outage %d\n"
    !cold_hit_rate !warm_hit_rate !warm_replayed !restart_restarts
    !restart_refused;
  Printf.printf "cache: %d hits / %d misses (hit rate %.3f)\n" hits misses
    hit_rate;
  Printf.printf "canonical equivalence responses byte-identical: %b\n"
    byte_identical;
  Printf.printf
    "concurrent responses byte-identical to single-connection goldens: %b\n"
    concurrent_byte_identical;
  let lat_kinds = [ "solve"; "campaign"; "stats"; "control" ] in
  List.iter
    (fun kind ->
      Printf.printf "latency.%s: count %d, p50 <= %d us, p99 <= %d us, max %d us\n"
        kind (lat_int kind "count") (lat_int kind "p50_us")
        (lat_int kind "p99_us") (lat_int kind "max_us"))
    lat_kinds;
  Printf.printf "connections: %d accepted, %d refused\n" accepted refused;
  let complete (s : L.stats) = s.L.received = s.L.sent && s.L.sent > 0 in
  let worst_p99 = Float.max closed.L.p99_ms (Float.max poisson.L.p99_ms bursty.L.p99_ms) in
  let gate_cache = hit_rate > 0.0 in
  let gate_complete =
    complete closed && complete poisson && complete bursty && complete multi
  in
  let gate_accounting = accepted = conns && refused = 0 in
  (* Per-kind server-side p99 (log2 bucket upper edge, so the gate is a
     power of two): 2^18 us ~ 262 ms, in line with the 250 ms
     client-side gate. Campaign saw no traffic here; gate the kinds the
     workload exercised. *)
  let p99_gate_us = 262144 in
  let gated_kinds = [ "solve"; "stats"; "control" ] in
  let gate_per_kind_p99 =
    List.for_all
      (fun kind ->
        lat_int kind "count" > 0 && lat_int kind "p99_us" <= p99_gate_us)
      gated_kinds
  in
  let gate_throughput = closed.L.throughput_rps >= 200.0 in
  (* The multi-connection gate is conservative: this box may be a single
     core, so concurrency buys interleaving, not parallel solving. *)
  let gate_multi_throughput = multi.L.throughput_rps >= 150.0 in
  let gate_p99 = worst_p99 <= 250.0 in
  (* Sharded-tier gates. The throughput floor matches the multi-conn
     gate: fanning out across worker processes must not cost the tier
     its single-process concurrency floor. *)
  let sharded_byte_identical = !sharded_ident_failures = 0 in
  let gate_sharded_throughput = sharded.L.throughput_rps >= 150.0 in
  let gate_sharded_complete = complete sharded in
  let gate_warm = !warm_replayed >= 8 && !warm_hit_rate > !cold_hit_rate in
  let gate_restart =
    !restart_ok && !accounting_ok && (kill_reqs = 0 || !restart_restarts >= 1)
  in
  (match mode with
  | `Smoke ->
    Printf.printf
      "smoke run: timings carry no signal, timing gates not judged \
       (correctness asserts still run)\n";
    assert gate_complete;
    assert gate_cache;
    assert byte_identical;
    assert concurrent_byte_identical;
    assert gate_accounting;
    assert gate_sharded_complete;
    assert sharded_byte_identical;
    assert gate_warm;
    assert gate_restart
  | `Run ->
    Printf.printf
      "gates: throughput>=200rps %b, multi_conn>=150rps %b, p99<=250ms %b \
       (worst %.3f), per_kind_p99<=%dus %b, hit_rate>0 %b, all_answered %b, \
       byte_identical %b, concurrent_byte_identical %b, accounting %b\n"
      gate_throughput gate_multi_throughput gate_p99 worst_p99 p99_gate_us
      gate_per_kind_p99 gate_cache gate_complete byte_identical
      concurrent_byte_identical gate_accounting;
    Printf.printf
      "gates: sharded_throughput>=150rps %b, sharded_byte_identical %b, \
       warm_hit_rate>cold %b (%.3f > %.3f), restart_accounting %b\n"
      gate_sharded_throughput sharded_byte_identical gate_warm !warm_hit_rate
      !cold_hit_rate gate_restart;
    let stats_obj (s : L.stats) =
      J.obj
        [
          ("sent", J.int s.L.sent);
          ("received", J.int s.L.received);
          ("throughput_rps", J.float s.L.throughput_rps);
          ("p50_ms", J.float s.L.p50_ms);
          ("p99_ms", J.float s.L.p99_ms);
          ("max_ms", J.float s.L.max_ms);
        ]
    in
    let lat_obj kind =
      J.obj
        [
          ("count", J.int (lat_int kind "count"));
          ("p50_us", J.int (lat_int kind "p50_us"));
          ("p99_us", J.int (lat_int kind "p99_us"));
          ("max_us", J.int (lat_int kind "max_us"));
        ]
    in
    let json =
      J.obj
        [
          ("closed_loop", stats_obj closed);
          ("poisson", stats_obj poisson);
          ("bursty", stats_obj bursty);
          ( "multi_conn",
            J.obj
              [
                ("conns", J.int conns);
                ("sent", J.int multi.L.sent);
                ("received", J.int multi.L.received);
                ("throughput_rps", J.float multi.L.throughput_rps);
                ("p50_ms", J.float multi.L.p50_ms);
                ("p99_ms", J.float multi.L.p99_ms);
                ("byte_identical", J.bool concurrent_byte_identical);
              ] );
          ( "latency_us",
            J.obj (List.map (fun kind -> (kind, lat_obj kind)) lat_kinds) );
          ( "connections",
            J.obj [ ("accepted", J.int accepted); ("refused", J.int refused) ]
          );
          ( "cache",
            J.obj
              [
                ("hits", J.int hits);
                ("misses", J.int misses);
                ("hit_rate", J.float hit_rate);
              ] );
          ("byte_identical", J.bool byte_identical);
          ( "sharded",
            J.obj
              [
                ("shards", J.int shards3);
                ("sent", J.int sharded.L.sent);
                ("received", J.int sharded.L.received);
                ("throughput_rps", J.float sharded.L.throughput_rps);
                ("p50_ms", J.float sharded.L.p50_ms);
                ("p99_ms", J.float sharded.L.p99_ms);
                ("cold_hit_rate", J.float !cold_hit_rate);
                ("warm_hit_rate", J.float !warm_hit_rate);
                ("warm_replayed", J.int !warm_replayed);
                ("restarts", J.int !restart_restarts);
                ("refused_during_outage", J.int !restart_refused);
                ("byte_identical", J.bool sharded_byte_identical);
              ] );
          ( "gates",
            J.obj
              [
                ("throughput", J.bool gate_throughput);
                ("multi_conn_throughput", J.bool gate_multi_throughput);
                ("p99", J.bool gate_p99);
                ("per_kind_p99", J.bool gate_per_kind_p99);
                ("cache_hit_rate", J.bool gate_cache);
                ("all_answered", J.bool gate_complete);
                ("byte_identical", J.bool byte_identical);
                ("concurrent_byte_identical", J.bool concurrent_byte_identical);
                ("conn_accounting", J.bool gate_accounting);
                ("sharded_throughput", J.bool gate_sharded_throughput);
                ("sharded_byte_identical", J.bool sharded_byte_identical);
                ("warm_hit_rate_gt_cold", J.bool gate_warm);
                ("restart_accounting", J.bool gate_restart);
              ] );
        ]
    in
    Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
        Out_channel.output_string oc (json ^ "\n"));
    Printf.printf "wrote BENCH_serve.json\n";
    assert (gate_throughput && gate_multi_throughput && gate_p99
            && gate_per_kind_p99 && gate_cache && gate_complete
            && byte_identical && concurrent_byte_identical && gate_accounting
            && gate_sharded_throughput && gate_sharded_complete
            && sharded_byte_identical && gate_warm && gate_restart))

(* ---------- registry: dispatch overhead ---------- *)

let exp_registry ?(mode = `Run) () =
  banner "registry" "solver-registry dispatch overhead"
    "capability-checked registry dispatch costs <= 5% over calling Opt_two directly";
  let solver = R.find_exn R.Names.opt_two in
  (* min over repetitions: robust against scheduler noise. *)
  let time_min ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let sizes, reps =
    match mode with `Run -> ([ 50; 100; 200; 400 ], 7) | `Smoke -> ([ 20; 40 ], 2)
  in
  let total_direct = ref 0.0 and total_via = ref 0.0 in
  let rows =
    List.map
      (fun n ->
        let instance = A.round_robin_family ~n in
        (* Both sides do the full solve including witness replay, so the
           measured gap is exactly the registry layer: the find +
           capability check + counters/fuel bookkeeping. *)
        ignore (Crs_algorithms.Opt_two.solve instance) (* warm-up *);
        let direct =
          time_min ~reps (fun () ->
              (Crs_algorithms.Opt_two.solve instance).Crs_algorithms.Opt_two.makespan)
        in
        let via = time_min ~reps (fun () -> (R.solve solver instance).R.makespan) in
        assert (
          (Crs_algorithms.Opt_two.solve instance).Crs_algorithms.Opt_two.makespan
          = (R.solve solver instance).R.makespan);
        total_direct := !total_direct +. direct;
        total_via := !total_via +. via;
        [
          string_of_int n;
          Printf.sprintf "%.3f" (direct *. 1000.);
          Printf.sprintf "%.3f" (via *. 1000.);
          Printf.sprintf "%+.2f%%" ((via -. direct) /. direct *. 100.);
        ])
      sizes
  in
  print_string
    (T.render ~header:[ "n (Fig. 3 family)"; "direct ms"; "registry ms"; "overhead" ] rows);
  let overhead_pct = (!total_via -. !total_direct) /. !total_direct *. 100. in
  let budget_pct = 5.0 in
  Printf.printf "aggregate dispatch overhead %+.2f%% (budget %.1f%%)\n" overhead_pct
    budget_pct;
  match mode with
  | `Smoke -> Printf.printf "smoke run: timings carry no signal, budget not judged\n"
  | `Run ->
    let json =
      Printf.sprintf
        "{\"sizes\":[%s],\"reps\":%d,\"direct_s\":%.6f,\"registry_s\":%.6f,\
         \"overhead_pct\":%.4f,\"budget_pct\":%.1f,\"within_budget\":%b}\n"
        (String.concat "," (List.map string_of_int sizes))
        reps !total_direct !total_via overhead_pct budget_pct
        (overhead_pct <= budget_pct)
    in
    Out_channel.with_open_text "BENCH_registry.json" (fun oc ->
        Out_channel.output_string oc json);
    Printf.printf "wrote BENCH_registry.json\n";
    assert (overhead_pct <= budget_pct)

(* ---------- fuzz: certifier throughput + gate ---------- *)

let exp_fuzz () =
  banner "fuzz" "independent schedule-certifier throughput"
    "Certify.check re-validates every greedy-balance witness from scratch";
  let spec = { Crs_campaign.Spec.default with m = 4; n = 6; granularity = 12 } in
  let count = 200 in
  let solver = R.find_exn R.Names.greedy_balance in
  let witnesses =
    Array.init count (fun i ->
        let instance = Crs_campaign.Spec.instance spec ~seed:(i + 1) in
        let out = R.solve solver instance in
        match out.R.schedule with
        | Some s -> (instance, s, out.R.makespan)
        | None -> failwith "greedy-balance returned no witness")
  in
  let certify_all () =
    Array.for_all
      (fun (instance, s, claimed) ->
        match Crs_fuzz.Certify.check instance s ~claimed with
        | Ok _ -> true
        | Error _ -> false)
      witnesses
  in
  ignore (certify_all ()) (* warm-up *);
  let rounds = 5 in
  let all_certified = ref true in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    all_certified := certify_all () && !all_certified
  done;
  let certify_s = Unix.gettimeofday () -. t0 in
  let certified = count * rounds in
  let certified_per_s = float_of_int certified /. certify_s in
  Printf.printf
    "certified %d witnesses (%d instances x %d rounds) in %.3fs: %.0f/s, all_certified=%b\n"
    certified count rounds certify_s certified_per_s !all_certified;
  let json =
    Printf.sprintf
      "{\"instances\":%d,\"rounds\":%d,\"certify_s\":%.6f,\
       \"certified_per_s\":%.1f,\"all_certified\":%b}\n"
      count rounds certify_s certified_per_s !all_certified
  in
  Out_channel.with_open_text "BENCH_fuzz.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "wrote BENCH_fuzz.json\n";
  assert !all_certified

(* ---------- num: number-layer throughput + gate ---------- *)

(* Minimal field extractor for the flat one-line JSON files this harness
   writes; no JSON dependency is installed. *)
let json_number_field text key =
  let needle = "\"" ^ key ^ "\":" in
  let n = String.length text and m = String.length ("\"" ^ key ^ "\":") in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub text i m) needle then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < n
      &&
      match text.[!stop] with
      | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
      | _ -> false
    do
      incr stop
    done;
    if !stop = start then None
    else float_of_string_opt (String.sub text start (!stop - start))

let num_baseline_path = "data/num_baseline.json"

(* The per-op loops run on paper-style operands: requirement-sized
   fractions with denominators <= 12, i.e. the small tier once the
   two-tier representation lands. *)
let num_measure () =
  let pool_size = 1024 in
  let pool =
    Array.init pool_size (fun i -> Q.of_ints ((i mod 23) - 11) ((i mod 12) + 1))
  in
  let per_op name iters f =
    (* Start every timed section from a compacted heap: the sections
       differ wildly in allocation profile, and inherited GC state
       otherwise skews later sections by 2x. *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for k = 0 to iters - 1 do
      ignore (Sys.opaque_identity (f pool.(k land 1023) pool.((k * 7 + 3) land 1023)))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (name, dt /. float_of_int iters *. 1e9)
  in
  let time_min ~reps f =
    Gc.compact ();
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let ops =
    [
      per_op "add" 1_000_000 Q.add;
      per_op "mul" 1_000_000 Q.mul;
      per_op "compare" 1_000_000 (fun a b -> Q.of_int (Q.compare a b));
      ( "sum500",
        (Gc.compact ();
         let t0 = Unix.gettimeofday () in
         for _ = 1 to 20 do
           ignore
             (Sys.opaque_identity
                (Q.sum (List.init 500 (fun i -> Q.of_ints 1 (i + 1)))))
         done;
         (Unix.gettimeofday () -. t0) /. 20. *. 1e9) );
    ]
  in
  let opt_two_n = 1200 in
  let fig3_big = A.round_robin_family ~n:opt_two_n in
  ignore (Crs_algorithms.Opt_two.makespan fig3_big) (* warm-up *);
  let opt_two_s =
    time_min ~reps:3 (fun () -> Crs_algorithms.Opt_two.makespan fig3_big)
  in
  let brute_n = 800 in
  let fig3_small = A.round_robin_family ~n:brute_n in
  let brute_s =
    time_min ~reps:3 (fun () ->
        Crs_algorithms.Brute_force.makespan ~node_limit:20_000_000 fig3_small)
  in
  (ops, opt_two_n, opt_two_s, brute_n, brute_s)

let num_json ops opt_two_n opt_two_s brute_n brute_s =
  Printf.sprintf
    "{%s,\"opt_two_n\":%d,\"opt_two_s\":%.6f,\"brute_n\":%d,\"brute_s\":%.6f}"
    (String.concat ","
       (List.map (fun (name, ns) -> Printf.sprintf "\"%s_ns\":%.2f" name ns) ops))
    opt_two_n opt_two_s brute_n brute_s

let exp_num ?(mode = `Run) () =
  banner "num" "exact-rational number layer (two-tier small/bigint fast path)"
    "no measured claim; gate: >= 2x end-to-end Opt_two on the Figure-3 family \
     vs the pre-change baseline, exactness pinned by a differential suite";
  match mode with
  | `Check ->
    let t0 = Unix.gettimeofday () in
    let outcome = Crs_num.Check.run ~ops:10_000 ~seed:2024 () in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "differential check: %s in %.3fs (budget 1s)\n"
      (Crs_num.Check.describe outcome) dt;
    if not (Crs_num.Check.ok outcome) || dt >= 1.0 then exit 1
  | (`Record | `Run) as mode -> (
    let ops, opt_two_n, opt_two_s, brute_n, brute_s = num_measure () in
    print_string
      (T.render
         ~header:[ "operation"; "ns/op (small operands)" ]
         (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) ops));
    Printf.printf "end-to-end: opt_two fig3 n=%d %.3fs | brute_force fig3 n=%d %.3fs\n"
      opt_two_n opt_two_s brute_n brute_s;
    match mode with
    | `Record ->
      Out_channel.with_open_text num_baseline_path (fun oc ->
          Out_channel.output_string oc
            (num_json ops opt_two_n opt_two_s brute_n brute_s ^ "\n"));
      Printf.printf "recorded pre-change baseline to %s\n" num_baseline_path
    | `Run ->
      let outcome = Crs_num.Check.run ~ops:10_000 ~seed:2024 () in
      Printf.printf "differential check: %s\n" (Crs_num.Check.describe outcome);
      let baseline =
        In_channel.with_open_text num_baseline_path In_channel.input_all
      in
      let field key =
        match json_number_field baseline key with
        | Some v -> v
        | None -> failwith (Printf.sprintf "%s: missing %s" num_baseline_path key)
      in
      let b_opt_two = field "opt_two_s" and b_brute = field "brute_s" in
      let opt_two_speedup = b_opt_two /. Float.max opt_two_s 1e-9 in
      let brute_speedup = b_brute /. Float.max brute_s 1e-9 in
      let gate = 2.0 in
      let gate_met = opt_two_speedup >= gate in
      let op_line (name, ns) =
        let base = field (name ^ "_ns") in
        Printf.sprintf
          "\"%s\":{\"now_ns\":%.2f,\"baseline_ns\":%.2f,\"speedup\":%.2f}" name ns
          base (base /. Float.max ns 1e-9)
      in
      let json =
        Printf.sprintf
          "{\"ops\":{%s},\"opt_two_n\":%.0f,\"opt_two_s\":%.6f,\
           \"opt_two_baseline_s\":%.6f,\"opt_two_speedup\":%.4f,\"brute_n\":%.0f,\
           \"brute_s\":%.6f,\"brute_baseline_s\":%.6f,\"brute_speedup\":%.4f,\
           \"differential_ops\":%d,\"differential_ok\":%b,\"gate\":%.1f,\
           \"gate_met\":%b}\n"
          (String.concat "," (List.map op_line ops))
          (field "opt_two_n") opt_two_s b_opt_two opt_two_speedup (field "brute_n")
          brute_s b_brute brute_speedup outcome.Crs_num.Check.ops
          (Crs_num.Check.ok outcome) gate gate_met
      in
      Out_channel.with_open_text "BENCH_num.json" (fun oc ->
          Out_channel.output_string oc json);
      Printf.printf
        "speedup vs pre-change baseline: opt_two %.2fx, brute_force %.2fx (gate \
         %.1fx on opt_two: %s)\n"
        opt_two_speedup brute_speedup gate
        (if gate_met then "met" else "NOT MET");
      Printf.printf "wrote BENCH_num.json\n";
      assert (Crs_num.Check.ok outcome);
      assert gate_met)

(* ---------- obs: tracing-overhead gate ---------- *)

(* The gate compares Crs_algorithms.Opt_two (profiling hooks compiled
   in, tracing/metrics disabled) against Opt_two_unhooked, a frozen
   pre-instrumentation snapshot of the same DP vendored into this
   binary. Both run in the SAME process with rep-interleaved timing, so
   machine-speed drift — which moves wall AND CPU-time minima several
   percent between processes on shared hardware, far above the 2% bound
   being checked — hits both sides identically and cancels out of the
   ratio. Per-rep CPU time keeps scheduler noise out of the minima. *)
let obs_measure ?(opt_two_n = 1200) ?(reps = 30) ?(warmups = 8) () =
  let cpu_s f =
    (* Start every timed call from the same GC state: otherwise the
       major slices owed by the PREVIOUS call land inside this one and
       per-rep times swing by several percent. *)
    Gc.full_major ();
    let t0 = Crs_obs.Clock.cputime_ns () in
    ignore (Sys.opaque_identity (f ()));
    Int64.to_float (Int64.sub (Crs_obs.Clock.cputime_ns ()) t0) /. 1e9
  in
  let fig3 = A.round_robin_family ~n:opt_two_n in
  let hooked () = Crs_algorithms.Opt_two.makespan fig3 in
  let unhooked () = Opt_two_unhooked.makespan fig3 in
  Crs_obs.Trace.set_enabled false;
  Crs_obs.Metrics.set_enabled false;
  (* Throwaway pass first: the first dozen solves in a process run
     10-15% slower while the heap sizes itself, so every retained rep
     sits in the stable late-process position. *)
  for _ = 1 to warmups do
    ignore (cpu_s hooked);
    ignore (cpu_s unhooked)
  done;
  (* Paired reps: each rep times both variants back-to-back (order
     alternating, so GC pacing and slow phases hit both positions
     equally) and contributes one hooked/unhooked ratio. The gate uses
     the MEDIAN ratio — a slow co-tenant phase or major-GC slice skews
     individual reps but moves paired ratios only when it lands between
     the two halves of a pair, and the median discards those reps. *)
  let ratios = Array.make reps 0.0 in
  let baseline_s = ref infinity and disabled_s = ref infinity in
  Gc.compact ();
  for i = 0 to reps - 1 do
    let b, d =
      if i land 1 = 0 then
        let b = cpu_s unhooked in
        (b, cpu_s hooked)
      else
        let d = cpu_s hooked in
        (cpu_s unhooked, d)
    in
    if b < !baseline_s then baseline_s := b;
    if d < !disabled_s then disabled_s := d;
    ratios.(i) <- d /. Float.max b 1e-9
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  in
  let disabled_ratio = median ratios in
  Crs_obs.Trace.set_enabled true;
  Crs_obs.Metrics.set_enabled true;
  let enabled_s = ref infinity in
  let eratios = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    Crs_obs.Trace.reset ();
    let b, e =
      if i land 1 = 0 then begin
        Crs_obs.Trace.set_enabled false;
        let b = cpu_s unhooked in
        Crs_obs.Trace.set_enabled true;
        (b, cpu_s hooked)
      end
      else
        let e = cpu_s hooked in
        Crs_obs.Trace.set_enabled false;
        let b = cpu_s unhooked in
        Crs_obs.Trace.set_enabled true;
        (b, e)
    in
    if e < !enabled_s then enabled_s := e;
    eratios.(i) <- e /. Float.max b 1e-9
  done;
  let enabled_ratio = median eratios in
  Crs_obs.Trace.reset ();
  ignore (cpu_s hooked);
  let spans = List.length (Crs_obs.Trace.spans ()) in
  Crs_obs.Trace.set_enabled false;
  Crs_obs.Metrics.set_enabled false;
  Crs_obs.Trace.reset ();
  ( opt_two_n,
    !baseline_s,
    !disabled_s,
    disabled_ratio,
    !enabled_s,
    enabled_ratio,
    spans )

let exp_obs ?(mode = `Run) () =
  banner "obs" "observability layer (span tracer + metrics registry)"
    "gate: <= 2% overhead on Opt_two/Figure-3 with tracing disabled, vs the \
     vendored pre-instrumentation copy of the DP (bench/opt_two_unhooked.ml)";
  let ( opt_two_n,
        baseline_s,
        disabled_s,
        disabled_ratio,
        enabled_s,
        enabled_ratio,
        spans ) =
    match mode with
    (* n = 2400 keeps the timed region at the ~0.15s scale the 2%
       budget was calibrated against: the flat-state kernel rewrite
       made n = 1200 a ~40ms region, where run-to-run jitter alone is
       a couple of percent. *)
    | `Run -> obs_measure ~opt_two_n:2400 ()
    | `Smoke ->
      (* Smoke: the machinery end to end at a size where timings carry
         no signal — no file written, no gate judged. *)
      obs_measure ~opt_two_n:80 ~reps:4 ~warmups:1 ()
  in
  let overhead = disabled_ratio -. 1.0 in
  let enabled_overhead = enabled_ratio -. 1.0 in
  let gate = 0.02 in
  let gate_met = overhead <= gate in
  Printf.printf
    "opt_two fig3 n=%d: unhooked %.3fs, disabled %.3fs, enabled %.3fs (%d \
     spans/solve)\n"
    opt_two_n baseline_s disabled_s enabled_s spans;
  match mode with
  | `Smoke -> Printf.printf "smoke run: timings carry no signal, gate not judged\n"
  | `Run ->
    let json =
      Printf.sprintf
        "{\"opt_two_n\":%d,\"baseline_s\":%.6f,\"disabled_s\":%.6f,\
         \"disabled_overhead\":%.4f,\"enabled_s\":%.6f,\
         \"enabled_overhead\":%.4f,\"spans_per_solve\":%d,\"gate\":%.2f,\
         \"gate_met\":%b}\n"
        opt_two_n baseline_s disabled_s overhead enabled_s enabled_overhead spans
        gate gate_met
    in
    Out_channel.with_open_text "BENCH_obs.json" (fun oc ->
        Out_channel.output_string oc json);
    Printf.printf
      "disabled overhead vs unhooked baseline: %+.2f%% (gate <= %.0f%%: %s); \
       enabled: %+.2f%%\n"
      (overhead *. 100.) (gate *. 100.)
      (if gate_met then "met" else "NOT MET")
      (enabled_overhead *. 100.);
    Printf.printf "wrote BENCH_obs.json\n";
    assert gate_met

(* ---------- dp: flat-state DP kernels vs frozen boxed baselines ---------- *)

let exp_dp ?(mode = `Run) () =
  banner "dp" "flat-state DP kernels (Opt_two / Opt_config)"
    "gate: >= 2x end-to-end on the Figure-3 family for BOTH kernels vs the \
     frozen pre-rewrite boxed kernels vendored into this binary \
     (bench/legacy); results byte-compared first, so the speedup is over \
     identical answers";
  let module L2 = Crs_legacy.Legacy_opt_two in
  let module LC = Crs_legacy.Legacy_opt_config in
  let two_n, cfg_n, cfg_iters, reps =
    match mode with `Run -> (1200, 400, 20, 9) | `Smoke -> (60, 40, 2, 3)
  in
  let fig3_two = A.round_robin_family ~n:two_n in
  let fig3_cfg = A.round_robin_family ~n:cfg_n in
  (* Parity before speed: the ratio is only meaningful over identical
     answers. Opt_two must agree byte-for-byte including counters;
     Opt_config must agree on makespan, generated count and layer
     profile (survivor order is canonical in the flat kernel where the
     legacy one inherited hashtable iteration order, so the witness
     schedule may differ — both must certify). *)
  let s_new = Crs_algorithms.Opt_two.solve fig3_two in
  let s_old = L2.solve fig3_two in
  assert (s_new.Crs_algorithms.Opt_two.makespan = s_old.L2.makespan);
  assert (Schedule.equal s_new.schedule s_old.schedule);
  assert (
    s_new.counters.Crs_algorithms.Opt_two.cells_expanded
    = s_old.L2.counters.L2.cells_expanded);
  assert (
    s_new.counters.Crs_algorithms.Opt_two.relaxations
    = s_old.L2.counters.L2.relaxations);
  let c_new = Crs_algorithms.Opt_config.solve fig3_cfg in
  let c_old = LC.solve fig3_cfg in
  assert (c_new.Crs_algorithms.Opt_config.makespan = c_old.LC.makespan);
  assert (
    c_new.stats.Crs_algorithms.Opt_config.generated = c_old.LC.stats.LC.generated);
  assert (c_new.stats.Crs_algorithms.Opt_config.layers = c_old.LC.stats.LC.layers);
  (match
     Crs_fuzz.Certify.check fig3_cfg c_new.schedule
       ~claimed:c_new.Crs_algorithms.Opt_config.makespan
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  (match
     Crs_fuzz.Certify.check fig3_cfg c_old.LC.schedule ~claimed:c_old.LC.makespan
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  Printf.printf
    "parity: opt_two schedules byte-identical, counters (%d cells, %d \
     relaxations) equal; opt_config generated %d and %d layers equal, both \
     witnesses certified\n"
    s_new.counters.Crs_algorithms.Opt_two.cells_expanded
    s_new.counters.Crs_algorithms.Opt_two.relaxations
    c_new.stats.Crs_algorithms.Opt_config.generated
    (List.length c_new.stats.Crs_algorithms.Opt_config.layers);
  (* Paired-reps methodology (same as BENCH_campaign/BENCH_obs): every
     timed region starts from a settled GC, each rep times flat and
     legacy back-to-back with the order alternating, and the gate uses
     the MEDIAN of the per-rep ratios — machine-speed drift hits both
     halves of a pair, and reps where a slow phase lands between the
     halves are discarded by the median. *)
  let time f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  in
  let measure name flat legacy =
    ignore (flat ());
    ignore (legacy ());
    let ratios = Array.make reps 0.0 in
    let flat_best = ref infinity and legacy_best = ref infinity in
    for i = 0 to reps - 1 do
      let f_s, l_s =
        if i land 1 = 0 then
          let f = time flat in
          (f, time legacy)
        else
          let l = time legacy in
          (time flat, l)
      in
      if f_s < !flat_best then flat_best := f_s;
      if l_s < !legacy_best then legacy_best := l_s;
      ratios.(i) <- l_s /. Float.max f_s 1e-9
    done;
    let speedup = median ratios in
    Printf.printf "%-36s flat %.3fs legacy %.3fs -> %.2fx (median of %d)\n" name
      !flat_best !legacy_best speedup reps;
    (!flat_best, !legacy_best, speedup)
  in
  let two_flat, two_legacy, two_speedup =
    measure
      (Printf.sprintf "opt_two fig3 n=%d (full solve)" two_n)
      (fun () -> Crs_algorithms.Opt_two.solve fig3_two)
      (fun () -> L2.solve fig3_two)
  in
  let cfg_flat, cfg_legacy, cfg_speedup =
    measure
      (Printf.sprintf "opt_config fig3 n=%d x%d (full solve)" cfg_n cfg_iters)
      (fun () ->
        for _ = 1 to cfg_iters - 1 do
          ignore (Sys.opaque_identity (Crs_algorithms.Opt_config.solve fig3_cfg))
        done;
        Crs_algorithms.Opt_config.solve fig3_cfg)
      (fun () ->
        for _ = 1 to cfg_iters - 1 do
          ignore (Sys.opaque_identity (LC.solve fig3_cfg))
        done;
        LC.solve fig3_cfg)
  in
  match mode with
  | `Smoke -> Printf.printf "smoke run: timings carry no signal, gate not judged\n"
  | `Run ->
    let gate = 2.0 in
    let gate_met = two_speedup >= gate && cfg_speedup >= gate in
    let json =
      Printf.sprintf
        "{\"opt_two_n\":%d,\"opt_two_flat_s\":%.6f,\"opt_two_legacy_s\":%.6f,\
         \"opt_two_speedup\":%.4f,\"opt_config_n\":%d,\"opt_config_iters\":%d,\
         \"opt_config_flat_s\":%.6f,\"opt_config_legacy_s\":%.6f,\
         \"opt_config_speedup\":%.4f,\"reps\":%d,\"cells_expanded\":%d,\
         \"relaxations\":%d,\"generated\":%d,\"parity\":true,\"gate\":%.1f,\
         \"gate_met\":%b}\n"
        two_n two_flat two_legacy two_speedup cfg_n cfg_iters cfg_flat cfg_legacy
        cfg_speedup reps s_new.counters.Crs_algorithms.Opt_two.cells_expanded
        s_new.counters.Crs_algorithms.Opt_two.relaxations
        c_new.stats.Crs_algorithms.Opt_config.generated gate gate_met
    in
    Out_channel.with_open_text "BENCH_dp.json" (fun oc ->
        Out_channel.output_string oc json);
    Printf.printf
      "speedup vs frozen boxed kernels: opt_two %.2fx, opt_config %.2fx (gate \
       >= %.1fx on BOTH: %s)\n"
      two_speedup cfg_speedup gate
      (if gate_met then "met" else "NOT MET");
    Printf.printf "wrote BENCH_dp.json\n";
    assert gate_met

(* ---------- smoke: tiny-n pass over every gated experiment ---------- *)

(* `dune build @bench-smoke` runs this: exercises the num / obs / dp /
   registry / serve experiment machinery end to end at sizes where each
   takes well under a second, writes no files and judges no timing gates
   (correctness asserts — differential checks, kernel parity, the serve
   frontend's concurrent byte-identity over >= 2 live connections —
   still run). Catches bit-rot in the bench harness itself without
   paying for a full calibrated run. *)
let smoke () =
  exp_num ~mode:`Check ();
  exp_obs ~mode:`Smoke ();
  exp_dp ~mode:`Smoke ();
  exp_registry ~mode:`Smoke ();
  exp_serve ~mode:`Smoke ()

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  let open Bechamel in
  let st = Random.State.make [| 4242 |] in
  let two n = Helpers_bench.random_two_proc ~n st 0 in
  let inst50 = two 50 and inst200 = two 200 in
  let st2 = Random.State.make [| 4243 |] in
  let inst_m3 = Crs_generators.Random_gen.equal_rows ~m:3 ~n:3 ~granularity:10 st2 in
  let big_family = A.greedy_balance_family ~m:4 ~blocks:25 () in
  let rr_family = A.round_robin_family ~n:200 in
  let tests =
    [
      (* T5: the O(n^2) DP and its PQ variant. *)
      Test.make ~name:"opt_two n=50" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Opt_two.makespan inst50)));
      Test.make ~name:"opt_two n=200" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Opt_two.makespan inst200)));
      Test.make ~name:"opt_two_pq n=200" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Opt_two_pq.makespan inst200)));
      (* T6: configuration enumeration at fixed m. *)
      Test.make ~name:"opt_config m=3 n=3" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Opt_config.makespan inst_m3)));
      (* T7/T8: the linear-time approximation on a large family instance. *)
      Test.make ~name:"greedy_balance m=4 100 jobs/proc" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Greedy_balance.makespan big_family)));
      (* T3: round robin on the Figure 3 family. *)
      Test.make ~name:"round_robin n=200" (Staged.stage (fun () ->
          ignore (Crs_algorithms.Round_robin.makespan rr_family)));
      (* Substrate: exact arithmetic throughput (harmonic sums grow the
         denominators into genuine multi-limb territory). *)
      Test.make ~name:"rational sum 1/1..1/500" (Staged.stage (fun () ->
          ignore (Q.sum (List.init 500 (fun i -> Q.of_ints 1 (i + 1))))));
      (* S8: simulator tick loop. *)
      Test.make ~name:"manycore mixed-vm 9 cores" (Staged.stage (fun () ->
          let stw = Random.State.make [| 7 |] in
          let tasks = Crs_manycore.Workload.mixed_vm ~cores:9 stw in
          ignore (Crs_manycore.Engine.run Crs_manycore.Policy.greedy_balance tasks)));
    ]
  in
  let benchmark test =
    let analyze = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all analyze Toolkit.Instance.monotonic_clock raw
  in
  Printf.printf "\n=== MICRO: runtime micro-benchmarks (bechamel) ===\n\n";
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

let experiments =
  [
    ("f1", exp_f1); ("f2", exp_f2); ("f3", exp_f3); ("f4", exp_f4); ("f5", exp_f5);
    ("t3", exp_t3); ("t5", exp_t5); ("t6", exp_t6); ("t7", exp_t7);
    ("l56", exp_l56); ("mc", exp_mc); ("ext", exp_ext); ("bp", exp_bp);
    ("dc", exp_dc); ("fa", exp_fa); ("mr", exp_mr); ("ablation", exp_ablation);
    ("campaign", exp_campaign); ("registry", fun () -> exp_registry ());
    ("serve", fun () -> exp_serve ());
    ("fuzz", exp_fuzz); ("num", fun () -> exp_num ());
    ("obs", fun () -> exp_obs ());
    ("dp", fun () -> exp_dp ());
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "micro" :: _ -> micro ()
  | _ :: "smoke" :: _ -> smoke ()
  | _ :: "num" :: rest ->
    let mode =
      match rest with
      | "--check" :: _ -> `Check
      | "--record-baseline" :: _ -> `Record
      | _ -> `Run
    in
    exp_num ~mode ()
  | _ :: "obs" :: _ -> exp_obs ()
  | _ :: "dp" :: _ -> exp_dp ()
  | _ :: id :: _ -> (
    match List.assoc_opt id experiments with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %s; available: %s micro\n" id
        (String.concat " " (List.map fst experiments));
      exit 1)
  | _ ->
    List.iter (fun (_, f) -> f ()) experiments;
    micro ()
