(* Frozen pre-instrumentation copy of Opt_two's makespan path (the DP
   only — replay is not timed by the overhead gate). The obs experiment
   compares Crs_algorithms.Opt_two (profiling hooks compiled in, tracing
   disabled) against this copy inside ONE process with interleaved reps,
   so machine-speed drift between processes cancels out of the ratio.

   Keep this file in sync with nothing: it is deliberately a snapshot of
   lib/algorithms/opt_two.ml as of the commit that introduced the hooks.
   If the DP itself changes later, re-snapshot it; the gate compares
   like against like. *)

module Q = Crs_num.Rational
open Crs_core

type transition =
  | Start
  | Finish_both
  | Finish_fst
  | Finish_snd
  | Only_fst
  | Only_snd

type entry = { t : int; r : Q.t; from : int * int; via : transition }

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two_unhooked: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two_unhooked: unit-size jobs only"

let req instance i j =
  if j < Instance.n_i instance i then Job.requirement (Instance.job instance i j)
  else Q.zero

let better (t1, r1) (t2, r2) = t1 < t2 || (t1 = t2 && Q.(r1 < r2))

let run_dp instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let table : entry option array array =
    Array.make_matrix (n1 + 1) (n2 + 1) None
  in
  let cells = ref 0 and relaxes = ref 0 in
  let relax i1 i2 t r from via =
    incr relaxes;
    match table.(i1).(i2) with
    | Some e when not (better (t, r) (e.t, e.r)) -> ()
    | _ -> table.(i1).(i2) <- Some { t; r; from; via }
  in
  relax 0 0 0 (Q.add (req instance 0 0) (req instance 1 0)) (-1, -1) Start;
  for level = 0 to n1 + n2 - 1 do
    for i1 = max 0 (level - n2) to min level n1 do
      Crs_util.Fuel.tick ();
      let i2 = level - i1 in
      match table.(i1).(i2) with
      | None -> ()
      | Some e ->
        incr cells;
        let t' = e.t + 1 in
        let fresh1 = req instance 0 (i1 + 1)
        and fresh2 = req instance 1 (i2 + 1) in
        if i1 >= n1 && i2 < n2 then
          relax i1 (i2 + 1) t' fresh2 (i1, i2) Only_snd
        else if i2 >= n2 && i1 < n1 then
          relax (i1 + 1) i2 t' fresh1 (i1, i2) Only_fst
        else if i1 < n1 && i2 < n2 then begin
          if Q.(e.r <= one) then
            relax (i1 + 1) (i2 + 1) t' (Q.add fresh1 fresh2) (i1, i2)
              Finish_both
          else begin
            relax (i1 + 1) i2 t'
              (Q.add fresh1 (Q.sub e.r Q.one))
              (i1, i2) Finish_fst;
            relax i1 (i2 + 1) t'
              (Q.add (Q.sub e.r Q.one) fresh2)
              (i1, i2) Finish_snd
          end
        end
    done
  done;
  ignore !cells;
  ignore !relaxes;
  table

let makespan instance =
  let table = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  match table.(n1).(n2) with
  | Some e -> e.t
  | None -> failwith "Opt_two_unhooked.makespan: final state unreachable (bug)"
