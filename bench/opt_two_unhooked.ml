(* Frozen pre-instrumentation copy of Opt_two's makespan path (the DP
   only — replay is not timed by the overhead gate). The obs experiment
   compares Crs_algorithms.Opt_two (profiling hooks compiled in, tracing
   disabled) against this copy inside ONE process with interleaved reps,
   so machine-speed drift between processes cancels out of the ratio.

   Keep this file in sync with nothing: it is deliberately a snapshot of
   lib/algorithms/opt_two.ml (the flat-state kernel) with the
   observability hooks (spans, histogram) removed; the work counters
   and the fuel tick stay because they are kernel features that predate
   the obs layer, not profiling hooks. If the DP itself changes later,
   re-snapshot it; the gate compares like against like. *)

module Q = Crs_num.Rational
module SR = Crs_num.Smallrat
open Crs_core

let start = 0
let finish_both = 1
let finish_fst = 2
let finish_snd = 3
let only_fst = 4
let only_snd = 5

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two_unhooked: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two_unhooked: unit-size jobs only"

type reqs = { boxed : Q.t array; reqp : int array; reqq : int array }

let prefetch instance i =
  let n = Instance.n_i instance i in
  let boxed =
    Array.init (n + 1) (fun k ->
        if k < n then Job.requirement (Instance.job instance i k) else Q.zero)
  in
  let reqp = Array.make (n + 1) 0 and reqq = Array.make (n + 1) 0 in
  Array.iteri
    (fun k r ->
      if Q.is_small r then begin
        reqp.(k) <- Q.small_num r;
        reqq.(k) <- Q.small_den r
      end)
    boxed;
  { boxed; reqp; reqq }

let common_den r1 r2 =
  let max_num = 1 lsl 59 in
  let lden = ref 1 and ok = ref true in
  let fold r =
    Array.iter
      (fun q ->
        if q = 0 then ok := false
        else begin
          let l = !lden / Crs_num.Natural.gcd_int !lden q * q in
          if l > Q.small_bound then ok := false else lden := l
        end)
      r.reqq
  in
  fold r1;
  fold r2;
  if not !ok then None
  else begin
    let l = !lden in
    let scale r =
      Array.map2
        (fun p q ->
          let f = l / q in
          if p > max_num / f then ok := false;
          p * f)
        r.reqp r.reqq
    in
    let rn1 = scale r1 and rn2 = scale r2 in
    if !ok then Some (l, rn1, rn2) else None
  end

type tableau = { w : int; cells : int array; spill : (int, Q.t) Hashtbl.t }

let cell_r tab idx =
  let base = idx lsl 2 in
  let q = tab.cells.(base + 2) in
  if q <> 0 then SR.to_rational tab.cells.(base + 1) q
  else Hashtbl.find tab.spill idx

let run_dp instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let w = n2 + 1 in
  let size = (n1 + 1) * w in
  let cells_a = Array.make (size * 4) (-1) in
  let tab = { w; cells = cells_a; spill = Hashtbl.create 16 } in
  let r1 = prefetch instance 0 and r2 = prefetch instance 1 in
  let cells = ref 0 and relaxes = ref 0 in
  let relax idx t p q rbig via =
    incr relaxes;
    let base = idx lsl 2 in
    let cur_tv = cells_a.(base) in
    let cur_t = cur_tv asr 3 in
    let better =
      cur_tv < 0 || t < cur_t
      || t = cur_t
         &&
         let cq = cells_a.(base + 2) in
         if q <> 0 && cq <> 0 then SR.compare p q cells_a.(base + 1) cq < 0
         else begin
           let cand = if q <> 0 then SR.to_rational p q else rbig in
           Q.(cand < cell_r tab idx)
         end
    in
    if better then begin
      cells_a.(base) <- (t lsl 3) lor via;
      if q <> 0 then begin
        if cells_a.(base + 2) = 0 then Hashtbl.remove tab.spill idx;
        cells_a.(base + 1) <- p;
        cells_a.(base + 2) <- q
      end
      else begin
        cells_a.(base + 2) <- 0;
        Hashtbl.replace tab.spill idx rbig
      end
    end
  in
  let relax_box idx t r via =
    if Q.is_small r then relax idx t (Q.small_num r) (Q.small_den r) Q.zero via
    else relax idx t 0 0 r via
  in
  let acc = SR.out () and m1 = SR.out () in
  let lden, rn1, rn2 =
    match common_den r1 r2 with
    | Some (l, a, b) -> (l, a, b)
    | None -> (0, [||], [||])
  in
  (if lden <> 0 then relax 0 0 (rn1.(0) + rn2.(0)) lden Q.zero start
   else if
     r1.reqq.(0) <> 0 && r2.reqq.(0) <> 0
     && SR.add acc r1.reqp.(0) r1.reqq.(0) r2.reqp.(0) r2.reqq.(0)
   then relax 0 0 acc.p acc.q Q.zero start
   else relax_box 0 0 (Q.add r1.boxed.(0) r2.boxed.(0)) start);
  for level = 0 to n1 + n2 - 1 do
    for i1 = max 0 (level - n2) to min level n1 do
      let i2 = level - i1 in
      let idx = (i1 * w) + i2 in
      let base = idx lsl 2 in
      let tv = cells_a.(base) in
      if tv >= 0 then begin
        Crs_util.Fuel.tick ();
        incr cells;
        let t' = (tv asr 3) + 1 in
        let cp = cells_a.(base + 1) and cq = cells_a.(base + 2) in
        if i1 >= n1 && i2 < n2 then begin
          let k = i2 + 1 in
          if lden <> 0 then relax (idx + 1) t' rn2.(k) lden Q.zero only_snd
          else if r2.reqq.(k) <> 0 then
            relax (idx + 1) t' r2.reqp.(k) r2.reqq.(k) Q.zero only_snd
          else relax (idx + 1) t' 0 0 r2.boxed.(k) only_snd
        end
        else if i2 >= n2 && i1 < n1 then begin
          let k = i1 + 1 in
          if lden <> 0 then relax (idx + w) t' rn1.(k) lden Q.zero only_fst
          else if r1.reqq.(k) <> 0 then
            relax (idx + w) t' r1.reqp.(k) r1.reqq.(k) Q.zero only_fst
          else relax (idx + w) t' 0 0 r1.boxed.(k) only_fst
        end
        else if i1 < n1 && i2 < n2 then begin
          let k1 = i1 + 1 and k2 = i2 + 1 in
          if lden <> 0 then begin
            if cp <= lden then
              relax (idx + w + 1) t' (rn1.(k1) + rn2.(k2)) lden Q.zero
                finish_both
            else begin
              let m = cp - lden in
              relax (idx + w) t' (rn1.(k1) + m) lden Q.zero finish_fst;
              relax (idx + 1) t' (m + rn2.(k2)) lden Q.zero finish_snd
            end
          end
          else begin
            let r_le_one =
              if cq <> 0 then SR.compare_one cp cq <= 0
              else Q.(Hashtbl.find tab.spill idx <= one)
            in
            if r_le_one then begin
              if r1.reqq.(k1) <> 0 && r2.reqq.(k2) <> 0
                 && SR.add acc r1.reqp.(k1) r1.reqq.(k1) r2.reqp.(k2) r2.reqq.(k2)
              then relax (idx + w + 1) t' acc.p acc.q Q.zero finish_both
              else
                relax_box (idx + w + 1) t'
                  (Q.add r1.boxed.(k1) r2.boxed.(k2))
                  finish_both
            end
            else begin
              if cq <> 0 && SR.sub_one m1 cp cq then begin
                (if r1.reqq.(k1) <> 0 && SR.add acc r1.reqp.(k1) r1.reqq.(k1) m1.p m1.q
                 then relax (idx + w) t' acc.p acc.q Q.zero finish_fst
                 else
                   relax_box (idx + w) t'
                     (Q.add r1.boxed.(k1) (SR.to_rational m1.p m1.q))
                     finish_fst);
                if r2.reqq.(k2) <> 0 && SR.add acc m1.p m1.q r2.reqp.(k2) r2.reqq.(k2)
                then relax (idx + 1) t' acc.p acc.q Q.zero finish_snd
                else
                  relax_box (idx + 1) t'
                    (Q.add (SR.to_rational m1.p m1.q) r2.boxed.(k2))
                    finish_snd
              end
              else begin
                let rm1 = Q.sub (cell_r tab idx) Q.one in
                relax_box (idx + w) t' (Q.add r1.boxed.(k1) rm1) finish_fst;
                relax_box (idx + 1) t' (Q.add rm1 r2.boxed.(k2)) finish_snd
              end
            end
          end
        end
      end
    done
  done;
  ignore !cells;
  ignore !relaxes;
  tab

let makespan instance =
  let tab = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let tv = tab.cells.(((n1 * tab.w) + n2) lsl 2) in
  if tv < 0 then
    failwith "Opt_two_unhooked.makespan: final state unreachable (bug)";
  tv asr 3
