type family = Uniform | Heavy_tailed | Balanced

let family_to_string = function
  | Uniform -> "uniform"
  | Heavy_tailed -> "heavy-tailed"
  | Balanced -> "balanced"

let family_of_string = function
  | "uniform" -> Some Uniform
  | "heavy-tailed" -> Some Heavy_tailed
  | "balanced" -> Some Balanced
  | _ -> None

type baseline = Exact | Lower_bound

let baseline_to_string = function Exact -> "exact" | Lower_bound -> "lower-bound"

let baseline_of_string = function
  | "exact" -> Some Exact
  | "lower-bound" -> Some Lower_bound
  | _ -> None

type t = {
  family : family;
  m : int;
  n : int;
  granularity : int;
  seed_lo : int;
  seed_hi : int;
  algorithms : string list;
  baseline : baseline;
  fuel : int option;
}

let default =
  {
    family = Uniform;
    m = 3;
    n = 3;
    granularity = 10;
    seed_lo = 1;
    seed_hi = 50;
    algorithms = [ Crs_algorithms.Registry.Names.greedy_balance ];
    baseline = Exact;
    fuel = Some 2_000_000;
  }

let validate spec =
  let unknown =
    List.filter
      (fun a -> Crs_algorithms.Registry.find a = None)
      spec.algorithms
  in
  if spec.m < 1 then Error "m must be at least 1"
  else if spec.n < 0 then Error "n must be non-negative"
  else if spec.granularity < 1 then Error "granularity must be at least 1"
  else if spec.seed_hi < spec.seed_lo then
    Error
      (Printf.sprintf "empty seed range: seeds %d..%d (lo must be <= hi)"
         spec.seed_lo spec.seed_hi)
  else if spec.algorithms = [] then Error "need at least one algorithm"
  else if unknown <> [] then
    Error
      (Printf.sprintf "unknown algorithm%s %s (valid: %s)"
         (if List.length unknown > 1 then "s" else "")
         (String.concat ", " unknown)
         (String.concat ", " Crs_algorithms.Registry.names))
  else if
    match spec.fuel with Some b -> b < 1 | None -> false
  then Error "fuel must be positive"
  else Ok spec

type item = { id : int; seed : int; algorithm : string }

let seed_count spec = max 0 (spec.seed_hi - spec.seed_lo + 1)

let expand spec =
  let seeds = seed_count spec in
  let algos = Array.of_list spec.algorithms in
  let k = Array.length algos in
  Array.init (seeds * k) (fun id ->
      { id; seed = spec.seed_lo + (id / k); algorithm = algos.(id mod k) })

let instance spec ~seed =
  (* Same seeding discipline as `crsched gen`: the seed alone determines
     the instance, independent of which item or domain evaluates it. *)
  let st = Random.State.make [| seed |] in
  let gspec =
    {
      Crs_generators.Random_gen.default_spec with
      m = spec.m;
      jobs_min = spec.n;
      jobs_max = spec.n;
      granularity = spec.granularity;
    }
  in
  match spec.family with
  | Uniform -> Crs_generators.Random_gen.instance ~spec:gspec st
  | Heavy_tailed -> Crs_generators.Random_gen.heavy_tailed ~spec:gspec st
  | Balanced -> Crs_generators.Random_gen.balanced_load ~spec:gspec st

let describe spec =
  Printf.sprintf "%s m=%d n=%d g=%d seeds=%d..%d algos=[%s] baseline=%s fuel=%s"
    (family_to_string spec.family)
    spec.m spec.n spec.granularity spec.seed_lo spec.seed_hi
    (String.concat "," spec.algorithms)
    (baseline_to_string spec.baseline)
    (match spec.fuel with None -> "none" | Some b -> string_of_int b)
