(** Compatibility facade over the work-stealing executor
    ({!Crs_exec.Exec}).

    Historically this was a mutex/condition domain pool; it is now a
    thin alias kept so older call sites and external users don't churn.
    The contract is unchanged: tasks are [unit -> unit] thunks, a task
    that raises does not kill its worker — the first exception is
    recorded and reported by {!await_all}, and the remaining tasks
    still run. New code should depend on [Crs_exec.Exec] directly
    (richer API: saturation {!Crs_exec.Exec.stats}, [map_on] over a
    shared executor). *)

type t = Crs_exec.Exec.t

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Tasks may themselves submit further tasks (those
    pushes go to the submitting worker's own deque, lock-free).
    @raise Invalid_argument after {!shutdown}. *)

val await_all : t -> exn option
(** Block until every submitted task has finished. Returns the first
    exception any task raised ([None] when all succeeded) and clears it,
    so the pool can be reused for another batch. *)

val shutdown : t -> unit
(** Drain all remaining work, join every worker. Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} — even on exceptions. *)

val map : ?chunk:int -> domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [map ~domains f a] equals
    [Array.map f a] element-for-element, whatever the pool size,
    chunking or steal schedule. [chunk] (default 1) items are submitted
    per task; slices are contiguous, and each task writes only its own
    result slots, keeping results in input order. Re-raises the first
    task exception after all tasks settle (items sharing a chunk with a
    raising item may be skipped).
    @raise Invalid_argument when [chunk < 1]. *)
