(** Fixed-size OCaml 5 domain pool with a lock-protected task queue.

    Dependency-free (Domain + Mutex + Condition). Tasks are [unit ->
    unit] thunks; a task that raises does not kill its worker — the first
    exception is recorded and reported by {!await_all}, and the remaining
    tasks still run. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Tasks may themselves submit further tasks.
    @raise Invalid_argument after {!shutdown}. *)

val await_all : t -> exn option
(** Block until every submitted task has finished. Returns the first
    exception any task raised ([None] when all succeeded) and clears it,
    so the pool can be reused for another batch. *)

val shutdown : t -> unit
(** Drain the queue, join every worker. Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} — even on exceptions. *)

val map : ?chunk:int -> domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map: [map ~domains f a] equals
    [Array.map f a] element-for-element, whatever the pool size or
    chunking. [chunk] (default 1) items are submitted per pool task, so
    cheap items pay the queue-mutex round-trip once per slice instead of
    once per item; slices are contiguous, keeping results in input
    order. Re-raises the first task exception after all tasks settle
    (items sharing a chunk with a raising item may be skipped).
    @raise Invalid_argument when [chunk < 1]. *)
