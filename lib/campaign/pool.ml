(* Fixed-size domain pool with a lock-protected task queue.

   Modelled on the schedulr/micropools executors from the related EBSL
   work, but dependency-free: Domain + Mutex + Condition from the OCaml 5
   stdlib are all it needs. Workers block on [work_available] until a
   task arrives or shutdown is requested; [await_all] blocks on
   [all_done] until every submitted task has finished. *)

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  all_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* submitted but not yet finished *)
  mutable stopping : bool;
  mutable failed : exn option;  (* first task exception, if any *)
  mutable workers : unit Domain.t array;
}

let size t = Array.length t.workers

let worker pool =
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work_available pool.mutex
    done;
    if Queue.is_empty pool.queue then begin
      (* stopping and drained: exit cleanly *)
      Mutex.unlock pool.mutex;
      continue := false
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      let err = (try task (); None with e -> Some e) in
      Mutex.lock pool.mutex;
      (match err with
      | Some e when pool.failed = None -> pool.failed <- Some e
      | _ -> ());
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.all_done;
      Mutex.unlock pool.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopping = false;
      failed = None;
      workers = [||];
    }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  pool.pending <- pool.pending + 1;
  Condition.signal pool.work_available;
  Mutex.unlock pool.mutex

let await_all pool =
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.all_done pool.mutex
  done;
  let failure = pool.failed in
  pool.failed <- None;
  Mutex.unlock pool.mutex;
  failure

let shutdown pool =
  Mutex.lock pool.mutex;
  if not pool.stopping then begin
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers
  end
  else Mutex.unlock pool.mutex

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?(chunk = 1) ~domains f input =
  if chunk < 1 then invalid_arg "Pool.map: chunk must be >= 1";
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    with_pool ~domains (fun pool ->
        (* One task per contiguous slice: tasks write distinct indices so
           no write ever races, and the queue mutex is taken once per
           [chunk] items instead of once per item. Slices keep input
           order, so the result is order-preserving regardless. *)
        let i = ref 0 in
        while !i < n do
          let lo = !i in
          let hi = Stdlib.min n (lo + chunk) - 1 in
          submit pool (fun () ->
              for k = lo to hi do
                results.(k) <- Some (f input.(k))
              done);
          i := hi + 1
        done;
        match await_all pool with None -> () | Some e -> raise e);
    Array.map (function Some r -> r | None -> assert false) results
  end
