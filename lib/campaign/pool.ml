(* Compatibility facade over the work-stealing executor (Crs_exec.Exec).

   This module used to BE the parallel substrate: a single mutex +
   condition variable around one task queue — exactly the central-list
   bottleneck the executor refactor removed (BENCH_campaign.json showed
   a parallel slowdown at 4 domains). The API is kept byte-for-byte so
   existing consumers (fuzz driver, tests, external callers) keep
   working; everything here is a one-line delegation, and new code
   should use Crs_exec.Exec directly. *)

type t = Crs_exec.Exec.t

let create ~domains = Crs_exec.Exec.create ~domains
let size = Crs_exec.Exec.size
let submit = Crs_exec.Exec.submit
let await_all = Crs_exec.Exec.await_all
let shutdown = Crs_exec.Exec.shutdown
let with_pool ~domains f = Crs_exec.Exec.with_exec ~domains f
let map ?chunk ~domains f input = Crs_exec.Exec.map ?chunk ~domains f input
