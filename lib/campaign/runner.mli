(** Campaign execution: expand a {!Spec.t} into items and evaluate them,
    sequentially or on a {!Pool} of domains.

    Determinism contract: item results (minus timing) depend only on the
    spec — instances are regenerated from their seed inside the item,
    timeouts are fuel-based (work-metered, not wall-clock), and items
    share no mutable state — so [run ~domains:1] and [run ~domains:k]
    produce identical {!Report.payload}s. *)

val default_names : string list
(** Default set for comparison tables: every policy-backed algorithm
    plus ["optimal"], in registry order. *)

val algorithm_names : string list
(** All registered names ([= Crs_algorithms.Registry.names]). *)

val run_item : Spec.t -> Spec.item -> Report.record
(** Evaluate one item: regenerate the instance from its seed, check the
    solver's capability record (a rejected instance records
    [Not_applicable] without running), run the algorithm and then the
    baseline (each under the spec's fuel budget), capture [Out_of_fuel]
    as [Timeout] and any other exception as [Error]. Never raises. The
    record carries the solver's {!Crs_algorithms.Registry.Counters.t}
    when the solve completed. *)

val run : ?domains:int -> Spec.t -> Report.record array
(** Run the whole campaign; records are in item order regardless of the
    pool size. [domains <= 1] (default) runs sequentially in the calling
    domain; larger values use {!Pool.map}.
    @raise Invalid_argument when {!Spec.validate} rejects the spec. *)

val compare_records :
  ?names:string list ->
  ?baseline:Spec.baseline ->
  ?fuel:int ->
  family:string ->
  Crs_core.Instance.t ->
  Report.record list
(** Evaluate the named algorithms (default: all) on one concrete
    instance, yielding campaign-schema records — the backend of
    [crsched compare --json]. [family] labels the records (e.g.
    ["file"]). *)
