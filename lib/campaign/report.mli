(** Structured campaign results: JSONL records and aggregate summaries.

    One {!record} per (instance × algorithm) item. [to_json] renders the
    full record (including [wall_ns]); [payload] omits the timing fields
    and is byte-stable — two runs of the same spec produce identical
    payloads at any domain-pool size, which {!payload_digest} turns into
    a one-line determinism fingerprint.

    The same record schema is reused by [crsched compare --json] for
    single-instance output (with [seed]/[granularity] = [None]). *)

type outcome =
  | Done
  | Timeout  (** a fuel-metered solve ran out of budget *)
  | Error of string  (** the item raised; the message is recorded *)
  | Not_applicable of string
      (** the solver's capability record rejected the instance (e.g.
          opt-two on [m = 3]); the reason is recorded, no solve ran *)

val outcome_label : outcome -> string

type record = {
  id : int;
  family : string;  (** generator family, or ["file"] for compare *)
  m : int;
  n : int;  (** jobs per processor ([n_max] for loaded instances) *)
  granularity : int option;
  seed : int option;
  digest : string;  (** MD5 of the canonical instance text *)
  algorithm : string;
  outcome : outcome;
  makespan : int option;  (** [None] when the algorithm itself failed *)
  baseline : string;  (** ["exact"] or ["lower-bound"] *)
  optimum : int option;  (** [None] when the baseline solve timed out *)
  ratio : float option;  (** makespan / optimum *)
  counters : Crs_algorithms.Registry.Counters.t option;
      (** the solver's work counters; [None] when no solve ran or the
          algorithm has none. Deterministic, so part of [payload]. *)
  wall_ns : int;  (** item wall-clock; excluded from [payload] *)
}

val to_json : record -> string
(** Single-line JSON object, stable key order, timing included. *)

val payload : record -> string
(** Like {!to_json} without timing fields; byte-stable. *)

val jsonl : record array -> string
val payload_digest : record array -> string

type summary = {
  items : int;
  completed : int;
  timeouts : int;
  errors : int;
  not_applicable : int;
  mean_ratio : float option;
  worst : record option;
      (** highest-ratio completed item — retained so the offending
          instance can be regenerated from its seed and replayed *)
  histogram : (float * int) array;
      (** ratio counts per 0.1-wide bucket from 1.0; last bucket >= 2.0 *)
  total_wall_ns : int;  (** summed item time (CPU-work, not elapsed) *)
  digest : string;  (** {!payload_digest} of the records *)
}

val summarize : record array -> summary
val summary_to_json : summary -> string
val render_summary : summary -> string

val write_jsonl : string -> record array -> unit
(** Write records as JSON-lines, creating the parent directory. *)

val write_summary : string -> summary -> unit
