(** Campaign specification: generator family × seed range × algorithm
    list, expanded into independent (instance × algorithm) work items.

    Seeding discipline: the instance for seed [s] is generated from
    [Random.State.make [| s |]] — the same as [crsched gen --seed s] —
    so every item is reproducible in isolation and identical at any
    domain-pool size. *)

type family = Uniform | Heavy_tailed | Balanced

val family_to_string : family -> string
val family_of_string : string -> family option

(** What "optimum" means in the report: the exact solver (fuel-metered,
    exponential in general) or the cheap certified lower bound. *)
type baseline = Exact | Lower_bound

val baseline_to_string : baseline -> string
val baseline_of_string : string -> baseline option

type t = {
  family : family;
  m : int;  (** processors per instance *)
  n : int;  (** jobs per processor *)
  granularity : int;  (** requirement grid 1/g *)
  seed_lo : int;
  seed_hi : int;  (** inclusive; must be >= [seed_lo] (see {!validate}) *)
  algorithms : string list;  (** names from {!Crs_algorithms.Registry} *)
  baseline : baseline;
  fuel : int option;  (** per-solve tick budget; [None] = unlimited *)
}

val default : t
(** uniform, m=3, n=3, g=10, seeds 1..50, greedy-balance vs exact,
    fuel 2e6. *)

val validate : t -> (t, string) result
(** Checks ranges — including that the seed range is non-empty
    ([seed_lo <= seed_hi]) — and that every algorithm name is registered
    in {!Crs_algorithms.Registry} (the error lists the valid names). *)

type item = { id : int; seed : int; algorithm : string }

val seed_count : t -> int

val expand : t -> item array
(** All (seed × algorithm) pairs, ids [0..count-1], seed-major so the
    items of one seed are adjacent. An empty seed range yields [[||]]. *)

val instance : t -> seed:int -> Crs_core.Instance.t
(** Deterministic instance for a seed (see the seeding discipline). *)

val describe : t -> string
(** One-line human summary. *)
