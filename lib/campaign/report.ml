(* Structured campaign results: per-item JSONL records and an aggregate
   summary. The JSON encoder is hand-rolled (stable key order, minimal
   escaping) so the payload of a record is byte-stable: two runs of the
   same spec produce identical payload lines whatever the pool size.
   Timing fields (wall_ns) are the only nondeterministic part and are
   excluded from [payload] and the determinism digest. *)

type outcome = Done | Timeout | Error of string | Not_applicable of string

let outcome_label = function
  | Done -> "done"
  | Timeout -> "timeout"
  | Error _ -> "error"
  | Not_applicable _ -> "not_applicable"

type record = {
  id : int;
  family : string;
  m : int;
  n : int;
  granularity : int option;
  seed : int option;
  digest : string;
  algorithm : string;
  outcome : outcome;
  makespan : int option;
  baseline : string;
  optimum : int option;
  ratio : float option;
  counters : Crs_algorithms.Registry.Counters.t option;
  wall_ns : int;
}

(* ---- JSON encoding (shared stable encoder, see Crs_util.Stable_json) ---- *)

let jstr = Crs_util.Stable_json.str
let jint_opt = Crs_util.Stable_json.int_opt
let jfloat = Crs_util.Stable_json.float
let jfloat_opt = Crs_util.Stable_json.float_opt
let obj = Crs_util.Stable_json.obj

let jcounters = function
  | None -> "null"
  | Some c ->
    obj
      (List.map
         (fun (k, v) -> (k, string_of_int v))
         (Crs_algorithms.Registry.Counters.to_assoc c))

let fields ~timing r =
  [
    ("id", string_of_int r.id);
    ("family", jstr r.family);
    ("m", string_of_int r.m);
    ("n", string_of_int r.n);
    ("granularity", jint_opt r.granularity);
    ("seed", jint_opt r.seed);
    ("digest", jstr r.digest);
    ("algorithm", jstr r.algorithm);
    ("outcome", jstr (outcome_label r.outcome));
    ( "detail",
      jstr
        (match r.outcome with
        | Error msg | Not_applicable msg -> msg
        | Done | Timeout -> "") );
    ("makespan", jint_opt r.makespan);
    ("baseline", jstr r.baseline);
    ("optimum", jint_opt r.optimum);
    ("ratio", jfloat_opt r.ratio);
    ("counters", jcounters r.counters);
  ]
  @ if timing then [ ("wall_ns", string_of_int r.wall_ns) ] else []

let to_json r = obj (fields ~timing:true r)
let payload r = obj (fields ~timing:false r)

let jsonl records =
  String.concat "" (List.map (fun r -> to_json r ^ "\n") (Array.to_list records))

let payload_digest records =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map payload (Array.to_list records))))

(* ---- aggregate summary ---- *)

type summary = {
  items : int;
  completed : int;
  timeouts : int;
  errors : int;
  not_applicable : int;
  mean_ratio : float option;
  worst : record option;  (* highest ratio among completed items *)
  histogram : (float * int) array;  (* bucket lower edge (width 0.1) -> count *)
  total_wall_ns : int;
  digest : string;  (* payload digest: determinism fingerprint *)
}

let histogram_buckets = 11 (* [1.0,1.1) .. [1.9,2.0), then >= 2.0 *)

let summarize records =
  let completed = ref 0 and timeouts = ref 0 and errors = ref 0 in
  let inapplicable = ref 0 in
  let ratio_sum = ref 0.0 and ratio_count = ref 0 in
  let worst = ref None in
  let hist = Array.make histogram_buckets 0 in
  let total_wall = ref 0 in
  Array.iter
    (fun r ->
      total_wall := !total_wall + r.wall_ns;
      (match r.outcome with
      | Done -> incr completed
      | Timeout -> incr timeouts
      | Error _ -> incr errors
      | Not_applicable _ -> incr inapplicable);
      match r.ratio with
      | None -> ()
      | Some q ->
        ratio_sum := !ratio_sum +. q;
        incr ratio_count;
        let bucket =
          if q >= 2.0 then histogram_buckets - 1
          else max 0 (min (histogram_buckets - 2) (int_of_float ((q -. 1.0) /. 0.1)))
        in
        hist.(bucket) <- hist.(bucket) + 1;
        (match !worst with
        | Some w when (match w.ratio with Some wq -> wq >= q | None -> false) -> ()
        | _ -> worst := Some r))
    records;
  {
    items = Array.length records;
    completed = !completed;
    timeouts = !timeouts;
    errors = !errors;
    not_applicable = !inapplicable;
    mean_ratio =
      (if !ratio_count = 0 then None
       else Some (!ratio_sum /. float_of_int !ratio_count));
    worst = !worst;
    histogram =
      Array.init histogram_buckets (fun i -> (1.0 +. (0.1 *. float_of_int i), hist.(i)));
    total_wall_ns = !total_wall;
    digest = payload_digest records;
  }

let summary_to_json s =
  obj
    [
      ("items", string_of_int s.items);
      ("completed", string_of_int s.completed);
      ("timeouts", string_of_int s.timeouts);
      ("errors", string_of_int s.errors);
      ("not_applicable", string_of_int s.not_applicable);
      ("mean_ratio", jfloat_opt s.mean_ratio);
      ( "worst",
        match s.worst with None -> "null" | Some r -> payload r );
      ( "histogram",
        "["
        ^ String.concat ","
            (List.map
               (fun (lo, c) ->
                 obj [ ("ratio_ge", jfloat lo); ("count", string_of_int c) ])
               (Array.to_list s.histogram))
        ^ "]" );
      ("total_wall_ns", string_of_int s.total_wall_ns);
      ("payload_digest", jstr s.digest);
    ]

let render_summary s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "items %d: %d done, %d timeout, %d error%s\n" s.items
       s.completed s.timeouts s.errors
       (if s.not_applicable > 0 then
          Printf.sprintf ", %d not applicable" s.not_applicable
        else ""));
  (match s.mean_ratio with
  | Some q -> Buffer.add_string buf (Printf.sprintf "mean ratio %.4f\n" q)
  | None -> ());
  (match s.worst with
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf "worst ratio %.4f (%s seed %s: makespan %s vs %s %s)\n"
         (Option.value ~default:0.0 r.ratio)
         r.algorithm
         (match r.seed with Some v -> string_of_int v | None -> "-")
         (match r.makespan with Some v -> string_of_int v | None -> "-")
         r.baseline
         (match r.optimum with Some v -> string_of_int v | None -> "-"))
  | None -> ());
  let shown = ref false in
  Array.iter
    (fun (lo, c) ->
      if c > 0 then begin
        shown := true;
        Buffer.add_string buf
          (Printf.sprintf "  ratio >= %.1f  %5d  %s\n" lo c (String.make (min c 60) '#'))
      end)
    s.histogram;
  if not !shown then Buffer.add_string buf "  (no ratios recorded)\n";
  Buffer.add_string buf (Printf.sprintf "payload digest %s\n" s.digest);
  Buffer.contents buf

(* ---- files ---- *)

let write_file path content =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content)

let write_jsonl path records = write_file path (jsonl records)
let write_summary path s = write_file path (summary_to_json s ^ "\n")
