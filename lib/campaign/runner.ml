open Crs_core
module Registry = Crs_algorithms.Registry

(* Default name set for single-instance comparison tables: every
   policy-backed algorithm plus the "optimal" exact dispatcher, in
   registry order. The specialized exact variants (opt-two, opt-two-pq,
   …) are opt-in by name. *)
let default_names =
  List.filter
    (fun n ->
      match Registry.kind (Registry.find_exn n) with
      | Registry.Exact -> String.equal n Registry.Names.optimal
      | _ -> true)
    Registry.names

let algorithm_names = Registry.names

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type 'a metered =
  | Value of 'a
  | Ran_out
  | Raised of string
  | Inapplicable of string

let metered fuel f =
  try Value (Crs_util.Fuel.with_fuel fuel f) with
  | Crs_util.Fuel.Out_of_fuel -> Ran_out
  | e -> Raised (Printexc.to_string e)

(* Evaluate one algorithm on one instance. The registry's capability
   check runs first, so an exact solver swept over a family outside its
   range records Not_applicable instead of crashing the item. Each phase
   (algorithm, then baseline) gets its own fuel budget; running out in
   either records a Timeout instead of hanging the campaign, and any
   other exception is captured so one poisoned instance never kills the
   run. *)
let evaluate ~fuel ~baseline ~algorithm instance =
  let counters = ref None in
  let makespan_result =
    match Registry.find algorithm with
    | None -> Raised (Printf.sprintf "unknown algorithm %s" algorithm)
    | Some solver -> (
      match Registry.applicability solver instance with
      | Stdlib.Error reason -> Inapplicable reason
      | Ok () ->
        metered fuel (fun () ->
            let out = Registry.solve solver instance in
            counters := Some out.Registry.counters;
            out.Registry.makespan))
  in
  let baseline_result =
    match makespan_result with
    | Ran_out | Raised _ | Inapplicable _ -> Value 0 (* unused *)
    | Value _ ->
      metered fuel (fun () ->
          match baseline with
          | Spec.Exact -> Crs_algorithms.Solver.optimal_makespan instance
          | Spec.Lower_bound -> Crs_algorithms.Solver.certified_lower_bound instance)
  in
  let outcome, makespan, optimum =
    match (makespan_result, baseline_result) with
    | Inapplicable reason, _ -> (Report.Not_applicable reason, None, None)
    | Ran_out, _ -> (Report.Timeout, None, None)
    | Raised msg, _ -> (Report.Error msg, None, None)
    | Value ms, Value opt -> (Report.Done, Some ms, Some opt)
    | Value ms, Ran_out -> (Report.Timeout, Some ms, None)
    | Value ms, Raised msg -> (Report.Error msg, Some ms, None)
    | Value _, Inapplicable _ -> assert false (* baseline is never checked *)
  in
  let ratio =
    match (makespan, optimum) with
    | Some ms, Some opt when opt > 0 -> Some (float_of_int ms /. float_of_int opt)
    | _ -> None
  in
  (outcome, makespan, optimum, ratio, !counters)

let run_item spec (item : Spec.item) =
  let t0 = now_ns () in
  let instance = Spec.instance spec ~seed:item.seed in
  let digest = Digest.to_hex (Digest.string (Instance.to_string instance)) in
  let outcome, makespan, optimum, ratio, counters =
    (* The item id is unique within a campaign, so root spans sort into
       a total order however the pool distributed the items — that is
       what makes Trace.signature pool-size independent. *)
    Crs_obs.Trace.with_span_l
      (fun () ->
        [
          ("id", Crs_obs.Trace.Int item.id);
          ("family", Crs_obs.Trace.Str (Spec.family_to_string spec.Spec.family));
          ("seed", Crs_obs.Trace.Int item.seed);
          ("algorithm", Crs_obs.Trace.Str item.algorithm);
        ])
      "campaign.item"
      (fun () ->
        evaluate ~fuel:spec.Spec.fuel ~baseline:spec.Spec.baseline
          ~algorithm:item.algorithm instance)
  in
  if Crs_obs.Metrics.enabled () then
    Crs_obs.Metrics.incr
      (Crs_obs.Metrics.counter
         ("campaign.outcome." ^ Report.outcome_label outcome));
  {
    Report.id = item.id;
    family = Spec.family_to_string spec.Spec.family;
    m = spec.Spec.m;
    n = spec.Spec.n;
    granularity = Some spec.Spec.granularity;
    seed = Some item.seed;
    digest;
    algorithm = item.algorithm;
    outcome;
    makespan;
    baseline = Spec.baseline_to_string spec.Spec.baseline;
    optimum;
    ratio;
    counters;
    wall_ns = now_ns () - t0;
  }

let run ?(domains = 1) spec =
  match Spec.validate spec with
  | Stdlib.Error msg -> invalid_arg ("Runner.run: " ^ msg)
  | Ok spec ->
    let items = Spec.expand spec in
    if domains <= 1 then Array.map (run_item spec) items
    else begin
      (* Submit chunked slices directly to the work-stealing executor.
         Chunks only bound the submission overhead; load balancing
         across uneven item costs comes from stealing, so a domain that
         drew the cheap seeds takes slices from the one that drew the
         brute-force-heavy ones. Results stay in item order because
         each slice writes only its own report slots. *)
      let chunk = Stdlib.max 1 (Array.length items / (domains * 8)) in
      Crs_exec.Exec.map ~chunk ~domains (run_item spec) items
    end

let compare_records ?(names = default_names) ?(baseline = Spec.Exact) ?fuel
    ~family instance =
  let digest = Digest.to_hex (Digest.string (Instance.to_string instance)) in
  List.mapi
    (fun id name ->
      let t0 = now_ns () in
      let outcome, makespan, optimum, ratio, counters =
        evaluate ~fuel ~baseline ~algorithm:name instance
      in
      {
        Report.id;
        family;
        m = Instance.m instance;
        n = Instance.n_max instance;
        granularity = None;
        seed = None;
        digest;
        algorithm = name;
        outcome;
        makespan;
        baseline = Spec.baseline_to_string baseline;
        optimum;
        ratio;
        counters;
        wall_ns = now_ns () - t0;
      })
    names
