module Q = Crs_num.Rational
open Crs_core

type stats = { checks : int; accepted : int }

(* Requirement targets, tried nearest-first so "round toward {0,1/2,1}"
   prefers the smallest perturbation that keeps the failure. *)
let req_targets r =
  let targets = [ Q.zero; Q.half; Q.one ] in
  List.filter (fun t -> not (Q.equal t r)) targets
  |> List.sort (fun a b ->
         let d x = Q.abs (Q.sub x r) in
         let c = Q.compare (d a) (d b) in
         if c <> 0 then c else Q.compare a b)

let replace_job rows i j job =
  let rows = Array.map Array.copy rows in
  rows.(i).(j) <- job;
  rows

let drop_job rows i j =
  let rows = Array.map Array.copy rows in
  rows.(i) <- Array.append (Array.sub rows.(i) 0 j)
      (Array.sub rows.(i) (j + 1) (Array.length rows.(i) - j - 1));
  rows

let candidates instance =
  let m = Instance.m instance in
  let rows = Instance.rows instance in
  let acc = ref [] in
  let push rows = acc := Instance.create rows :: !acc in
  (* 4. shrink sizes to 1 (reverse build order => tried last) *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j job ->
          if not (Job.is_unit_size job) then
            push (replace_job rows i j (Job.unit (Job.requirement job))))
        row)
    rows;
  (* 3. round requirements toward {0, 1/2, 1}, nearest first *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j job ->
          List.iter
            (fun t ->
              push
                (replace_job rows i j (Job.make ~requirement:t ~size:(Job.size job))))
            (List.rev (req_targets (Job.requirement job))))
        row)
    rows;
  (* 2. drop single jobs, later jobs first (keeps prefixes intact) *)
  for i = m - 1 downto 0 do
    for j = 0 to Array.length rows.(i) - 1 do
      push (drop_job rows i j)
    done
  done;
  (* 1. drop whole processors (the biggest single step, tried first) *)
  if m > 1 then
    for i = m - 1 downto 0 do
      acc :=
        Instance.sub_processors instance
          (List.filter (fun k -> k <> i) (List.init m (fun k -> k)))
        :: !acc
    done;
  !acc

let minimize ?(max_checks = 10_000) ~failing instance =
  if not (failing instance) then
    invalid_arg "Shrink.minimize: instance does not fail the oracle";
  let checks = ref 1 and accepted = ref 0 in
  let current = ref instance in
  let progress = ref true in
  (try
     while !progress do
       progress := false;
       let rec try_candidates = function
         | [] -> ()
         | cand :: rest ->
           if !checks >= max_checks then raise Exit;
           incr checks;
           if failing cand then begin
             current := cand;
             incr accepted;
             progress := true
             (* restart the scan on the simplified instance *)
           end
           else try_candidates rest
       in
       try_candidates (candidates !current)
     done
   with Exit -> ());
  (!current, { checks = !checks; accepted = !accepted })
