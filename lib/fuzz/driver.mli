(** Fuzz-campaign driver: sweep an oracle over a seeded generator family
    on the {!Crs_campaign.Pool} domain pool with fuel-based timeouts.

    Determinism contract (same as campaign runs): the instance for a
    seed depends only on the seed and the config, fuel is work-based,
    and {!render} contains no timing — so the same config produces a
    byte-identical report at any pool size, twice in a row. *)

type config = {
  family : Crs_campaign.Spec.family;
  m : int;
  n : int;  (** jobs per processor *)
  granularity : int;
  seed_lo : int;
  seed_hi : int;  (** inclusive; must be >= [seed_lo] *)
  fuel : int option;  (** per-seed work budget; [None] = unmetered *)
}

val default_config : config
(** uniform, m = 3, n = 3, granularity = 10, seeds 1..50, fuel 2M. *)

val instance_of : config -> seed:int -> Crs_core.Instance.t
(** The seed's instance under the campaign seeding discipline
    ([Random.State.make [|seed|]]). *)

type outcome =
  | Pass
  | Fail of string  (** the oracle's counterexample message *)
  | Timeout  (** the fuel budget ran out *)
  | Skip  (** the oracle does not apply to this seed's instance *)

type case = { seed : int; digest : string; outcome : outcome }

type report = {
  oracle : string;
  config : config;
  cases : case array;  (** one per seed, in seed order *)
  passes : int;
  failures : int;
  timeouts : int;
  skips : int;
}

val run : ?domains:int -> config -> Oracle.t -> report
(** Evaluate every seed of the range. [domains > 1] fans items out on a
    {!Crs_campaign.Pool}; results are identical at any pool size.
    @raise Invalid_argument on an empty/inverted seed range or
    non-positive m/n/granularity. *)

val failing_cases : report -> (int * string) list
(** (seed, message) for every [Fail] case, in seed order. *)

val shrink_failure :
  ?max_checks:int -> config -> Oracle.t -> seed:int -> Crs_core.Instance.t * Shrink.stats
(** Re-derive the seed's instance and minimize it under "the oracle
    still fails" (fuel-metered with the config's budget; running out
    counts as not-failing, so shrinking never hangs). *)

val render : report -> string
(** Deterministic multi-line report: header, one line per non-pass case,
    summary counts and a digest over the whole text. *)

val render_digest : report -> string
(** MD5 hex of {!render}; the byte-identity fingerprint. *)
