(** Persisted regression corpus: pinned counterexamples, near-misses and
    seed-stability goldens under [data/corpus/*.json].

    Each file is one flat JSON object (schema [crs-fuzz-corpus/1],
    hand-rolled writer with stable key order — byte-stable like the
    campaign reports). An entry pins an instance (canonical text format)
    together with the oracle it must pass (or, for an open bug, still
    fail), a deterministic digest, and — for generator goldens — the
    seed and generator parameters that produced it, so replay also
    detects a silent [Random.State] or generator change. *)

type expectation = Pass | Fail

type entry = {
  name : string;  (** file basename without [.json] *)
  oracle : string;  (** {!Oracle.t} name this entry is replayed against *)
  expect : expectation;
      (** [Pass] for pinned regressions and near-misses; [Fail] for a
          freshly pinned open counterexample (flip to [Pass] once the
          bug is fixed) *)
  note : string;
  family : string option;  (** campaign generator family, when seeded *)
  seed : int option;
  gen_m : int option;
  gen_n : int option;
  gen_granularity : int option;
  instance_text : string;  (** [Instance.to_string] canonical form *)
  digest : string;  (** {!digest_of} of oracle and instance text *)
}

val digest_of : oracle:string -> instance_text:string -> string
(** MD5 hex over oracle name + instance text; deterministic file
    fingerprint, independent of JSON formatting. *)

val make :
  name:string ->
  oracle:string ->
  ?expect:expectation ->
  ?note:string ->
  ?family:string ->
  ?seed:int ->
  ?gen_m:int ->
  ?gen_n:int ->
  ?gen_granularity:int ->
  Crs_core.Instance.t ->
  entry
(** Build an entry with the digest filled in. [expect] defaults to
    [Pass]; the generator fields must either all be given or all be
    omitted. *)

val to_json : entry -> string
val of_json : string -> (entry, string) result

val save : dir:string -> entry -> string
(** Write [<dir>/<name>.json] (creating [dir]), return the path. *)

val load_file : string -> (entry, string) result
val load_dir : string -> (string * (entry, string) result) list
(** All [*.json] entries of a directory in sorted filename order. *)

val replay : entry -> (unit, string) result
(** Full regression check: digest matches, the instance parses, the
    seeded generator (when pinned) still reproduces the exact instance,
    the named oracle exists and applies, and its verdict matches
    [expect]. *)
