(* Independent schedule certifier. Deliberately does NOT call
   Execution.run or Schedule.check_feasible: the point is a second,
   structurally different derivation of the same semantics. Execution
   walks step-major (all processors per step); we walk processor-major
   (all steps per job), so an indexing or carry bug in one cannot hide
   in the other. *)

module Q = Crs_num.Rational
open Crs_core

type verdict = { completion : int array array; makespan : int }

let feasible schedule =
  let exception Bad of string in
  (* One fetch of the underlying matrix (read-only) for the whole
     sweep: per-cell [Schedule.share] calls repeat range checks the
     loop bounds already guarantee. *)
  let rows = Schedule.unsafe_rows schedule in
  let m = Schedule.m schedule in
  try
    for step = 0 to Array.length rows - 1 do
      let row = rows.(step) in
      let total = ref Q.zero in
      for proc = 0 to m - 1 do
        let s = row.(proc) in
        if Q.(s < zero) || Q.(s > one) then
          raise
            (Bad
               (Printf.sprintf "certify: share out of [0,1] at step %d, proc %d: %s"
                  step proc (Q.to_string s)));
        total := Q.add !total s
      done;
      if Q.(!total > one) then
        raise
          (Bad
             (Printf.sprintf "certify: resource overused at step %d: total %s > 1"
                step (Q.to_string !total)))
    done;
    Ok ()
  with Bad msg -> Error msg

(* Walk one processor's job sequence through the schedule. Every step
   belongs to at most one job (a job finishing mid-step wastes the rest
   of the step: the next job starts at the following step). Returns the
   1-based completion steps, or an error naming the first job the
   horizon leaves unfinished. *)
let walk_processor instance schedule i =
  let exception Stuck of int * Q.t in
  let rows = Schedule.unsafe_rows schedule in
  let horizon = Array.length rows in
  let jobs = Instance.jobs_on instance i in
  let completion = Array.make (Array.length jobs) 0 in
  let step = ref 0 in
  try
    Array.iteri
      (fun j job ->
        let r = Job.requirement job in
        let remaining = ref (Job.size job) in
        while Q.(!remaining > zero) do
          if !step >= horizon then raise (Stuck (j, !remaining));
          let share = rows.(!step).(i) in
          (* Eq. 1: a zero-requirement job runs at full speed on any
             share; otherwise speed = min(share / r, 1). *)
          let speed = if Q.is_zero r then Q.one else Q.min (Q.div share r) Q.one in
          remaining := Q.sub !remaining (Q.min speed !remaining);
          incr step;
          if Q.is_zero !remaining then completion.(j) <- !step
        done)
      jobs;
    Ok completion
  with Stuck (j, rem) ->
    Error
      (Printf.sprintf
         "certify: job (%d,%d) unfinished at horizon %d: remaining volume %s"
         (i + 1) (j + 1) horizon (Q.to_string rem))

let derive instance schedule =
  if Schedule.m schedule <> Instance.m instance then
    Error
      (Printf.sprintf "certify: schedule width %d but instance has m = %d"
         (Schedule.m schedule) (Instance.m instance))
  else
    match feasible schedule with
    | Error _ as e -> e
    | Ok () ->
      let exception Bad of string in
      (try
         let completion =
           Array.init (Instance.m instance) (fun i ->
               match walk_processor instance schedule i with
               | Ok c -> c
               | Error msg -> raise (Bad msg))
         in
         (* Job order: along a processor, completion steps must be
            strictly increasing (the paper's jobs are a fixed sequence;
            two jobs of one processor can never share a step). *)
         Array.iteri
           (fun i c ->
             Array.iteri
               (fun j step ->
                 if j > 0 && step <= c.(j - 1) then
                   raise
                     (Bad
                        (Printf.sprintf
                           "certify: job order violated on proc %d: job %d ends \
                            at step %d, job %d at step %d"
                           (i + 1) j c.(j - 1) (j + 1) step)))
               c)
           completion;
         let makespan =
           Array.fold_left
             (fun acc c -> Array.fold_left Stdlib.max acc c)
             0 completion
         in
         Ok { completion; makespan }
       with Bad msg -> Error msg)

let check instance schedule ~claimed =
  Crs_obs.Trace.with_span_l
    (fun () -> [ ("claimed", Crs_obs.Trace.Int claimed) ])
    "certify.check"
    (fun () ->
      match derive instance schedule with
      | Error _ as e -> e
      | Ok v ->
        if v.makespan <> claimed then
          Error
            (Printf.sprintf
               "certify: claimed makespan %d but witness achieves %d" claimed
               v.makespan)
        else Ok v)

(* Wire into the registry's ~certify:true post-pass. The hook lives in
   crs_algorithms (which cannot depend on this library), so it is a
   settable function installed at link time. *)
let install () =
  Crs_algorithms.Registry.install_certifier (fun instance schedule ~claimed ->
      match check instance schedule ~claimed with
      | Ok _ -> Ok ()
      | Error msg -> Error msg)

let () = install ()
