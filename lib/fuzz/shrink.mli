(** Greedy instance minimizer for failing oracles.

    Given a predicate that holds on a counterexample ("the oracle still
    fails here"), repeatedly tries simplifications — drop a processor,
    drop a job, round a requirement toward {0, 1/2, 1}, shrink a job
    size to 1 — keeping each step only if the predicate still holds, and
    stops at a local minimum. Deterministic: candidates are enumerated
    in a fixed order and the first accepted one restarts the scan. *)

type stats = {
  checks : int;  (** predicate evaluations spent *)
  accepted : int;  (** simplification steps that kept the failure *)
}

val candidates : Crs_core.Instance.t -> Crs_core.Instance.t list
(** All one-step simplifications of an instance, in the fixed
    enumeration order described above. Exposed for tests. *)

val minimize :
  ?max_checks:int ->
  failing:(Crs_core.Instance.t -> bool) ->
  Crs_core.Instance.t ->
  Crs_core.Instance.t * stats
(** [minimize ~failing instance] requires [failing instance = true] and
    returns a locally minimal instance on which [failing] still holds,
    i.e. no single candidate simplification of the result fails.
    [max_checks] (default [10_000]) caps predicate evaluations; on
    exhaustion the best instance so far is returned. The predicate must
    be total: it should return [false] (not raise) on instances the
    underlying oracle does not apply to. *)
