open Crs_core
module Spec = Crs_campaign.Spec

type config = {
  family : Spec.family;
  m : int;
  n : int;
  granularity : int;
  seed_lo : int;
  seed_hi : int;
  fuel : int option;
}

let default_config =
  {
    family = Spec.Uniform;
    m = 3;
    n = 3;
    granularity = 10;
    seed_lo = 1;
    seed_hi = 50;
    fuel = Some 2_000_000;
  }

(* Reuse the campaign spec's generator dispatch so `crsched fuzz`,
   `crsched campaign` and the corpus goldens share one seeding
   discipline. The algorithm/baseline fields are irrelevant here. *)
let spec_of config =
  {
    Spec.default with
    Spec.family = config.family;
    m = config.m;
    n = config.n;
    granularity = config.granularity;
    seed_lo = config.seed_lo;
    seed_hi = config.seed_hi;
    fuel = config.fuel;
  }

let instance_of config ~seed = Spec.instance (spec_of config) ~seed

let validate config =
  if config.m < 1 then invalid_arg "Driver.run: m must be at least 1";
  if config.n < 0 then invalid_arg "Driver.run: n must be non-negative";
  if config.granularity < 1 then
    invalid_arg "Driver.run: granularity must be at least 1";
  if config.seed_hi < config.seed_lo then
    invalid_arg
      (Printf.sprintf "Driver.run: empty seed range %d..%d" config.seed_lo
         config.seed_hi)

type outcome = Pass | Fail of string | Timeout | Skip

type case = { seed : int; digest : string; outcome : outcome }

type report = {
  oracle : string;
  config : config;
  cases : case array;
  passes : int;
  failures : int;
  timeouts : int;
  skips : int;
}

let outcome_label = function
  | Pass -> "pass"
  | Fail _ -> "fail"
  | Timeout -> "timeout"
  | Skip -> "skip"

let evaluate config (oracle : Oracle.t) seed =
  let instance = instance_of config ~seed in
  let digest = Digest.to_hex (Digest.string (Instance.to_string instance)) in
  (* Seed is unique within a run, so these root spans merge into a total
     order whatever the pool size (same discipline as campaign.item). *)
  let outcome =
    Crs_obs.Trace.with_span_l
      (fun () ->
        [
          ("oracle", Crs_obs.Trace.Str oracle.Oracle.name);
          ("seed", Crs_obs.Trace.Int seed);
        ])
      "fuzz.case"
      (fun () ->
        let outcome =
          if not (oracle.Oracle.applies instance) then Skip
          else
            match
              Crs_util.Fuel.with_fuel config.fuel (fun () ->
                  oracle.Oracle.check instance)
            with
            | Ok () -> Pass
            | Error msg -> Fail msg
            | exception Crs_util.Fuel.Out_of_fuel -> Timeout
            | exception e -> Fail ("raised " ^ Printexc.to_string e)
        in
        if Crs_obs.Trace.enabled () then
          Crs_obs.Trace.add_attrs
            [ ("outcome", Crs_obs.Trace.Str (outcome_label outcome)) ];
        outcome)
  in
  if Crs_obs.Metrics.enabled () then
    Crs_obs.Metrics.incr
      (Crs_obs.Metrics.counter ("fuzz.outcome." ^ outcome_label outcome));
  { seed; digest; outcome }

let run ?(domains = 1) config (oracle : Oracle.t) =
  validate config;
  let seeds =
    Array.init (config.seed_hi - config.seed_lo + 1) (fun k -> config.seed_lo + k)
  in
  let eval = evaluate config oracle in
  let cases =
    if domains <= 1 then Array.map eval seeds
    else begin
      let chunk = Stdlib.max 1 (Array.length seeds / (domains * 8)) in
      Crs_campaign.Pool.map ~chunk ~domains eval seeds
    end
  in
  let count p = Array.fold_left (fun acc c -> if p c.outcome then acc + 1 else acc) 0 cases in
  {
    oracle = oracle.Oracle.name;
    config;
    cases;
    passes = count (fun o -> o = Pass);
    failures = count (function Fail _ -> true | _ -> false);
    timeouts = count (fun o -> o = Timeout);
    skips = count (fun o -> o = Skip);
  }

let failing_cases report =
  Array.to_list report.cases
  |> List.filter_map (fun c ->
         match c.outcome with Fail msg -> Some (c.seed, msg) | _ -> None)

let shrink_failure ?max_checks config (oracle : Oracle.t) ~seed =
  let failing instance =
    oracle.Oracle.applies instance
    && (try
          Crs_util.Fuel.with_fuel config.fuel (fun () ->
              Result.is_error (oracle.Oracle.check instance))
        with Crs_util.Fuel.Out_of_fuel | _ -> false)
  in
  Crs_obs.Trace.with_span_l
    (fun () ->
      [
        ("oracle", Crs_obs.Trace.Str oracle.Oracle.name);
        ("seed", Crs_obs.Trace.Int seed);
      ])
    "fuzz.shrink"
    (fun () -> Shrink.minimize ?max_checks ~failing (instance_of config ~seed))

let render report =
  let c = report.config in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz oracle=%s family=%s m=%d n=%d g=%d seeds=%d..%d fuel=%s\n"
       report.oracle
       (Spec.family_to_string c.family)
       c.m c.n c.granularity c.seed_lo c.seed_hi
       (match c.fuel with None -> "none" | Some b -> string_of_int b));
  Array.iter
    (fun case ->
      match case.outcome with
      | Pass -> ()
      | Fail msg ->
        Buffer.add_string buf
          (Printf.sprintf "  seed %d FAIL: %s (digest %s)\n" case.seed msg
             case.digest)
      | Timeout ->
        Buffer.add_string buf (Printf.sprintf "  seed %d timeout\n" case.seed)
      | Skip -> ())
    report.cases;
  Buffer.add_string buf
    (Printf.sprintf "%d seeds: %d pass, %d fail, %d timeout, %d skip\n"
       (Array.length report.cases)
       report.passes report.failures report.timeouts report.skips);
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "report digest %s\n" (Digest.to_hex (Digest.string body))

let render_digest report = Digest.to_hex (Digest.string (render report))
