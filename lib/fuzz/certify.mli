(** Independent, exact-arithmetic schedule certifier.

    [Execution] is the reference semantics used by every solver in the
    repo; if it is wrong, solvers and their tests are wrong together.
    This module re-derives job progress [min(R_i(t)/r_ij, 1)] from a
    witness schedule alone, sharing nothing with [Execution] beyond the
    {!Crs_core.Schedule} and {!Crs_core.Instance} types: it checks
    feasibility itself and walks each processor's job sequence with its
    own loop (processor-major, not step-major), so a bookkeeping bug in
    the engine cannot silently certify its own output.

    All arithmetic is exact ({!Crs_num.Rational}). *)

type verdict = {
  completion : int array array;
      (** [completion.(i).(j)] is the 1-based step in which processor
          [i]'s [j]-th job finishes. *)
  makespan : int;  (** latest completion step; [0] for a jobless instance *)
}

val feasible : Crs_core.Schedule.t -> (unit, string) result
(** Independent re-check of Definition 1: every share in [[0,1]] and
    every step total at most [1]. The error names the offending step,
    processor and value. *)

val derive : Crs_core.Instance.t -> Crs_core.Schedule.t -> (verdict, string) result
(** Re-derive completion times of every job under the witness schedule.
    Errors: width mismatch, infeasible schedule, a job that the horizon
    leaves unfinished (named, with its remaining volume), or a
    non-increasing completion order along a processor. *)

val check :
  Crs_core.Instance.t ->
  Crs_core.Schedule.t ->
  claimed:int ->
  (verdict, string) result
(** {!derive} plus the makespan claim: the witness must achieve exactly
    [claimed]. This is the full certificate used by
    [Registry.solve ~certify:true]. *)

val install : unit -> unit
(** (Re-)install {!check} as the registry's certifier hook
    ([Crs_algorithms.Registry.install_certifier]). Runs automatically
    when this module is linked; exposed so tests that swap the hook can
    restore it. *)
