module Q = Crs_num.Rational
open Crs_core
module Registry = Crs_algorithms.Registry

type t = {
  name : string;
  about : string;
  applies : Instance.t -> bool;
  check : Instance.t -> (unit, string) result;
}

(* The paper's approximation guarantees as data: name -> (fun m ->
   (num, den)) meaning makespan * den <= num * optimum. *)
let approx_bounds =
  [
    (Registry.Names.greedy_balance, fun m -> ((2 * m) - 1, m));
    (Registry.Names.round_robin, fun _ -> (2, 1));
  ]

let optimal_makespan instance =
  (Registry.solve (Registry.find_exn Registry.Names.optimal) instance)
    .Registry.makespan

let unit_size = Instance.is_unit_size

(* Exact solvers are exponential; every oracle that runs one guards on
   instance size so a fuzz sweep cannot wander into hour-long solves.
   The fuel budget is the hard backstop; this is the soft one. *)
let small instance = Instance.total_jobs instance <= 10 && Instance.m instance <= 5

let exact_agreement =
  {
    name = "exact-agreement";
    about = "all applicable exact-kind solvers report one makespan";
    applies = (fun i -> unit_size i && small i);
    check =
      (fun instance ->
        let results =
          List.filter_map
            (fun solver ->
              if Registry.kind solver <> Registry.Exact then None
              else
                match Registry.applicability solver instance with
                | Error _ -> None
                | Ok () ->
                  Some
                    ( Registry.name solver,
                      (Registry.solve solver instance).Registry.makespan ))
            Registry.all
        in
        match results with
        | [] | [ _ ] -> Ok ()
        | (ref_name, ref_ms) :: rest -> (
          match List.find_opt (fun (_, ms) -> ms <> ref_ms) rest with
          | None -> Ok ()
          | Some (bad_name, bad_ms) ->
            Error
              (Printf.sprintf "%s = %d but %s = %d" ref_name ref_ms bad_name
                 bad_ms)));
  }

let witness_certified =
  {
    name = "witness-certified";
    about = "every witness schedule passes the independent certifier";
    (* Policy witnesses are cheap, so the guard is looser than [small];
       the exponential exact solvers still only run on small instances. *)
    applies = (fun i -> Instance.total_jobs i <= 40 && Instance.m i <= 8);
    check =
      (fun instance ->
        let exception Bad of string in
        try
          List.iter
            (fun solver ->
              if
                Registry.witness solver
                && (Registry.kind solver <> Registry.Exact || small instance)
                && Registry.applicability solver instance = Ok ()
              then begin
                let out = Registry.solve solver instance in
                match out.Registry.schedule with
                | None -> raise (Bad (Registry.name solver ^ ": no witness"))
                | Some schedule -> (
                  match
                    Certify.check instance schedule ~claimed:out.Registry.makespan
                  with
                  | Ok _ -> ()
                  | Error msg -> raise (Bad (Registry.name solver ^ ": " ^ msg)))
              end)
            Registry.all;
          Ok ()
        with Bad msg -> Error msg);
  }

let approx_bounds_hold =
  {
    name = "approx-bounds";
    about = "optimum <= makespan <= bound * optimum per registered policy";
    applies = (fun i -> unit_size i && small i);
    check =
      (fun instance ->
        let opt = optimal_makespan instance in
        let exception Bad of string in
        try
          List.iter
            (fun (name, bound) ->
              let solver = Registry.find_exn name in
              if Registry.applicability solver instance = Ok () then begin
                let ms = (Registry.solve solver instance).Registry.makespan in
                let num, den = bound (Instance.m instance) in
                if ms < opt then
                  raise
                    (Bad
                       (Printf.sprintf "%s = %d below optimum %d" name ms opt));
                if ms * den > num * opt then
                  raise
                    (Bad
                       (Printf.sprintf "%s = %d exceeds %d/%d * optimum %d" name
                          ms num den opt))
              end)
            approx_bounds;
          Ok ()
        with Bad msg -> Error msg);
  }

let permutation_invariance =
  {
    name = "permutation-invariance";
    about = "optimal makespan is invariant under processor reversal";
    applies = (fun i -> unit_size i && small i && Instance.m i >= 2);
    check =
      (fun instance ->
        let m = Instance.m instance in
        let reversed =
          Instance.sub_processors instance (List.init m (fun i -> m - 1 - i))
        in
        let a = optimal_makespan instance and b = optimal_makespan reversed in
        if a = b then Ok ()
        else
          Error
            (Printf.sprintf "optimum %d but %d after reversing processors" a b));
  }

let zero_pad_instance instance =
  Instance.concat_processors instance
    (Instance.create [| [| Job.unit Q.zero |] |])

let zero_pad_invariance =
  {
    name = "zero-pad";
    about = "a new processor with one zero-requirement job keeps the optimum";
    applies =
      (fun i -> unit_size i && small i && Instance.total_jobs i >= 1);
    check =
      (fun instance ->
        let a = optimal_makespan instance in
        let b = optimal_makespan (zero_pad_instance instance) in
        if a = b then Ok ()
        else
          Error
            (Printf.sprintf
               "optimum %d but %d after zero-requirement padding" a b));
  }

let raise_requirements instance =
  Instance.map_jobs
    (fun _ _ job ->
      Job.make
        ~requirement:
          (Q.min Q.one (Q.mul (Q.of_ints 3 2) (Job.requirement job)))
        ~size:(Job.size job))
    instance

let requirement_monotonicity =
  {
    name = "monotonicity";
    about = "raising requirements (r -> min(1, 3r/2)) never lowers the optimum";
    applies = (fun i -> unit_size i && small i);
    check =
      (fun instance ->
        let a = optimal_makespan instance in
        let b = optimal_makespan (raise_requirements instance) in
        if b >= a then Ok ()
        else
          Error
            (Printf.sprintf
               "optimum dropped from %d to %d under a requirement increase" a b));
  }

let all =
  [
    exact_agreement;
    witness_certified;
    approx_bounds_hold;
    permutation_invariance;
    zero_pad_invariance;
    requirement_monotonicity;
  ]

let names = List.map (fun o -> o.name) all
let find wanted = List.find_opt (fun o -> String.equal o.name wanted) all

let differential ~name ?(about = "candidate = reference")
    ?(applies = fun _ -> true) ~reference ~candidate () =
  {
    name;
    about;
    applies;
    check =
      (fun instance ->
        let r = reference instance and c = candidate instance in
        if r = c then Ok ()
        else Error (Printf.sprintf "candidate = %d but reference = %d" c r));
  }
