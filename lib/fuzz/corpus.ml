open Crs_core

type expectation = Pass | Fail

let expectation_to_string = function Pass -> "pass" | Fail -> "fail"

let expectation_of_string = function
  | "pass" -> Some Pass
  | "fail" -> Some Fail
  | _ -> None

type entry = {
  name : string;
  oracle : string;
  expect : expectation;
  note : string;
  family : string option;
  seed : int option;
  gen_m : int option;
  gen_n : int option;
  gen_granularity : int option;
  instance_text : string;
  digest : string;
}

let digest_of ~oracle ~instance_text =
  Digest.to_hex (Digest.string (oracle ^ "\n" ^ instance_text))

let make ~name ~oracle ?(expect = Pass) ?(note = "") ?family ?seed ?gen_m ?gen_n
    ?gen_granularity instance =
  let instance_text = Instance.to_string instance in
  let seeded = [ seed <> None; gen_m <> None; gen_n <> None;
                 gen_granularity <> None; family <> None ] in
  if List.exists (fun b -> b) seeded && not (List.for_all (fun b -> b) seeded)
  then
    invalid_arg
      "Corpus.make: family/seed/gen_m/gen_n/gen_granularity must be given \
       together";
  {
    name;
    oracle;
    expect;
    note;
    family;
    seed;
    gen_m;
    gen_n;
    gen_granularity;
    instance_text;
    digest = digest_of ~oracle ~instance_text;
  }

(* ---- JSON encoding (shared stable encoder, see Crs_util.Stable_json;
   the pinned corpus digests depend on this staying byte-identical) ---- *)

let json_escape = Crs_util.Stable_json.escape
let jstr = Crs_util.Stable_json.str
let jstr_opt = Crs_util.Stable_json.str_opt
let jint_opt = Crs_util.Stable_json.int_opt

let to_json e =
  Crs_util.Stable_json.obj
    [
      ("schema", jstr "crs-fuzz-corpus/1");
      ("name", jstr e.name);
      ("oracle", jstr e.oracle);
      ("expect", jstr (expectation_to_string e.expect));
      ("note", jstr e.note);
      ("family", jstr_opt e.family);
      ("seed", jint_opt e.seed);
      ("m", jint_opt e.gen_m);
      ("n", jint_opt e.gen_n);
      ("granularity", jint_opt e.gen_granularity);
      ("instance", jstr e.instance_text);
      ("digest", jstr e.digest);
    ]

(* ---- minimal parser for the writer's own output: flat objects whose
   values are strings, ints or null. Not a general JSON parser. ---- *)

let find_key text key =
  let needle = "\"" ^ json_escape key ^ "\":" in
  let n = String.length text and k = String.length needle in
  let rec go i =
    if i + k > n then None
    else if String.sub text i k = needle then Some (i + k)
    else go (i + 1)
  in
  go 0

let parse_string text pos =
  let n = String.length text in
  if pos >= n || text.[pos] <> '"' then Error "expected a string value"
  else begin
    let buf = Buffer.create 64 in
    let rec go i =
      if i >= n then Error "unterminated string"
      else
        match text.[i] with
        | '"' -> Ok (Buffer.contents buf)
        | '\\' ->
          if i + 1 >= n then Error "dangling escape"
          else begin
            (match text.[i + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              if i + 5 >= n then failwith "short \\u escape"
              else
                Buffer.add_char buf
                  (Char.chr (int_of_string ("0x" ^ String.sub text (i + 2) 4)))
            | c -> failwith (Printf.sprintf "unsupported escape \\%c" c));
            go (i + if text.[i + 1] = 'u' then 6 else 2)
          end
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    try go (pos + 1) with Failure msg -> Error msg
  end

let string_field text key =
  match find_key text key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some pos -> parse_string text pos

let opt_of = function
  | Error _ -> None
  | Ok v -> Some v

let int_field_opt text key =
  match find_key text key with
  | None -> None
  | Some pos ->
    let n = String.length text in
    let stop = ref pos in
    while
      !stop < n && (match text.[!stop] with '-' | '0' .. '9' -> true | _ -> false)
    do
      incr stop
    done;
    if !stop = pos then None else int_of_string_opt (String.sub text pos (!stop - pos))

let string_field_opt text key =
  match find_key text key with
  | None -> None
  | Some pos ->
    if pos + 4 <= String.length text && String.sub text pos 4 = "null" then None
    else opt_of (parse_string text pos)

let of_json text =
  let ( let* ) = Result.bind in
  let* schema = string_field text "schema" in
  if schema <> "crs-fuzz-corpus/1" then
    Error (Printf.sprintf "unknown corpus schema %S" schema)
  else
    let* name = string_field text "name" in
    let* oracle = string_field text "oracle" in
    let* expect_s = string_field text "expect" in
    let* expect =
      match expectation_of_string expect_s with
      | Some e -> Ok e
      | None -> Error (Printf.sprintf "bad expect value %S" expect_s)
    in
    let* note = string_field text "note" in
    let* instance_text = string_field text "instance" in
    let* digest = string_field text "digest" in
    Ok
      {
        name;
        oracle;
        expect;
        note;
        family = string_field_opt text "family";
        seed = int_field_opt text "seed";
        gen_m = int_field_opt text "m";
        gen_n = int_field_opt text "n";
        gen_granularity = int_field_opt text "granularity";
        instance_text;
        digest;
      }

(* ---- files ---- *)

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (e.name ^ ".json") in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json e ^ "\n"));
  path

let load_file path =
  try of_json (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> [ (dir, Error msg) ]
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load_file path))

(* Regenerate the pinned instance from its seed through the same
   campaign seeding discipline ([Random.State.make [|seed|]]); a silent
   generator or PRNG change then fails replay loudly. *)
let regenerate e =
  match (e.family, e.seed, e.gen_m, e.gen_n, e.gen_granularity) with
  | Some family, Some seed, Some m, Some n, Some granularity -> (
    match Crs_campaign.Spec.family_of_string family with
    | None -> Some (Error (Printf.sprintf "unknown generator family %S" family))
    | Some fam ->
      let spec = { Crs_campaign.Spec.default with family = fam; m; n; granularity } in
      Some (Ok (Crs_campaign.Spec.instance spec ~seed)))
  | None, None, None, None, None -> None
  | _ -> Some (Error "partial generator pin (family/seed/m/n/granularity)")

let replay e =
  let expected_digest = digest_of ~oracle:e.oracle ~instance_text:e.instance_text in
  if e.digest <> expected_digest then
    Error
      (Printf.sprintf "digest mismatch: recorded %s, computed %s" e.digest
         expected_digest)
  else
    match Instance.of_string e.instance_text with
    | Error msg -> Error ("pinned instance does not parse: " ^ msg)
    | Ok instance -> (
      let seed_ok =
        match regenerate e with
        | None -> Ok ()
        | Some (Error msg) -> Error msg
        | Some (Ok regen) ->
          let regen_text = Instance.to_string regen in
          if String.equal regen_text e.instance_text then Ok ()
          else
            Error
              (Printf.sprintf
                 "seed %s no longer reproduces the pinned instance:\n\
                  pinned:\n%sregenerated:\n%s"
                 (match e.seed with Some s -> string_of_int s | None -> "?")
                 e.instance_text regen_text)
      in
      match seed_ok with
      | Error _ as err -> err
      | Ok () -> (
        match Oracle.find e.oracle with
        | None ->
          Error
            (Printf.sprintf "unknown oracle %S (valid: %s)" e.oracle
               (String.concat ", " Oracle.names))
        | Some oracle ->
          if not (oracle.Oracle.applies instance) then
            Error (Printf.sprintf "oracle %s does not apply" e.oracle)
          else (
            match (oracle.Oracle.check instance, e.expect) with
            | Ok (), Pass | Error _, Fail -> Ok ()
            | Error msg, Pass ->
              Error (Printf.sprintf "expected pass, oracle failed: %s" msg)
            | Ok (), Fail ->
              Error
                "expected a failing counterexample but the oracle now passes \
                 (bug fixed? flip expect to \"pass\")")))
