(** Differential and metamorphic test oracles, as data.

    An oracle is a named property of a single instance that the solver
    stack must satisfy: cross-solver equality on exact kinds, the
    paper's approximation bounds, certification of every witness
    schedule, and metamorphic invariances (processor permutation,
    zero-requirement padding, requirement monotonicity). The fuzz driver
    ({!Driver}), the corpus replayer ({!Corpus}) and
    [crsched fuzz --oracle <name>] all look oracles up here by name. *)

type t = {
  name : string;
  about : string;  (** one line for [--help] and reports *)
  applies : Crs_core.Instance.t -> bool;
      (** instances the property is defined on (e.g. exact solvers need
          unit sizes); the driver records non-applicable seeds as skips *)
  check : Crs_core.Instance.t -> (unit, string) result;
      (** [Error msg] is a counterexample; [msg] names the violated
          relation and the values on both sides *)
}

val approx_bounds : (string * (int -> int * int)) list
(** The registered approximation guarantees, as data: solver name to
    [fun m -> (num, den)] meaning makespan·den ≤ num·optimum. Currently
    GreedyBalance's (2 − 1/m) (Theorem 7) and RoundRobin's 2
    (Theorem 5). *)

val exact_agreement : t
(** All applicable exact-kind registry solvers report one makespan. *)

val witness_certified : t
(** Every witness-capable applicable solver's outcome passes
    {!Certify.check} against its claimed makespan. *)

val approx_bounds_hold : t
(** optimum ≤ makespan ≤ bound·optimum for each entry of
    {!approx_bounds}. *)

val permutation_invariance : t
(** The optimal makespan is invariant under reversing the processor
    order (schedules carry no processor identity). *)

val zero_pad_invariance : t
(** Adding one processor holding a single zero-requirement job leaves
    the optimal makespan unchanged (the job runs at full speed on a zero
    share, finishing in step 1 ≤ OPT). *)

val requirement_monotonicity : t
(** Raising requirements ([r ↦ min(1, 3r/2)]) never decreases the
    optimal makespan. *)

val zero_pad_instance : Crs_core.Instance.t -> Crs_core.Instance.t
(** The mutation behind {!zero_pad_invariance}: append one processor
    holding a single zero-requirement unit job. Exported so other layers
    (the serve canonicalizer tests) can exercise the same proven-neutral
    transformation instead of reinventing it. *)

val all : t list
val names : string list
val find : string -> t option

val differential :
  name:string ->
  ?about:string ->
  ?applies:(Crs_core.Instance.t -> bool) ->
  reference:(Crs_core.Instance.t -> int) ->
  candidate:(Crs_core.Instance.t -> int) ->
  unit ->
  t
(** Build a two-solver equality oracle; used by the mutation self-test
    to hunt a deliberately broken solver against a trusted reference. *)
