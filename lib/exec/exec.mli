(** Work-stealing task executor on OCaml 5 domains.

    Replaces the central mutex/condition pool: each worker owns a
    Chase–Lev {!Deque} (lock-free push/pop/steal), external submissions
    land in a small injector queue that workers drain in batches into
    their own deque, and idle workers steal from randomized victims with
    exponential backoff before parking on a condition variable. Locks
    are confined to the cold paths — external submission, parking, and
    batch completion — so the task hot path is atomics only.

    {2 Determinism}

    Task {i execution order} is scheduling-dependent, but the executor
    is used through {!map}, where every task carries its input index
    (its sequence id) and writes a dedicated slot of a pre-sized result
    array. Result order therefore equals input order at any worker
    count, which is what keeps campaign report payload digests and
    [Trace.signature] byte-identical whatever the pool size.

    {2 Exception containment}

    A raising task never kills its worker: the first exception is
    recorded (atomically — first writer wins) and returned by
    {!await_all}; remaining tasks still run.

    {2 Observability}

    When {!Crs_obs.Metrics} is enabled the executor records
    [exec.push] / [exec.steal] / [exec.park] counters and a per-worker
    queue-depth log2 histogram ([exec.queue_depth.d<k>]); when disabled
    these cost one atomic load each. Independent of metrics, cheap
    always-on atomic counters feed {!stats} so a long-running daemon can
    report saturation without enabling the metrics subsystem. *)

type t

(** Saturation snapshot, cheap enough to build per stats request. *)
type stats = {
  workers : int;  (** worker domain count *)
  queued : int;
      (** tasks waiting to run (injector + deques), excluding running
          ones — deterministically 0 right after a batch completes *)
  injected : int;  (** external submissions not yet picked up by a worker *)
  depths : int array;  (** per-worker deque occupancy snapshot *)
  pushes : int;  (** tasks pushed (external + worker-local), lifetime *)
  steals : int;  (** successful steals, lifetime *)
  parks : int;  (** times a worker parked, lifetime *)
}

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. From outside the executor this goes through the
    injector queue; from inside a task it pushes onto the running
    worker's own deque (lock-free), so tasks may submit further tasks.
    Submitting should not race {!shutdown}: a racing submit either
    raises or has its task executed on the shutting-down thread during
    the drain — it is never silently dropped.
    @raise Invalid_argument after {!shutdown}. *)

val await_all : t -> exn option
(** Block until every submitted task has finished. Returns the first
    exception any task raised ([None] when all succeeded) and clears
    it, so the executor can be reused for another batch.

    Batches must be {i sequential}: completion is tracked by one
    executor-wide pending counter and one first-failure slot, so two
    overlapping submit/await_all rounds on the same executor would wait
    on each other's tasks and could misattribute each other's first
    exception. Callers multiplexing an executor (e.g. the multi-accept
    serve frontend) must use {!Batch} handles, which scope completion
    and failure to one batch. *)

val pending : t -> int
(** Tasks submitted and not yet finished — the backlog admission
    control sheds against. *)

(** Per-batch completion handles, for callers that multiplex one
    executor from several threads (the multi-connection serve frontend:
    one reader per connection, each processing its own batches).
    Unlike {!await_all}, a batch tracks only its own tasks — its own
    pending counter and first-failure slot — so overlapping batches on
    the same executor neither wait on each other's tasks nor steal each
    other's exceptions. Batch tasks still count toward the executor's
    {!pending} (admission budgets keep working) and are drained by
    {!shutdown} like any other task. *)
module Batch : sig
  type exec := t
  type t

  val create : exec -> t
  (** A fresh handle; cheap enough to build per request batch. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a task charged to this batch.
      @raise Invalid_argument after the executor's {!shutdown}. *)

  val await : t -> exn option
  (** Block until every task submitted to {i this} batch has finished.
      Returns this batch's first task exception ([None] when all
      succeeded) and clears it, so the handle could be reused — though
      one handle per batch is the intended shape. *)
end

val stats : t -> stats

val shutdown : t -> unit
(** Let the workers drain all remaining work, then join them. Any task
    a racing {!submit} managed to land after the workers exited is run
    on the calling thread before returning, so [pending] always reaches
    zero. Idempotent. *)

val with_exec : domains:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} — even on exceptions. *)

val map_on : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map on an existing executor:
    [map_on t f a] equals [Array.map f a] element-for-element whatever
    the worker count, chunking or steal schedule — each task writes the
    slots of its own contiguous input slice and nothing else. [chunk]
    (default 1) input items ride per task. Re-raises the first task
    exception after the batch settles (items sharing a chunk with a
    raising item may be skipped).
    @raise Invalid_argument when [chunk < 1]. *)

val map : ?chunk:int -> domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** {!with_exec} + {!map_on}: one-shot order-preserving parallel map. *)
