(* Chase–Lev deque on OCaml 5 atomics.

   Indices [top] and [bottom] grow monotonically; the live window is
   [top, bottom) and element i lives in slot [i land (length - 1)] of
   the current buffer (length is a power of two). OCaml's atomics are
   sequentially consistent, which is stronger than the acquire/release
   fences of the original paper — the correctness argument only gets
   easier. Slot reads are plain (racy) on purpose; see the .mli for why
   a successful CAS on [top] validates them.

   Stolen slots are not cleared (a thief may not write the owner's
   buffer), so a stolen task's closure is retained until the ring slot
   is recycled by a later push — bounded by one buffer generation,
   acceptable for task granularities this executor runs. The owner
   clears slots it pops. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  tab : 'a option array Atomic.t;
}

let min_capacity = 64

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    tab = Atomic.make (Array.make min_capacity None);
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  if b > tp then b - tp else 0

(* Owner-only: double the buffer, copying the live window. The old
   array is left untouched so a concurrent thief still reads valid
   values through its stale reference. *)
let grow t a tp b =
  let n = Array.length a in
  let a' = Array.make (2 * n) None in
  for i = tp to b - 1 do
    a'.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
  done;
  Atomic.set t.tab a';
  a'

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let a = Atomic.get t.tab in
  let a = if b - tp >= Array.length a then grow t a tp b else a in
  a.(b land (Array.length a - 1)) <- Some v;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let a = Atomic.get t.tab in
  Atomic.set t.bottom b;
  (* SC fence between the bottom store and the top load: both are
     atomics, so the classic store-load hazard of the algorithm is
     already ordered. *)
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty; restore the invariant bottom >= top. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let i = b land (Array.length a - 1) in
    let v = a.(i) in
    if b > tp then begin
      a.(i) <- None;
      v
    end
    else begin
      (* Last element: race the thieves for it via top. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        a.(i) <- None;
        v
      end
      else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b - tp <= 0 then None
  else begin
    let a = Atomic.get t.tab in
    let v = a.(tp land (Array.length a - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then begin
      match v with
      | Some _ -> v
      | None ->
        (* Unreachable: the slot can only be recycled after top moved
           past tp, which would have failed the CAS. *)
        assert false
    end
    else None
  end
