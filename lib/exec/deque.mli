(** Chase–Lev work-stealing deque.

    One {i owner} domain pushes and pops at the bottom (LIFO, cheap —
    two atomic loads and one store on the uncontended path); any other
    domain steals from the top (FIFO), so the oldest work migrates and
    the owner keeps cache-hot recent work. The only synchronization is
    the [top]/[bottom] atomics — no locks anywhere.

    The element buffer is circular and grows by doubling when full
    (owner-only, old live range copied, the buffer reference itself is
    atomic so in-flight thieves read a consistent snapshot — a thief
    holding the pre-growth array sees the same values for every index
    still in range, and its [top] CAS fails for any index the owner has
    since recycled).

    Safety argument for the racy slot read in {!steal}: a slot is only
    overwritten once [top] has advanced past its index (growth keeps
    live indices in distinct physical slots), and advancing [top] is
    exactly what makes the thief's compare-and-set fail — so a
    successful CAS proves the value read was the live one. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. Amortized O(1); doubles the buffer when full. *)

val pop : 'a t -> 'a option
(** Owner only. Takes the most recently pushed element; races with
    thieves on the last element via CAS on [top]. *)

val steal : 'a t -> 'a option
(** Any domain. Takes the oldest element, or [None] when the deque is
    empty or another thief (or the owner, on the last element) won the
    race. A [None] does {b not} mean the deque is durably empty —
    callers retry or move to another victim. *)

val size : 'a t -> int
(** Approximate occupancy snapshot ([bottom - top] read non-atomically
    as a pair); exact when no operation is in flight. For observability
    only — never use it to decide emptiness before {!steal}. *)
