(* Work-stealing executor: per-worker Chase–Lev deques + a small
   injector queue for external submissions + a park/wake protocol for
   idle workers.

   Hot path (a worker with local work): Deque.pop — two atomic loads
   and two atomic stores, no locks. Stealing: randomized victim sweep,
   exponential backoff (Domain.cpu_relax) between failed sweeps, then
   park on a condition variable. The injector mutex is taken once per
   external submission and once per worker batch-grab, not once per
   task execution — workers that grab from the injector take a
   proportional slice into their own deque, where the other workers can
   steal it back lock-free.

   Missed-wakeup safety: a parking worker registers itself in
   [sleepers] BEFORE re-checking for work, and a submitter makes its
   task visible through an atomic store (deque [bottom] or
   [inject_len]) BEFORE reading [sleepers]. OCaml atomics are
   sequentially consistent, so in the total order either the
   submitter's read sees the registration (>= 1) and it broadcasts
   under the park mutex — serialized against the worker's
   check-then-wait — or the read of 0 precedes the registration, which
   forces the worker's subsequent has-work re-check to see the already
   published task. Either way the worker cannot wait with a runnable
   task queued. *)

module Metrics = Crs_obs.Metrics

type t = {
  id : int;  (* distinguishes executors for the worker-context DLS key *)
  deques : (unit -> unit) Deque.t array;
  inject : (unit -> unit) Queue.t;
  inject_mutex : Mutex.t;
  inject_len : int Atomic.t;  (* mirror of Queue.length, readable lock-free *)
  pending : int Atomic.t;  (* submitted but not yet finished *)
  stopping : bool Atomic.t;
  failed : exn option Atomic.t;  (* first task exception, CAS first-writer-wins *)
  park_mutex : Mutex.t;
  work_cond : Condition.t;  (* parked workers wait here *)
  done_cond : Condition.t;  (* await_all waits here *)
  sleepers : int Atomic.t;
  mutable workers : unit Domain.t array;
  (* Always-on saturation counters (cheap atomics, feed [stats]). *)
  s_pushes : int Atomic.t;
  s_steals : int Atomic.t;
  s_parks : int Atomic.t;
  (* crs_obs instrumentation: one atomic load each when disabled. *)
  m_push : Metrics.counter;
  m_steal : Metrics.counter;
  m_park : Metrics.counter;
  depth_hist : Metrics.histogram array;
}

type stats = {
  workers : int;
  queued : int;
  injected : int;
  depths : int array;
  pushes : int;
  steals : int;
  parks : int;
}

let next_id = Atomic.make 0

(* Which executor/worker the current domain is running for, if any.
   Lets [submit] from inside a task push lock-free onto the running
   worker's own deque instead of the injector. *)
let ctx_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let size t = Array.length t.deques

let has_work t =
  Atomic.get t.inject_len > 0
  || Array.exists (fun d -> Deque.size d > 0) t.deques

(* Callers must have already published the new task through an atomic
   store (Deque.push's [bottom] store or the [inject_len] set); the
   [sleepers] read below is ordered after it, see the header comment. *)
let wake_workers t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.park_mutex
  end

let note_push t wid =
  Atomic.incr t.s_pushes;
  Metrics.incr t.m_push;
  if wid >= 0 && Metrics.enabled () then
    Metrics.observe t.depth_hist.(wid) (Deque.size t.deques.(wid))

let submit t task =
  if Atomic.get t.stopping then
    invalid_arg "Exec.submit: executor is shut down";
  Atomic.incr t.pending;
  (match !(Domain.DLS.get ctx_key) with
  | Some (eid, wid) when eid = t.id ->
    Deque.push t.deques.(wid) task;
    note_push t wid
  | _ ->
    Mutex.lock t.inject_mutex;
    Queue.push task t.inject;
    Atomic.set t.inject_len (Queue.length t.inject);
    Mutex.unlock t.inject_mutex;
    note_push t (-1));
  wake_workers t

let run_task t task =
  (match task () with
  | () -> ()
  | exception e ->
    (* First failure wins; later ones are dropped, matching the old
       pool's contract. *)
    ignore (Atomic.compare_and_set t.failed None (Some e)));
  if Atomic.fetch_and_add t.pending (-1) = 1 then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.done_cond;
    Mutex.unlock t.park_mutex
  end

(* Grab a batch from the injector: take one task to run now and up to a
   1/workers share of the rest into our own deque (stealable by the
   others, who we wake). One mutex round-trip moves many tasks. *)
let grab_injected t wid =
  if Atomic.get t.inject_len = 0 then None
  else begin
    Mutex.lock t.inject_mutex;
    let len = Queue.length t.inject in
    if len = 0 then begin
      Mutex.unlock t.inject_mutex;
      None
    end
    else begin
      let first = Queue.pop t.inject in
      let extra = min (Queue.length t.inject) (len / Array.length t.deques) in
      for _ = 1 to extra do
        Deque.push t.deques.(wid) (Queue.pop t.inject)
      done;
      Atomic.set t.inject_len (Queue.length t.inject);
      Mutex.unlock t.inject_mutex;
      if Metrics.enabled () then
        Metrics.observe t.depth_hist.(wid) (Deque.size t.deques.(wid));
      if extra > 0 then wake_workers t;
      Some first
    end
  end

(* One randomized sweep over the other workers' deques. *)
let try_steal t wid rng =
  let n = Array.length t.deques in
  if n = 1 then None
  else begin
    let start = Random.State.int rng n in
    let rec go i =
      if i >= n then None
      else
        let v = (start + i) mod n in
        if v = wid then go (i + 1)
        else
          match Deque.steal t.deques.(v) with
          | Some _ as r ->
            Atomic.incr t.s_steals;
            Metrics.incr t.m_steal;
            r
          | None -> go (i + 1)
    in
    go 0
  end

let park t =
  Mutex.lock t.park_mutex;
  (* Register BEFORE the re-check: a submitter that reads sleepers = 0
     (and so skips the broadcast) is ordered before this increment, so
     its task is visible to the has_work check below. A submitter that
     reads >= 1 broadcasts under the park mutex, which it can only
     acquire before we re-check or after Condition.wait releases it —
     never between. *)
  Atomic.incr t.sleepers;
  if (not (has_work t)) && not (Atomic.get t.stopping) then begin
    Atomic.incr t.s_parks;
    Metrics.incr t.m_park;
    Condition.wait t.work_cond t.park_mutex
  end;
  Atomic.decr t.sleepers;
  Mutex.unlock t.park_mutex

let max_spin = 7 (* sweeps with 1, 2, 4, ... 64 cpu_relax pauses, then park *)

let worker t wid =
  Domain.DLS.get ctx_key := Some (t.id, wid);
  let rng = Random.State.make [| 0x9e3779b9; t.id; wid |] in
  let own = t.deques.(wid) in
  let backoff = ref 0 in
  let continue = ref true in
  while !continue do
    match Deque.pop own with
    | Some task ->
      backoff := 0;
      run_task t task
    | None -> (
      match grab_injected t wid with
      | Some task ->
        backoff := 0;
        run_task t task
      | None -> (
        match try_steal t wid rng with
        | Some task ->
          backoff := 0;
          run_task t task
        | None ->
          if Atomic.get t.stopping && not (has_work t) then continue := false
          else if !backoff < max_spin then begin
            for _ = 1 to 1 lsl !backoff do
              Domain.cpu_relax ()
            done;
            incr backoff
          end
          else begin
            park t;
            backoff := 0
          end))
  done;
  Domain.DLS.get ctx_key := None

let create ~domains =
  if domains < 1 then invalid_arg "Exec.create: need at least one domain";
  let id = Atomic.fetch_and_add next_id 1 in
  let t =
    {
      id;
      deques = Array.init domains (fun _ -> Deque.create ());
      inject = Queue.create ();
      inject_mutex = Mutex.create ();
      inject_len = Atomic.make 0;
      pending = Atomic.make 0;
      stopping = Atomic.make false;
      failed = Atomic.make None;
      park_mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      sleepers = Atomic.make 0;
      workers = [||];
      s_pushes = Atomic.make 0;
      s_steals = Atomic.make 0;
      s_parks = Atomic.make 0;
      m_push = Metrics.counter "exec.push";
      m_steal = Metrics.counter "exec.steal";
      m_park = Metrics.counter "exec.park";
      depth_hist =
        Array.init domains (fun k ->
            Metrics.histogram (Printf.sprintf "exec.queue_depth.d%d" k));
    }
  in
  t.workers <- Array.init domains (fun wid -> Domain.spawn (fun () -> worker t wid));
  t

let await_all t =
  Mutex.lock t.park_mutex;
  while Atomic.get t.pending > 0 do
    Condition.wait t.done_cond t.park_mutex
  done;
  Mutex.unlock t.park_mutex;
  Atomic.exchange t.failed None

let pending t = Atomic.get t.pending

(* Per-batch completion: the wrapper settles the batch's own pending
   counter and failure slot, then the executor's run_task settles the
   global ones. The wrapper never raises, so a batch task's exception
   stays in its batch and cannot leak into the executor-wide [failed]
   slot that await_all reads. *)
module Batch = struct
  type exec = t

  type t = {
    exec : exec;
    pending : int Atomic.t;
    failed : exn option Atomic.t;
    mutex : Mutex.t;
    done_cond : Condition.t;
  }

  let create exec =
    {
      exec;
      pending = Atomic.make 0;
      failed = Atomic.make None;
      mutex = Mutex.create ();
      done_cond = Condition.create ();
    }

  let submit b task =
    Atomic.incr b.pending;
    match
      submit b.exec (fun () ->
          (match task () with
          | () -> ()
          | exception e ->
            ignore (Atomic.compare_and_set b.failed None (Some e)));
          if Atomic.fetch_and_add b.pending (-1) = 1 then begin
            (* The broadcast runs under the batch mutex, so it cannot
               land between await's pending check and its wait. *)
            Mutex.lock b.mutex;
            Condition.broadcast b.done_cond;
            Mutex.unlock b.mutex
          end)
    with
    | () -> ()
    | exception e ->
      (* submit refused (executor shut down): the task never ran. *)
      Atomic.decr b.pending;
      raise e

  let await b =
    Mutex.lock b.mutex;
    while Atomic.get b.pending > 0 do
      Condition.wait b.done_cond b.mutex
    done;
    Mutex.unlock b.mutex;
    Atomic.exchange b.failed None
end

(* [queued] counts tasks waiting to run (injector + deques), not
   [pending]: pending also covers tasks whose body has returned but
   whose worker hasn't retired the bookkeeping yet — a Batch.await
   caller reading stats right after completion would see a phantom
   backlog. *)
let stats t =
  {
    workers = size t;
    queued =
      Atomic.get t.inject_len
      + Array.fold_left (fun acc d -> acc + Deque.size d) 0 t.deques;
    injected = Atomic.get t.inject_len;
    depths = Array.map Deque.size t.deques;
    pushes = Atomic.get t.s_pushes;
    steals = Atomic.get t.s_steals;
    parks = Atomic.get t.s_parks;
  }

let shutdown t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* Wake everyone unconditionally: a worker between its sleepers
       increment and its wait still holds the park mutex, so this
       broadcast cannot land in that window. *)
    Mutex.lock t.park_mutex;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.park_mutex;
    Array.iter Domain.join t.workers;
    (* A submit racing the stop can pass the [stopping] check yet land
       its task after every worker observed an empty executor and
       exited. Run such stragglers here — workers are joined, so this
       thread is the sole accessor — keeping the contract that
       [pending] reaches zero and a blocked [await_all] returns.
       Tasks cannot spawn new tasks now: [submit] raises on a stopped
       executor, and that exception is contained like any other. *)
    let rec drain_inject () =
      Mutex.lock t.inject_mutex;
      let task =
        if Queue.is_empty t.inject then None else Some (Queue.pop t.inject)
      in
      Atomic.set t.inject_len (Queue.length t.inject);
      Mutex.unlock t.inject_mutex;
      match task with
      | Some task ->
        run_task t task;
        drain_inject ()
      | None -> ()
    in
    drain_inject ();
    Array.iter
      (fun d ->
        let rec drain () =
          match Deque.pop d with
          | Some task ->
            run_task t task;
            drain ()
          | None -> ()
        in
        drain ())
      t.deques
  end

let with_exec ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_on ?(chunk = 1) t f input =
  if chunk < 1 then invalid_arg "Exec.map: chunk must be >= 1";
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    (* One task per contiguous slice: slice [lo, hi] carries its
       sequence ids as the indices themselves, and writes only its own
       slots — order-preserving under any steal schedule. *)
    let i = ref 0 in
    while !i < n do
      let lo = !i in
      let hi = Stdlib.min n (lo + chunk) - 1 in
      submit t (fun () ->
          for k = lo to hi do
            results.(k) <- Some (f input.(k))
          done);
      i := hi + 1
    done;
    (match await_all t with None -> () | Some e -> raise e);
    Array.map (function Some r -> r | None -> assert false) results
  end

let map ?chunk ~domains f input =
  with_exec ~domains (fun t -> map_on ?chunk t f input)
