module Q = Crs_num.Rational

type t = { width : int; steps : Q.t array array }

let of_rows rows =
  if Array.length rows = 0 then
    invalid_arg "Schedule.of_rows: empty matrix; use Schedule.empty";
  let width = Array.length rows.(0) in
  Array.iter
    (fun r -> if Array.length r <> width then invalid_arg "Schedule.of_rows: ragged rows")
    rows;
  { width; steps = Array.map Array.copy rows }

let empty ~m =
  if m <= 0 then invalid_arg "Schedule.empty: m must be positive";
  { width = m; steps = [||] }

let horizon t = Array.length t.steps
let m t = t.width

let share t ~step ~proc =
  if proc < 0 || proc >= t.width then invalid_arg "Schedule.share: proc out of range";
  if step < 0 then invalid_arg "Schedule.share: negative step";
  if step >= Array.length t.steps then Q.zero else t.steps.(step).(proc)

let row t step = Array.copy t.steps.(step)
let rows t = Array.map Array.copy t.steps
let unsafe_rows t = t.steps
let step_total t step = Q.sum_array t.steps.(step)

let append_step t shares =
  if Array.length shares <> t.width then
    invalid_arg "Schedule.append_step: wrong width";
  { t with steps = Array.append t.steps [| Array.copy shares |] }

let check_feasible t =
  let exception Bad of string in
  try
    Array.iteri
      (fun step row ->
        Array.iteri
          (fun proc s ->
            if not (Q.in_unit_interval s) then
              raise
                (Bad
                   (Printf.sprintf "share out of [0,1] at step %d, proc %d: %s" step
                      proc (Q.to_string s))))
          row;
        if Q.(sum_array row > one) then begin
          (* Name the heaviest consumer so the offending assignment can be
             found without dumping the whole step. *)
          let worst = ref 0 in
          Array.iteri
            (fun proc s -> if Q.(s > row.(!worst)) then worst := proc)
            row;
          raise
            (Bad
               (Printf.sprintf
                  "resource overused at step %d: total %s > 1 (largest share: proc %d with %s)"
                  step
                  (Q.to_string (Q.sum_array row))
                  !worst
                  (Q.to_string row.(!worst))))
        end)
      t.steps;
    Ok ()
  with Bad msg -> Error msg

let equal a b =
  a.width = b.width
  && Array.length a.steps = Array.length b.steps
  && Array.for_all2 (fun ra rb -> Array.for_all2 Q.equal ra rb) a.steps b.steps

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun step row ->
      Format.fprintf fmt "t%d:" (step + 1);
      Array.iter (fun s -> Format.fprintf fmt " %a" Q.pp s) row;
      if step < Array.length t.steps - 1 then Format.fprintf fmt "@,")
    t.steps;
  Format.fprintf fmt "@]"

let to_string t =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Q.to_string s))
        row;
      Buffer.add_char buf '\n')
    t.steps;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#')
  in
  if lines = [] then Error "Schedule.of_string: no step lines"
  else begin
    try
      let parse line =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
        |> List.map Q.of_string
        |> Array.of_list
      in
      Ok (of_rows (Array.of_list (List.map parse lines)))
    with
    | Invalid_argument msg | Failure msg -> Error msg
    | Division_by_zero -> Error "Schedule.of_string: zero denominator"
  end

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))
