(** A schedule for the CRSharing problem: the resource assignment
    functions [R_i : N → [0,1]] truncated to their support (paper,
    Section 3.1). Step indices are 0-based internally; the paper's time
    step [t] (1-based) is row [t-1]. *)

type t

val of_rows : Crs_num.Rational.t array array -> t
(** [of_rows rows] where [rows.(t).(i)] is the share of processor [i]
    during step [t]. All rows must have the same width.
    @raise Invalid_argument on ragged rows or an empty matrix with no
    width information. *)

val empty : m:int -> t
(** The zero-step schedule for [m] processors. *)

val horizon : t -> int
(** Number of time steps the schedule describes. *)

val m : t -> int

val share : t -> step:int -> proc:int -> Crs_num.Rational.t
(** Share assigned to [proc] during [step]; zero beyond the horizon. *)

val row : t -> int -> Crs_num.Rational.t array
(** Fresh copy of one step's assignment. *)

val rows : t -> Crs_num.Rational.t array array
(** Fresh copy of the whole assignment matrix. *)

val unsafe_rows : t -> Crs_num.Rational.t array array
(** The assignment matrix itself, NOT a copy: [rows.(step).(proc)].
    Strictly read-only — mutating it corrupts the schedule. For hot
    read paths (the certifier sweeps whole schedules) where the
    per-cell bounds checks and copies of {!share}/{!rows} dominate. *)

val step_total : t -> int -> Crs_num.Rational.t
(** Total resource assigned during a step. *)

val append_step : t -> Crs_num.Rational.t array -> t

val check_feasible : t -> (unit, string) result
(** Every share in [0,1] and every step total at most 1. Errors name
    the offending step and processor: an out-of-range share reports its
    value, an overused step reports the total and the processor holding
    the largest share. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Serialization}

    Text format: one line per time step, shares separated by spaces,
    rationals as [p/q] or decimals; ['#'] starts a comment line. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val load : string -> (t, string) result
val save : string -> t -> unit
