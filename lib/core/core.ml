let placeholder () = ()
