(** Tick-based simulation of [n] cores sharing one bus.

    Each tick: build the per-core views, ask the policy for an
    allocation, advance every core's current phase — compute phases at
    full speed, I/O phases at [share/demand] (capped at 1). One phase per
    core per tick boundary: a phase finishing mid-tick leaves the rest of
    the tick unused, exactly like the discrete CRSharing model. *)

type tick_record = {
  time : int;
  shares : float array;
  used : float array;  (** bandwidth actually consumed *)
  phases_finished : (int * int) list;  (** (core, phase index) *)
}

type result = {
  makespan : int;  (** ticks until every task finished *)
  completion : int array;  (** per-core completion tick *)
  records : tick_record list;  (** chronological *)
  wasted_bandwidth : float;  (** Σ (1 − used) over ticks before makespan *)
}

val run : ?max_ticks:int -> Policy.t -> Task.t array -> result
(** One task per core. @raise Failure if [max_ticks] (default 1_000_000)
    elapse before completion or the policy over-allocates; the message
    names the policy, the offending tick, and the shares / still-active
    cores involved, so batch-campaign failure logs are actionable. *)
