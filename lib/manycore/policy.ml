type core_view = {
  core : int;
  demand : float;
  remaining_volume : float;
  remaining_phases : int;
  remaining_work : float;
}

type t = { name : string; allocate : core_view array -> float array }

(* Most bandwidth the core's current phase can absorb this tick. *)
let usable v = if v.demand <= 0.0 then 0.0 else v.demand *. Float.min v.remaining_volume 1.0

let fair_share =
  let allocate views =
    let n = Array.length views in
    let alloc = Array.make n 0.0 in
    let budget = ref 1.0 in
    let continue_ = ref true in
    (* Water-filling: split the remaining budget equally among cores that
       can still absorb more; repeat until everyone is capped or the
       budget is gone. Terminates in <= n rounds (each round caps at
       least one core or exhausts the budget). *)
    while !continue_ && !budget > 1e-12 do
      let hungry =
        Array.to_list views
        |> List.filter (fun v -> usable v -. alloc.(v.core) > 1e-12)
      in
      if hungry = [] then continue_ := false
      else begin
        let fair = !budget /. float_of_int (List.length hungry) in
        let all_capped = ref true in
        List.iter
          (fun v ->
            let need = usable v -. alloc.(v.core) in
            let give = Float.min fair need in
            if give < need then all_capped := false;
            alloc.(v.core) <- alloc.(v.core) +. give;
            budget := !budget -. give)
          hungry;
        if !all_capped then () (* loop again: freed budget may remain *)
      end
    done;
    alloc
  in
  { name = "fair-share"; allocate }

let demand_proportional =
  let allocate views =
    let total = Array.fold_left (fun acc v -> acc +. v.demand) 0.0 views in
    Array.map
      (fun v ->
        if total <= 0.0 then 0.0
        else Float.min (v.demand /. total) (usable v))
      views
    |> fun arr ->
    let by_core = Array.make (Array.length views) 0.0 in
    Array.iteri (fun k share -> by_core.(views.(k).core) <- share) arr;
    by_core
  in
  { name = "demand-proportional"; allocate }

let pour order views =
  let alloc = Array.make (Array.length views) 0.0 in
  let budget = ref 1.0 in
  List.iter
    (fun v ->
      let give = Float.min (usable v) !budget in
      alloc.(v.core) <- give;
      budget := !budget -. give)
    order;
  alloc

let first_come =
  let allocate views =
    let order =
      Array.to_list views |> List.sort (fun a b -> compare a.core b.core)
    in
    pour order views
  in
  { name = "first-come"; allocate }

let greedy_balance =
  let allocate views =
    let order =
      Array.to_list views
      |> List.sort (fun a b ->
             if a.remaining_phases <> b.remaining_phases then
               compare b.remaining_phases a.remaining_phases
             else if a.remaining_work <> b.remaining_work then
               compare b.remaining_work a.remaining_work
             else compare a.core b.core)
    in
    pour order views
  in
  { name = Crs_algorithms.Registry.Names.greedy_balance; allocate }

let round_robin_phases =
  let allocate views =
    let unfinished = Array.to_list views |> List.filter (fun v -> v.remaining_phases > 0) in
    match unfinished with
    | [] -> Array.make (Array.length views) 0.0
    | _ ->
      let phase v = v.remaining_phases in
      (* The paper's RoundRobin gates by phase index from the start; with
         per-core phase counts we gate on the MAXIMUM remaining count,
         which is the same discipline when all tasks have equally many
         phases and a natural generalization otherwise. *)
      let front = List.fold_left (fun acc v -> max acc (phase v)) 0 unfinished in
      let order =
        unfinished
        |> List.filter (fun v -> phase v = front)
        |> List.sort (fun a b -> compare a.core b.core)
      in
      pour order views
  in
  { name = Crs_algorithms.Registry.Names.round_robin; allocate }

let all = [ fair_share; demand_proportional; first_come; greedy_balance; round_robin_phases ]
