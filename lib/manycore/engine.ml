type tick_record = {
  time : int;
  shares : float array;
  used : float array;
  phases_finished : (int * int) list;
}

type result = {
  makespan : int;
  completion : int array;
  records : tick_record list;
  wasted_bandwidth : float;
}

type core_state = {
  mutable phases : Task.phase list;  (** current phase at head *)
  mutable remaining : float;  (** volume/duration left in head phase *)
  mutable done_count : int;
}

let head_remaining = function
  | [] -> 0.0
  | Task.Compute d :: _ -> d
  | Task.Io { volume; _ } :: _ -> volume

let run ?(max_ticks = 1_000_000) (policy : Policy.t) tasks =
  let n = Array.length tasks in
  if n = 0 then invalid_arg "Engine.run: no tasks";
  let cores =
    Array.map
      (fun (t : Task.t) ->
        { phases = t.phases; remaining = head_remaining t.phases; done_count = 0 })
      tasks
  in
  let completion = Array.make n 0 in
  let records = ref [] in
  let wasted = ref 0.0 in
  let finished () = Array.for_all (fun c -> c.phases = []) cores in
  let time = ref 0 in
  while not (finished ()) do
    incr time;
    if !time > max_ticks then begin
      let active =
        Array.to_list cores
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c.phases <> [])
      in
      failwith
        (Printf.sprintf
           "Engine.run: policy %s exceeded the tick budget (max_ticks %d); %d of %d \
            cores still active: %s"
           policy.name max_ticks (List.length active) n
           (String.concat ", "
              (List.map
                 (fun (i, c) ->
                   Printf.sprintf "core %d (%d phases, %.3f left in head)" i
                     (List.length c.phases) c.remaining)
                 active)))
    end;
    let t = !time in
    let views =
      Array.mapi
        (fun i c ->
          let demand =
            match c.phases with
            | Task.Io { demand; _ } :: _ -> demand
            | _ -> 0.0
          in
          let remaining_work =
            List.fold_left
              (fun acc -> function
                | Task.Compute _ -> acc
                | Task.Io { demand; volume } -> acc +. (demand *. volume))
              0.0 c.phases
            -.
            (match c.phases with
            | Task.Io { demand; volume } :: _ ->
              demand *. (volume -. c.remaining)
            | _ -> 0.0)
          in
          {
            Policy.core = i;
            demand;
            remaining_volume = c.remaining;
            remaining_phases = List.length c.phases;
            remaining_work;
          })
        cores
    in
    let shares = policy.allocate views in
    let total = Array.fold_left ( +. ) 0.0 shares in
    if total > 1.0 +. 1e-9 then begin
      let offending = ref [] in
      Array.iteri
        (fun i s ->
          if s > 0.0 then
            offending := Printf.sprintf "core %d: %.6f" i s :: !offending)
        shares;
      failwith
        (Printf.sprintf
           "Engine.run: policy %s over-allocates at tick %d (total %.6f > 1); shares: %s"
           policy.name t total
           (String.concat ", " (List.rev !offending)))
    end;
    let used = Array.make n 0.0 in
    let phases_finished = ref [] in
    Array.iteri
      (fun i c ->
        match c.phases with
        | [] -> ()
        | phase :: rest ->
          let speed =
            match phase with
            | Task.Compute _ -> 1.0
            | Task.Io { demand; _ } -> Float.min (shares.(i) /. demand) 1.0
          in
          let progress = Float.min speed c.remaining in
          (match phase with
          | Task.Compute _ -> ()
          | Task.Io { demand; _ } -> used.(i) <- progress *. demand);
          c.remaining <- c.remaining -. progress;
          if c.remaining <= 1e-9 then begin
            phases_finished := (i, c.done_count) :: !phases_finished;
            c.done_count <- c.done_count + 1;
            c.phases <- rest;
            c.remaining <- head_remaining rest;
            if rest = [] then completion.(i) <- t
          end)
      cores;
    let used_total = Array.fold_left ( +. ) 0.0 used in
    wasted := !wasted +. Float.max 0.0 (1.0 -. used_total);
    records :=
      { time = t; shares; used; phases_finished = List.rev !phases_finished }
      :: !records
  done;
  {
    makespan = !time;
    completion;
    records = List.rev !records;
    wasted_bandwidth = !wasted;
  }
