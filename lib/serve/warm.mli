(** Cache warming from persisted canonical-key sets ({b crs-warm/1}).

    On graceful drain a server snapshots its memo-cache key set — the
    structured {!Canon.Solve_key} fields, canonical instance text
    included — to a line-delimited {!Crs_util.Stable_json} file: one
    header object [{"proto":"crs-warm/1","entries":N}], then one entry
    object per line ([algorithm], [fuel], [witness], [certify],
    [instance]), oldest entry first so a replay reconstructs the same
    LRU recency order.

    Replay feeds each entry through {!Server.handle_line} — the {i real}
    solve path, with admission, fuel deadlines and canonicalization —
    so a warmed cache holds exactly the answers live traffic would have
    produced (byte-identical responses, the PR 6 guarantee). Timeout
    entries re-run their budget once at startup; that cost is paid off
    the request path, which is the point of warming. Progress is pushed
    into the server's warm counters and visible in [stats] under
    [warm]. *)

val version : string
(** ["crs-warm/1"]. *)

type replay_report = {
  entries : int;  (** entries found in the file *)
  replayed : int;  (** answered with a cacheable status (ok / timeout /
                       not_applicable) — back in the cache *)
  failed : int;  (** answered [error] (e.g. an algorithm this build no
                     longer has); warms nothing *)
}

val save : Server.t -> path:string -> int
(** Snapshot the server's canonical-key set to [path] (write-temp then
    rename, so a concurrent reader never sees a torn file). Returns the
    number of entries written. Typically installed as the drain hook:
    [Server.set_on_drain server (fun s -> ignore (save s ~path))]. *)

val load : string -> (Canon.Solve_key.t list, string) result
(** Parse a warm file. Errors (wrong protocol, malformed entries) name
    the file, the line and the cause. *)

val replay : Server.t -> Canon.Solve_key.t list -> replay_report
(** Replay entries through the real solve path, updating the server's
    warm progress counters as it goes. *)

val load_and_replay : Server.t -> path:string -> (replay_report, string) result
(** {!load} then {!replay}. A missing file is a fresh start, not an
    error: [Ok {entries = 0; _}]. *)
