(** Admission control: a bounded queue in front of the shared
    work-stealing executor, plus fuel deadlines.

    The daemon admits at most [queue] work requests {i in flight};
    requests beyond that are {i shed} — answered immediately with a
    cheap [overloaded] response instead of queueing unboundedly. The
    budget is charged against the executor's live backlog
    ({!Crs_exec.Exec.pending}), so concurrent or carried-over work
    counts; on a quiet executor the backlog is zero at batch start and
    shedding is deterministic at the batch level — the first [queue]
    work items of a batch are admitted in arrival order, the rest shed,
    so tests can assert exact shed counts. Under concurrent connections
    every reader's batches share this one budget: {!map} is
    thread-safe (each call waits on a private {!Crs_exec.Exec.Batch}
    handle, never on other callers' tasks).

    The executor ({!Crs_exec.Exec}) is created once and reused across
    batches; {!drain} joins the workers on shutdown. *)

type t

val create : queue:int -> workers:int -> t
(** @raise Invalid_argument when [queue < 1] or [workers < 1]. *)

val workers : t -> int
val queue_capacity : t -> int

val executor : t -> Crs_exec.Exec.t
(** The shared executor, exposed so the server's [stats] response can
    report saturation (queue depths, steals, parks). *)

val depth : t -> int
(** Current executor backlog (submitted, not yet finished) — what the
    next batch's admission budget is charged against. *)

val map : t -> f:('a -> 'b) -> shed:('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map over one batch: admitted elements are computed
    as [f x] on the executor, the rest as [shed x] inline.
    Re-raises the first exception any [f] task raised, after the batch
    settles ([f] callers are expected to catch their own — the server's
    work function never raises). *)

val with_deadline : int option -> (unit -> 'a) -> ('a, int) result
(** Run a thunk under a {!Crs_util.Fuel} budget. [Ok] on completion;
    [Error ticks] when the budget ran out, where [ticks] is the
    {!Crs_util.Fuel.ticks} delta actually spent (the budget + 1, since
    the overrunning tick itself is counted). [None] means no deadline. *)

val drain : t -> unit
(** Shut the executor down (idempotent). Subsequent {!map} calls
    raise. *)
