(* Process-sharded serve tier behind one public listen address.

   The balancer forks/execs N `crsched serve` shard workers on private
   Unix sockets, accepts client connections itself, and routes each
   work request by rendezvous hash of its canonical key — so
   canonically equivalent instances always land on the same shard's
   memo cache and the byte-identity guarantee survives sharding.
   Robustness model:

   - a monitor thread reaps dead workers and respawns them with
     exponential backoff (stale sockets unlinked first);
   - a health thread pings every shard's `stats` on an interval;
   - a request whose shard is unreachable (crashed, restarting) is
     answered with a structured `overloaded` refusal naming the shard —
     never dropped, never blocked on a corpse;
   - shard-produced responses (including `overloaded`/`draining`) are
     relayed byte-for-byte;
   - a `shutdown` request drains the whole tier: every shard is asked
     to shut down (each snapshots its warm state via the drain hook),
     readers refuse latecomers with `draining`, and the balancer reaps
     every worker before returning. *)

module J = Crs_util.Stable_json
module Registry = Crs_algorithms.Registry
module Trace = Crs_obs.Trace
module Metrics = Crs_obs.Metrics

type config = {
  shards : int;
  socket_dir : string;
  shard_argv : index:int -> socket:string -> string array;
  health_interval_s : float;
  restart_backoff_s : float;
  restart_backoff_max_s : float;
  connect_timeout_s : float;
  rpc_timeout_s : float;
  drain_grace_s : float;
  max_line_bytes : int;
  max_conns : int;
}

let shard_socket ~socket_dir index =
  Filename.concat socket_dir (Printf.sprintf "shard-%d.sock" index)

let default_config ~shards ~socket_dir ~shard_argv =
  {
    shards;
    socket_dir;
    shard_argv;
    health_interval_s = 1.0;
    restart_backoff_s = 0.05;
    restart_backoff_max_s = 2.0;
    connect_timeout_s = 10.0;
    rpc_timeout_s = 30.0;
    drain_grace_s = 0.5;
    max_line_bytes = 1 lsl 20;
    max_conns = 64;
  }

(* ---- routing ---- *)

(* Rendezvous (highest-random-weight) hashing: every shard scores
   MD5(key "#" index) and the highest digest wins. Deterministic — a
   pure function of (key, shard count), so the same canonical key maps
   to the same shard across balancer restarts — and minimally
   disruptive: changing the shard count only remaps the keys whose
   winner changed. *)
let route ~shards key =
  if shards <= 1 then 0
  else begin
    let best = ref 0 and best_score = ref "" in
    for i = 0 to shards - 1 do
      let score = Digest.string (Printf.sprintf "%s#%d" key i) in
      if i = 0 || String.compare score !best_score > 0 then begin
        best := i;
        best_score := score
      end
    done;
    !best
  end

(* ---- buffered line connections (balancer -> shard, with deadlines) ---- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let now_s () = Unix.gettimeofday ()

module Conn = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

  let of_fd fd = { fd; buf = Buffer.create 4096; eof = false }
  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
  let send t line = write_all t.fd (line ^ "\n")

  let pop_line t =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (nl + 1) (String.length s - nl - 1);
      Some (String.sub s 0 nl)

  (* One response line, or [None] on EOF / deadline. The deadline bounds
     the whole receive, not one read — a shard that answers in drips
     still has to finish in time. *)
  let recv_line ~timeout_s t =
    let deadline = now_s () +. timeout_s in
    let chunk = Bytes.create 65536 in
    let rec go () =
      match pop_line t with
      | Some line -> Some line
      | None ->
        if t.eof then None
        else begin
          let remaining = deadline -. now_s () in
          if remaining <= 0.0 then None
          else
            match Unix.select [ t.fd ] [] [] (Float.min remaining 0.25) with
            | [], _, _ -> go ()
            | _ -> (
              match Unix.read t.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                t.eof <- true;
                go ()
              | n ->
                Buffer.add_subbytes t.buf chunk 0 n;
                go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                t.eof <- true;
                go ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
    in
    go ()
end

(* ---- shard state ---- *)

type shard = {
  index : int;
  socket : string;
  lock : Mutex.t;  (* guards pid and respawn *)
  mutable pid : int;  (* 0 = not running / already reaped *)
  alive : bool Atomic.t;  (* socket believed accept-ready *)
  restarts : int Atomic.t;
  routed : int Atomic.t;
  pings_ok : int Atomic.t;
  pings_failed : int Atomic.t;
}

type t = {
  cfg : config;
  shards : shard array;
  stop : bool Atomic.t;
  (* Request accounting, the restart-under-load invariant: every request
     line read from a client increments [accepted] and exactly one of
     [answered] (a real response, relayed or locally produced) or
     [refused] (a balancer-generated structured refusal). *)
  accepted : int Atomic.t;
  answered : int Atomic.t;
  refused : int Atomic.t;
  conns_live : int Atomic.t;
  conns_accepted : int Atomic.t;
  conns_refused : int Atomic.t;
  m_routed : Metrics.counter;
  m_answered : Metrics.counter;
  m_refused : Metrics.counter;
  m_restarts : Metrics.counter;
  mutable monitor : Thread.t option;
  mutable health : Thread.t option;
}

let stopping t = Atomic.get t.stop
let shard_pids t = Array.map (fun sh -> sh.pid) t.shards

(* ---- worker processes ---- *)

let spawn_shard cfg sh =
  (* A crashed worker leaves its socket path behind, and `crsched serve`
     refuses to clobber an existing path — the balancer owns this
     directory, so it unlinks before every (re)spawn. *)
  (try Unix.unlink sh.socket with Unix.Unix_error _ -> ());
  let argv = cfg.shard_argv ~index:sh.index ~socket:sh.socket in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close dev_null)
      (fun () ->
        Unix.create_process argv.(0) argv dev_null Unix.stdout Unix.stderr)
  in
  sh.pid <- pid

let try_connect sh =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Respawned workers must not inherit the balancer's sockets: a shard
     holding a duplicate of a client (or sibling-shard) fd would keep
     the connection from ever reaching EOF. *)
  Unix.set_close_on_exec fd;
  match Unix.connect fd (Unix.ADDR_UNIX sh.socket) with
  | () -> Some fd
  | exception Unix.Unix_error (_, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

(* Ready = the socket accepts a connection. The shard may still be
   replaying warm state behind its listen backlog; that's fine — it is
   reachable, and requests queue until the replay finishes. *)
let wait_ready cfg sh =
  let deadline = now_s () +. cfg.connect_timeout_s in
  let rec go () =
    match try_connect sh with
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.set sh.alive true;
      true
    | None ->
      if now_s () >= deadline then false
      else begin
        Thread.delay 0.02;
        go ()
      end
  in
  go ()

(* One request/response exchange on a fresh connection (health pings,
   stats aggregation, the tier-drain shutdown). *)
let rpc_once ?(timeout_s = 5.0) sh line =
  match try_connect sh with
  | None -> Error "unreachable"
  | Some fd ->
    let conn = Conn.of_fd fd in
    Fun.protect
      ~finally:(fun () -> Conn.close conn)
      (fun () ->
        match Conn.send conn line with
        | () -> (
          match Conn.recv_line ~timeout_s conn with
          | Some response -> Ok response
          | None -> Error "no response")
        | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e))

let stats_line =
  J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "stats") ]

let shutdown_line =
  J.obj [ ("proto", J.str Protocol.version); ("kind", J.str "shutdown") ]

(* ---- monitor: reap and restart dead workers ---- *)

let monitor_loop t =
  let backoff = Array.map (fun _ -> t.cfg.restart_backoff_s) t.shards in
  while not (stopping t) do
    Array.iter
      (fun sh ->
        Mutex.lock sh.lock;
        let pid = sh.pid in
        Mutex.unlock sh.lock;
        if pid > 0 then begin
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, _ ->
            (* The worker died. Exponential backoff before the respawn:
               doubles on every death, resets once a respawn comes up
               ready — a crash-looping shard cannot spin the tier. *)
            Atomic.set sh.alive false;
            Mutex.lock sh.lock;
            sh.pid <- 0;
            Mutex.unlock sh.lock;
            if not (stopping t) then begin
              Thread.delay backoff.(sh.index);
              if not (stopping t) then begin
                Mutex.lock sh.lock;
                spawn_shard t.cfg sh;
                Mutex.unlock sh.lock;
                Atomic.incr sh.restarts;
                Metrics.incr t.m_restarts;
                if wait_ready t.cfg sh then
                  backoff.(sh.index) <- t.cfg.restart_backoff_s
                else
                  backoff.(sh.index) <-
                    Float.min
                      (2.0 *. backoff.(sh.index))
                      t.cfg.restart_backoff_max_s
              end
            end
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            Mutex.lock sh.lock;
            sh.pid <- 0;
            Mutex.unlock sh.lock
        end)
      t.shards;
    Thread.delay 0.03
  done

(* ---- health: periodic stats pings ---- *)

let health_loop t =
  while not (stopping t) do
    Array.iter
      (fun sh ->
        if not (stopping t) then
          match rpc_once ~timeout_s:t.cfg.rpc_timeout_s sh stats_line with
          | Ok _ ->
            Atomic.incr sh.pings_ok;
            Atomic.set sh.alive true
          | Error _ ->
            Atomic.incr sh.pings_failed;
            Atomic.set sh.alive false)
      t.shards;
    (* Sleep in slices so a tier drain isn't held up by the interval. *)
    let slept = ref 0.0 in
    while (not (stopping t)) && !slept < t.cfg.health_interval_s do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

(* ---- lifecycle ---- *)

let create (cfg : config) =
  (* As in Server.create: shard connections die under us by design
     (that is what the monitor is for), and every send must surface as
     EPIPE, not a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if cfg.shards < 1 then Error "balancer: shards must be >= 1"
  else begin
    (try Unix.mkdir cfg.socket_dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let shards =
      Array.init cfg.shards (fun index ->
          {
            index;
            socket = shard_socket ~socket_dir:cfg.socket_dir index;
            lock = Mutex.create ();
            pid = 0;
            alive = Atomic.make false;
            restarts = Atomic.make 0;
            routed = Atomic.make 0;
            pings_ok = Atomic.make 0;
            pings_failed = Atomic.make 0;
          })
    in
    let t =
      {
        cfg;
        shards;
        stop = Atomic.make false;
        accepted = Atomic.make 0;
        answered = Atomic.make 0;
        refused = Atomic.make 0;
        conns_live = Atomic.make 0;
        conns_accepted = Atomic.make 0;
        conns_refused = Atomic.make 0;
        m_routed = Metrics.counter "balancer.routed";
        m_answered = Metrics.counter "balancer.answered";
        m_refused = Metrics.counter "balancer.refused";
        m_restarts = Metrics.counter "balancer.restarts";
        monitor = None;
        health = None;
      }
    in
    Array.iter (fun sh -> spawn_shard cfg sh) shards;
    let late =
      Array.to_list shards
      |> List.filter (fun sh -> not (wait_ready cfg sh))
      |> List.map (fun sh -> sh.index)
    in
    match late with
    | [] ->
      t.monitor <- Some (Thread.create monitor_loop t);
      t.health <- Some (Thread.create health_loop t);
      Ok t
    | _ ->
      (* Startup failed: kill whatever came up and report which shards
         never answered. *)
      Atomic.set t.stop true;
      Array.iter
        (fun sh ->
          if sh.pid > 0 then begin
            (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] sh.pid)
             with Unix.Unix_error _ -> ());
            try Unix.unlink sh.socket with Unix.Unix_error _ -> ()
          end)
        shards;
      Error
        (Printf.sprintf
           "balancer: shard(s) %s not accepting connections within %.1fs"
           (String.concat ", " (List.map string_of_int late))
           cfg.connect_timeout_s)
  end

(* Tier-wide drain entry: flip stopping, then ask every shard to shut
   down (each answers its own connections, fires its drain hook — warm
   snapshot — and exits; the monitor stops respawning because stopping
   is already set). *)
let begin_drain t =
  if Atomic.compare_and_set t.stop false true then
    Array.iter
      (fun sh ->
        ignore (rpc_once ~timeout_s:t.cfg.rpc_timeout_s sh shutdown_line))
      t.shards

let reap t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      let pid = sh.pid in
      Mutex.unlock sh.lock;
      if pid > 0 then begin
        (* Grace, then escalate: a worker that ignores its shutdown
           response for this long is wedged. *)
        let deadline = now_s () +. 10.0 in
        let rec wait signalled =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if now_s () >= deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
            end
            else begin
              if (not signalled) && now_s () >= deadline -. 5.0 then begin
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                Thread.delay 0.05;
                wait true
              end
              else begin
                Thread.delay 0.05;
                wait signalled
              end
            end
          | _, _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        wait false;
        Mutex.lock sh.lock;
        sh.pid <- 0;
        Mutex.unlock sh.lock
      end;
      (* Workers unlink their sockets on clean exit; clear leftovers. *)
      try Unix.unlink sh.socket with Unix.Unix_error _ -> ())
    t.shards

let drain t =
  begin_drain t;
  (match t.monitor with Some th -> Thread.join th | None -> ());
  (match t.health with Some th -> Thread.join th | None -> ());
  t.monitor <- None;
  t.health <- None;
  reap t

(* ---- stats aggregation ---- *)

let member_int name json =
  match J.member name json with Some (J.Int i) -> Some i | _ -> None

let stats_payload t =
  (* Live aggregation: ask every shard for its stats right now, sum the
     tier-wide counters, and carry each shard's warm progress through
     verbatim. A shard that cannot answer shows up as alive:false with
     its balancer-side counters only. *)
  let fetched =
    Array.map
      (fun sh ->
        match rpc_once ~timeout_s:t.cfg.rpc_timeout_s sh stats_line with
        | Ok line -> (sh, Result.to_option (J.parse line))
        | Error _ -> (sh, None))
      t.shards
  in
  let sum path =
    Array.fold_left
      (fun acc (_, json) ->
        match json with
        | None -> acc
        | Some j -> (
          match path j with Some v -> acc + v | None -> acc))
      0 fetched
  in
  let top name = member_int name in
  let nested outer inner j = Option.bind (J.member outer j) (member_int inner) in
  let shard_json (sh, json) =
    let passthrough =
      match json with
      | None -> []
      | Some j ->
        [
          ("requests", J.int (Option.value ~default:0 (top "requests" j)));
          ( "cache",
            J.obj
              [
                ("hits", J.int (Option.value ~default:0 (nested "cache" "hits" j)));
                ( "misses",
                  J.int (Option.value ~default:0 (nested "cache" "misses" j)) );
              ] );
          ( "warm",
            match J.member "warm" j with
            | Some w -> J.to_string w
            | None -> J.obj [] );
        ]
    in
    J.obj
      ([
         ("index", J.int sh.index);
         ("alive", J.bool (Atomic.get sh.alive));
         ("pid", J.int sh.pid);
         ("restarts", J.int (Atomic.get sh.restarts));
         ("routed", J.int (Atomic.get sh.routed));
         ("pings_ok", J.int (Atomic.get sh.pings_ok));
         ("pings_failed", J.int (Atomic.get sh.pings_failed));
       ]
      @ passthrough)
  in
  [
    ("status", J.str "ok");
    ("shards", J.int t.cfg.shards);
    ("requests", J.int (sum (top "requests")));
    ("ok", J.int (sum (top "ok")));
    ("errors", J.int (sum (top "errors")));
    ("timeouts", J.int (sum (top "timeouts")));
    ("overloaded", J.int (sum (top "overloaded")));
    ("not_applicable", J.int (sum (top "not_applicable")));
    ( "cache",
      J.obj
        [
          ("hits", J.int (sum (nested "cache" "hits")));
          ("misses", J.int (sum (nested "cache" "misses")));
        ] );
    ( "balancer",
      J.obj
        [
          ("accepted", J.int (Atomic.get t.accepted));
          ("answered", J.int (Atomic.get t.answered));
          ("refused", J.int (Atomic.get t.refused));
          ( "restarts",
            J.int
              (Array.fold_left
                 (fun acc sh -> acc + Atomic.get sh.restarts)
                 0 t.shards) );
          ( "connections",
            J.obj
              [
                ("live", J.int (Atomic.get t.conns_live));
                ("accepted", J.int (Atomic.get t.conns_accepted));
                ("refused", J.int (Atomic.get t.conns_refused));
              ] );
          ("shard", J.arr (Array.to_list (Array.map shard_json fetched)));
        ] );
  ]

(* ---- request handling ---- *)

(* Per-client lazily-opened shard connections: one client's requests to
   one shard share a pipeline (order within the pair is preserved
   because the session is serial), and a failed connection is dropped so
   the next request reconnects — which is how a restarted shard comes
   back into rotation. *)
type session_conns = Conn.t option array

let shard_rpc t (conns : session_conns) sh line =
  let attempt () =
    let conn =
      match conns.(sh.index) with
      | Some c -> Some c
      | None -> (
        match try_connect sh with
        | Some fd ->
          let c = Conn.of_fd fd in
          conns.(sh.index) <- Some c;
          Some c
        | None -> None)
    in
    match conn with
    | None -> None
    | Some c -> (
      match
        Conn.send c line;
        Conn.recv_line ~timeout_s:t.cfg.rpc_timeout_s c
      with
      | Some response -> Some response
      | None | (exception Unix.Unix_error (_, _, _)) ->
        Conn.close c;
        conns.(sh.index) <- None;
        None)
  in
  (* One retry on a fresh connection: solve and campaign requests are
     deterministic (idempotent), and the shard may have just finished
     restarting. *)
  match attempt () with Some r -> Some r | None -> attempt ()

let shard_unavailable ~index =
  [
    ("status", J.str "overloaded");
    ( "error",
      J.str
        (Printf.sprintf "shard %d unavailable (restarting); retry" index) );
  ]

let handle_request t (conns : session_conns) line =
  Atomic.incr t.accepted;
  let p = Protocol.parse line in
  let answer ~req payload =
    Atomic.incr t.answered;
    Metrics.incr t.m_answered;
    Protocol.respond ~id:p.Protocol.id ~req payload
  in
  let forward ~req ~key =
    let idx = route ~shards:t.cfg.shards key in
    let sh = t.shards.(idx) in
    Atomic.incr sh.routed;
    Metrics.incr t.m_routed;
    Trace.with_span
      ~attrs:[ ("kind", Trace.Str req); ("shard", Trace.Int idx) ]
      "balancer.route"
      (fun () ->
        match shard_rpc t conns sh line with
        | Some response ->
          Atomic.incr t.answered;
          Metrics.incr t.m_answered;
          response
        | None ->
          Atomic.incr t.refused;
          Metrics.incr t.m_refused;
          Protocol.respond ~id:p.Protocol.id ~req (shard_unavailable ~index:idx))
  in
  match p.Protocol.body with
  | Error msg -> answer ~req:"unknown" (Protocol.error msg)
  | Ok Protocol.Hello ->
    (* Answered at the front: the handshake is shard-independent. *)
    answer ~req:"hello" (Protocol.ok_hello ~algorithms:Registry.names)
  | Ok Protocol.Stats ->
    (* Counted answered *before* the snapshot is taken, so the payload a
       client reads satisfies accepted = answered + refused with its own
       request included — no perpetual off-by-one in the invariant. *)
    Atomic.incr t.answered;
    Metrics.incr t.m_answered;
    Protocol.respond ~id:p.Protocol.id ~req:"stats" (stats_payload t)
  | Ok Protocol.Shutdown ->
    begin_drain t;
    answer ~req:"shutdown"
      [ ("status", J.str "ok"); ("stopping", J.bool true) ]
  | Ok (Protocol.Solve s) ->
    (* THE routing decision: the canonical key, so every member of an
       equivalence class shares one shard's LRU. *)
    forward ~req:"solve" ~key:(Canon.key s.instance)
  | Ok (Protocol.Campaign _) ->
    (* No canonical form; any deterministic spread works. *)
    forward ~req:"campaign" ~key:("campaign#" ^ Digest.to_hex (Digest.string line))

(* ---- client sessions ---- *)

let send_event fd payload =
  try write_all fd (Protocol.respond ~id:None ~req:"connection" payload ^ "\n")
  with Unix.Unix_error _ -> ()

let refuse_conn t fd =
  Atomic.incr t.conns_refused;
  send_event fd (Protocol.overloaded ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let session t fd =
  let conns : session_conns = Array.make t.cfg.shards None in
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec split_lines acc =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> List.rev acc
    | Some nl ->
      let line = String.sub s 0 nl in
      Buffer.clear pending;
      Buffer.add_substring pending s (nl + 1) (String.length s - nl - 1);
      split_lines (line :: acc)
  in
  let refuse_draining line =
    (* Same accounting rule as any other request: read, counted, refused
       with structure. *)
    Atomic.incr t.accepted;
    Atomic.incr t.refused;
    Metrics.incr t.m_refused;
    let p = Protocol.parse line in
    let req =
      match p.Protocol.body with
      | Ok r -> Protocol.kind_of_request r
      | Error _ -> "unknown"
    in
    Protocol.respond ~id:p.Protocol.id ~req (Protocol.draining ())
  in
  let handle_lines lines =
    match List.filter (fun l -> String.trim l <> "") lines with
    | [] -> ()
    | lines ->
      let respond =
        if stopping t then refuse_draining else handle_request t conns
      in
      let responses = List.map respond lines in
      write_all fd (String.concat "\n" responses ^ "\n")
  in
  let stop_seen = ref None in
  let rec loop () =
    (match (stopping t, !stop_seen) with
    | true, None -> stop_seen := Some (now_s ())
    | _ -> ());
    match !stop_seen with
    | Some since when now_s () -. since >= t.cfg.drain_grace_s -> ()
    | _ -> (
      match Unix.select [ fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
          if Buffer.length pending > 0 then begin
            let last = Buffer.contents pending in
            Buffer.clear pending;
            handle_lines [ last ]
          end
        | n ->
          Buffer.add_subbytes pending chunk 0 n;
          let lines = split_lines [] in
          if
            List.exists
              (fun l -> String.length l > t.cfg.max_line_bytes)
              lines
            || Buffer.length pending > t.cfg.max_line_bytes
          then begin
            (* Oversized frame: same poisoning rule as the shards — the
               rest of the buffer is garbage, answer and close. *)
            Atomic.incr t.accepted;
            Atomic.incr t.answered;
            send_event fd (Protocol.oversized ~limit:t.cfg.max_line_bytes)
          end
          else begin
            handle_lines lines;
            loop ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (function Some c -> Conn.close c | None -> ()) conns;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())

let attach t fd =
  (* See try_connect: client fds must not leak into respawned workers. *)
  (try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ());
  if Atomic.fetch_and_add t.conns_live 1 >= t.cfg.max_conns then begin
    Atomic.decr t.conns_live;
    refuse_conn t fd;
    None
  end
  else begin
    Atomic.incr t.conns_accepted;
    Some
      (Thread.create
         (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.decr t.conns_live)
             (fun () -> session t fd))
         ())
  end

let serve t fd =
  let readers = ref [] in
  while not (stopping t) do
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept fd with
      | conn, _ -> (
        match attach t conn with
        | Some reader -> readers := reader :: !readers
        | None -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter Thread.join !readers
