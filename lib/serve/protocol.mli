(** The [crs-serve/1] wire protocol.

    Line-delimited JSON over a byte stream: each request is one
    {!Crs_util.Stable_json} object on one line, each answer one response
    object on one line, in request order. The protocol is versioned by
    the mandatory ["proto"] field — a request carrying any other value
    is answered with a structured error instead of being guessed at —
    and strict: trailing garbage after the JSON value, unknown request
    kinds and malformed bodies all produce ["status":"error"] responses
    carrying the parser's byte-offset message, never a dropped line, so
    one bad request cannot desynchronize the stream.

    Requests:
    {v
    {"proto":"crs-serve/1","kind":"hello"}
    {"proto":"crs-serve/1","id":7,"kind":"solve","instance":"1/2 1/3\n1/4",
     "algorithm":"optimal","fuel":100000,"witness":true}
    {"proto":"crs-serve/1","kind":"campaign","family":"uniform","m":3,
     "n":3,"granularity":10,"seed_lo":1,"seed_hi":8,
     "algorithms":["greedy-balance"],"baseline":"exact"}
    {"proto":"crs-serve/1","kind":"stats"}
    {"proto":"crs-serve/1","kind":"shutdown"}
    v}

    Responses mirror the request's optional ["id"] (echoed only when the
    client sent one — responses are otherwise byte-stable functions of
    the request body) and carry ["kind":"response"], ["req"] naming the
    request kind, and a ["status"] of [ok], [error], [timeout],
    [overloaded], [not_applicable], [draining] or [evicted]. The last
    two arrive with ["req":"connection"]: they are connection-level
    events (a refusal during graceful drain, an idle-deadline eviction)
    rather than answers to a particular request body. *)

val version : string
(** ["crs-serve/1"]. *)

type solve = {
  algorithm : string;  (** registry name; default [greedy-balance] *)
  instance : Crs_core.Instance.t;
  fuel : int option;  (** tick budget; [None] = server default *)
  witness : bool;  (** include the schedule witness (default false) *)
  certify : bool;  (** audit the witness before answering (default false) *)
  cache : bool;  (** allow memo-cache use for this request (default true) *)
}

type request =
  | Hello
  | Solve of solve
  | Campaign of Crs_campaign.Spec.t
  | Stats
  | Shutdown

val kind_of_request : request -> string

type parsed = {
  id : int option;
      (** client correlation id, recovered even from requests whose body
          fails validation (as long as the JSON itself parsed) *)
  body : (request, string) result;
}

val parse : string -> parsed
(** Strict parse of one request line. Never raises; all failures —
    malformed JSON (with byte offset), wrong ["proto"], unknown
    ["kind"], invalid bodies, oversized campaigns — land in [Error]. *)

val max_campaign_items : int
(** Upper bound on [seeds × algorithms] accepted per campaign request;
    larger specs are rejected at parse time. *)

(** {2 Response assembly}

    A response is its payload field list (starting with ["status"])
    wrapped in the envelope. Payloads are what the server memo-caches:
    they contain no id and no envelope, so a cached payload re-wrapped
    for a different request is byte-identical except for the caller's
    own id. *)

val respond : id:int option -> req:string -> (string * string) list -> string
(** Wrap a payload: [{"proto":...,"id":...?,"kind":"response","req":...,
    <payload fields>}]. Values in the payload list are pre-encoded (the
    {!Crs_util.Stable_json} combinator convention). *)

val ok_solve :
  algorithm:string ->
  makespan:int ->
  schedule:Crs_core.Schedule.t option ->
  counters:Crs_algorithms.Registry.Counters.t ->
  canon_digest:string ->
  (string * string) list
(** [status ok] payload for a solve. [canon_digest] is the MD5 of the
    canonical instance key — equal digests identify the equivalence
    class the answer was computed for. *)

val ok_campaign : Crs_campaign.Report.summary -> (string * string) list

val ok_hello : algorithms:string list -> (string * string) list

val error : string -> (string * string) list
val timeout : fuel:int -> fuel_ticks:int -> (string * string) list
val overloaded : unit -> (string * string) list
val not_applicable : string -> (string * string) list

val draining : unit -> (string * string) list
(** [status draining]: the server acknowledged a shutdown and refuses
    new work while live connections quiesce. *)

val evicted : idle_s:float -> (string * string) list
(** [status evicted]: the connection sat idle (no complete frame) past
    the server's read deadline and is being closed — the slow-loris
    answer. Names the deadline that was exceeded. *)

val oversized : limit:int -> (string * string) list
(** [status error] naming the per-line byte limit a frame exceeded; the
    server closes the offending connection after sending it. *)
