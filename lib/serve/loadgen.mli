(** Load generator for the serve daemon.

    Drives one connection with a workload of request lines under a
    chosen arrival process and measures per-request latency from the
    response stream (responses come back in request order, so matching
    is positional). Arrival shapes follow the dynamic-workload framing
    of "Dynamic Fractional Resource Scheduling vs. Batch Scheduling":

    - {!Closed_loop} — send, wait, send: one request in flight, the
      classic think-time-zero closed system;
    - {!Poisson} — open loop, exponential inter-arrival gaps at a given
      rate, sent regardless of response progress;
    - {!Bursty} — open loop, requests arrive in back-to-back groups of
      [burst] with exponential gaps between groups — the shape that
      actually exercises batching and admission.

    Open-loop schedules are drawn from a caller-seeded PRNG, so a bench
    run is reproducible. *)

module Client : sig
  type t

  val of_fd : Unix.file_descr -> t
  (** Wrap a connected stream socket (read and write on one fd). *)

  val send_line : t -> string -> unit
  val recv_line : t -> string option
  (** Next response line; [None] on EOF. *)

  val rpc : t -> string -> string
  (** [send_line] then [recv_line], for control requests.
      @raise Failure on EOF. *)
end

type arrival =
  | Closed_loop
  | Poisson of { rate : float }  (** requests per second *)
  | Bursty of { burst : int; rate : float }
      (** [burst]-sized groups at [rate] groups per second *)

type stats = {
  sent : int;
  received : int;
  duration_ns : int64;  (** first send to last response *)
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  latencies_ms : float array;
      (** every per-request latency sample, sorted ascending — what
          {!run_multi} merges so aggregate percentiles stay exact *)
}

val run :
  ?seed:int -> Client.t -> arrival:arrival -> requests:string list -> stats
(** Send every request under the arrival process and collect exactly one
    response per request. [seed] (default 1) feeds the open-loop
    schedule. *)

val run_multi :
  ?seed:int ->
  Client.t array ->
  arrival:arrival ->
  requests:string list ->
  stats
(** Multi-connection mode: split the workload round-robin across the
    clients and drive each on its own thread under [arrival], with
    per-connection open-loop schedules derived deterministically from
    [seed] and the connection index. The aggregate sums sent/received,
    merges all latency samples (percentiles are over the full
    population) and clocks throughput on the slowest connection's
    span.
    @raise Invalid_argument on an empty client array. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [0,1]; nearest-rank on a sorted
    array, 0 when empty. Exposed for the bench report. *)
