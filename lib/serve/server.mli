(** The serve daemon: batched request processing over byte streams and
    sockets.

    One server value owns the worker pool ({!Admission}), the
    canonicalizing memo cache ({!Canon.Cache}) and the running stats
    counters. Requests arrive as lines; every chunk of complete lines
    read from the stream is processed as one {i batch}: work requests
    (solve, campaign) go through admission — the first [queue] of a
    batch run on the pool, the rest are answered [overloaded] — and
    control requests (hello, stats, shutdown, malformed lines) are
    answered inline after the batch's work settles, so a [stats] request
    observes the solves that travelled with it. Responses always come
    back in request order.

    Connections are served one at a time; parallelism lives inside a
    batch (pipelined requests on one connection), which keeps responses
    ordered without a per-connection demultiplexer. *)

type config = {
  workers : int;  (** pool domains for batch work *)
  queue : int;  (** admission bound per batch *)
  cache_capacity : int;  (** memo-cache entries; 0 disables *)
  default_fuel : int option;
      (** deadline for requests that don't set ["fuel"]; [None] = none *)
}

val default_config : config
(** workers 2, queue 64, cache 256, default fuel [Some 5_000_000]. *)

type t

val create : config -> t

(** {2 Request processing} *)

val process_batch : t -> string list -> string list
(** Answer one batch of request lines, in order. Blank lines get no
    response (and occupy no admission slot). *)

val handle_line : t -> string -> string
(** Single-request batch. *)

val stopping : t -> bool
(** A [shutdown] request has been answered; loops should drain. *)

val stats_payload : t -> (string * string) list
(** The [stats] response payload (also reachable in-process, e.g. for
    benches that want cache numbers without a socket round-trip). *)

val drain : t -> unit
(** Join the worker pool (idempotent). Call after the serve loop. *)

(** {2 Streams and sockets} *)

val serve_io : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Serve until EOF on [input] or a [shutdown] request: read chunks,
    batch complete lines, write responses. Partial trailing lines are
    buffered across reads; a final unterminated line at EOF is processed
    as its own batch. *)

type address = Unix_sock of string | Tcp of string * int

val address_to_string : address -> string

val parse_address : string -> (address, string) result
(** [unix:PATH] or [tcp:HOST:PORT]. The error names the offending
    value. *)

val bind_address : address -> (Unix.file_descr, string) result
(** Bind and listen. A Unix socket path that already exists is a bind
    error (the server never unlinks a path it did not create) — the
    error names the address and the system cause. *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop on a listening socket: serve each connection with
    {!serve_io} until a [shutdown] request arrives (checked between
    accepts and after each connection). *)

val close_address : address -> Unix.file_descr -> unit
(** Close the listening socket and remove a Unix socket path. *)
