(** The serve daemon: batched request processing over byte streams and
    sockets, with a concurrent-connection frontend.

    One server value owns the worker pool ({!Admission}), the
    canonicalizing memo cache ({!Canon.Cache}), the running stats
    counters and the per-request-kind latency histograms. Requests
    arrive as lines; every chunk of complete lines read from a stream
    is processed as one {i batch}: work requests (solve, campaign) go
    through admission — shared across all live connections, the
    executor's live backlog charges the budget, excess is answered
    [overloaded] — and control requests (hello, stats, shutdown,
    malformed lines) are answered inline after the batch's work
    settles, so a [stats] request observes the solves that travelled
    with it. Responses on one connection always come back in that
    connection's request order.

    {2 Concurrency model}

    An acceptor thread ({!serve}) accepts connections and spawns one
    {i reader} per connection (a systhread — readers are IO-bound; the
    solving itself runs on the executor's worker domains), bounded by
    [max_conns]: connections beyond the bound are answered with one
    structured [overloaded] response and closed ({i refused}).
    Connections interleave freely — each reader waits only on its own
    batches via {!Crs_exec.Exec.Batch} handles — while per-connection
    response order is preserved because each reader processes its own
    batches sequentially.

    {2 Edge robustness}

    A connection that goes wrong dies alone; siblings keep serving:
    - {i slow-loris}: a frame was started but not finished within
      [idle_timeout_s] — structured [evicted] response, connection
      closed (a quiet connection with no partial frame is just idle
      and is never evicted);
    - {i oversized frame}: a line longer than [max_line_bytes] —
      structured error naming the limit, connection closed;
    - {i malformed frames / mid-line EOF}: answered with structured
      errors in-stream (a final unterminated line at EOF is still a
      request); the connection lives on (EOF ends it normally).

    {2 Graceful drain}

    A [shutdown] request stops the acceptor and begins the drain:
    in-flight batches finish and their responses are written; for
    [drain_grace_s] each reader answers late requests with structured
    [draining] refusals; then every connection is closed and {!serve}
    returns only after all readers have quiesced. *)

type config = {
  workers : int;  (** pool domains for batch work *)
  queue : int;  (** admission bound, shared across connections *)
  cache_capacity : int;  (** memo-cache entries; 0 disables *)
  default_fuel : int option;
      (** deadline for requests that don't set ["fuel"]; [None] = none *)
  max_conns : int;  (** concurrent-connection bound; beyond = refused *)
  backlog : int;  (** listen(2) backlog for {!bind_address} *)
  idle_timeout_s : float;
      (** per-connection mid-frame read deadline (slow-loris
          eviction); 0 = none *)
  drain_grace_s : float;
      (** how long readers refuse late requests during graceful drain *)
  max_line_bytes : int;
      (** frame bound; longer lines poison (close) their connection *)
}

val default_config : config
(** workers 2, queue 64, cache 256, default fuel [Some 5_000_000],
    max_conns 64, backlog 128, idle timeout 30 s, drain grace 0.5 s,
    max line 1 MiB. *)

type t

val create : config -> t

(** {2 Request processing} *)

val process_batch : t -> string list -> string list
(** Answer one batch of request lines, in order. Blank lines get no
    response (and occupy no admission slot). Thread-safe: concurrent
    readers call this on the shared server. *)

val handle_line : t -> string -> string
(** Single-request batch. *)

val stopping : t -> bool
(** A [shutdown] request has been answered; loops should drain. *)

val stats_payload : t -> (string * string) list
(** The [stats] response payload (also reachable in-process, e.g. for
    benches that want cache numbers or per-kind latency quantiles
    without a socket round-trip). Includes the [latency] object (log2
    histogram summary per request kind: count, p50/p99 bucket upper
    edges and max, in microseconds) and the [connections] lifecycle
    counters (live/accepted/refused/evicted/drained). *)

val drain : t -> unit
(** Join the worker pool (idempotent). Call after the serve loop.

    {2 Drain state machine}

    [running → stopping → hook → drained]: a [shutdown] request (or
    {!stopping} being observed) moves the server to {i stopping} —
    readers finish in-flight batches, refuse latecomers with [draining]
    and close. The first {!drain} call then (1) fires the {!set_on_drain}
    hook exactly once, while the memo cache is final but the process is
    still fully alive — the only sound moment to snapshot cache keys —
    and (2) shuts the executor down. Further {!drain} calls only re-join
    the (already stopped) executor. *)

val set_on_drain : t -> (t -> unit) -> unit
(** Install the drain hook (latest wins). It runs once, inside the
    first {!drain}, before the executor stops; exceptions are reported
    on stderr and swallowed so a failing hook cannot wedge the drain.
    The warm subsystem uses this to persist the canonical-key set. *)

val cache_keys : t -> string list
(** Memo-cache keys ({!Canon.Solve_key} renderings), most-recent first
    — the canonical-key set a warm snapshot persists. *)

(** {2 Warm-replay progress}

    Updated by the warm subsystem ([Warm.load_and_replay]); exported as
    the [warm] object of the [stats] response so operators can watch a
    restarted server refill its cache. *)

val warm_begin : t -> entries:int -> unit
val warm_note : t -> ok:bool -> unit
val warm_finish : t -> unit

(** {2 Streams and sockets} *)

val serve_io : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Serve a single session until EOF on [input] or a [shutdown]
    request: read chunks, batch complete lines, write responses.
    Partial trailing lines are buffered across reads; a final
    unterminated line at EOF is processed as its own batch. No idle
    eviction and no drain grace — this is the stdio/pipeline mode. *)

val attach : t -> Unix.file_descr -> Thread.t option
(** Register a connected stream fd as a live connection: spawns and
    returns its reader thread (the caller joins it, as {!serve} does
    for accepted connections), or — when the [max_conns] limit is
    reached — writes one structured [overloaded] response, closes the
    fd, counts the refusal and returns [None]. The reader closes the
    fd when the session ends. Exposed so tests and benches can drive
    the concurrent frontend over socketpairs without a listener. *)

type address = Unix_sock of string | Tcp of string * int

val address_to_string : address -> string

val parse_address : string -> (address, string) result
(** [unix:PATH] or [tcp:HOST:PORT]. The error names the offending
    value. *)

val bind_address :
  ?backlog:int -> address -> (Unix.file_descr, string) result
(** Bind and listen with the given backlog (default
    [default_config.backlog]). A Unix socket path that already exists
    is a bind error (the server never unlinks a path it did not
    create) — the error names the address and the system cause. *)

val serve : t -> Unix.file_descr -> unit
(** Concurrent accept loop on a listening socket: one reader thread
    per accepted connection (via {!attach}), until a [shutdown]
    request arrives; then joins every reader (graceful drain) before
    returning. *)

val close_address : address -> Unix.file_descr -> unit
(** Close the listening socket and remove a Unix socket path. *)
