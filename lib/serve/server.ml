module J = Crs_util.Stable_json
module Registry = Crs_algorithms.Registry
module Trace = Crs_obs.Trace
module Metrics = Crs_obs.Metrics

type config = {
  workers : int;
  queue : int;
  cache_capacity : int;
  default_fuel : int option;
  max_conns : int;
  backlog : int;
  idle_timeout_s : float;
  drain_grace_s : float;
  max_line_bytes : int;
}

let default_config =
  {
    workers = 2;
    queue = 64;
    cache_capacity = 256;
    default_fuel = Some 5_000_000;
    max_conns = 64;
    backlog = 128;
    idle_timeout_s = 30.0;
    drain_grace_s = 0.5;
    max_line_bytes = 1 lsl 20;
  }

(* Always-on per-request-kind latency histogram: log2 buckets over
   microseconds, same bucketing convention as Crs_obs.Metrics (bucket 0
   holds <= 0, bucket k >= 1 holds 2^(k-1) <= v < 2^k) but readable
   without enabling the metrics subsystem — the crs-serve/1 stats
   response must carry latency whether or not an operator turned
   tracing on. Quantiles are bucket upper edges: coarse (a power of
   two) but monotone, which is exactly what a p99 regression gate
   needs. *)
module Lat = struct
  let buckets = 40 (* 2^39 us ~ 6.4 days: past any plausible request *)

  type t = { counts : int Atomic.t array; max_us : int Atomic.t }

  let create () =
    {
      counts = Array.init buckets (fun _ -> Atomic.make 0);
      max_us = Atomic.make 0;
    }

  let bucket_of us =
    if us <= 0 then 0
    else
      let rec bits k v = if v = 0 then k else bits (k + 1) (v lsr 1) in
      min (buckets - 1) (bits 0 us)

  let observe t us =
    Atomic.incr t.counts.(bucket_of us);
    let rec raise_max () =
      let m = Atomic.get t.max_us in
      if us > m && not (Atomic.compare_and_set t.max_us m us) then raise_max ()
    in
    raise_max ()

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let max_us t = Atomic.get t.max_us

  (* Upper edge of the bucket holding the q-quantile observation
     (nearest rank), 0 on an empty histogram. *)
  let quantile_upper_us t q =
    let total = count t in
    if total = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let edge = ref 0 and seen = ref 0 and k = ref 0 in
      while !seen < rank && !k < buckets do
        let c = Atomic.get t.counts.(!k) in
        if c > 0 then begin
          seen := !seen + c;
          edge := (if !k = 0 then 0 else 1 lsl !k)
        end;
        incr k
      done;
      !edge
    end
end

(* Request kinds the latency histograms are keyed by: solve and
   campaign are the work kinds, stats is its own (operators watch it),
   and hello/shutdown/malformed lines fold into "control". *)
let lat_kinds = [| "solve"; "campaign"; "stats"; "control" |]

let lat_index = function
  | "solve" -> 0
  | "campaign" -> 1
  | "stats" -> 2
  | _ -> 3

(* Response status, tracked alongside the payload so stats counters and
   span attributes don't have to re-parse the JSON they just built. *)
type status = Ok_ | Error_ | Timeout_ | Overloaded_ | Not_applicable_

let status_label = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Timeout_ -> "timeout"
  | Overloaded_ -> "overloaded"
  | Not_applicable_ -> "not_applicable"

type counters = {
  requests : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
  timeouts : int Atomic.t;
  overloaded : int Atomic.t;
  not_applicable : int Atomic.t;
}

(* Connection lifecycle counters: accepted = reader spawned, refused =
   turned away at the max-conns limit, evicted = closed by the server
   (idle deadline or an oversized frame), drained = closed during
   graceful drain. *)
type conn_counters = {
  live : int Atomic.t;
  accepted : int Atomic.t;
  refused : int Atomic.t;
  evicted : int Atomic.t;
  drained : int Atomic.t;
}

(* Warm-replay progress, exposed in stats so an operator (or the
   balancer's health pings) can watch a restarted shard refill its memo
   cache. All zeros with [finished] set when no warm state is
   configured. *)
type warm_counters = {
  w_entries : int Atomic.t;
  w_replayed : int Atomic.t;
  w_failed : int Atomic.t;
  w_finished : bool Atomic.t;
}

type t = {
  config : config;
  admission : Admission.t;
  cache : (status * (string * string) list) Canon.Cache.t;
  stop : bool Atomic.t;
  c : counters;
  conns : conn_counters;
  warm : warm_counters;
  (* Drain hook: runs exactly once, inside the first [drain] call,
     BEFORE the executor shuts down — the cache is final (no worker can
     publish a late entry after readers quiesced) and the process is
     still fully alive, which is when a warm-state snapshot is sound. *)
  mutable on_drain : (t -> unit) option;
  drain_hook_fired : bool Atomic.t;
  lat : Lat.t array; (* indexed by lat_index, always on *)
  m_requests : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_overloaded : Metrics.counter;
  m_timeouts : Metrics.counter;
  m_conn_accepted : Metrics.counter;
  m_conn_refused : Metrics.counter;
  m_conn_evicted : Metrics.counter;
  m_conn_drained : Metrics.counter;
  m_lat : Metrics.histogram array; (* mirrors lat when metrics are on *)
}

let create config =
  (* Every write path here treats a dead peer as Unix_error EPIPE — a
     connection-local event — which requires the process-default
     SIGPIPE termination to be off. Idempotent, and deliberately in
     create (not main): embedders (tests, benches, the balancer) get
     the same semantics as the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  {
    config;
    admission = Admission.create ~queue:config.queue ~workers:config.workers;
    cache = Canon.Cache.create ~capacity:config.cache_capacity;
    stop = Atomic.make false;
    c =
      {
        requests = Atomic.make 0;
        ok = Atomic.make 0;
        errors = Atomic.make 0;
        timeouts = Atomic.make 0;
        overloaded = Atomic.make 0;
        not_applicable = Atomic.make 0;
      };
    conns =
      {
        live = Atomic.make 0;
        accepted = Atomic.make 0;
        refused = Atomic.make 0;
        evicted = Atomic.make 0;
        drained = Atomic.make 0;
      };
    warm =
      {
        w_entries = Atomic.make 0;
        w_replayed = Atomic.make 0;
        w_failed = Atomic.make 0;
        w_finished = Atomic.make true;
      };
    on_drain = None;
    drain_hook_fired = Atomic.make false;
    lat = Array.init (Array.length lat_kinds) (fun _ -> Lat.create ());
    m_requests = Metrics.counter "serve.requests";
    m_cache_hits = Metrics.counter "serve.cache_hits";
    m_cache_misses = Metrics.counter "serve.cache_misses";
    m_overloaded = Metrics.counter "serve.overloaded";
    m_timeouts = Metrics.counter "serve.timeouts";
    m_conn_accepted = Metrics.counter "serve.conn.accepted";
    m_conn_refused = Metrics.counter "serve.conn.refused";
    m_conn_evicted = Metrics.counter "serve.conn.evicted";
    m_conn_drained = Metrics.counter "serve.conn.drained";
    m_lat =
      Array.map
        (fun kind -> Metrics.histogram ("serve.latency." ^ kind))
        lat_kinds;
  }

let stopping t = Atomic.get t.stop
let set_on_drain t f = t.on_drain <- Some f
let cache_keys t = Canon.Cache.keys t.cache

let warm_begin t ~entries =
  Atomic.set t.warm.w_entries entries;
  Atomic.set t.warm.w_replayed 0;
  Atomic.set t.warm.w_failed 0;
  Atomic.set t.warm.w_finished false

let warm_note t ~ok =
  Atomic.incr (if ok then t.warm.w_replayed else t.warm.w_failed)

let warm_finish t = Atomic.set t.warm.w_finished true

let drain t =
  (* The hook fires on the first drain only; a failing hook must never
     leave the executor running, so it reports to stderr instead of
     escaping. *)
  (if Atomic.compare_and_set t.drain_hook_fired false true then
     match t.on_drain with
     | Some f -> (
       try f t
       with exn ->
         Printf.eprintf "crsched serve: on_drain hook failed: %s\n%!"
           (Printexc.to_string exn))
     | None -> ());
  Admission.drain t.admission

let count t status =
  Atomic.incr t.c.requests;
  Metrics.incr t.m_requests;
  match status with
  | Ok_ -> Atomic.incr t.c.ok
  | Error_ -> Atomic.incr t.c.errors
  | Timeout_ ->
    Atomic.incr t.c.timeouts;
    Metrics.incr t.m_timeouts
  | Overloaded_ ->
    Atomic.incr t.c.overloaded;
    Metrics.incr t.m_overloaded
  | Not_applicable_ -> Atomic.incr t.c.not_applicable

let lat_json h =
  J.obj
    [
      ("count", J.int (Lat.count h));
      ("p50_us", J.int (Lat.quantile_upper_us h 0.50));
      ("p99_us", J.int (Lat.quantile_upper_us h 0.99));
      ("max_us", J.int (Lat.max_us h));
    ]

let stats_payload t =
  [
    ("status", J.str "ok");
    ("requests", J.int (Atomic.get t.c.requests));
    ("ok", J.int (Atomic.get t.c.ok));
    ("errors", J.int (Atomic.get t.c.errors));
    ("timeouts", J.int (Atomic.get t.c.timeouts));
    ("overloaded", J.int (Atomic.get t.c.overloaded));
    ("not_applicable", J.int (Atomic.get t.c.not_applicable));
    ( "cache",
      J.obj
        [
          ("capacity", J.int (Canon.Cache.capacity t.cache));
          ("size", J.int (Canon.Cache.size t.cache));
          ("hits", J.int (Canon.Cache.hits t.cache));
          ("misses", J.int (Canon.Cache.misses t.cache));
          ("evictions", J.int (Canon.Cache.evictions t.cache));
        ] );
    ("workers", J.int (Admission.workers t.admission));
    ("queue", J.int (Admission.queue_capacity t.admission));
    (* Per-request-kind server-side latency (parse to response
       assembly, queue wait included), log2-bucketed: the numbers the
       bench's per-kind p99 regression gates read. Additive in
       crs-serve/1. *)
    ( "latency",
      J.obj
        (Array.to_list
           (Array.mapi (fun i kind -> (kind, lat_json t.lat.(i))) lat_kinds)) );
    (* Connection lifecycle (additive): how many peers the concurrent
       frontend let in, turned away, or forcibly closed. *)
    ( "connections",
      J.obj
        [
          ("live", J.int (Atomic.get t.conns.live));
          ("max", J.int t.config.max_conns);
          ("accepted", J.int (Atomic.get t.conns.accepted));
          ("refused", J.int (Atomic.get t.conns.refused));
          ("evicted", J.int (Atomic.get t.conns.evicted));
          ("drained", J.int (Atomic.get t.conns.drained));
        ] );
    (* Executor saturation (additive in crs-serve/1): live backlog,
       per-worker deque depths, and lifetime push/steal/park counts —
       what an operator watches to see whether load shedding is about
       overload or a stuck worker. *)
    ( "exec",
      let s = Crs_exec.Exec.stats (Admission.executor t.admission) in
      J.obj
        [
          ("workers", J.int s.Crs_exec.Exec.workers);
          ("queued", J.int s.Crs_exec.Exec.queued);
          ("injected", J.int s.Crs_exec.Exec.injected);
          ( "depths",
            J.arr (Array.to_list (Array.map J.int s.Crs_exec.Exec.depths)) );
          ("pushes", J.int s.Crs_exec.Exec.pushes);
          ("steals", J.int s.Crs_exec.Exec.steals);
          ("parks", J.int s.Crs_exec.Exec.parks);
        ] );
    (* Warm-replay progress (additive in crs-serve/1): how far a
       restarted server has got replaying its persisted canonical-key
       set (crs-warm/1) through the real solve path. All zeros with
       [done] true when no warm state is configured. *)
    ( "warm",
      J.obj
        [
          ("entries", J.int (Atomic.get t.warm.w_entries));
          ("replayed", J.int (Atomic.get t.warm.w_replayed));
          ("failed", J.int (Atomic.get t.warm.w_failed));
          ("done", J.bool (Atomic.get t.warm.w_finished));
        ] );
  ]

(* ---- solve ---- *)

(* The answer is computed on the canonical form — witness included — so
   canonically equivalent requests produce byte-identical payloads (and
   share one cache entry). *)
let do_solve t (s : Protocol.solve) =
  let canonical = Canon.canonicalize s.instance in
  let key = Crs_core.Instance.to_string canonical in
  let canon_digest = Digest.to_hex (Digest.string key) in
  let fuel =
    match s.fuel with Some _ as f -> f | None -> t.config.default_fuel
  in
  let cache_key =
    Canon.Solve_key.to_string
      {
        Canon.Solve_key.algorithm = s.algorithm;
        fuel;
        witness = s.witness;
        certify = s.certify;
        canon = key;
      }
  in
  let cached =
    if s.cache then Canon.Cache.find t.cache cache_key else None
  in
  match cached with
  | Some (status, payload) ->
    Metrics.incr t.m_cache_hits;
    Trace.add_attrs [ ("cache", Trace.Str "hit") ];
    (status, payload)
  | None ->
    if s.cache then Metrics.incr t.m_cache_misses;
    Trace.add_attrs [ ("cache", Trace.Str (if s.cache then "miss" else "off")) ];
    let result =
      match Registry.find s.algorithm with
      | None ->
        ( Error_,
          Protocol.error
            (Printf.sprintf "unknown algorithm %S (valid: %s)" s.algorithm
               (String.concat ", " Registry.names)) )
      | Some solver -> (
        match Registry.applicability solver canonical with
        | Error reason -> (Not_applicable_, Protocol.not_applicable reason)
        | Ok () -> (
          match
            Admission.with_deadline fuel (fun () ->
                Registry.solve ~certify:s.certify solver canonical)
          with
          | Ok outcome ->
            Trace.add_attrs
              [ ("fuel_ticks", Trace.Int outcome.counters.fuel_ticks) ];
            ( Ok_,
              Protocol.ok_solve ~algorithm:s.algorithm
                ~makespan:outcome.makespan
                ~schedule:(if s.witness then outcome.schedule else None)
                ~counters:outcome.counters ~canon_digest )
          | Error ticks ->
            Trace.add_attrs [ ("fuel_ticks", Trace.Int ticks) ];
            ( Timeout_,
              Protocol.timeout ~fuel:(Option.get fuel) ~fuel_ticks:ticks )
          | exception exn -> (Error_, Protocol.error (Printexc.to_string exn))))
    in
    (* Timeouts are cached too: re-running out the same budget on the
       same instance is the most expensive way to repeat an answer. *)
    (match result with
    | (Ok_ | Timeout_ | Not_applicable_), _ when s.cache ->
      Canon.Cache.add t.cache cache_key result
    | _ -> ());
    result

let do_campaign spec =
  match Crs_campaign.Runner.run ~domains:1 spec with
  | records ->
    let summary = Crs_campaign.Report.summarize records in
    (Ok_, Protocol.ok_campaign summary)
  | exception exn -> (Error_, Protocol.error (Printexc.to_string exn))

(* ---- batches ---- *)

type item = { id : int option; req_kind : string; line_index : int }

let do_work t (item, req) =
  let attrs =
    [
      ("kind", Trace.Str item.req_kind);
      (match req with
      | Protocol.Solve s -> ("algorithm", Trace.Str s.algorithm)
      | _ -> ("algorithm", Trace.Str "-"));
    ]
  in
  Trace.with_span ~attrs "serve.request" (fun () ->
      let status, payload =
        match req with
        | Protocol.Solve s -> do_solve t s
        | Protocol.Campaign spec -> do_campaign spec
        | _ -> assert false (* only work kinds reach the pool *)
      in
      Trace.add_attrs [ ("status", Trace.Str (status_label status)) ];
      (status, payload))

let shed_work (item, _req) =
  ignore item;
  (Overloaded_, Protocol.overloaded ())

let process_batch t lines =
  (* One receive timestamp for the whole batch: a request's latency is
     receive-to-response-assembly, so queue wait behind its batchmates
     (and behind other connections' work) is charged to it — the number
     a client would experience, not just solver time. *)
  let t0 = Trace.monotonic_ns () in
  let lines =
    List.filter (fun l -> String.trim l <> "") lines
  in
  let parsed =
    List.mapi (fun i line -> (i, Protocol.parse line)) lines
  in
  (* Work requests go through admission on the pool; everything else is
     answered inline afterwards, so a stats request reports the solves
     that arrived in the same batch. *)
  let work =
    List.filter_map
      (fun (i, (p : Protocol.parsed)) ->
        match p.body with
        | Ok ((Protocol.Solve _ | Protocol.Campaign _) as req) ->
          Some
            ( { id = p.id; req_kind = Protocol.kind_of_request req; line_index = i },
              req )
        | _ -> None)
      parsed
  in
  let work = Array.of_list work in
  let work_results = Admission.map t.admission ~f:(do_work t) ~shed:shed_work work in
  let by_line = Hashtbl.create 16 in
  Array.iteri
    (fun j result ->
      let item, _ = work.(j) in
      Hashtbl.replace by_line item.line_index result)
    work_results;
  let answer (i, (p : Protocol.parsed)) =
    let status, req_kind, payload =
      match p.body with
      | Error msg -> (Error_, "unknown", Protocol.error msg)
      | Ok Protocol.Hello ->
        (Ok_, "hello", Protocol.ok_hello ~algorithms:Registry.names)
      | Ok Protocol.Stats -> (Ok_, "stats", stats_payload t)
      | Ok Protocol.Shutdown ->
        Atomic.set t.stop true;
        (Ok_, "shutdown", [ ("status", J.str "ok"); ("stopping", J.bool true) ])
      | Ok ((Protocol.Solve _ | Protocol.Campaign _) as req) ->
        let status, payload = Hashtbl.find by_line i in
        (status, Protocol.kind_of_request req, payload)
    in
    count t status;
    let response = Protocol.respond ~id:p.id ~req:req_kind payload in
    let dt_us =
      Int64.to_int (Int64.div (Int64.sub (Trace.monotonic_ns ()) t0) 1000L)
    in
    let ki = lat_index req_kind in
    Lat.observe t.lat.(ki) dt_us;
    Metrics.observe t.m_lat.(ki) dt_us;
    response
  in
  List.map answer parsed

let handle_line t line =
  match process_batch t [ line ] with
  | [ response ] -> response
  | _ -> Protocol.respond ~id:None ~req:"unknown" (Protocol.error "empty request")

(* ---- streams ---- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

(* How one stream session ended — the reader maps these onto the
   connection lifecycle counters. *)
type session_end =
  | Session_eof  (* peer closed; all its frames were answered *)
  | Session_evicted  (* idle past the read deadline *)
  | Session_poisoned  (* oversized frame; answered, then cut loose *)
  | Session_drained  (* graceful drain quiesced the connection *)

let now_s () = Int64.to_float (Trace.monotonic_ns ()) /. 1e9

(* The per-connection session loop shared by the stdio path and the
   concurrent frontend's readers. Reads chunks, batches complete
   lines, writes responses in request order. [deadline] > 0 evicts a
   connection that sits mid-frame — a line was started but no byte has
   arrived for that long (slow-loris defence; a quiet connection with
   no partial frame is just idle and stays);
   [drain_grace] is how long after a server-wide stop the session keeps
   answering late requests with structured [draining] refusals before
   closing (0 closes as soon as the stop is observed, the single-stream
   stdio behavior).

   Isolation: everything that can go wrong here — malformed frames,
   oversized frames, mid-line EOF, the deadline — is answered on (and
   at worst closes) THIS session; the server and its sibling sessions
   keep serving. *)
let session t ~input ~output ~deadline ~drain_grace =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec split_lines acc =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> List.rev acc
    | Some nl ->
      let line = String.sub s 0 nl in
      Buffer.clear pending;
      Buffer.add_substring pending s (nl + 1) (String.length s - nl - 1);
      split_lines (line :: acc)
  in
  let send_connection_event payload =
    try write_all output (Protocol.respond ~id:None ~req:"connection" payload ^ "\n")
    with Unix.Unix_error _ -> ()
  in
  let respond_batch lines =
    match process_batch t lines with
    | [] -> ()
    | responses -> write_all output (String.concat "\n" responses ^ "\n")
  in
  (* Late requests during graceful drain: parse only far enough to echo
     the id and kind back with a [draining] refusal. In-flight work was
     already answered by the respond_batch that carried the shutdown. *)
  let refuse_batch lines =
    let refusal line =
      let p = Protocol.parse line in
      let req =
        match p.Protocol.body with
        | Ok r -> Protocol.kind_of_request r
        | Error _ -> "unknown"
      in
      Protocol.respond ~id:p.Protocol.id ~req (Protocol.draining ())
    in
    match List.filter (fun l -> String.trim l <> "") lines with
    | [] -> ()
    | lines -> write_all output (String.concat "\n" (List.map refusal lines) ^ "\n")
  in
  let handle_lines lines =
    if stopping t then refuse_batch lines else respond_batch lines
  in
  let max_line = t.config.max_line_bytes in
  let last_activity = ref (now_s ()) in
  let stop_seen = ref None in
  let rec loop () =
    (match (stopping t, !stop_seen) with
    | true, None -> stop_seen := Some (now_s ())
    | _ -> ());
    match !stop_seen with
    | Some since when now_s () -. since >= drain_grace -> Session_drained
    | _ -> (
      (* Short select slices so the loop notices a server-wide stop and
         the idle deadline promptly even on a silent connection. *)
      match Unix.select [ input ] [] [] 0.05 with
      | [], _, _ ->
        if
          !stop_seen = None && deadline > 0.0
          && Buffer.length pending > 0
          && now_s () -. !last_activity > deadline
        then begin
          send_connection_event (Protocol.evicted ~idle_s:deadline);
          Session_evicted
        end
        else loop ()
      | _ -> (
        match Unix.read input chunk 0 (Bytes.length chunk) with
        | 0 ->
          (* EOF: a final unterminated line is still a request. *)
          if Buffer.length pending > 0 then begin
            let last = Buffer.contents pending in
            Buffer.clear pending;
            handle_lines [ last ]
          end;
          Session_eof
        | n -> (
          last_activity := now_s ();
          Buffer.add_subbytes pending chunk 0 n;
          let lines = split_lines [] in
          if
            List.exists (fun l -> String.length l > max_line) lines
            || Buffer.length pending > max_line
          then begin
            (* Oversized frame: answer structurally, then poison only
               this connection — its buffered bytes are untrustworthy
               garbage and replying to the rest would desynchronize. *)
            send_connection_event (Protocol.oversized ~limit:max_line);
            Session_poisoned
          end
          else begin
            (match lines with [] -> () | lines -> handle_lines lines);
            loop ()
          end)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let serve_io t ~input ~output =
  (* Single-stream mode (stdio, tests): no idle eviction — an
     interactive pipeline may think arbitrarily long — and no drain
     grace, so a shutdown request ends the session as soon as its
     response is written. *)
  ignore (session t ~input ~output ~deadline:0.0 ~drain_grace:0.0)

(* ---- sockets ---- *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_address s =
  let fail () =
    Error
      (Printf.sprintf
         "unrecognized listen address %S (expected unix:PATH or tcp:HOST:PORT)"
         s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then fail () else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> fail ()
      | Some j -> (
        let host = String.sub rest 0 j in
        let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port_s with
        | Some port when host <> "" && port >= 0 && port <= 65535 ->
          Ok (Tcp (host, port))
        | _ -> fail ()))
    | _ -> fail ())

let bind_address ?(backlog = default_config.backlog) addr =
  let describe e =
    Printf.sprintf "cannot bind %s: %s" (address_to_string addr)
      (Unix.error_message e)
  in
  match addr with
  | Unix_sock path -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Subprocesses (the balancer's shard workers) must not inherit the
       listening socket. *)
    Unix.set_close_on_exec fd;
    (* Deliberately no unlink: an existing path means another daemon (or
       stale state the operator should look at) and must surface as a
       bind failure, not be clobbered. *)
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd backlog
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (describe e))
  | Tcp (host, port) -> (
    match
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with
    | exception _ ->
      Error
        (Printf.sprintf "cannot bind %s: unknown host %S"
           (address_to_string addr) host)
    | inet -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_close_on_exec fd;
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd backlog
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (describe e)))

(* ---- the concurrent frontend ---- *)

(* Reader threads are systhreads, not domains: a connection reader is
   IO-bound (select / read / batch-await all release the runtime lock),
   so hundreds of them can share the acceptor's domain while the actual
   solving runs on the executor's worker domains. *)

let refuse_connection t fd =
  Atomic.incr t.conns.refused;
  Metrics.incr t.m_conn_refused;
  (try
     write_all fd
       (Protocol.respond ~id:None ~req:"connection" (Protocol.overloaded ())
       ^ "\n")
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let attach t fd =
  (* fetch_and_add then check: two racing attaches cannot both slip
     under the limit. *)
  if Atomic.fetch_and_add t.conns.live 1 >= t.config.max_conns then begin
    Atomic.decr t.conns.live;
    refuse_connection t fd;
    None
  end
  else begin
    Atomic.incr t.conns.accepted;
    Metrics.incr t.m_conn_accepted;
    Some
      (Thread.create
         (fun () ->
           Fun.protect
             ~finally:(fun () ->
               Atomic.decr t.conns.live;
               try Unix.close fd with Unix.Unix_error _ -> ())
             (fun () ->
               match
                 session t ~input:fd ~output:fd
                   ~deadline:t.config.idle_timeout_s
                   ~drain_grace:t.config.drain_grace_s
               with
               | Session_eof -> ()
               | Session_evicted | Session_poisoned ->
                 Atomic.incr t.conns.evicted;
                 Metrics.incr t.m_conn_evicted
               | Session_drained ->
                 Atomic.incr t.conns.drained;
                 Metrics.incr t.m_conn_drained
               | exception
                   Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                 ->
                 (* The peer vanished mid-write; its reader dies alone. *)
                 ()))
         ())
  end

let serve t fd =
  let readers = ref [] in
  while not (stopping t) do
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept fd with
      | conn, _ -> (
        match attach t conn with
        | Some reader -> readers := reader :: !readers
        | None -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* Graceful drain: stop accepting, then wait for every live reader —
     each finishes its in-flight batch, refuses latecomers for the
     drain-grace window, and closes its connection. *)
  List.iter Thread.join !readers

let close_address addr fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
