module J = Crs_util.Stable_json
module Registry = Crs_algorithms.Registry
module Trace = Crs_obs.Trace
module Metrics = Crs_obs.Metrics

type config = {
  workers : int;
  queue : int;
  cache_capacity : int;
  default_fuel : int option;
}

let default_config =
  { workers = 2; queue = 64; cache_capacity = 256; default_fuel = Some 5_000_000 }

(* Response status, tracked alongside the payload so stats counters and
   span attributes don't have to re-parse the JSON they just built. *)
type status = Ok_ | Error_ | Timeout_ | Overloaded_ | Not_applicable_

let status_label = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Timeout_ -> "timeout"
  | Overloaded_ -> "overloaded"
  | Not_applicable_ -> "not_applicable"

type counters = {
  requests : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
  timeouts : int Atomic.t;
  overloaded : int Atomic.t;
  not_applicable : int Atomic.t;
}

type t = {
  config : config;
  admission : Admission.t;
  cache : (status * (string * string) list) Canon.Cache.t;
  stop : bool Atomic.t;
  c : counters;
  m_requests : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_overloaded : Metrics.counter;
  m_timeouts : Metrics.counter;
}

let create config =
  {
    config;
    admission = Admission.create ~queue:config.queue ~workers:config.workers;
    cache = Canon.Cache.create ~capacity:config.cache_capacity;
    stop = Atomic.make false;
    c =
      {
        requests = Atomic.make 0;
        ok = Atomic.make 0;
        errors = Atomic.make 0;
        timeouts = Atomic.make 0;
        overloaded = Atomic.make 0;
        not_applicable = Atomic.make 0;
      };
    m_requests = Metrics.counter "serve.requests";
    m_cache_hits = Metrics.counter "serve.cache_hits";
    m_cache_misses = Metrics.counter "serve.cache_misses";
    m_overloaded = Metrics.counter "serve.overloaded";
    m_timeouts = Metrics.counter "serve.timeouts";
  }

let stopping t = Atomic.get t.stop
let drain t = Admission.drain t.admission

let count t status =
  Atomic.incr t.c.requests;
  Metrics.incr t.m_requests;
  match status with
  | Ok_ -> Atomic.incr t.c.ok
  | Error_ -> Atomic.incr t.c.errors
  | Timeout_ ->
    Atomic.incr t.c.timeouts;
    Metrics.incr t.m_timeouts
  | Overloaded_ ->
    Atomic.incr t.c.overloaded;
    Metrics.incr t.m_overloaded
  | Not_applicable_ -> Atomic.incr t.c.not_applicable

let stats_payload t =
  [
    ("status", J.str "ok");
    ("requests", J.int (Atomic.get t.c.requests));
    ("ok", J.int (Atomic.get t.c.ok));
    ("errors", J.int (Atomic.get t.c.errors));
    ("timeouts", J.int (Atomic.get t.c.timeouts));
    ("overloaded", J.int (Atomic.get t.c.overloaded));
    ("not_applicable", J.int (Atomic.get t.c.not_applicable));
    ( "cache",
      J.obj
        [
          ("capacity", J.int (Canon.Cache.capacity t.cache));
          ("size", J.int (Canon.Cache.size t.cache));
          ("hits", J.int (Canon.Cache.hits t.cache));
          ("misses", J.int (Canon.Cache.misses t.cache));
          ("evictions", J.int (Canon.Cache.evictions t.cache));
        ] );
    ("workers", J.int (Admission.workers t.admission));
    ("queue", J.int (Admission.queue_capacity t.admission));
    (* Executor saturation (additive in crs-serve/1): live backlog,
       per-worker deque depths, and lifetime push/steal/park counts —
       what an operator watches to see whether load shedding is about
       overload or a stuck worker. *)
    ( "exec",
      let s = Crs_exec.Exec.stats (Admission.executor t.admission) in
      J.obj
        [
          ("workers", J.int s.Crs_exec.Exec.workers);
          ("queued", J.int s.Crs_exec.Exec.queued);
          ("injected", J.int s.Crs_exec.Exec.injected);
          ( "depths",
            J.arr (Array.to_list (Array.map J.int s.Crs_exec.Exec.depths)) );
          ("pushes", J.int s.Crs_exec.Exec.pushes);
          ("steals", J.int s.Crs_exec.Exec.steals);
          ("parks", J.int s.Crs_exec.Exec.parks);
        ] );
  ]

(* ---- solve ---- *)

(* The answer is computed on the canonical form — witness included — so
   canonically equivalent requests produce byte-identical payloads (and
   share one cache entry). *)
let do_solve t (s : Protocol.solve) =
  let canonical = Canon.canonicalize s.instance in
  let key = Crs_core.Instance.to_string canonical in
  let canon_digest = Digest.to_hex (Digest.string key) in
  let fuel =
    match s.fuel with Some _ as f -> f | None -> t.config.default_fuel
  in
  let cache_key =
    Printf.sprintf "%s|%s|%b%b|%s" s.algorithm
      (match fuel with Some f -> string_of_int f | None -> "-")
      s.witness s.certify key
  in
  let cached =
    if s.cache then Canon.Cache.find t.cache cache_key else None
  in
  match cached with
  | Some (status, payload) ->
    Metrics.incr t.m_cache_hits;
    Trace.add_attrs [ ("cache", Trace.Str "hit") ];
    (status, payload)
  | None ->
    if s.cache then Metrics.incr t.m_cache_misses;
    Trace.add_attrs [ ("cache", Trace.Str (if s.cache then "miss" else "off")) ];
    let result =
      match Registry.find s.algorithm with
      | None ->
        ( Error_,
          Protocol.error
            (Printf.sprintf "unknown algorithm %S (valid: %s)" s.algorithm
               (String.concat ", " Registry.names)) )
      | Some solver -> (
        match Registry.applicability solver canonical with
        | Error reason -> (Not_applicable_, Protocol.not_applicable reason)
        | Ok () -> (
          match
            Admission.with_deadline fuel (fun () ->
                Registry.solve ~certify:s.certify solver canonical)
          with
          | Ok outcome ->
            Trace.add_attrs
              [ ("fuel_ticks", Trace.Int outcome.counters.fuel_ticks) ];
            ( Ok_,
              Protocol.ok_solve ~algorithm:s.algorithm
                ~makespan:outcome.makespan
                ~schedule:(if s.witness then outcome.schedule else None)
                ~counters:outcome.counters ~canon_digest )
          | Error ticks ->
            Trace.add_attrs [ ("fuel_ticks", Trace.Int ticks) ];
            ( Timeout_,
              Protocol.timeout ~fuel:(Option.get fuel) ~fuel_ticks:ticks )
          | exception exn -> (Error_, Protocol.error (Printexc.to_string exn))))
    in
    (* Timeouts are cached too: re-running out the same budget on the
       same instance is the most expensive way to repeat an answer. *)
    (match result with
    | (Ok_ | Timeout_ | Not_applicable_), _ when s.cache ->
      Canon.Cache.add t.cache cache_key result
    | _ -> ());
    result

let do_campaign spec =
  match Crs_campaign.Runner.run ~domains:1 spec with
  | records ->
    let summary = Crs_campaign.Report.summarize records in
    (Ok_, Protocol.ok_campaign summary)
  | exception exn -> (Error_, Protocol.error (Printexc.to_string exn))

(* ---- batches ---- *)

type item = { id : int option; req_kind : string; line_index : int }

let do_work t (item, req) =
  let attrs =
    [
      ("kind", Trace.Str item.req_kind);
      (match req with
      | Protocol.Solve s -> ("algorithm", Trace.Str s.algorithm)
      | _ -> ("algorithm", Trace.Str "-"));
    ]
  in
  Trace.with_span ~attrs "serve.request" (fun () ->
      let status, payload =
        match req with
        | Protocol.Solve s -> do_solve t s
        | Protocol.Campaign spec -> do_campaign spec
        | _ -> assert false (* only work kinds reach the pool *)
      in
      Trace.add_attrs [ ("status", Trace.Str (status_label status)) ];
      (status, payload))

let shed_work (item, _req) =
  ignore item;
  (Overloaded_, Protocol.overloaded ())

let process_batch t lines =
  let lines =
    List.filter (fun l -> String.trim l <> "") lines
  in
  let parsed =
    List.mapi (fun i line -> (i, Protocol.parse line)) lines
  in
  (* Work requests go through admission on the pool; everything else is
     answered inline afterwards, so a stats request reports the solves
     that arrived in the same batch. *)
  let work =
    List.filter_map
      (fun (i, (p : Protocol.parsed)) ->
        match p.body with
        | Ok ((Protocol.Solve _ | Protocol.Campaign _) as req) ->
          Some
            ( { id = p.id; req_kind = Protocol.kind_of_request req; line_index = i },
              req )
        | _ -> None)
      parsed
  in
  let work = Array.of_list work in
  let work_results = Admission.map t.admission ~f:(do_work t) ~shed:shed_work work in
  let by_line = Hashtbl.create 16 in
  Array.iteri
    (fun j result ->
      let item, _ = work.(j) in
      Hashtbl.replace by_line item.line_index result)
    work_results;
  let answer (i, (p : Protocol.parsed)) =
    let status, req_kind, payload =
      match p.body with
      | Error msg -> (Error_, "unknown", Protocol.error msg)
      | Ok Protocol.Hello ->
        (Ok_, "hello", Protocol.ok_hello ~algorithms:Registry.names)
      | Ok Protocol.Stats -> (Ok_, "stats", stats_payload t)
      | Ok Protocol.Shutdown ->
        Atomic.set t.stop true;
        (Ok_, "shutdown", [ ("status", J.str "ok"); ("stopping", J.bool true) ])
      | Ok ((Protocol.Solve _ | Protocol.Campaign _) as req) ->
        let status, payload = Hashtbl.find by_line i in
        (status, Protocol.kind_of_request req, payload)
    in
    count t status;
    Protocol.respond ~id:p.id ~req:req_kind payload
  in
  List.map answer parsed

let handle_line t line =
  match process_batch t [ line ] with
  | [ response ] -> response
  | _ -> Protocol.respond ~id:None ~req:"unknown" (Protocol.error "empty request")

(* ---- streams ---- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let serve_io t ~input ~output =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec split_lines acc =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> List.rev acc
    | Some nl ->
      let line = String.sub s 0 nl in
      Buffer.clear pending;
      Buffer.add_substring pending s (nl + 1) (String.length s - nl - 1);
      split_lines (line :: acc)
  in
  let respond_batch lines =
    match process_batch t lines with
    | [] -> ()
    | responses ->
      write_all output (String.concat "\n" responses ^ "\n")
  in
  let rec loop () =
    if not (stopping t) then
      match Unix.read input chunk 0 (Bytes.length chunk) with
      | 0 ->
        (* EOF: a final unterminated line is still a request. *)
        if Buffer.length pending > 0 then begin
          let last = Buffer.contents pending in
          Buffer.clear pending;
          respond_batch [ last ]
        end
      | n ->
        Buffer.add_subbytes pending chunk 0 n;
        (match split_lines [] with
        | [] -> ()
        | lines -> respond_batch lines);
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ---- sockets ---- *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_address s =
  let fail () =
    Error
      (Printf.sprintf
         "unrecognized listen address %S (expected unix:PATH or tcp:HOST:PORT)"
         s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then fail () else Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> fail ()
      | Some j -> (
        let host = String.sub rest 0 j in
        let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port_s with
        | Some port when host <> "" && port >= 0 && port <= 65535 ->
          Ok (Tcp (host, port))
        | _ -> fail ()))
    | _ -> fail ())

let bind_address addr =
  let describe e =
    Printf.sprintf "cannot bind %s: %s" (address_to_string addr)
      (Unix.error_message e)
  in
  match addr with
  | Unix_sock path -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Deliberately no unlink: an existing path means another daemon (or
       stale state the operator should look at) and must surface as a
       bind failure, not be clobbered. *)
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (describe e))
  | Tcp (host, port) -> (
    match
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with
    | exception _ ->
      Error
        (Printf.sprintf "cannot bind %s: unknown host %S"
           (address_to_string addr) host)
    | inet -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 16
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (describe e)))

let serve t fd =
  while not (stopping t) do
    match Unix.select [ fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      let conn, _ = Unix.accept fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
        (fun () ->
          try serve_io t ~input:conn ~output:conn
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let close_address addr fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
