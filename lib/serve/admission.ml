module Pool = Crs_campaign.Pool
module Fuel = Crs_util.Fuel

type t = { pool : Pool.t; queue : int }

let create ~queue ~workers =
  if queue < 1 then invalid_arg "Admission.create: queue < 1";
  { pool = Pool.create ~domains:workers; queue }

let workers t = Pool.size t.pool
let queue_capacity t = t.queue

let map t ~f ~shed items =
  let n = Array.length items in
  let out = Array.make n None in
  let admitted = min n t.queue in
  for i = 0 to admitted - 1 do
    Pool.submit t.pool (fun () -> out.(i) <- Some (f items.(i)))
  done;
  (* Shed inline while the pool chews on the admitted prefix. *)
  for i = admitted to n - 1 do
    out.(i) <- Some (shed items.(i))
  done;
  (match Pool.await_all t.pool with Some exn -> raise exn | None -> ());
  Array.map
    (function Some r -> r | None -> assert false (* every slot filled *))
    out

let with_deadline budget f =
  let before = Fuel.ticks () in
  match Fuel.with_fuel budget (fun () -> Ok (f ())) with
  | r -> r
  | exception Fuel.Out_of_fuel -> Error (Fuel.ticks () - before)

let drain t = Pool.shutdown t.pool
