module Exec = Crs_exec.Exec
module Fuel = Crs_util.Fuel

type t = { exec : Exec.t; queue : int }

let create ~queue ~workers =
  if queue < 1 then invalid_arg "Admission.create: queue < 1";
  { exec = Exec.create ~domains:workers; queue }

let workers t = Exec.size t.exec
let queue_capacity t = t.queue
let executor t = t.exec
let depth t = Exec.pending t.exec

let map t ~f ~shed items =
  let n = Array.length items in
  let out = Array.make n None in
  (* Admission is against the executor's live backlog, not just this
     batch: work still in flight (queued or running) eats into the
     budget, so a slow batch showing up while the executor is saturated
     is shed instead of queueing unboundedly. On a quiet connection the
     backlog is 0 at batch start and this reduces to the per-batch
     rule, keeping shed counts deterministic for tests; under
     concurrent connections the budget is shared, so one connection's
     in-flight work sheds another's excess. *)
  let admitted = min n (max 0 (t.queue - Exec.pending t.exec)) in
  (* A per-batch completion handle, not Exec.await_all: concurrent
     connection readers each run their own batches on the shared
     executor, and each must wait only for (and see only the failures
     of) its own tasks. *)
  let batch = Exec.Batch.create t.exec in
  for i = 0 to admitted - 1 do
    Exec.Batch.submit batch (fun () -> out.(i) <- Some (f items.(i)))
  done;
  (* Shed inline while the executor chews on the admitted prefix. *)
  for i = admitted to n - 1 do
    out.(i) <- Some (shed items.(i))
  done;
  (match Exec.Batch.await batch with Some exn -> raise exn | None -> ());
  Array.map
    (function Some r -> r | None -> assert false (* every slot filled *))
    out

let with_deadline budget f =
  let before = Fuel.ticks () in
  match Fuel.with_fuel budget (fun () -> Ok (f ())) with
  | r -> r
  | exception Fuel.Out_of_fuel -> Error (Fuel.ticks () - before)

let drain t = Exec.shutdown t.exec
