(* crs-warm/1: persisted canonical-key sets for cache warming.

   A warm file is line-delimited Stable_json: a header object naming the
   protocol and the entry count, then one object per memo-cache entry
   (the structured Canon.Solve_key fields, canonical instance text
   included verbatim). Snapshots are written oldest-entry-first so a
   replay re-inserts entries in recency order and reconstructs the same
   LRU state; replay goes through Server.handle_line — the real solve
   path, admission, fuel deadlines and canonicalization included — so a
   warmed cache can only ever contain answers the server would have
   produced for live traffic. *)

module J = Crs_util.Stable_json

let version = "crs-warm/1"

type replay_report = { entries : int; replayed : int; failed : int }

let entry_json (k : Canon.Solve_key.t) =
  J.obj
    [
      ("algorithm", J.str k.algorithm);
      ("fuel", J.int_opt k.fuel);
      ("witness", J.bool k.witness);
      ("certify", J.bool k.certify);
      ("instance", J.str k.canon);
    ]

let header_json ~entries =
  J.obj [ ("proto", J.str version); ("entries", J.int entries) ]

let save server ~path =
  (* cache_keys is MRU-first; reverse so the file replays oldest-first
     and the restored cache ends up in the same recency order. *)
  let keys = List.rev (Server.cache_keys server) in
  let entries = List.filter_map Canon.Solve_key.of_string keys in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc
        (header_json ~entries:(List.length entries) ^ "\n");
      List.iter
        (fun e -> Out_channel.output_string oc (entry_json e ^ "\n"))
        entries);
  (* Atomic publish: a reader never sees a half-written snapshot. *)
  Sys.rename tmp path;
  List.length entries

(* ---- loading ---- *)

let ( let* ) = Result.bind

let decode_entry json =
  let* algorithm =
    match J.member "algorithm" json with
    | Some (J.Str s) when s <> "" -> Ok s
    | _ -> Error "field \"algorithm\" must be a non-empty string"
  in
  let* fuel =
    match J.member "fuel" json with
    | Some J.Null | None -> Ok None
    | Some (J.Int i) when i >= 0 -> Ok (Some i)
    | Some _ -> Error "field \"fuel\" must be a non-negative integer or null"
  in
  let* witness =
    match J.member "witness" json with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "field \"witness\" must be a boolean"
  in
  let* certify =
    match J.member "certify" json with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "field \"certify\" must be a boolean"
  in
  let* canon =
    match J.member "instance" json with
    | Some (J.Str s) when s <> "" -> Ok s
    | _ -> Error "field \"instance\" must be a non-empty string"
  in
  Ok { Canon.Solve_key.algorithm; fuel; witness; certify; canon }

let load path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | [] -> Error (Printf.sprintf "%s: empty warm file (missing header)" path)
  | header :: rest -> (
    let* hdr =
      Result.map_error (fun m -> Printf.sprintf "%s: header: %s" path m)
        (J.parse header)
    in
    match J.member "proto" hdr with
    | Some (J.Str p) when String.equal p version ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match Result.bind (J.parse line) decode_entry with
          | Ok e -> go (i + 1) (e :: acc) rest
          | Error msg ->
            Error (Printf.sprintf "%s: entry %d: %s" path i msg))
      in
      go 1 [] rest
    | Some (J.Str p) ->
      Error
        (Printf.sprintf "%s: unsupported warm protocol %S (this build speaks %S)"
           path p version)
    | _ -> Error (Printf.sprintf "%s: header lacks a \"proto\" string" path))

(* ---- replay ---- *)

let request_line (e : Canon.Solve_key.t) =
  J.obj
    [
      ("proto", J.str Protocol.version);
      ("kind", J.str "solve");
      ("instance", J.str e.canon);
      ("algorithm", J.str e.algorithm);
      ("fuel", J.int_opt e.fuel);
      ("witness", J.bool e.witness);
      ("certify", J.bool e.certify);
      ("cache", J.bool true);
    ]

let replayed_ok response =
  match J.parse response with
  | Error _ -> false
  | Ok json -> (
    match J.member "status" json with
    (* Exactly the statuses do_solve caches: the entry is back in the
       cache. An [error] (e.g. an algorithm this build no longer
       registers) warms nothing and counts as failed. *)
    | Some (J.Str ("ok" | "timeout" | "not_applicable")) -> true
    | _ -> false)

let replay server entries =
  let n = List.length entries in
  Server.warm_begin server ~entries:n;
  let replayed = ref 0 and failed = ref 0 in
  List.iter
    (fun e ->
      let ok = replayed_ok (Server.handle_line server (request_line e)) in
      if ok then incr replayed else incr failed;
      Server.warm_note server ~ok)
    entries;
  Server.warm_finish server;
  { entries = n; replayed = !replayed; failed = !failed }

let load_and_replay server ~path =
  if not (Sys.file_exists path) then
    Ok { entries = 0; replayed = 0; failed = 0 }
  else
    match load path with
    | Error _ as e -> e
    | Ok entries -> Ok (replay server entries)
