(** Instance canonicalization and the serve memo cache.

    The serve daemon answers canonically equivalent instances from a
    memo cache instead of re-solving. Equivalence is defined by exactly
    the two invariances the fuzz oracles prove for the optimal makespan
    (see {!Crs_fuzz.Oracle.permutation_invariance} and
    {!Crs_fuzz.Oracle.zero_pad_invariance}):

    - {b processor permutation}: schedules carry no processor identity,
      so reordering the rows of an instance leaves the optimum
      unchanged; and
    - {b zero-requirement padding}: a processor holding a single
      zero-requirement unit job finishes in step one on a zero share, so
      it never determines the optimum of an instance that has at least
      one other job.

    {!canonicalize} normalizes along both axes — drop padding rows, sort
    the remaining rows — so equivalent instances collapse to one
    representative, and {!key} serializes that representative into the
    cache key. The canonicalizer is {i sound, not complete}: two
    instances with equal keys are provably equivalent, but some
    equivalent pairs (e.g. instances consisting only of padding rows)
    keep distinct keys and are simply not shared in the cache.

    Exact solvers are answer-preserving under canonicalization by the
    oracle invariances. Heuristics may tie-break on processor index, so
    the daemon defines their answer as the result {i on the canonical
    form}: equivalent inputs always get the same (byte-identical)
    response, which may differ from running the heuristic on one
    particular row order by hand. *)

val canonicalize : Crs_core.Instance.t -> Crs_core.Instance.t
(** Drop every processor row that is exactly one zero-requirement unit
    job — as long as at least one job remains afterwards, the proviso of
    the zero-pad invariance — then sort the remaining rows by their job
    sequences ([Job.compare] lexicographically). Idempotent. *)

val key : Crs_core.Instance.t -> string
(** Serialized canonical form ({!Crs_core.Instance.to_string} of
    {!canonicalize}); equal keys imply equal optimal makespans. *)

val equivalent : Crs_core.Instance.t -> Crs_core.Instance.t -> bool
(** [key a = key b]. *)

(** Structured form of the daemon's solve-cache keys: everything that
    changes a solve answer (algorithm, effective fuel, the witness and
    certify switches) plus the canonical instance text. {!Solve_key.to_string}
    is the exact string the memo cache is keyed by, and the pair
    [to_string]/[of_string] round-trips — this is what lets the warm
    subsystem persist a cache's key set ({b crs-warm/1}) and replay it
    through the real solve path after a restart. *)
module Solve_key : sig
  type t = {
    algorithm : string;  (** registry name (never contains ['|']) *)
    fuel : int option;  (** effective deadline the answer was computed under *)
    witness : bool;
    certify : bool;
    canon : string;  (** canonical instance text ({!val:key}), the final
                         field so embedded newlines survive *)
  }

  val to_string : t -> string
  (** [algorithm|fuel|witnesscertify|canon] — the memo-cache key. *)

  val of_string : string -> t option
  (** Inverse of {!to_string}; [None] on anything else (foreign or
      corrupted keys are skipped, not guessed at). *)
end

(** Bounded LRU memo cache, keyed by strings (the daemon uses
    [algorithm / fuel / options / canonical key] compounds). Thread-safe:
    every operation takes an internal mutex, so worker domains may probe
    and fill concurrently. Capacity 0 disables caching ({!find} always
    misses, {!add} is a no-op). *)
module Cache : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument on a negative capacity. *)

  val capacity : 'a t -> int
  val size : 'a t -> int

  val keys : 'a t -> string list
  (** All keys, most-recently-used first. Replaying the {i reverse} of
      this list re-inserts entries oldest-first, reconstructing the same
      recency order — the property warm-state snapshots rely on. *)

  val find : 'a t -> string -> 'a option
  (** Probe; a hit refreshes the entry's recency. Counted in {!hits} /
      {!misses}. *)

  val add : 'a t -> string -> 'a -> unit
  (** Insert or overwrite, evicting the least-recently-used entry when
      the cache is full. *)

  val hits : 'a t -> int
  val misses : 'a t -> int
  val evictions : 'a t -> int
end
