(** Instance canonicalization and the serve memo cache.

    The serve daemon answers canonically equivalent instances from a
    memo cache instead of re-solving. Equivalence is defined by exactly
    the two invariances the fuzz oracles prove for the optimal makespan
    (see {!Crs_fuzz.Oracle.permutation_invariance} and
    {!Crs_fuzz.Oracle.zero_pad_invariance}):

    - {b processor permutation}: schedules carry no processor identity,
      so reordering the rows of an instance leaves the optimum
      unchanged; and
    - {b zero-requirement padding}: a processor holding a single
      zero-requirement unit job finishes in step one on a zero share, so
      it never determines the optimum of an instance that has at least
      one other job.

    {!canonicalize} normalizes along both axes — drop padding rows, sort
    the remaining rows — so equivalent instances collapse to one
    representative, and {!key} serializes that representative into the
    cache key. The canonicalizer is {i sound, not complete}: two
    instances with equal keys are provably equivalent, but some
    equivalent pairs (e.g. instances consisting only of padding rows)
    keep distinct keys and are simply not shared in the cache.

    Exact solvers are answer-preserving under canonicalization by the
    oracle invariances. Heuristics may tie-break on processor index, so
    the daemon defines their answer as the result {i on the canonical
    form}: equivalent inputs always get the same (byte-identical)
    response, which may differ from running the heuristic on one
    particular row order by hand. *)

val canonicalize : Crs_core.Instance.t -> Crs_core.Instance.t
(** Drop every processor row that is exactly one zero-requirement unit
    job — as long as at least one job remains afterwards, the proviso of
    the zero-pad invariance — then sort the remaining rows by their job
    sequences ([Job.compare] lexicographically). Idempotent. *)

val key : Crs_core.Instance.t -> string
(** Serialized canonical form ({!Crs_core.Instance.to_string} of
    {!canonicalize}); equal keys imply equal optimal makespans. *)

val equivalent : Crs_core.Instance.t -> Crs_core.Instance.t -> bool
(** [key a = key b]. *)

(** Bounded LRU memo cache, keyed by strings (the daemon uses
    [algorithm / fuel / options / canonical key] compounds). Thread-safe:
    every operation takes an internal mutex, so worker domains may probe
    and fill concurrently. Capacity 0 disables caching ({!find} always
    misses, {!add} is a no-op). *)
module Cache : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument on a negative capacity. *)

  val capacity : 'a t -> int
  val size : 'a t -> int

  val find : 'a t -> string -> 'a option
  (** Probe; a hit refreshes the entry's recency. Counted in {!hits} /
      {!misses}. *)

  val add : 'a t -> string -> 'a -> unit
  (** Insert or overwrite, evicting the least-recently-used entry when
      the cache is full. *)

  val hits : 'a t -> int
  val misses : 'a t -> int
  val evictions : 'a t -> int
end
