(* crs-serve/1 request parsing and response assembly.

   Parsing is two-stage: Stable_json.parse validates the line (byte
   offsets on failure), then the typed decoder below checks proto/kind
   and each body field. The client id is extracted before body
   validation so even a rejected request gets an answer it can
   correlate. *)

module J = Crs_util.Stable_json
module Spec = Crs_campaign.Spec
module Registry = Crs_algorithms.Registry

let version = "crs-serve/1"
let max_campaign_items = 10_000

type solve = {
  algorithm : string;
  instance : Crs_core.Instance.t;
  fuel : int option;
  witness : bool;
  certify : bool;
  cache : bool;
}

type request =
  | Hello
  | Solve of solve
  | Campaign of Spec.t
  | Stats
  | Shutdown

let kind_of_request = function
  | Hello -> "hello"
  | Solve _ -> "solve"
  | Campaign _ -> "campaign"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

type parsed = { id : int option; body : (request, string) result }

(* ---- typed field decoding ---- *)

let ( let* ) = Result.bind

let field_str json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let field_str_req json name =
  match J.member name json with
  | None -> Error (Printf.sprintf "missing required field %S" name)
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let field_int json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let field_int_opt json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some J.Null -> Ok None
  | Some (J.Int i) when i >= 0 -> Ok (Some i)
  | Some (J.Int _) ->
    Error (Printf.sprintf "field %S must be a non-negative integer" name)
  | Some _ ->
    Error (Printf.sprintf "field %S must be a non-negative integer or null" name)

let field_bool json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let field_str_list json name ~default =
  match J.member name json with
  | None -> Ok default
  | Some (J.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | J.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)

(* ---- request bodies ---- *)

let decode_solve json =
  let* algorithm =
    field_str json "algorithm" ~default:Registry.Names.greedy_balance
  in
  let* text = field_str_req json "instance" in
  let* instance =
    match Crs_core.Instance.of_string text with
    | Ok i -> Ok i
    | Error msg -> Error (Printf.sprintf "field \"instance\": %s" msg)
  in
  let* fuel = field_int_opt json "fuel" ~default:None in
  let* witness = field_bool json "witness" ~default:false in
  let* certify = field_bool json "certify" ~default:false in
  let* cache = field_bool json "cache" ~default:true in
  Ok (Solve { algorithm; instance; fuel; witness; certify; cache })

let decode_campaign json =
  let d = Spec.default in
  let* family_s =
    field_str json "family" ~default:(Spec.family_to_string d.family)
  in
  let* family =
    match Spec.family_of_string family_s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "unknown family %S" family_s)
  in
  let* m = field_int json "m" ~default:d.m in
  let* n = field_int json "n" ~default:d.n in
  let* granularity = field_int json "granularity" ~default:d.granularity in
  let* seed_lo = field_int json "seed_lo" ~default:d.seed_lo in
  let* seed_hi = field_int json "seed_hi" ~default:d.seed_hi in
  let* algorithms = field_str_list json "algorithms" ~default:d.algorithms in
  let* baseline_s =
    field_str json "baseline" ~default:(Spec.baseline_to_string d.baseline)
  in
  let* baseline =
    match Spec.baseline_of_string baseline_s with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "unknown baseline %S" baseline_s)
  in
  let* fuel = field_int_opt json "fuel" ~default:d.fuel in
  let spec =
    {
      Spec.family;
      m;
      n;
      granularity;
      seed_lo;
      seed_hi;
      algorithms;
      baseline;
      fuel;
    }
  in
  let* spec = Spec.validate spec in
  let items = Spec.seed_count spec * List.length spec.algorithms in
  if items > max_campaign_items then
    Error
      (Printf.sprintf "campaign of %d items exceeds the per-request cap of %d"
         items max_campaign_items)
  else Ok (Campaign spec)

let decode json =
  let* proto = field_str_req json "proto" in
  if not (String.equal proto version) then
    Error (Printf.sprintf "unsupported protocol %S (this server speaks %S)"
             proto version)
  else
    let* kind = field_str_req json "kind" in
    match kind with
    | "hello" -> Ok Hello
    | "solve" -> decode_solve json
    | "campaign" -> decode_campaign json
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown request kind %S" other)

let parse line =
  match J.parse line with
  | Error msg -> { id = None; body = Error msg }
  | Ok json ->
    let id = match J.member "id" json with Some (J.Int i) -> Some i | _ -> None in
    { id; body = decode json }

(* ---- responses ---- *)

let respond ~id ~req payload =
  let envelope =
    ("proto", J.str version)
    :: (match id with Some i -> [ ("id", J.int i) ] | None -> [])
  in
  J.obj (envelope @ [ ("kind", J.str "response"); ("req", J.str req) ] @ payload)

let counters_json c =
  J.obj (List.map (fun (k, v) -> (k, J.int v)) (Registry.Counters.to_assoc c))

let ok_solve ~algorithm ~makespan ~schedule ~counters ~canon_digest =
  [
    ("status", J.str "ok");
    ("algorithm", J.str algorithm);
    ("makespan", J.int makespan);
    ("canon", J.str canon_digest);
    ("counters", counters_json counters);
  ]
  @
  match schedule with
  | Some s -> [ ("schedule", J.str (Crs_core.Schedule.to_string s)) ]
  | None -> []

let ok_campaign (s : Crs_campaign.Report.summary) =
  [
    ("status", J.str "ok");
    ("items", J.int s.items);
    ("completed", J.int s.completed);
    ("timeouts", J.int s.timeouts);
    ("errors", J.int s.errors);
    ("not_applicable", J.int s.not_applicable);
    ("mean_ratio", J.float_opt s.mean_ratio);
    ("digest", J.str s.digest);
  ]

let ok_hello ~algorithms =
  [
    ("status", J.str "ok");
    ("server", J.str "crsched");
    ("algorithms", J.arr (List.map J.str algorithms));
  ]

let error msg = [ ("status", J.str "error"); ("error", J.str msg) ]

let timeout ~fuel ~fuel_ticks =
  [
    ("status", J.str "timeout");
    ("fuel", J.int fuel);
    ("fuel_ticks", J.int fuel_ticks);
  ]

let overloaded () = [ ("status", J.str "overloaded") ]

(* Connection-level refusals (additive statuses in crs-serve/1; the
   [req] field of these responses is "connection"). *)

let draining () =
  [
    ("status", J.str "draining");
    ("error", J.str "server is draining; request refused");
  ]

let evicted ~idle_s =
  [
    ("status", J.str "evicted");
    ( "error",
      J.str
        (Printf.sprintf "connection evicted: idle deadline %.3fs exceeded"
           idle_s) );
  ]

let oversized ~limit =
  [
    ("status", J.str "error");
    ( "error",
      J.str
        (Printf.sprintf
           "frame exceeds the %d-byte line limit; closing connection" limit) );
  ]

let not_applicable reason =
  [ ("status", J.str "not_applicable"); ("reason", J.str reason) ]
