let monotonic_ns = Crs_obs.Trace.monotonic_ns

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

module Client = struct
  type t = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

  let of_fd fd = { fd; buf = Buffer.create 4096; eof = false }
  let send_line t line = write_all t.fd (line ^ "\n")

  (* Pop one complete line from the buffer, if any. *)
  let pop_line t =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some nl ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (nl + 1) (String.length s - nl - 1);
      Some (String.sub s 0 nl)

  let refill t =
    let chunk = Bytes.create 65536 in
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      t.eof <- true;
      false
    | n ->
      Buffer.add_subbytes t.buf chunk 0 n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

  let rec recv_line t =
    match pop_line t with
    | Some line -> Some line
    | None ->
      if t.eof then
        if Buffer.length t.buf > 0 then begin
          let last = Buffer.contents t.buf in
          Buffer.clear t.buf;
          Some last
        end
        else None
      else if refill t then recv_line t
      else recv_line t (* eof just set; flush any unterminated tail *)

  let rpc t line =
    send_line t line;
    match recv_line t with
    | Some response -> response
    | None -> failwith "Loadgen.Client.rpc: connection closed"
end

type arrival =
  | Closed_loop
  | Poisson of { rate : float }
  | Bursty of { burst : int; rate : float }

type stats = {
  sent : int;
  received : int;
  duration_ns : int64;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  latencies_ms : float array;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let exp_gap_ns st rate =
  let u = Random.State.float st 1.0 in
  Int64.of_float (-.log (1.0 -. u) /. rate *. 1e9)

(* Planned send offsets (ns from workload start) for an open-loop
   arrival process; [Closed_loop] has no plan — the response clocks it. *)
let offsets st arrival n =
  match arrival with
  | Closed_loop -> [||]
  | Poisson { rate } ->
    let t = ref 0L in
    Array.init n (fun _ ->
        t := Int64.add !t (exp_gap_ns st rate);
        !t)
  | Bursty { burst; rate } ->
    let burst = max 1 burst in
    let t = ref 0L in
    Array.init n (fun i ->
        if i mod burst = 0 then t := Int64.add !t (exp_gap_ns st rate);
        !t)

let finish ~sent ~received ~first_send ~last_recv latencies =
  let duration_ns =
    if Int64.compare last_recv first_send > 0 then
      Int64.sub last_recv first_send
    else 0L
  in
  let duration_s = Int64.to_float duration_ns /. 1e9 in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  {
    sent;
    received;
    duration_ns;
    throughput_rps =
      (if duration_s > 0.0 then float_of_int received /. duration_s else 0.0);
    p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
    max_ms = percentile sorted 1.0;
    latencies_ms = sorted;
  }

let run ?(seed = 1) (client : Client.t) ~arrival ~requests =
  let requests = Array.of_list requests in
  let n = Array.length requests in
  if n = 0 then
    finish ~sent:0 ~received:0 ~first_send:0L ~last_recv:0L [||]
  else
    match arrival with
    | Closed_loop ->
      let latencies = Array.make n 0.0 in
      let first_send = ref 0L and last_recv = ref 0L in
      let received = ref 0 in
      Array.iteri
        (fun i line ->
          let t0 = monotonic_ns () in
          if i = 0 then first_send := t0;
          Client.send_line client line;
          match Client.recv_line client with
          | None -> ()
          | Some _ ->
            let t1 = monotonic_ns () in
            last_recv := t1;
            latencies.(i) <- Int64.to_float (Int64.sub t1 t0) /. 1e6;
            incr received)
        requests;
      finish ~sent:n ~received:!received ~first_send:!first_send
        ~last_recv:!last_recv
        (Array.sub latencies 0 !received)
    | Poisson _ | Bursty _ ->
      let st = Random.State.make [| seed |] in
      let plan = offsets st arrival n in
      let send_times = Array.make n 0L in
      let latencies = Array.make n 0.0 in
      let sent = ref 0 and received = ref 0 in
      let start = monotonic_ns () in
      let last_recv = ref start in
      let absorb_ready () =
        let rec pop () =
          match Client.pop_line client with
          | Some _ ->
            let now = monotonic_ns () in
            last_recv := now;
            if !received < n then begin
              latencies.(!received) <-
                Int64.to_float (Int64.sub now send_times.(!received)) /. 1e6;
              incr received
            end;
            pop ()
          | None -> ()
        in
        pop ()
      in
      while !received < n && not client.eof do
        absorb_ready ();
        if !received < n && not client.eof then begin
          let now = monotonic_ns () in
          if !sent < n && Int64.compare (Int64.sub now start) plan.(!sent) >= 0
          then begin
            send_times.(!sent) <- now;
            Client.send_line client requests.(!sent);
            incr sent
          end
          else begin
            let timeout =
              if !sent < n then
                let wait_ns =
                  Int64.sub (Int64.add start plan.(!sent)) now
                in
                max 0.0 (Int64.to_float wait_ns /. 1e9)
              else 1.0
            in
            match Unix.select [ client.fd ] [] [] timeout with
            | [], _, _ -> ()
            | _ -> ignore (Client.refill client)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end
        end
      done;
      absorb_ready ();
      finish ~sent:!sent ~received:!received ~first_send:start
        ~last_recv:!last_recv
        (Array.sub latencies 0 !received)

(* Multi-connection mode: the workload is split round-robin across k
   clients, each driven by its own thread under the same arrival shape
   with a seed derived deterministically from [seed] and the connection
   index — one master seed reproduces the whole cross-connection
   schedule. Per-connection response matching stays positional (each
   connection's responses come back in its own request order); the
   aggregate merges every connection's latency samples, so percentiles
   are over the full request population, and clocks throughput on the
   slowest connection's span. *)
let run_multi ?(seed = 1) clients ~arrival ~requests =
  let k = Array.length clients in
  if k = 0 then invalid_arg "Loadgen.run_multi: no clients";
  let slices = Array.make k [] in
  List.iteri (fun i r -> slices.(i mod k) <- r :: slices.(i mod k)) requests;
  let slices = Array.map List.rev slices in
  let empty = finish ~sent:0 ~received:0 ~first_send:0L ~last_recv:0L [||] in
  let results = Array.make k empty in
  let threads =
    Array.mapi
      (fun c client ->
        Thread.create
          (fun () ->
            results.(c) <-
              run ~seed:(seed + (31 * c)) client ~arrival
                ~requests:slices.(c))
          ())
      clients
  in
  Array.iter Thread.join threads;
  let all =
    Array.concat (Array.to_list (Array.map (fun s -> s.latencies_ms) results))
  in
  Array.sort compare all;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 results in
  let duration_ns =
    Array.fold_left (fun acc s -> Int64.max acc s.duration_ns) 0L results
  in
  let duration_s = Int64.to_float duration_ns /. 1e9 in
  let received = sum (fun s -> s.received) in
  {
    sent = sum (fun s -> s.sent);
    received;
    duration_ns;
    throughput_rps =
      (if duration_s > 0.0 then float_of_int received /. duration_s else 0.0);
    p50_ms = percentile all 0.50;
    p99_ms = percentile all 0.99;
    max_ms = percentile all 1.0;
    latencies_ms = all;
  }
