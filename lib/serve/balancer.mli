(** Process-sharded serve tier: one front balancer, N [crsched serve]
    worker processes on private Unix sockets.

    The balancer accepts client connections on the public listen
    address and routes every work request by {b rendezvous hash} of its
    canonical key ({!Canon.key}), so canonically equivalent instances
    always reach the same shard's memo cache — the byte-identity
    guarantee survives sharding — while distinct keys spread evenly.
    Control requests are handled at the front: [hello] locally,
    [stats] by aggregating every shard's live stats, [shutdown] by
    draining the whole tier.

    {2 Robustness}

    - A {i monitor} thread reaps dead workers and respawns them with
      exponential backoff (stale socket paths unlinked first; backoff
      resets once a respawn comes up ready).
    - A {i health} thread pings every shard's [stats] on an interval;
      results drive the [alive] flag in aggregated stats.
    - A request whose shard is unreachable gets {b exactly one}
      structured [overloaded] refusal naming the shard — never a
      dropped line, never a stall on a dead worker. Accounting
      invariant: [accepted = answered + refused].
    - Shard responses — including a shard's own [overloaded] /
      [draining] refusals — are relayed byte-for-byte.
    - A tier drain ([shutdown] request, or {!drain}) forwards
      [shutdown] to every shard (each snapshots warm state via its
      drain hook and exits), refuses latecomers with [draining], then
      reaps every worker before returning. *)

type config = {
  shards : int;  (** worker-process count, >= 1 *)
  socket_dir : string;  (** directory for private shard sockets
                            (created if missing; owned by the tier) *)
  shard_argv : index:int -> socket:string -> string array;
      (** argv for shard [index] listening on [socket];
          [argv.(0)] is the executable path *)
  health_interval_s : float;  (** delay between stats-ping sweeps *)
  restart_backoff_s : float;  (** first respawn delay after a death *)
  restart_backoff_max_s : float;  (** backoff doubling cap *)
  connect_timeout_s : float;
      (** how long to wait for a (re)spawned shard's socket to accept *)
  rpc_timeout_s : float;  (** per-response deadline on shard
                              connections (forwarding, pings, drain) *)
  drain_grace_s : float;
      (** how long client readers answer latecomers with [draining]
          during a tier drain before closing *)
  max_line_bytes : int;  (** client frame bound, as in {!Server} *)
  max_conns : int;  (** concurrent client connections; beyond = one
                        structured [overloaded] response and close *)
}

val default_config :
  shards:int ->
  socket_dir:string ->
  shard_argv:(index:int -> socket:string -> string array) ->
  config
(** Health interval 1 s, backoff 0.05 s doubling to 2 s, connect
    timeout 10 s, rpc timeout 30 s, drain grace 0.5 s, max line 1 MiB,
    max conns 64. *)

val shard_socket : socket_dir:string -> int -> string
(** [socket_dir/shard-<i>.sock] — the path [shard_argv] receives. *)

val route : shards:int -> string -> int
(** Rendezvous (highest-random-weight) shard choice for a routing key:
    every shard scores [Digest.string (key ^ "#" ^ index)] and the
    lexicographically greatest digest wins. A pure function of
    [(key, shards)] — stable across balancer restarts — and minimally
    disruptive under shard-count changes. *)

type t

val create : config -> (t, string) result
(** Spawn every shard, wait for each socket to accept, then start the
    monitor and health threads. [Error] (naming the shards that never
    came up) kills any worker that did start. *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop on the public listening socket: one reader thread per
    client connection. Returns after a tier drain has begun and every
    reader has quiesced. The caller still owns the listening fd. *)

val attach : t -> Unix.file_descr -> Thread.t option
(** Register a connected client fd (tests/benches drive the balancer
    over socketpairs with this): spawns and returns its reader thread,
    or refuses it ([overloaded] + close, [None]) beyond [max_conns]. *)

val drain : t -> unit
(** Begin (or join) the tier drain: forward [shutdown] to every shard,
    stop the monitor/health threads, reap every worker — escalating to
    SIGTERM/SIGKILL for a wedged one — and clear the shard sockets.
    Idempotent. *)

val stopping : t -> bool
(** A tier drain has begun. *)

val shard_pids : t -> int array
(** Current worker pids, by shard index (0 = not running). Exposed for
    restart-under-load tests. *)

val stats_payload : t -> (string * string) list
(** The aggregated [stats] payload: tier-wide request/cache sums over
    live per-shard stats RPCs, plus a [balancer] object — accepted /
    answered / refused accounting, restart total, connection counters
    and a per-shard array (index, alive, pid, restarts, routed, ping
    counts, and the shard's own requests / cache / [warm] progress
    passed through verbatim). *)
