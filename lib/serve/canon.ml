(* Canonical instance form for the serve memo cache.

   Soundness rests on the two invariances the fuzz oracles pin: row
   permutation never changes the optimum (schedules carry no processor
   identity), and a row holding a single zero-requirement unit job is
   pure padding whenever at least one real job remains. Everything else
   — requirement values, job order within a row, sizes — is preserved
   bit-for-bit, so the canonical instance is a genuine instance of the
   same problem, not a lossy fingerprint. *)

module Q = Crs_num.Rational
open Crs_core

let is_padding_row row =
  Array.length row = 1
  && Job.is_unit_size row.(0)
  && Q.(equal (Job.requirement row.(0)) zero)

let jobs_in rows = List.fold_left (fun acc r -> acc + Array.length r) 0 rows

(* Lexicographic on the job sequence; shorter rows first on a shared
   prefix. Any total order works — it only has to be deterministic. *)
let compare_rows a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = Job.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonicalize instance =
  let rows = Array.to_list (Instance.rows instance) in
  let kept = List.filter (fun r -> not (is_padding_row r)) rows in
  (* The zero-pad invariance needs a surviving job: a padding row still
     costs one step, which IS the optimum when nothing else runs. *)
  let rows = if jobs_in kept >= 1 then kept else rows in
  Instance.create (Array.of_list (List.sort compare_rows rows))

let key instance = Instance.to_string (canonicalize instance)

let equivalent a b = String.equal (key a) (key b)

(* ---- structured solve-cache keys ---- *)

module Solve_key = struct
  (* The memo cache is keyed by everything that changes a solve answer:
     algorithm, effective fuel, the witness/certify switches and the
     canonical instance text. The rendering doubles as the crs-warm/1
     persistence identity, so it must stay parseable: '|' cannot occur
     in registry names or instance text (digits, '/', spaces and
     newlines only), and the canonical text is the final field so its
     newlines survive untouched. *)
  type t = {
    algorithm : string;
    fuel : int option;
    witness : bool;
    certify : bool;
    canon : string;
  }

  let to_string k =
    Printf.sprintf "%s|%s|%b%b|%s" k.algorithm
      (match k.fuel with Some f -> string_of_int f | None -> "-")
      k.witness k.certify k.canon

  let of_string s =
    match String.index_opt s '|' with
    | None -> None
    | Some i -> (
      let algorithm = String.sub s 0 i in
      match String.index_from_opt s (i + 1) '|' with
      | None -> None
      | Some j -> (
        let fuel_s = String.sub s (i + 1) (j - i - 1) in
        match String.index_from_opt s (j + 1) '|' with
        | None -> None
        | Some l -> (
          let flags = String.sub s (j + 1) (l - j - 1) in
          let canon = String.sub s (l + 1) (String.length s - l - 1) in
          let fuel =
            if String.equal fuel_s "-" then Some None
            else Option.map Option.some (int_of_string_opt fuel_s)
          in
          let bool_pair = function
            | "truetrue" -> Some (true, true)
            | "truefalse" -> Some (true, false)
            | "falsetrue" -> Some (false, true)
            | "falsefalse" -> Some (false, false)
            | _ -> None
          in
          match (fuel, bool_pair flags) with
          | Some fuel, Some (witness, certify) ->
            if algorithm = "" || canon = "" then None
            else Some { algorithm; fuel; witness; certify; canon }
          | _ -> None)))
end

(* ---- bounded LRU cache ---- *)

module Cache = struct
  (* Intrusive doubly-linked recency list + hashtable, guarded by one
     mutex. Batches are small and entries cheap, so a single lock is
     simpler than striping and nowhere near the serve hot path cost. *)

  type 'a node = {
    nkey : string;
    mutable value : 'a;
    mutable prev : 'a node option;  (* towards most-recent *)
    mutable next : 'a node option;  (* towards least-recent *)
  }

  type 'a t = {
    cap : int;
    table : (string, 'a node) Hashtbl.t;
    mutable head : 'a node option;  (* most recently used *)
    mutable tail : 'a node option;  (* least recently used *)
    mutable count : int;
    mutable hit_count : int;
    mutable miss_count : int;
    mutable eviction_count : int;
    lock : Mutex.t;
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Canon.Cache.create: negative capacity";
    {
      cap = capacity;
      table = Hashtbl.create (max 16 capacity);
      head = None;
      tail = None;
      count = 0;
      hit_count = 0;
      miss_count = 0;
      eviction_count = 0;
      lock = Mutex.create ();
    }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    node.prev <- None;
    (match t.head with Some h -> h.prev <- Some node | None -> ());
    t.head <- Some node;
    if t.tail = None then t.tail <- Some node

  let capacity t = t.cap
  let size t = locked t (fun () -> t.count)

  (* Most-recent first: the natural order for persisting recency (a
     consumer replaying oldest-first restores the same LRU order). *)
  let keys t =
    locked t (fun () ->
        let rec walk acc = function
          | None -> List.rev acc
          | Some node -> walk (node.nkey :: acc) node.next
        in
        walk [] t.head)
  let hits t = locked t (fun () -> t.hit_count)
  let misses t = locked t (fun () -> t.miss_count)
  let evictions t = locked t (fun () -> t.eviction_count)

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some node ->
          t.hit_count <- t.hit_count + 1;
          unlink t node;
          push_front t node;
          Some node.value
        | None ->
          t.miss_count <- t.miss_count + 1;
          None)

  let add t key value =
    if t.cap > 0 then
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
            node.value <- value;
            unlink t node;
            push_front t node
          | None ->
            if t.count >= t.cap then begin
              match t.tail with
              | Some lru ->
                unlink t lru;
                Hashtbl.remove t.table lru.nkey;
                t.count <- t.count - 1;
                t.eviction_count <- t.eviction_count + 1
              | None -> assert false (* count >= cap > 0 implies a tail *)
            end;
            let node = { nkey = key; value; prev = None; next = None } in
            Hashtbl.replace t.table key node;
            push_front t node;
            t.count <- t.count + 1)
end
