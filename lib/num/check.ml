(* Randomized differential tester for Rational.

   Every sampled operation runs twice: once through {!Rational} (whatever
   representation it uses internally — since the two-tier small/bigint
   split, results may live in either tier) and once through a reference
   implementation kept deliberately naive: plain Bigint numerator /
   denominator pairs, normalized with the array-based gcd, no fast paths
   at all. Any divergence in value, ordering, rounding, printing or
   hashing is reported as a mismatch.

   The operand generator is biased toward the representation's fault
   lines: tiny paper-style fractions (the small tier), numerators and
   denominators adjacent to [max_int] and to the small-tier bound
   (forced-spill cases), and genuinely multi-limb values (the bigint
   tier). Results are fed back into the operand pool, so long chains of
   operations exercise the spill/renormalize transitions in both
   directions. *)

module Q = Rational

(* ---------- reference implementation: pure bigint pairs ---------- *)

module Ref = struct
  type t = { num : Bigint.t; den : Bigint.t }
  (* den > 0, gcd(|num|, den) = 1, num = 0 implies den = 1 — the same
     canonical form Rational documents, derived independently. *)

  let norm num den =
    let s = Bigint.sign den in
    if s = 0 then raise Division_by_zero;
    let num = if s < 0 then Bigint.neg num else num in
    let den = Bigint.abs den in
    if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
    else begin
      let g = Bigint.of_natural (Bigint.gcd num den) in
      { num = Bigint.div num g; den = Bigint.div den g }
    end

  let add a b =
    norm
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den)

  let neg a = { a with num = Bigint.neg a.num }
  let abs a = { a with num = Bigint.abs a.num }
  let sub a b = add a (neg b)
  let mul a b = norm (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
  let div a b = norm (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
  let inv a = norm a.den a.num

  let compare a b =
    Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

  let sign a = Bigint.sign a.num

  let floor a = Bigint.div a.num a.den

  let ceil a =
    let q, r = Bigint.divmod a.num a.den in
    if Bigint.is_zero r then q else Bigint.add q Bigint.one

  let to_string a =
    if Bigint.equal a.den Bigint.one then Bigint.to_string a.num
    else Bigint.to_string a.num ^ "/" ^ Bigint.to_string a.den

  let to_int_opt a =
    if Bigint.equal a.den Bigint.one then Bigint.to_int_opt a.num else None
end

(* ---------- operand generation ---------- *)

(* Interesting signed integers, as Bigint so both sides build from the
   same input. Buckets cover: tiny values (small tier), values adjacent
   to the small-tier spill bound and to max_int (forced spills, overflow
   checks in the int fast paths), and multi-limb values. *)
let gen_bigint st =
  let small_edge = Q.small_bound in
  let pick = Random.State.int st 100 in
  let n =
    if pick < 45 then Random.State.int st 25 - 12
    else if pick < 60 then Random.State.int st 2_000_001 - 1_000_000
    else if pick < 72 then begin
      (* around the small-tier bound *)
      let d = Random.State.int st 7 - 3 in
      (if Random.State.bool st then small_edge + d else -small_edge + d)
    end
    else if pick < 84 then begin
      (* around max_int / min_int *)
      let d = Random.State.int st 4 in
      if Random.State.bool st then max_int - d else min_int + d
    end
    else 0
  in
  if pick < 84 then Bigint.of_int n
  else begin
    (* multi-limb: (10^k + j) with k past the int range *)
    let k = 19 + Random.State.int st 10 in
    let b = Bigint.pow (Bigint.of_int 10) k in
    let b = Bigint.add b (Bigint.of_int (Random.State.int st 1000)) in
    if Random.State.bool st then b else Bigint.neg b
  end

let gen_pair st =
  let num = gen_bigint st in
  let den = ref (gen_bigint st) in
  while Bigint.is_zero !den do den := gen_bigint st done;
  (num, !den)

(* ---------- the differential run ---------- *)

type outcome = { ops : int; mismatches : string list }

let ok outcome = outcome.mismatches = []

let describe outcome =
  match outcome.mismatches with
  | [] -> Printf.sprintf "ok (%d ops, 0 mismatches)" outcome.ops
  | ms ->
    Printf.sprintf "%d mismatches in %d ops; first: %s" (List.length ms)
      outcome.ops (List.hd ms)

let binary_ops = [| "add"; "sub"; "mul"; "div"; "min"; "max" |]
let unary_ops = [| "neg"; "abs"; "inv" |]

let run ?(ops = 10_000) ~seed () =
  let st = Random.State.make [| seed; 0x5eed |] in
  let mismatches = ref [] in
  let report fmt = Printf.ksprintf (fun s -> mismatches := s :: !mismatches) fmt in
  (* The operand pool: pairs (fast, reference) built from identical
     bigint input, refreshed with operation results so chains compound. *)
  let pool_size = 64 in
  let fresh () =
    let num, den = gen_pair st in
    (Q.make num den, Ref.norm num den)
  in
  let pool = Array.init pool_size (fun _ -> fresh ()) in
  (* Results re-enter the pool so operation chains compound across the
     tier boundary — but unboundedly: repeated multiplication would
     breed numbers with thousands of limbs and the quadratic-time bigint
     layer would dominate the run. Oversized results are still audited,
     just not recycled. *)
  let recyclable (z, _) =
    let limbs b = Natural.num_limbs (Bigint.abs_natural b) in
    limbs (Q.num z) <= 6 && limbs (Q.den z) <= 6
  in
  let recycle zr =
    if recyclable zr then pool.(Random.State.int st pool_size) <- zr
  in
  let audit ctx (x, r) =
    (* Value agreement is checked on canonical strings: both sides
       document the same canonical form, so printing must agree
       exactly. *)
    let sx = Q.to_string x and sr = Ref.to_string r in
    if not (String.equal sx sr) then report "%s: value %s, reference %s" ctx sx sr;
    if not (Q.is_canonical x) then report "%s: non-canonical representation %s" ctx sx;
    if Q.sign x <> Ref.sign r then report "%s: sign of %s" ctx sx;
    (match (Q.to_int_opt x, Ref.to_int_opt r) with
    | Some a, Some b when a = b -> ()
    | None, None -> ()
    | _ -> report "%s: to_int_opt of %s" ctx sx);
    if not (Bigint.equal (Q.floor x) (Ref.floor r)) then
      report "%s: floor of %s" ctx sx;
    if not (Bigint.equal (Q.ceil x) (Ref.ceil r)) then report "%s: ceil of %s" ctx sx;
    (* print/parse round trip on the canonical form *)
    if not (Q.equal x (Q.of_string sx)) then report "%s: of_string(to_string %s)" ctx sx
  in
  Array.iteri (fun i xr -> audit (Printf.sprintf "init %d" i) xr) pool;
  for op = 1 to ops do
    let i = Random.State.int st pool_size and j = Random.State.int st pool_size in
    let x, rx = pool.(i) and y, ry = pool.(j) in
    let which = Random.State.int st 10 in
    if which < 6 then begin
      (* binary arithmetic *)
      let name = binary_ops.(Random.State.int st (Array.length binary_ops)) in
      let attempt =
        match name with
        | "add" -> Some (Q.add x y, Ref.add rx ry)
        | "sub" -> Some (Q.sub x y, Ref.sub rx ry)
        | "mul" -> Some (Q.mul x y, Ref.mul rx ry)
        | "div" ->
          if Q.is_zero y then None else Some (Q.div x y, Ref.div rx ry)
        | "min" ->
          Some (Q.min x y, if Ref.compare rx ry <= 0 then rx else ry)
        | "max" ->
          Some (Q.max x y, if Ref.compare rx ry >= 0 then rx else ry)
        | _ -> assert false
      in
      match attempt with
      | None -> ()
      | Some zr ->
        audit (Printf.sprintf "op %d: %s" op name) zr;
        recycle zr
    end
    else if which < 8 then begin
      let name = unary_ops.(Random.State.int st (Array.length unary_ops)) in
      let attempt =
        match name with
        | "neg" -> Some (Q.neg x, Ref.neg rx)
        | "abs" -> Some (Q.abs x, Ref.abs rx)
        | "inv" -> if Q.is_zero x then None else Some (Q.inv x, Ref.inv rx)
        | _ -> assert false
      in
      match attempt with
      | None -> ()
      | Some zr ->
        audit (Printf.sprintf "op %d: %s" op name) zr;
        recycle zr
    end
    else begin
      (* comparisons and hashing: consistency across the tier split is
         exactly what a representation bug would break. *)
      let c = Q.compare x y and rc = Ref.compare rx ry in
      if Stdlib.compare c 0 <> Stdlib.compare rc 0 then
        report "op %d: compare %s %s = %d, reference %d" op (Q.to_string x)
          (Q.to_string y) c rc;
      if Q.equal x y <> (rc = 0) then
        report "op %d: equal %s %s" op (Q.to_string x) (Q.to_string y);
      if rc = 0 && Q.hash x <> Q.hash y then
        report "op %d: hash split for equal values %s" op (Q.to_string x);
      if Q.(x <= y) <> (rc <= 0) || Q.(x < y) <> (rc < 0) then
        report "op %d: ordering operators disagree on %s vs %s" op
          (Q.to_string x) (Q.to_string y)
    end
  done;
  { ops; mismatches = List.rev !mismatches }

let run_exn ?ops ~seed () =
  let outcome = run ?ops ~seed () in
  if not (ok outcome) then
    failwith ("Rational differential check failed: " ^ describe outcome);
  outcome
