(** Arbitrary-precision natural numbers (non-negative integers).

    Numbers are stored little-endian in arrays of "limbs", each limb
    holding [base_bits] bits. The representation is canonical: no leading
    zero limb, and zero is the empty array. All operations are purely
    functional.

    This module is the base layer of the exact-arithmetic substrate
    ([lib/num]); see {!Bigint} for signed integers and {!Rational} for
    normalized fractions. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative OCaml integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in an OCaml [int]. *)

val of_string : string -> t
(** Parse a decimal string of digits.
    @raise Invalid_argument on the empty string or non-digit input. *)

val to_string : t -> string
(** Decimal representation, no leading zeros (["0"] for zero). *)

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val compare_int : t -> int -> int
(** [compare_int n m] orders [n] against a non-negative machine int
    without allocating. @raise Invalid_argument if [m < 0]. *)

val hash : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] computes [a - b].
    @raise Invalid_argument if [b > a]. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; [gcd 0 n = n]. *)

val gcd_int : int -> int -> int
(** Binary (Stein) gcd on non-negative machine ints; [gcd_int 0 n = n].
    Division-free, used by the {!Rational} small tier.
    @raise Invalid_argument on negative arguments. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument if [e < 0]. *)

val shift_left : t -> int -> t
(** Multiply by [2^k]. *)

val shift_right : t -> int -> t
(** Divide by [2^k], truncating. *)

val min : t -> t -> t
val max : t -> t -> t

(** {1 Internals exposed for testing} *)

val base_bits : int
val num_limbs : t -> int
val is_canonical : t -> bool
(** Representation invariant: no leading zero limb, all limbs in range. *)
