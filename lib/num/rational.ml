type t = { num : Bigint.t; den : Bigint.t }
(* Invariant: den > 0, gcd(|num|, den) = 1, and num = 0 implies den = 1. *)

let normalize num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero;
  let num = if s < 0 then Bigint.neg num else num in
  let den = Bigint.abs den in
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g = Bigint.of_natural (Bigint.gcd num den) in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let make num den = normalize num den
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints p q = normalize (Bigint.of_int p) (Bigint.of_int q)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_one t = Bigint.equal t.num Bigint.one && Bigint.equal t.den Bigint.one
let is_integer t = Bigint.equal t.den Bigint.one

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (both denominators positive). *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let hash t = Bigint.hash t.num lxor (Bigint.hash t.den * 7)

let ( = ) a b = equal a b
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  normalize
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = normalize (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = normalize (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
let inv t = normalize t.den t.num

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div

let sum l = List.fold_left add zero l
let sum_array a = Array.fold_left add zero a

let floor t = Bigint.div t.num t.den
(* Bigint.divmod is Euclidean (remainder >= 0), so its quotient is exactly
   the floor for any sign of the numerator. *)

let ceil t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.is_zero r then q else Bigint.add q Bigint.one

let floor_int t =
  match Bigint.to_int_opt (floor t) with
  | Some i -> i
  | None -> failwith "Rational.floor_int: out of int range"

let ceil_int t =
  match Bigint.to_int_opt (ceil t) with
  | Some i -> i
  | None -> failwith "Rational.ceil_int: out of int range"

let to_int_opt t = if is_integer t then Bigint.to_int_opt t.num else None

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let in_unit_interval x = zero <= x && x <= one

let to_float t =
  (* Convert directly when the parts fit in an int; fall back to a scaled
     division, then to mantissa/exponent splitting. Precision here is
     best-effort: this function exists for reporting, never for
     decisions. *)
  match (Bigint.to_int_opt t.num, Bigint.to_int_opt t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
    let scale = Bigint.of_int 1_000_000_000 in
    (match Bigint.to_int_opt (Bigint.div (Bigint.mul t.num scale) t.den) with
    | Some s -> float_of_int s /. 1e9
    | None ->
      (* Both parts can exceed float range (a plain float_of_string
         quotient would be inf /. inf = nan even when the true ratio is
         modest, e.g. 10^400 / 10^390 = 1e10). Take each part's leading
         digits as a mantissa and track the dropped digits as a power of
         ten; overflow and underflow then come out as inf / 0 only when
         the ratio itself deserves it. *)
      let split s =
        let keep = Stdlib.min (String.length s) 15 in
        ( float_of_string (String.sub s 0 keep),
          Stdlib.( - ) (String.length s) keep )
      in
      let mn, en = split (Bigint.to_string (Bigint.abs t.num)) in
      let md, ed = split (Bigint.to_string t.den) in
      let magnitude = mn /. md *. (10.0 ** float_of_int (Stdlib.( - ) en ed)) in
      if Stdlib.( < ) (Bigint.sign t.num) 0 then -.magnitude else magnitude)

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let p = String.sub s 0 i and q = String.sub s (Stdlib.( + ) i 1) (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)) in
    make (Bigint.of_string (String.trim p)) (Bigint.of_string (String.trim q))
  | None ->
    (match String.index_opt s '.' with
    | None -> of_bigint (Bigint.of_string (String.trim s))
    | Some i ->
      let int_part = String.sub s 0 i in
      let frac = String.sub s (Stdlib.( + ) i 1) (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)) in
      let digits = String.length frac in
      let sign_factor =
        if Stdlib.( > ) (String.length int_part) 0 && Char.equal int_part.[0] '-' then minus_one else one
      in
      let int_val =
        if String.equal int_part "" || String.equal int_part "-" || String.equal int_part "+" then zero
        else of_bigint (Bigint.of_string int_part)
      in
      let frac_val =
        if Stdlib.( = ) digits 0 then zero
        else
          make (Bigint.of_string frac)
            (Bigint.of_natural (Natural.pow (Natural.of_int 10) digits))
      in
      add int_val (mul sign_factor (abs frac_val)))

let pp fmt t = Format.pp_print_string fmt (to_string t)
