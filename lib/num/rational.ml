(* Two-tier exact rationals.

   The hot loops of the analysis layer (Opt_two's DP relaxations, the
   brute-force memo probes) work almost exclusively on tiny paper-style
   fractions: requirements j/n, shares summing to 1, makespans of a few
   units. Those live in the immediate small tier [S]: numerator and
   denominator as native ints, reduced with the division-free binary
   gcd, no heap traffic beyond the result block itself. Values whose
   reduced parts exceed [small_bound] spill to the bigint-backed tier
   [B]; every operation renormalizes its result back into [S] whenever
   it fits, so a chain of operations that wanders out of range and back
   returns to the fast representation on its own. *)

type t =
  | S of { p : int; q : int }
  | B of { num : Bigint.t; den : Bigint.t }
(* Invariants (checked by [is_canonical], exercised by [Check]):
   - S: q > 0, gcd(|p|, q) = 1, p = 0 implies q = 1, and both
     |p| <= small_bound and q <= small_bound.
   - B: den > 0, gcd(|num|, den) = 1, num <> 0, and the pair does NOT
     fit the small tier (otherwise it would be an S).
   Canonical + tier-deterministic means [equal] and [hash] can work
   per constructor without cross-tier comparisons. *)

let small_bound = (1 lsl 31) - 1
(* 2^31 - 1: any product of two small parts is at most (2^31 - 1)^2,
   which fits a 63-bit int, so cross products in [add], [mul] and
   [compare] never overflow individually — only the SUM of two cross
   products in [add]/[sub] needs an explicit check. *)

let is_small = function S _ -> true | B _ -> false

(* Does a bigint pair (den > 0) fit the small tier? Rejects without
   allocating; the common case in the spill path is "no". *)
let fits_small num den =
  Bigint.compare_int num small_bound <= 0
  && Bigint.compare_int num (-small_bound) >= 0
  && Bigint.compare_int den small_bound <= 0

(* Normalize a bigint fraction: sign into the numerator, reduce by the
   gcd, then demote into the small tier when the parts fit. *)
let norm_big num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero;
  let num = if s < 0 then Bigint.neg num else num in
  let den = Bigint.abs den in
  if Bigint.is_zero num then S { p = 0; q = 1 }
  else begin
    let g = Bigint.of_natural (Bigint.gcd num den) in
    let num, den =
      if Bigint.equal g Bigint.one then (num, den)
      else (Bigint.div num g, Bigint.div den g)
    in
    if fits_small num den then
      S { p = Bigint.to_int_exn num; q = Bigint.to_int_exn den }
    else B { num; den }
  end

(* Normalize a machine-int fraction. [min_int] would overflow negation
   and [abs], so it is routed through the bigint path; everything else
   reduces with the binary int gcd and stays unboxed. *)
let norm_ints p q =
  if q = 0 then raise Division_by_zero;
  if p = min_int || q = min_int then
    norm_big (Bigint.of_int p) (Bigint.of_int q)
  else begin
    let negative = p < 0 <> (q < 0) in
    let ap = abs p and aq = abs q in
    if ap = 0 then S { p = 0; q = 1 }
    else begin
      let g = Natural.gcd_int ap aq in
      let ap = ap / g and aq = aq / g in
      if ap <= small_bound && aq <= small_bound then
        S { p = (if negative then -ap else ap); q = aq }
      else
        B
          { num = Bigint.of_int (if negative then -ap else ap);
            den = Bigint.of_int aq;
          }
    end
  end

let make num den = norm_big num den

let of_int n =
  if n >= -small_bound && n <= small_bound then S { p = n; q = 1 }
  else B { num = Bigint.of_int n; den = Bigint.one }

let of_bigint n =
  match Bigint.to_int_opt n with
  | Some i -> of_int i
  | None -> B { num = n; den = Bigint.one }

let of_ints p q = norm_ints p q

let zero = S { p = 0; q = 1 }
let one = S { p = 1; q = 1 }
let two = S { p = 2; q = 1 }
let half = S { p = 1; q = 2 }
let minus_one = S { p = -1; q = 1 }

let num = function S { p; _ } -> Bigint.of_int p | B { num; _ } -> num
let den = function S { q; _ } -> Bigint.of_int q | B { den; _ } -> den

let small_num = function
  | S { p; _ } -> p
  | B _ -> invalid_arg "Rational.small_num: bigint-tier value"

let small_den = function
  | S { q; _ } -> q
  | B _ -> invalid_arg "Rational.small_den: bigint-tier value"
let sign = function S { p; _ } -> Stdlib.compare p 0 | B { num; _ } -> Bigint.sign num

(* Zero and one always fit the small tier, so [B] cannot hold them. *)
let is_zero = function S { p; _ } -> p = 0 | B _ -> false
let is_one = function S { p; q } -> p = 1 && q = 1 | B _ -> false
let is_integer = function S { q; _ } -> q = 1 | B { den; _ } -> Bigint.equal den Bigint.one

(* Canonicality makes equality structural per tier; a value never has
   both an S and a B spelling. *)
let equal a b =
  match (a, b) with
  | S x, S y -> x.p = y.p && x.q = y.q
  | B x, B y -> Bigint.equal x.num y.num && Bigint.equal x.den y.den
  | S _, B _ | B _, S _ -> false

let compare a b =
  match (a, b) with
  | S x, S y ->
    (* x.p/x.q ? y.p/y.q  <=>  x.p*y.q ? y.p*x.q (denominators
       positive); each product is below 2^62, no overflow. *)
    Stdlib.compare (x.p * y.q) (y.p * x.q)
  | _ ->
    (* At least one bigint operand: settle on signs first, then on
       structural equality, and only then pay for cross products. *)
    let sa = sign a and sb = sign b in
    if sa <> sb then Stdlib.compare sa sb
    else if equal a b then 0
    else Bigint.compare (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a))

let hash = function
  | S { p; q } -> ((p * 65599) + q) land max_int
  | B { num; den } -> Bigint.hash num lxor (Bigint.hash den * 7)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Small-tier magnitudes are bounded well below max_int, so negation
   never overflows and tier membership is sign-symmetric. *)
let neg = function
  | S { p; q } -> S { p = -p; q }
  | B { num; den } -> B { num = Bigint.neg num; den }

let abs = function
  | S { p; q } -> S { p = Stdlib.abs p; q }
  | B { num; den } -> B { num = Bigint.abs num; den }

let add a b =
  match (a, b) with
  | S x, S y ->
    if x.q = y.q then
      (* Common denominator (ubiquitous when accumulating shares of a
         fixed grid): the numerator sum of two smalls cannot overflow. *)
      norm_ints (x.p + y.p) x.q
    else begin
      let n1 = x.p * y.q and n2 = y.p * x.q in
      let s = n1 + n2 in
      (* The products fit individually; their sum overflows iff the
         operands share a sign and the sum's sign flipped. *)
      if n1 >= 0 = (n2 >= 0) && s >= 0 <> (n1 >= 0) then
        norm_big
          (Bigint.add (Bigint.of_int n1) (Bigint.of_int n2))
          (Bigint.of_int (x.q * y.q))
      else norm_ints s (x.q * y.q)
    end
  | _ ->
    norm_big
      (Bigint.add (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a)))
      (Bigint.mul (den a) (den b))

let sub a b =
  match (a, b) with
  | S x, S y ->
    if x.q = y.q then norm_ints (x.p - y.p) x.q
    else begin
      let n1 = x.p * y.q and n2 = y.p * x.q in
      let d = n1 - n2 in
      (* Difference overflows iff signs differ and the result's sign
         does not follow the minuend. *)
      if n1 >= 0 <> (n2 >= 0) && d >= 0 <> (n1 >= 0) then
        norm_big
          (Bigint.sub (Bigint.of_int n1) (Bigint.of_int n2))
          (Bigint.of_int (x.q * y.q))
      else norm_ints d (x.q * y.q)
    end
  | _ -> add a (neg b)

let mul a b =
  match (a, b) with
  | S x, S y ->
    if x.p = 0 || y.p = 0 then zero
    else begin
      (* Cross-reduce before multiplying: gcd(|x.p|, y.q) and
         gcd(|y.p|, x.q) strip every common factor (each numerator is
         already coprime to its own denominator), so the products below
         are canonical without a final gcd. *)
      let g1 = Natural.gcd_int (Stdlib.abs x.p) y.q
      and g2 = Natural.gcd_int (Stdlib.abs y.p) x.q in
      let p = x.p / g1 * (y.p / g2) and q = x.q / g2 * (y.q / g1) in
      if p >= -small_bound && p <= small_bound && q <= small_bound then
        S { p; q }
      else B { num = Bigint.of_int p; den = Bigint.of_int q }
    end
  | _ -> norm_big (Bigint.mul (num a) (num b)) (Bigint.mul (den a) (den b))

let div a b =
  match (a, b) with
  | S x, S y ->
    if y.p = 0 then raise Division_by_zero
    else if x.p = 0 then zero
    else begin
      let bp = Stdlib.abs y.p in
      (* Same cross-reduction as [mul], against the flipped divisor. *)
      let g1 = Natural.gcd_int (Stdlib.abs x.p) bp
      and g2 = Natural.gcd_int x.q y.q in
      let p = x.p / g1 * (y.q / g2) and q = x.q / g2 * (bp / g1) in
      let p = if y.p < 0 then -p else p in
      if p >= -small_bound && p <= small_bound && q <= small_bound then
        S { p; q }
      else B { num = Bigint.of_int p; den = Bigint.of_int q }
    end
  | _ ->
    if is_zero b then raise Division_by_zero
    else norm_big (Bigint.mul (num a) (den b)) (Bigint.mul (den a) (num b))

(* Swapping an S stays within the bound; swapping a B keeps at least one
   oversized part, so neither ever changes tier. *)
let inv = function
  | S { p; q } ->
    if p = 0 then raise Division_by_zero
    else if p > 0 then S { p = q; q = p }
    else S { p = -q; q = -p }
  | B { num; den } ->
    if Bigint.sign num < 0 then B { num = Bigint.neg den; den = Bigint.neg num }
    else B { num = den; den = num }

let floor_small p q = if p >= 0 then p / q else -((-p + q - 1) / q)
let ceil_small p q = if p >= 0 then (p + q - 1) / q else -(-p / q)

let floor = function
  | S { p; q } -> Bigint.of_int (floor_small p q)
  | B { num; den } ->
    (* Bigint.divmod is Euclidean (remainder >= 0), so its quotient is
       exactly the floor for any sign of the numerator. *)
    Bigint.div num den

let ceil = function
  | S { p; q } -> Bigint.of_int (ceil_small p q)
  | B { num; den } ->
    let q, r = Bigint.divmod num den in
    if Bigint.is_zero r then q else Bigint.add q Bigint.one

let floor_int = function
  | S { p; q } -> floor_small p q
  | B _ as t -> (
    match Bigint.to_int_opt (floor t) with
    | Some i -> i
    | None -> failwith "Rational.floor_int: out of int range")

let ceil_int = function
  | S { p; q } -> ceil_small p q
  | B _ as t -> (
    match Bigint.to_int_opt (ceil t) with
    | Some i -> i
    | None -> failwith "Rational.ceil_int: out of int range")

let to_int_opt = function
  | S { p; q } -> if q = 1 then Some p else None
  | B { num; den } ->
    if Bigint.equal den Bigint.one then Bigint.to_int_opt num else None

let clamp ~lo ~hi x =
  if compare x lo < 0 then lo else if compare x hi > 0 then hi else x

let in_unit_interval x = compare zero x <= 0 && compare x one <= 0

let to_float = function
  | S { p; q } -> float_of_int p /. float_of_int q
  | B { num; den } ->
    (* Convert via a scaled division, falling back to mantissa/exponent
       splitting. Precision here is best-effort: this function exists
       for reporting, never for decisions. *)
    let scale = Bigint.of_int 1_000_000_000 in
    (match Bigint.to_int_opt (Bigint.div (Bigint.mul num scale) den) with
    | Some s -> float_of_int s /. 1e9
    | None ->
      (* Both parts can exceed float range (a plain float_of_string
         quotient would be inf /. inf = nan even when the true ratio is
         modest, e.g. 10^400 / 10^390 = 1e10). Take each part's leading
         digits as a mantissa and track the dropped digits as a power of
         ten; overflow and underflow then come out as inf / 0 only when
         the ratio itself deserves it. *)
      let split s =
        let keep = Stdlib.min (String.length s) 15 in
        (float_of_string (String.sub s 0 keep), String.length s - keep)
      in
      let mn, en = split (Bigint.to_string (Bigint.abs num)) in
      let md, ed = split (Bigint.to_string den) in
      let magnitude = mn /. md *. (10.0 ** float_of_int (en - ed)) in
      if Bigint.sign num < 0 then -.magnitude else magnitude)

let to_string = function
  | S { p; q } ->
    if q = 1 then string_of_int p
    else string_of_int p ^ "/" ^ string_of_int q
  | B { num; den } ->
    if Bigint.equal den Bigint.one then Bigint.to_string num
    else Bigint.to_string num ^ "/" ^ Bigint.to_string den

let of_string s =
  let s = String.trim s in
  if String.equal s "" || String.equal s "+" || String.equal s "-" then
    invalid_arg "Rational.of_string: empty or bare sign";
  match String.index_opt s '/' with
  | Some i ->
    let p = String.sub s 0 i
    and q = String.sub s (i + 1) (String.length s - i - 1) in
    make (Bigint.of_string (String.trim p)) (Bigint.of_string (String.trim q))
  | None -> (
    match String.index_opt s '.' with
    | None -> of_bigint (Bigint.of_string s)
    | Some i ->
      let int_part = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      let digits = String.length frac in
      let sign_factor =
        if String.length int_part > 0 && Char.equal int_part.[0] '-' then
          minus_one
        else one
      in
      let int_val =
        if
          String.equal int_part "" || String.equal int_part "-"
          || String.equal int_part "+"
        then zero
        else of_bigint (Bigint.of_string int_part)
      in
      let frac_val =
        if digits = 0 then zero
        else
          make (Bigint.of_string frac)
            (Bigint.of_natural (Natural.pow (Natural.of_int 10) digits))
      in
      add int_val (mul sign_factor (abs frac_val)))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_canonical = function
  | S { p; q } ->
    q > 0 && q <= small_bound
    && p >= -small_bound && p <= small_bound
    && (if p = 0 then q = 1 else Natural.gcd_int (Stdlib.abs p) q = 1)
  | B { num; den } ->
    Bigint.sign den > 0
    && (not (Bigint.is_zero num))
    && Natural.is_one (Bigint.gcd num den)
    && not (fits_small num den)

let sum l = List.fold_left add zero l
let sum_array a = Array.fold_left add zero a

(* Operator aliases last, so the int operators above are Stdlib's. *)
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
