(* Arbitrary-precision naturals, little-endian limbs in base 2^30.
   The base is chosen so a limb product (< 2^60) plus carries fits in a
   63-bit OCaml int without overflow. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = int array
(* Canonical: no trailing (most significant) zero limb; zero = [||]. *)

let zero : t = [||]
let is_zero n = Array.length n = 0

(* Strip leading-zero limbs to restore canonicity. *)
let canon (a : int array) : t =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length a then a else Array.sub a 0 !len

let is_canonical n =
  (Array.length n = 0 || n.(Array.length n - 1) <> 0)
  && Array.for_all (fun limb -> 0 <= limb && limb < base) n

let num_limbs = Array.length

let of_int n =
  (* A 63-bit int spans at most three 30-bit limbs, so the general loop
     is not needed; single-limb values (the overwhelmingly common case
     in the rational small tier) allocate exactly one two-word array. *)
  if n < 0 then invalid_arg "Natural.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else if n lsr (2 * base_bits) = 0 then [| n land mask; n lsr base_bits |]
  else [| n land mask; (n lsr base_bits) land mask; n lsr (2 * base_bits) |]

let one = of_int 1
let two = of_int 2
let is_one n = Array.length n = 1 && n.(0) = 1

let to_int_opt n =
  (* An OCaml int holds 62 value bits plus sign: up to two full limbs,
     or three when the top limb uses only the remaining two bits. *)
  match Array.length n with
  | 0 -> Some 0
  | 1 -> Some n.(0)
  | 2 -> Some ((n.(1) lsl base_bits) lor n.(0))
  | 3 when n.(2) lsr 2 = 0 ->
    Some ((n.(2) lsl (2 * base_bits)) lor (n.(1) lsl base_bits) lor n.(0))
  | _ -> None

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Natural.to_int_exn: value too large"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let compare_int n (m : int) =
  (* Like [compare n (of_int m)] but with no allocation: the limb array
     is read in place. Anything past three limbs exceeds the int range. *)
  if m < 0 then invalid_arg "Natural.compare_int: negative";
  match Array.length n with
  | 0 -> Stdlib.compare 0 m
  | 1 -> Stdlib.compare n.(0) m
  | 2 -> Stdlib.compare ((n.(1) lsl base_bits) lor n.(0)) m
  | 3 when n.(2) lsr 2 = 0 ->
    Stdlib.compare ((n.(2) lsl (2 * base_bits)) lor (n.(1) lsl base_bits) lor n.(0)) m
  | _ -> 1

let hash n = Array.fold_left (fun h limb -> (h * 31 + limb) land max_int) 17 n

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  canon r

let sub a b =
  if compare a b < 0 then invalid_arg "Natural.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  canon r

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr base_bits
      done;
      (* Propagate the final carry; it never overflows the result array. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    canon r
  end

(* Multiply and add by small non-negative ints (used by of_string). *)
let mul_small a (m : int) =
  assert (0 <= m && m < base);
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur land mask;
      carry := cur lsr base_bits
    done;
    r.(la) <- !carry;
    canon r
  end

let add_small a (m : int) = if m = 0 then a else add a (of_int m)

(* Divide by a small positive int, returning quotient and int remainder.
   Requires [0 < d < base] so intermediate [carry * base + limb] fits. *)
let divmod_small a (d : int) =
  assert (0 < d && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (canon q, !rem)

let shift_left n k =
  if k < 0 then invalid_arg "Natural.shift_left: negative shift";
  if k = 0 || is_zero n then n
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length n in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = n.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    canon r
  end

let shift_right n k =
  if k < 0 then invalid_arg "Natural.shift_right: negative shift";
  if k = 0 || is_zero n then n
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length n in
    if limb_shift >= la then zero
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let low = n.(i + limb_shift) lsr bit_shift in
        let high =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (n.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
        in
        r.(i) <- low lor high
      done;
      canon r
    end
  end

(* Long division.

   Single-limb divisors take the fast path below; the general case is
   Knuth's Algorithm D (TAOCP vol. 2, 4.3.1): normalize so the divisor's
   top limb has its high bit set, estimate each quotient limb from the
   top two remainder limbs, and correct the (at most two) overestimates
   by add-back. All intermediates fit in 63-bit ints because limbs hold
   30 bits. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    (* Normalize: shift both so that b's top limb >= base/2. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec count s t = if t >= base / 2 then s else count (s + 1) (t * 2) in
      count 0 top
    in
    let u = shift_left a shift in
    let v = shift_left b shift in
    let n = Array.length v in
    let m_len = Array.length u - n in
    (* Working copy of the dividend with one extra top limb. *)
    let r = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 r 0 (Array.length u);
    let q = Array.make (m_len + 1) 0 in
    let v_top = v.(n - 1) in
    let v_next = v.(n - 2) in
    for j = m_len downto 0 do
      (* Estimate q_hat from the top two remainder limbs. *)
      let num = (r.(j + n) lsl base_bits) lor r.(j + n - 1) in
      let q_hat = ref (num / v_top) in
      let r_hat = ref (num mod v_top) in
      if !q_hat >= base then begin
        r_hat := !r_hat + ((!q_hat - (base - 1)) * v_top);
        q_hat := base - 1
      end;
      (* Refine using the third limb: at most two decrements. *)
      let continue_ = ref true in
      while !continue_ && !r_hat < base do
        let lhs = !q_hat * v_next in
        let rhs = (!r_hat lsl base_bits) lor r.(j + n - 2) in
        if lhs > rhs then begin
          decr q_hat;
          r_hat := !r_hat + v_top
        end
        else continue_ := false
      done;
      (* Multiply-subtract q_hat * v from r at offset j. *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!q_hat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = r.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          r.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          r.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = r.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* q_hat was one too large: add v back. *)
        r.(j + n) <- d + base;
        decr q_hat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = r.(i + j) + v.(i) + !carry2 in
          r.(i + j) <- s land mask;
          carry2 := s lsr base_bits
        done;
        r.(j + n) <- (r.(j + n) + !carry2) land mask
      end
      else r.(j + n) <- d;
      q.(j) <- !q_hat
    done;
    let remainder = shift_right (canon (Array.sub r 0 n)) shift in
    (canon q, remainder)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Machine-int gcd by Euclid's remainder form. Division reduces the
   operands by whole quotients per step, so the loop runs O(log) data-
   independent iterations; the binary (Stein) gcd this replaces needed
   roughly two branchy iterations per bit and measured ~2.2x slower on
   the small-tier operand sizes (11-45 bits) the rational layer feeds
   it. Results are identical; intermediates never overflow. *)
let gcd_int a b =
  if a < 0 || b < 0 then invalid_arg "Natural.gcd_int: negative";
  let a = ref a and b = ref b in
  while !b <> 0 do
    let t = !a mod !b in
    a := !b;
    b := t
  done;
  !a

let lcm a b =
  if is_zero a || is_zero b then zero else mul (div a (gcd a b)) b

let pow b e =
  if e < 0 then invalid_arg "Natural.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

(* Decimal conversion works in chunks of 9 digits; 10^9 < 2^30 = base, so
   it is a valid [divmod_small] divisor. *)
let decimal_chunk = 1_000_000_000

let () = assert (decimal_chunk < base)

let to_string n =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc n =
      if is_zero n then acc
      else
        let q, r = divmod_small n decimal_chunk in
        chunks (r :: acc) q
    in
    (match chunks [] n with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Natural.of_string: empty string";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Natural.of_string: non-digit")
    s;
  let result = ref zero in
  let i = ref 0 in
  while !i < len do
    let take = Stdlib.min 9 (len - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    let scale = int_of_float (10. ** float_of_int take) in
    result := add_small (mul_small !result scale) chunk;
    i := !i + take
  done;
  !result

let pp fmt n = Format.pp_print_string fmt (to_string n)
