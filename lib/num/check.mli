(** Randomized differential tester for {!Rational}.

    Runs a deterministic stream of operations through {!Rational} and
    through an internal reference implementation (naive bigint
    numerator/denominator pairs, no fast paths), comparing values,
    ordering, rounding, printing, hashing and the representation's
    canonicality invariant after every step. The operand distribution is
    biased toward the two-tier representation's fault lines: tiny
    fractions, numerators/denominators adjacent to [max_int] and to
    {!Rational.small_bound} (forced spills), and multi-limb values.

    Used by the tier-1 test suite (so a representation regression fails
    [dune runtest]) and by [bench num --check]. *)

type outcome = { ops : int; mismatches : string list }

val run : ?ops:int -> seed:int -> unit -> outcome
(** [run ~ops ~seed ()] samples [ops] operations (default 10_000)
    deterministically from [seed] and returns every mismatch found. *)

val run_exn : ?ops:int -> seed:int -> unit -> outcome
(** Like {!run}. @raise Failure on the first mismatching outcome. *)

val ok : outcome -> bool

val describe : outcome -> string
(** One-line human summary. *)
