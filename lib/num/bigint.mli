(** Arbitrary-precision signed integers, built on {!Natural}.

    Canonical representation: zero always has sign [0]; non-zero values
    carry sign [-1] or [+1] and a non-zero magnitude. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
val to_int_exn : t -> int

val of_natural : Natural.t -> t

val to_natural_opt : t -> Natural.t option
(** [Some] magnitude when the value is non-negative. *)

val of_string : string -> t
(** Decimal, with optional leading ['-'] or ['+']. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Inspection} *)

val sign : t -> int
(** [-1], [0] or [+1]. *)

val abs : t -> t
val abs_natural : t -> Natural.t
val is_zero : t -> bool

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int

val compare_int : t -> int -> int
(** [compare_int t m] orders [t] against a machine int (either sign,
    including [min_int]) without allocating. *)

val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|]. @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> Natural.t
(** Non-negative gcd of magnitudes. *)

val pow : t -> int -> t
(** @raise Invalid_argument if the exponent is negative. *)
