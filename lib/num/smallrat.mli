(** Non-allocating arithmetic on small-tier rational parts.

    Operates on canonical (numerator, denominator) int pairs obeying
    the [Rational] small-tier invariant: denominator positive, parts
    coprime, both within [Rational.small_bound], zero spelled 0/1. The
    flat DP kernels keep remainders as such pairs in plain int arrays;
    this module gives them exact add/sub/compare without touching the
    allocator.

    Mutating operations write into a caller-owned {!out} cell and
    return [true], or return [false] without a meaningful result when
    the exact value leaves the small tier (the caller then redoes the
    operation on boxed {!Rational.t} values — the "bigint spill" path).
    Successful results are exactly the parts [Rational] would store
    for the same value, so pairs and boxed values interconvert without
    changing any canonical spelling. *)

type out = { mutable p : int; mutable q : int }
(** Scratch result cell; allocate once per kernel with {!out}. *)

val out : unit -> out

val of_rational : Rational.t -> out -> bool
(** Load a value's small-tier parts; [false] for a bigint-tier value
    (the cell is untouched). *)

val to_rational : int -> int -> Rational.t
(** Box a pair. Accepts any [p/q] with [q <> 0]; pays a gcd, so keep
    it off per-cell hot paths. *)

val add : out -> int -> int -> int -> int -> bool
(** [add o p1 q1 p2 q2] writes [p1/q1 + p2/q2] into [o] when the
    canonical result fits the small tier. *)

val sub : out -> int -> int -> int -> int -> bool

val sub_one : out -> int -> int -> bool
(** [sub_one o p q] is [p/q - 1]; no gcd needed (the input's
    reduction carries over). Fails only when [p - q] exceeds the
    tier bound, impossible for [p >= 0]. *)

val one_minus : out -> int -> int -> bool
(** [one_minus o p q] is [1 - p/q]; same reduction-free argument. *)

val compare : int -> int -> int -> int -> int
(** [compare p1 q1 p2 q2] orders [p1/q1] against [p2/q2] by cross
    products; small parts never overflow. *)

val compare_one : int -> int -> int
(** [compare_one p q] orders [p/q] against 1. *)
