(** Exact rational numbers.

    Values are kept normalized: positive denominator and coprime
    numerator/denominator. This is the number type used throughout the
    CRSharing analysis layer — resource shares, remaining requirements and
    makespan bounds are all exact, so comparisons such as
    [sum of shares <= 1] are decided exactly (floats would break the
    NP-hardness gadget of Theorem 4 and the optimality arguments). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized fraction [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints p q] is [p/q]. @raise Division_by_zero if [q = 0]. *)

val of_string : string -> t
(** Accepts ["p"], ["p/q"] and decimal notation ["1.25"]. *)

(** {1 Deconstruction} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Always positive. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_float : t -> float
(** Nearest float; for reporting only. *)

val to_int_opt : t -> int option
(** [Some i] when the value is an integer fitting in [int]. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val sum : t list -> t
val sum_array : t array -> t

(** {1 Rounding} *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val floor_int : t -> int
(** @raise Failure if out of [int] range. *)

val ceil_int : t -> int
(** @raise Failure if out of [int] range. *)

(** {1 Clamping helpers for resource shares} *)

val clamp : lo:t -> hi:t -> t -> t
val in_unit_interval : t -> bool
(** [0 <= x <= 1]. *)

(** {1 Internals exposed for testing and benchmarking} *)

val small_bound : int
(** Largest numerator magnitude / denominator the immediate small tier
    holds; values reduce into the small tier whenever both parts fit. *)

val is_small : t -> bool
(** The value is currently held in the immediate (native-int) tier. *)

val is_canonical : t -> bool
(** Representation invariant: positive denominator, coprime parts, zero
    as 0/1, and the small tier used whenever the value fits it. *)

val small_num : t -> int
val small_den : t -> int
(** Parts of a small-tier value, without boxing through [Bigint]. The
    pair is canonical: denominator positive, parts coprime, both within
    [small_bound]. Used by the flat DP kernels to keep remainders in
    plain int arrays ([Smallrat] operates on such pairs).
    @raise Invalid_argument on a bigint-tier value ([is_small] is
    false). *)
