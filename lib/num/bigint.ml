type t = { sign : int; mag : Natural.t }
(* Invariant: sign = 0 iff mag = 0; otherwise sign is -1 or +1. *)

let make sign mag =
  if Natural.is_zero mag then { sign = 0; mag = Natural.zero }
  else begin
    assert (sign = 1 || sign = -1);
    { sign; mag }
  end

let zero = { sign = 0; mag = Natural.zero }
let of_natural mag = make 1 mag
let one = of_natural Natural.one
let minus_one = make (-1) Natural.one

let of_int n =
  if n = 0 then zero
  else if n > 0 then make 1 (Natural.of_int n)
  else if n = min_int then
    (* [-min_int] overflows; build from [max_int] + 1. *)
    make (-1) (Natural.add (Natural.of_int max_int) Natural.one)
  else make (-1) (Natural.of_int (-n))

let sign t = t.sign
let is_zero t = t.sign = 0
let abs_natural t = t.mag
let abs t = if t.sign < 0 then { t with sign = 1 } else t
let neg t = { t with sign = -t.sign }

let to_natural_opt t = if t.sign >= 0 then Some t.mag else None

(* |min_int| = 2^62 does not fit in a non-negative int, so handle it
   explicitly. *)
let min_int_mag = Natural.shift_left Natural.one 62

let to_int_opt t =
  match Natural.to_int_opt t.mag with
  | Some i -> Some (t.sign * i)
  | None ->
    if t.sign < 0 && Natural.equal t.mag min_int_mag then Some min_int else None

let to_int_exn t =
  match to_int_opt t with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: value too large"

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Natural.compare a.mag b.mag

let equal a b = compare a b = 0

let compare_int t (m : int) =
  (* Order against a machine int of either sign without allocating.
     [m = min_int] needs the precomputed magnitude because [-min_int]
     overflows. *)
  if m > 0 then if t.sign <= 0 then -1 else Natural.compare_int t.mag m
  else if m = 0 then t.sign
  else if t.sign >= 0 then 1
  else if m = min_int then Natural.compare min_int_mag t.mag
  else -Natural.compare_int t.mag (-m)
let hash t = (t.sign * 1_000_003) lxor Natural.hash t.mag
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (Natural.add a.mag b.mag)
  else begin
    let c = Natural.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Natural.sub a.mag b.mag)
    else make b.sign (Natural.sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (Natural.mul a.mag b.mag)

(* Euclidean division: remainder is always in [0, |b|). *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Natural.divmod a.mag b.mag in
  if a.sign >= 0 then (make b.sign q, of_natural r)
  else if Natural.is_zero r then (make (-b.sign) q, zero)
  else
    (* a < 0 with a positive remainder: round the quotient away from zero
       and compensate so that 0 <= r' < |b|. *)
    (make (-b.sign) (Natural.add q Natural.one), of_natural (Natural.sub b.mag r))

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let gcd a b = Natural.gcd a.mag b.mag

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let mag = Natural.pow b.mag e in
  if b.sign = 0 then if e = 0 then one else zero
  else make (if b.sign > 0 || e land 1 = 0 then 1 else -1) mag

let to_string t =
  match t.sign with
  | 0 -> "0"
  | s -> (if s < 0 then "-" else "") ^ Natural.to_string t.mag

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  match s.[0] with
  | '-' -> make (-1) (Natural.of_string (String.sub s 1 (len - 1)))
  | '+' -> make 1 (Natural.of_string (String.sub s 1 (len - 1)))
  | _ -> make 1 (Natural.of_string s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
