(* Non-allocating arithmetic on small-tier rational parts.

   The flat DP kernels (Opt_two, Opt_config) keep remainders as (p, q)
   int pairs in plain arrays instead of boxed [Rational.t] values. This
   module is the arithmetic for those pairs: every operation consumes
   canonical small-tier parts — exactly the invariant of [Rational]'s
   [S] constructor (q > 0, coprime, both parts within
   [Rational.small_bound], zero as 0/1) — and either writes a canonical
   small-tier result into a caller-owned [out] cell or returns [false],
   meaning the exact result leaves the small tier. On [false] the
   caller recomputes with boxed [Rational.t]; nothing here ever rounds.

   Results written on success are bit-for-bit the parts [Rational]
   itself would store for the same value, so a kernel can mix pair
   arithmetic with boxed spills freely: converting back and forth
   never changes a value's canonical spelling. The overflow analysis
   mirrors [Rational.add]/[sub]: cross products of small parts are
   below 2^62 each, so only their sum/difference needs a sign check. *)

type out = { mutable p : int; mutable q : int }

let out () = { p = 0; q = 1 }

let small_bound = Rational.small_bound

(* Bound-check and store a fraction already known canonical. *)
let store o p q =
  if p >= -small_bound && p <= small_bound && q <= small_bound then begin
    o.p <- p;
    o.q <- q;
    true
  end
  else false

(* Reduce t/den where every common factor of the two is known to
   divide [g] (the mpq_add argument below), so the gcd runs on the
   small [g] rather than on the cross-product-sized [t]. *)
let store_reduced o t den g =
  if t = 0 then begin
    o.p <- 0;
    o.q <- 1;
    true
  end
  else begin
    let e = Natural.gcd_int (abs t) g in
    store o (t / e) (den / e)
  end

(* GMP's mpq_add shape: with g = gcd(q1, q2), b1 = q1/g, b2 = q2/g and
   t = p1*b2 + p2*b1, every common factor of t and the common
   denominator q1*b2 divides g. (A prime of b2 divides q2 hence not p2,
   and not b1 — b1, b2 are coprime — so it misses t; symmetrically for
   b1; what remains of the denominator is g.) So when g = 1 the result
   is already canonical with no reduction gcd at all, and otherwise one
   gcd against the small g finishes the job — the gcds here run on
   denominator-sized operands, never on cross-product sums. Cross
   products of small parts fit 62 bits individually; only their
   sum/difference needs the sign check (as in [Rational.add]). *)
let add o p1 q1 p2 q2 =
  if q1 = q2 then
    (* Common denominator: two small numerators cannot overflow, and
       any common factor of their sum and q1 divides q1. *)
    store_reduced o (p1 + p2) q1 q1
  else begin
    let g = Natural.gcd_int q1 q2 in
    if g = 1 then begin
      let n1 = p1 * q2 and n2 = p2 * q1 in
      let s = n1 + n2 in
      if n1 >= 0 = (n2 >= 0) && s >= 0 <> (n1 >= 0) then false
      else store o s (q1 * q2)
    end
    else begin
      let b1 = q1 / g and b2 = q2 / g in
      let n1 = p1 * b2 and n2 = p2 * b1 in
      let t = n1 + n2 in
      if n1 >= 0 = (n2 >= 0) && t >= 0 <> (n1 >= 0) then false
      else store_reduced o t (b1 * q2) g
    end
  end

let sub o p1 q1 p2 q2 =
  if q1 = q2 then store_reduced o (p1 - p2) q1 q1
  else begin
    let g = Natural.gcd_int q1 q2 in
    if g = 1 then begin
      let n1 = p1 * q2 and n2 = p2 * q1 in
      let d = n1 - n2 in
      if n1 >= 0 <> (n2 >= 0) && d >= 0 <> (n1 >= 0) then false
      else store o d (q1 * q2)
    end
    else begin
      let b1 = q1 / g and b2 = q2 / g in
      let n1 = p1 * b2 and n2 = p2 * b1 in
      let d = n1 - n2 in
      if n1 >= 0 <> (n2 >= 0) && d >= 0 <> (n1 >= 0) then false
      else store_reduced o d (b1 * q2) g
    end
  end

(* p/q - 1 = (p - q)/q and 1 - p/q = (q - p)/q share the input's gcd
   (gcd(p ± q, q) = gcd(p, q) = 1), so the result is canonical without
   reducing; only the small-tier bound can fail, and only for inputs
   outside [0, 1] + [0, 1]-ish kernel ranges. *)
let sub_one o p q =
  let p' = p - q in
  if p' >= -small_bound && p' <= small_bound then begin
    o.p <- p';
    o.q <- (if p' = 0 then 1 else q);
    true
  end
  else false

let one_minus o p q =
  let p' = q - p in
  if p' >= -small_bound && p' <= small_bound then begin
    o.p <- p';
    o.q <- (if p' = 0 then 1 else q);
    true
  end
  else false

(* Equal denominators compare by numerator alone — exact for any q > 0,
   not just canonical parts, which lets the common-denominator DP mode
   (numerators over a fixed lcm) compare without forming products that
   could overflow. The int annotations keep the comparison monomorphic. *)
let compare p1 q1 p2 q2 =
  if q1 = q2 then Stdlib.compare (p1 : int) p2
  else Stdlib.compare (p1 * q2 : int) (p2 * q1)

let compare_one p q = Stdlib.compare (p : int) q

let of_rational r o =
  if Rational.is_small r then begin
    o.p <- Rational.small_num r;
    o.q <- Rational.small_den r;
    true
  end
  else false

let to_rational p q = Rational.of_ints p q
