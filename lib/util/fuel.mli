(** Deterministic computation budgets ("fuel") for long-running solvers.

    Exponential exact solvers call {!tick} at each unit of work (DFS node,
    generated configuration). Inside [with_fuel (Some b) f], the [b+1]-th
    tick raises {!Out_of_fuel}; outside, ticks are free. Because the
    counter measures work — not wall-clock time — the same input and
    budget give the same outcome on any machine and at any domain-pool
    size, which is what makes campaign results reproducible.

    The budget is domain-local: concurrent workers each get their own
    counter, and nested [with_fuel] calls restore the outer budget. *)

exception Out_of_fuel

val with_fuel : int option -> (unit -> 'a) -> 'a
(** [with_fuel (Some b) f] runs [f] with at most [b] ticks; [with_fuel
    None f] runs it unmetered. The previous budget is restored on exit.
    @raise Invalid_argument on a negative budget. *)

val tick : unit -> unit
(** Consume one unit. @raise Out_of_fuel when the budget is exhausted. *)

val remaining : unit -> int option
(** Ticks left under the innermost [with_fuel], [None] when unmetered. *)

val ticks : unit -> int
(** Cumulative ticks ever consumed in this domain, metered or not —
    monotone, so a solver's work is the delta across its run. This is
    the shared substrate for the registry's uniform work counters. *)
