(* Deterministic computation budgets ("fuel").

   A wall-clock timeout would make campaign outcomes depend on machine
   speed and pool contention; a fuel counter decremented at well-defined
   points inside the exact solvers makes the Timeout/Done outcome a pure
   function of the input — the same at any domain-pool size.

   The counter is domain-local (Domain.DLS), so concurrent campaign
   items never share a budget. *)

exception Out_of_fuel

(* -1 encodes "unlimited": tick is a no-op outside [with_fuel]. *)
let slot = Domain.DLS.new_key (fun () -> ref (-1))

(* Cumulative ticks ever consumed in this domain, metered or not: the
   substrate for uniform work counters (Registry.Counters). Monotone, so
   callers measure a solve by taking a delta around it. *)
let spent_slot = Domain.DLS.new_key (fun () -> ref 0)

let ticks () = !(Domain.DLS.get spent_slot)

let tick () =
  incr (Domain.DLS.get spent_slot);
  let r = Domain.DLS.get slot in
  if !r >= 0 then begin
    if !r = 0 then raise Out_of_fuel;
    decr r
  end

let remaining () =
  let r = !(Domain.DLS.get slot) in
  if r < 0 then None else Some r

let with_fuel budget f =
  let r = Domain.DLS.get slot in
  let saved = !r in
  (match budget with
  | None -> r := -1
  | Some b ->
    if b < 0 then invalid_arg "Fuel.with_fuel: negative budget";
    r := b);
  Fun.protect ~finally:(fun () -> r := saved) f
