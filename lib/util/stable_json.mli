(** Shared stable-JSON writer (and minimal reader).

    Three subsystems persist hand-rolled JSON with byte-stable output —
    campaign reports ({!Crs_campaign.Report}), the fuzz corpus
    ({!Crs_fuzz.Corpus}) and observability snapshots
    ({!Crs_obs.Metrics}, {!Crs_obs.Trace} exporters). They must agree on
    escaping and number rendering or their digests drift; this module is
    the single encoder all of them build on. No JSON library is
    installed, and none is needed: writers emit strings through the
    combinators below (stable key order is the caller's duty — pass
    fields in a fixed order), and {!parse} is a small validating reader
    for the writers' own output, used by schema tests and round-trip
    checks. *)

(** {2 Encoding} *)

val escape : string -> string
(** JSON string-body escaping: backslash, quote, [\n], [\t], and
    [\u00XX] for other control characters. *)

val str : string -> string
(** Quoted, escaped string literal. *)

val str_opt : string option -> string
(** {!str} or [null]. *)

val int : int -> string
val int_opt : int option -> string

val float : float -> string
(** Fixed-point, locale-free rendering ([%.6f]): bit-stable across runs,
    the same style as campaign ratios. *)

val float_opt : float option -> string

val bool : bool -> string

val obj : (string * string) list -> string
(** Object from (key, pre-encoded value) pairs, in the given order. *)

val arr : string list -> string
(** Array from pre-encoded element strings, in the given order. *)

(** {2 Decoding} *)

(** Parsed JSON value. Numbers without ['.'], ['e'] or ['E'] that fit in
    an [int] parse as [Int]; all others as [Float]. *)
type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the subset this module writes
    (which is all of JSON except string escapes beyond quote, backslash,
    slash, [b f n r t] and [u00XX]). Requires exactly one value plus
    trailing whitespace: any other byte after the first complete
    top-level value is rejected as trailing garbage, with the offending
    character and its byte offset in the message — so in line-delimited
    protocols one malformed line fails loudly instead of silently
    bleeding into the next. [Error] always carries the byte offset and
    cause. *)

val to_string : t -> string
(** Re-encode a parsed value with this module's combinators ([Obj] keys
    keep their parsed order). [parse (to_string v)] returns [Ok v] for
    every [v] this module produces — the round-trip law the schema tests
    rely on. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on missing keys or
    non-objects. *)
