(* Shared stable-JSON encoder/decoder. The escape table and float
   rendering were previously duplicated in Crs_campaign.Report and
   Crs_fuzz.Corpus; they live here once so every persisted JSON artifact
   (campaign JSONL, corpus entries, metrics snapshots, trace exports)
   stays byte-compatible with the others. *)

(* ---- encoding ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let str_opt = function None -> "null" | Some s -> str s
let int = string_of_int
let int_opt = function None -> "null" | Some v -> string_of_int v

(* Fixed-point, locale-free float rendering: bit-stable across runs. *)
let float f = Printf.sprintf "%.6f" f
let float_opt = function None -> "null" | Some v -> float v
let bool b = if b then "true" else "false"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let arr elems = "[" ^ String.concat "," elems ^ "]"

(* ---- decoding ---- *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse text =
  let n = String.length text in
  let fail i msg = raise (Bad (i, msg)) in
  let rec skip_ws i =
    if i < n && (match text.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then skip_ws (i + 1)
    else i
  in
  let expect i c =
    if i < n && text.[i] = c then i + 1
    else fail i (Printf.sprintf "expected %C" c)
  in
  let parse_hex4 i =
    if i + 4 > n then fail i "short \\u escape"
    else
      match int_of_string_opt ("0x" ^ String.sub text i 4) with
      | Some code -> (code, i + 4)
      | None -> fail i "bad \\u escape"
  in
  let parse_string i =
    let i = expect i '"' in
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match text.[i] with
        | '"' -> (Buffer.contents buf, i + 1)
        | '\\' ->
          if i + 1 >= n then fail i "dangling escape"
          else (
            match text.[i + 1] with
            | '"' -> Buffer.add_char buf '"'; go (i + 2)
            | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
            | '/' -> Buffer.add_char buf '/'; go (i + 2)
            | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
            | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
            | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
            | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
            | 't' -> Buffer.add_char buf '\t'; go (i + 2)
            | 'u' ->
              let code, j = parse_hex4 (i + 2) in
              (* Control-character escapes are all this module writes;
                 anything beyond Latin-1 would need UTF-8 encoding. *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else fail i "\\u escape beyond Latin-1 unsupported";
              go j
            | c -> fail i (Printf.sprintf "unsupported escape \\%c" c))
        | c when Char.code c < 0x20 -> fail i "raw control character in string"
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go i
  in
  let parse_number i =
    let stop = ref i in
    while
      !stop < n
      &&
      match text.[!stop] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr stop
    done;
    let lexeme = String.sub text i (!stop - i) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lexeme)
    in
    match (is_int, int_of_string_opt lexeme, float_of_string_opt lexeme) with
    | true, Some v, _ -> (Int v, !stop)
    | _, _, Some v -> (Float v, !stop)
    | _ -> fail i (Printf.sprintf "bad number %S" lexeme)
  in
  let rec parse_value i =
    let i = skip_ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match text.[i] with
      | 'n' -> parse_lit i "null" Null
      | 't' -> parse_lit i "true" (Bool true)
      | 'f' -> parse_lit i "false" (Bool false)
      | '"' ->
        let s, j = parse_string i in
        (Str s, j)
      | '[' ->
        (* A ']' closes the collection only at the start (empty) or after
           an element — a comma must be followed by a value, so trailing
           commas are rejected. *)
        let rec elems acc i =
          let v, i = parse_value i in
          let i = skip_ws i in
          if i < n && text.[i] = ',' then elems (v :: acc) (i + 1)
          else (List (List.rev (v :: acc)), expect i ']')
        in
        let j = skip_ws (i + 1) in
        if j < n && text.[j] = ']' then (List [], j + 1) else elems [] j
      | '{' ->
        let rec fields acc i =
          let k, i = parse_string (skip_ws i) in
          let i = expect (skip_ws i) ':' in
          let v, i = parse_value i in
          let i = skip_ws i in
          if i < n && text.[i] = ',' then fields ((k, v) :: acc) (i + 1)
          else (Obj (List.rev ((k, v) :: acc)), expect i '}')
        in
        let j = skip_ws (i + 1) in
        if j < n && text.[j] = '}' then (Obj [], j + 1) else fields [] j
      | '-' | '0' .. '9' -> parse_number i
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  and parse_lit i lit v =
    let k = String.length lit in
    if i + k <= n && String.sub text i k = lit then (v, i + k)
    else fail i (Printf.sprintf "expected %s" lit)
  in
  match parse_value 0 with
  | v, i ->
    let i = skip_ws i in
    if i = n then Ok v
    else
      Error
        (Printf.sprintf "offset %d: trailing garbage %C after top-level value"
           i text.[i])
  | exception Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)

let rec to_string = function
  | Null -> "null"
  | Bool b -> bool b
  | Int v -> string_of_int v
  | Float v -> float v
  | Str s -> str s
  | List vs -> arr (List.map to_string vs)
  | Obj fields -> obj (List.map (fun (k, v) -> (k, to_string v)) fields)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
