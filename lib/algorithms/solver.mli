(** Thin policy layer over {!Registry}: answers "what is the optimum of
    this instance" by choosing a registered exact solver, and computes
    approximation ratios. All dispatch, applicability checking and
    instrumentation lives in {!Registry}. *)

type exact_method = Dp_two | Config_enum | Dfs_bnb

val optimal_makespan : ?method_:exact_method -> Crs_core.Instance.t -> int
(** Exact optimum via the registry. Default: the ["optimal"] solver
    ({!Opt_two} for [m = 2], {!Opt_config} otherwise).
    @raise Invalid_argument on non-unit sizes or an inapplicable
    explicit method (e.g. [Dp_two] on [m = 3]). *)

val optimal_schedule : Crs_core.Instance.t -> Crs_core.Schedule.t
(** A witness optimal schedule ({!Opt_two} for two processors,
    {!Opt_config} otherwise). *)

val ratio : algorithm:(Crs_core.Instance.t -> int) -> Crs_core.Instance.t -> Crs_num.Rational.t
(** [algorithm makespan / optimal makespan]. When the optimum is 0 the
    ratio is 1 if the algorithm also took 0 steps;
    @raise Invalid_argument if it took longer (the ratio is undefined —
    the old behaviour silently reported 1). *)

val certified_lower_bound : Crs_core.Instance.t -> int
(** Cheap lower bound without exact solving: runs GreedyBalance, builds
    its hypergraph and takes the strongest of Observation 1, job count,
    Lemma 5, Lemma 6. Valid because GreedyBalance schedules are
    non-wasting and balanced. *)

val ratio_upper_bound : Crs_core.Instance.t -> Crs_num.Rational.t
(** GreedyBalance makespan divided by {!certified_lower_bound}: a
    certified upper bound on its true approximation ratio on this
    instance, computable without exact solving. *)
