(** Priority-queue variant of {!Opt_two} (paper, last paragraph of
    Section 6).

    Instead of sweeping the full [(n1+1)×(n2+1)] table diagonal by
    diagonal, intermediate states are kept in a priority queue ordered by
    index sum [i1 + i2] and only reachable states are ever expanded. Same
    answers as {!Opt_two} (asserted in tests); usually faster because most
    index pairs are unreachable — e.g. after a [Finish_both] step from
    [(0,0)], no state [(0, j)] or [(i, 0)] with [i, j ≥ 1] is ever
    touched. The ablation bench measures the actual gap. *)

type stats = {
  makespan : int;
  expanded : int;  (** distinct states popped and expanded *)
  relaxations : int;  (** relax calls (edges examined) *)
}

val run : Crs_core.Instance.t -> stats
(** Single search returning the makespan together with work counters.
    @raise Invalid_argument unless two processors, unit sizes. *)

val makespan : Crs_core.Instance.t -> int
(** [(run instance).makespan]. *)

val states_expanded : Crs_core.Instance.t -> int
(** [(run instance).expanded]; for the ablation bench. *)
