open Crs_core

module Names = struct
  let greedy_balance = "greedy-balance"
  let round_robin = "round-robin"
  let uniform = "uniform"
  let proportional = "proportional"
  let staircase = "staircase"
  let fewest_remaining_first = "fewest-remaining-first"
  let largest_requirement_first = "largest-requirement-first"
  let smallest_requirement_first = "smallest-requirement-first"
  let optimal = "optimal"
  let opt_two = "opt-two"
  let opt_two_pq = "opt-two-pq"
  let opt_two_pareto = "opt-two-pareto"
  let opt_config = "opt-config"
  let brute_force = "brute-force"
  let online_greedy_balance = "online-greedy-balance"
  let online_round_robin = "online-round-robin"
end

module Counters = struct
  type t = {
    states_expanded : int;
    dp_relaxations : int;
    configs_enumerated : int;
    memo_hits : int;
    memo_misses : int;
    fuel_ticks : int;
  }

  let zero =
    {
      states_expanded = 0;
      dp_relaxations = 0;
      configs_enumerated = 0;
      memo_hits = 0;
      memo_misses = 0;
      fuel_ticks = 0;
    }

  let to_assoc c =
    [
      ("states_expanded", c.states_expanded);
      ("dp_relaxations", c.dp_relaxations);
      ("configs_enumerated", c.configs_enumerated);
      ("memo_hits", c.memo_hits);
      ("memo_misses", c.memo_misses);
      ("fuel_ticks", c.fuel_ticks);
    ]
end

type kind = Exact | Approx | Heuristic | Online

let kind_to_string = function
  | Exact -> "exact"
  | Approx -> "approx"
  | Heuristic -> "heuristic"
  | Online -> "online"

type requires = {
  min_m : int;
  max_m : int option;
  unit_size_only : bool;
  fuel_aware : bool;
}

type outcome = {
  makespan : int;
  schedule : Schedule.t option;
  counters : Counters.t;
}

module type SOLVER = sig
  val name : string
  val kind : kind
  val about : string
  val requires : requires
  val witness : bool
  val solve : Instance.t -> outcome
end

type solver = (module SOLVER)

let any_m = { min_m = 1; max_m = None; unit_size_only = false; fuel_aware = false }

(* A step policy run to completion: witness schedule, no native
   counters (Fuel delta covers nothing — policies don't tick). *)
let of_policy ~name:n ~kind:k ~about:a policy : solver =
  (module struct
    let name = n
    let kind = k
    let about = a
    let requires = any_m
    let witness = true

    let solve instance =
      let schedule = Policy.run policy instance in
      let makespan = Execution.makespan (Execution.run_exn instance schedule) in
      { makespan; schedule = Some schedule; counters = Counters.zero }
  end)

module Optimal : SOLVER = struct
  let name = Names.optimal
  let kind = Exact
  let about = "best exact solver for the instance (Opt_two if m = 2, else Opt_config)"
  let requires = { min_m = 1; max_m = None; unit_size_only = true; fuel_aware = true }
  let witness = true

  let solve instance =
    if Instance.m instance = 2 then begin
      let sol = Opt_two.solve instance in
      {
        makespan = sol.Opt_two.makespan;
        schedule = Some sol.Opt_two.schedule;
        counters =
          {
            Counters.zero with
            states_expanded = sol.Opt_two.counters.Opt_two.cells_expanded;
            dp_relaxations = sol.Opt_two.counters.Opt_two.relaxations;
          };
      }
    end
    else begin
      let sol = Opt_config.solve instance in
      {
        makespan = sol.Opt_config.makespan;
        schedule = Some sol.Opt_config.schedule;
        counters =
          {
            Counters.zero with
            states_expanded = List.fold_left ( + ) 0 sol.Opt_config.stats.Opt_config.layers;
            configs_enumerated = sol.Opt_config.stats.Opt_config.generated;
          };
      }
    end
end

module Opt_two_solver : SOLVER = struct
  let name = Names.opt_two
  let kind = Exact
  let about = "O(n^2) dynamic program for two processors (paper, Algorithm 1)"
  let requires = { min_m = 2; max_m = Some 2; unit_size_only = true; fuel_aware = true }
  let witness = true

  let solve instance =
    let sol = Opt_two.solve instance in
    {
      makespan = sol.Opt_two.makespan;
      schedule = Some sol.Opt_two.schedule;
      counters =
        {
          Counters.zero with
          states_expanded = sol.Opt_two.counters.Opt_two.cells_expanded;
          dp_relaxations = sol.Opt_two.counters.Opt_two.relaxations;
        };
    }
end

module Opt_two_pq_solver : SOLVER = struct
  let name = Names.opt_two_pq
  let kind = Exact
  let about = "priority-queue variant of opt-two; expands only reachable states"
  let requires = { min_m = 2; max_m = Some 2; unit_size_only = true; fuel_aware = true }
  let witness = false

  let solve instance =
    let stats = Opt_two_pq.run instance in
    {
      makespan = stats.Opt_two_pq.makespan;
      schedule = None;
      counters =
        {
          Counters.zero with
          states_expanded = stats.Opt_two_pq.expanded;
          dp_relaxations = stats.Opt_two_pq.relaxations;
        };
    }
end

module Opt_two_pareto_solver : SOLVER = struct
  let name = Names.opt_two_pareto
  let kind = Exact
  let about = "Pareto-frontier DP auditing Lemma 3's sufficient statistic"
  let requires = { min_m = 2; max_m = Some 2; unit_size_only = true; fuel_aware = true }
  let witness = false

  let solve instance =
    let makespan = Opt_two_pareto.makespan instance in
    { makespan; schedule = None; counters = Counters.zero }
end

module Opt_config_solver : SOLVER = struct
  let name = Names.opt_config
  let kind = Exact
  let about = "layered configuration enumeration for any m (paper, Algorithm 2)"
  let requires = { min_m = 1; max_m = None; unit_size_only = true; fuel_aware = true }
  let witness = true

  let solve instance =
    let sol = Opt_config.solve instance in
    {
      makespan = sol.Opt_config.makespan;
      schedule = Some sol.Opt_config.schedule;
      counters =
        {
          Counters.zero with
          states_expanded = List.fold_left ( + ) 0 sol.Opt_config.stats.Opt_config.layers;
          configs_enumerated = sol.Opt_config.stats.Opt_config.generated;
        };
    }
end

module Brute_force_solver : SOLVER = struct
  let name = Names.brute_force
  let kind = Exact
  let about = "reference DFS branch-and-bound; exponential, tiny instances only"
  let requires = { min_m = 1; max_m = None; unit_size_only = true; fuel_aware = true }
  let witness = false

  let solve instance =
    let makespan, c = Brute_force.solve instance in
    {
      makespan;
      schedule = None;
      counters =
        {
          Counters.zero with
          states_expanded = c.Brute_force.visited;
          memo_hits = c.Brute_force.memo_hits;
          memo_misses = c.Brute_force.memo_misses;
        };
    }
end

let policy_table =
  [
    ( Names.greedy_balance,
      Approx,
      "(2 - 1/m)-approximation; balances remaining job counts (Section 8.3)",
      Greedy_balance.policy );
    ( Names.round_robin,
      Approx,
      "2-approximation; phase-synchronous processor order (Section 4.2)",
      Round_robin.policy );
    (Names.uniform, Heuristic, "equal split among active processors", Policy.uniform);
    ( Names.proportional,
      Heuristic,
      "split proportional to remaining work of active jobs",
      Policy.proportional );
    ( Names.staircase,
      Heuristic,
      "greedy fill by fixed processor priority, highest index first",
      Heuristics.staircase );
    ( Names.fewest_remaining_first,
      Heuristic,
      "greedy fill prioritizing processors with fewer remaining jobs",
      Heuristics.fewest_remaining_first );
    ( Names.largest_requirement_first,
      Heuristic,
      "greedy fill prioritizing the largest active requirement",
      Heuristics.largest_requirement_first );
    ( Names.smallest_requirement_first,
      Heuristic,
      "greedy fill prioritizing the smallest active requirement",
      Heuristics.smallest_requirement_first );
  ]

let online_table =
  [
    ( Names.online_greedy_balance,
      "GreedyBalance through the semi-online view interface",
      Crs_core.Online.greedy_balance );
    ( Names.online_round_robin,
      "RoundRobin through the semi-online view interface",
      Crs_core.Online.round_robin );
  ]

let all : solver list =
  List.map
    (fun (n, k, a, p) -> of_policy ~name:n ~kind:k ~about:a p)
    policy_table
  @ [ (module Optimal : SOLVER) ]
  @ [
      (module Opt_two_solver : SOLVER);
      (module Opt_two_pq_solver : SOLVER);
      (module Opt_two_pareto_solver : SOLVER);
      (module Opt_config_solver : SOLVER);
      (module Brute_force_solver : SOLVER);
    ]
  @ List.map
      (fun (n, a, online) ->
        of_policy ~name:n ~kind:Online ~about:a (Crs_core.Online.to_policy online))
      online_table

let name (solver : solver) =
  let module S = (val solver) in
  S.name

let kind (solver : solver) =
  let module S = (val solver) in
  S.kind

let about (solver : solver) =
  let module S = (val solver) in
  S.about

let requires (solver : solver) =
  let module S = (val solver) in
  S.requires

let witness (solver : solver) =
  let module S = (val solver) in
  S.witness

let names = List.map name all
let find wanted = List.find_opt (fun s -> String.equal (name s) wanted) all

let find_exn wanted =
  match find wanted with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find_exn: unknown solver %S (valid: %s)" wanted
         (String.concat ", " names))

let applicability solver instance =
  let r = requires solver in
  let n = name solver in
  let m = Instance.m instance in
  if m < r.min_m then
    Error (Printf.sprintf "%s requires m >= %d, instance has m = %d" n r.min_m m)
  else
    match r.max_m with
    | Some mx when m > mx ->
      Error (Printf.sprintf "%s requires m <= %d, instance has m = %d" n mx m)
    | _ ->
      if r.unit_size_only && not (Instance.is_unit_size instance) then
        Error (Printf.sprintf "%s requires unit-size jobs" n)
      else Ok ()

(* Certifier hook for the ~certify:true post-pass. The independent
   certifier lives in crs_fuzz (which depends on this library), so it is
   injected as a function rather than called directly; linking
   Crs_fuzz.Certify installs it. *)
let certifier :
    (Instance.t -> Schedule.t -> claimed:int -> (unit, string) result) option ref =
  ref None

let install_certifier f = certifier := Some f

let solve ?(certify = false) solver instance =
  (match applicability solver instance with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Registry.solve: " ^ reason));
  let module S = (val solver : SOLVER) in
  let metered () =
    let before = Crs_util.Fuel.ticks () in
    let out = S.solve instance in
    let spent = Crs_util.Fuel.ticks () - before in
    { out with counters = { out.counters with Counters.fuel_ticks = spent } }
  in
  (* Root span per solve; counters become attributes at close so traces
     carry the same numbers as campaign JSONL. All deterministic (fuel,
     not wall time), so span signatures stay pool-size independent. *)
  let out =
    if Crs_obs.Trace.enabled () then
      Crs_obs.Trace.with_span
        ~attrs:[ ("algorithm", Crs_obs.Trace.Str S.name) ]
        "registry.solve"
        (fun () ->
          let out = metered () in
          Crs_obs.Trace.add_attrs
            (("makespan", Crs_obs.Trace.Int out.makespan)
            :: List.map
                 (fun (k, v) -> (k, Crs_obs.Trace.Int v))
                 (Counters.to_assoc out.counters));
          out)
    else metered ()
  in
  if Crs_obs.Metrics.enabled () then
    List.iter
      (fun (k, v) ->
        Crs_obs.Metrics.add
          (Crs_obs.Metrics.counter (Printf.sprintf "solver.%s.%s" S.name k))
          v)
      (("solves", 1) :: Counters.to_assoc out.counters);
  if certify then begin
    match out.schedule with
    | None -> () (* makespan-only solver: nothing to audit *)
    | Some schedule -> (
      match !certifier with
      | None ->
        failwith
          "Registry.solve: certify requested but no certifier installed \
           (link Crs_fuzz.Certify)"
      | Some audit -> (
        match audit instance schedule ~claimed:out.makespan with
        | Ok () -> ()
        | Error msg ->
          failwith
            (Printf.sprintf "Registry.solve: %s failed certification: %s" S.name
               msg)))
  end;
  out

let policies =
  List.map (fun (n, _, _, p) -> (n, p)) policy_table
  @ List.map (fun (n, _, o) -> (n, Crs_core.Online.to_policy o)) online_table
