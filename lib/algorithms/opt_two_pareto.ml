module Q = Crs_num.Rational
open Crs_core

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two_pareto: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two_pareto: unit-size jobs only"

let req instance i j =
  if j < Instance.n_i instance i then Job.requirement (Instance.job instance i j)
  else Q.zero

(* Frontier: list of (t, r), t strictly increasing, r strictly
   decreasing. *)
let insert (t, r) frontier =
  let dominated =
    List.exists (fun (t', r') -> t' <= t && Q.(r' <= r)) frontier
  in
  if dominated then frontier
  else
    (t, r)
    :: List.filter (fun (t', r') -> not (t <= t' && Q.(r <= r'))) frontier

let run_dp instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let table = Array.make_matrix (n1 + 1) (n2 + 1) [] in
  table.(0).(0) <- [ (0, Q.add (req instance 0 0) (req instance 1 0)) ];
  for level = 0 to n1 + n2 - 1 do
    for i1 = max 0 (level - n2) to min level n1 do
      let i2 = level - i1 in
      List.iter
        (fun (t, r) ->
          Crs_util.Fuel.tick ();
          let t' = t + 1 in
          let fresh1 = req instance 0 (i1 + 1) and fresh2 = req instance 1 (i2 + 1) in
          let relax a b v = table.(a).(b) <- insert v table.(a).(b) in
          if i1 >= n1 && i2 < n2 then relax i1 (i2 + 1) (t', fresh2)
          else if i2 >= n2 && i1 < n1 then relax (i1 + 1) i2 (t', fresh1)
          else if i1 < n1 && i2 < n2 then
            if Q.(r <= one) then
              relax (i1 + 1) (i2 + 1) (t', Q.add fresh1 fresh2)
            else begin
              relax (i1 + 1) i2 (t', Q.add fresh1 (Q.sub r Q.one));
              relax i1 (i2 + 1) (t', Q.add (Q.sub r Q.one) fresh2)
            end)
        table.(i1).(i2)
    done
  done;
  table

let makespan instance =
  let table = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  match table.(n1).(n2) with
  | [] -> failwith "Opt_two_pareto.makespan: final cell unreachable (bug)"
  | frontier -> List.fold_left (fun acc (t, _) -> min acc t) max_int frontier

let frontier_sizes instance =
  let table = run_dp instance in
  let sizes = ref [] in
  Array.iter
    (Array.iter (fun f -> if f <> [] then sizes := List.length f :: !sizes))
    table;
  let sizes = !sizes in
  let total = List.fold_left ( + ) 0 sizes in
  ( List.fold_left max 0 sizes,
    float_of_int total /. float_of_int (max 1 (List.length sizes)) )
