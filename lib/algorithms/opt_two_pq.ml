module Q = Crs_num.Rational
open Crs_core

module Key = struct
  type t = int * int * int (* level = i1+i2, i1, i2 *)

  let compare = compare
end

module PQ = Crs_util.Pqueue.Make (Key)

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two_pq: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two_pq: unit-size jobs only"

let req instance i j =
  if j < Instance.n_i instance i then Job.requirement (Instance.job instance i j)
  else Q.zero

let better (t1, r1) (t2, r2) = t1 < t2 || (t1 = t2 && Q.(r1 < r2))

type stats = { makespan : int; expanded : int; relaxations : int }

let run instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let best : (int * int, int * Q.t) Hashtbl.t = Hashtbl.create 64 in
  let queue = ref PQ.empty in
  let expanded = ref 0 and relaxes = ref 0 in
  let relax i1 i2 value =
    incr relaxes;
    let key = (i1, i2) in
    match Hashtbl.find_opt best key with
    | Some old when not (better value old) -> ()
    | _ ->
      Hashtbl.replace best key value;
      queue := PQ.insert (i1 + i2, i1, i2) !queue
  in
  relax 0 0 (0, Q.add (req instance 0 0) (req instance 1 0));
  let visited : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let answer = ref None in
  while !answer = None do
    match PQ.pop !queue with
    | None -> failwith "Opt_two_pq: queue exhausted before final state (bug)"
    | Some ((_, i1, i2), rest) ->
      queue := rest;
      (* A state may be inserted once per relaxation; its stored value is
         final at the first pop (all predecessors live on strictly
         smaller levels), so later pops are skipped. *)
      let t, r = Hashtbl.find best (i1, i2) in
      if i1 = n1 && i2 = n2 then
        answer := Some { makespan = t; expanded = !expanded; relaxations = !relaxes }
      else if Hashtbl.mem visited (i1, i2) then ()
      else begin
        Hashtbl.replace visited (i1, i2) ();
        incr expanded;
        Crs_util.Fuel.tick ();
        let t' = t + 1 in
        let fresh1 = req instance 0 (i1 + 1) and fresh2 = req instance 1 (i2 + 1) in
        if i1 >= n1 then relax i1 (i2 + 1) (t', fresh2)
        else if i2 >= n2 then relax (i1 + 1) i2 (t', fresh1)
        else if Q.(r <= one) then
          relax (i1 + 1) (i2 + 1) (t', Q.add fresh1 fresh2)
        else begin
          relax (i1 + 1) i2 (t', Q.add fresh1 (Q.sub r Q.one));
          relax i1 (i2 + 1) (t', Q.add (Q.sub r Q.one) fresh2)
        end
      end
  done;
  match !answer with
  | Some res -> res
  | None -> assert false

let makespan instance = (run instance).makespan
let states_expanded instance = (run instance).expanded
