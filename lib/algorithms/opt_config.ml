(* OptResAssignment2 (paper, Section 7) on a flat state encoding.

   A configuration is encoded as one int-array key:

     ints = [| j_0 .. j_{m-1};  p_0; q_0;  ..  p_{m-1}; q_{m-1} |]

   jobs completed per processor followed by each active job's remaining
   requirement. The remainder encoding depends on the per-solve mode:

   - Common-denominator mode (the fast path, taken when every
     requirement is small-tier and the lcm L of their denominators is
     itself small): every remainder the search can form is an exact
     multiple of 1/L, so keys store plain numerators over q_i = L and
     the hot loop is pure int arithmetic — no gcds, no allocation.
     Equal values have equal numerators, so int equality on keys is
     still value equality and dedup/domination decisions are exactly
     those of the canonical encoding.

   - General mode: canonical small-tier parts (the [Rational] S
     invariant); a remainder outside the small tier is flagged by
     q_i = 0 and carried, in processor order, in a rare [bigs] side
     array. Canonical parts are the value's unique spelling (int
     equality is value equality), tiers are deterministic (the q = 0
     sentinel cannot collide with a real small denominator), and big
     remainders are compared with exact [Rational.equal] — the hash
     only routes, equality always decides.

   Nodes carry only their key and parent: boxed remainders and the
   per-step share vectors are reconstructed from the keys when the
   single optimal path is replayed, so inserting a successor allocates
   one small key copy and a two-field node, nothing more. Successor
   enumeration probes the dedup tables with a reusable scratch key and
   materializes only on a miss, so duplicate-heavy layers allocate
   almost nothing.

   The Lemma-4 domination filter is a sort-based Pareto frontier sweep
   instead of the old O(W²) pairwise scan: candidates sort
   lexicographically by per-processor desirability (more jobs done
   first, then smaller remainder), which makes domination impossible
   backwards — coordinate-wise-at-least implies
   lexicographically-at-least — so a single forward pass comparing
   each candidate against the frontier built so far finds exactly the
   set of maximal (undominated) configurations the pairwise scan kept.
   Survivor sets, layer sizes and the [generated] counter are
   identical to the boxed kernel; survivor *order* becomes canonical
   (sorted) instead of hash-bucket order, so which of several equally
   good parents a duplicate keeps is now deterministic across
   hashtable implementations (witness schedules remain optimal and
   certified, and are byte-stable run to run). *)

module Q = Crs_num.Rational
module SR = Crs_num.Smallrat
open Crs_core

type stats = { layers : int list; generated : int }
type solution = { makespan : int; schedule : Schedule.t; stats : stats }

module Key = struct
  type t = { ints : int array; bigs : Q.t array }

  (* Keys within one solve always have equal lengths; compare contents
     directly, ints first (they discriminate almost always). *)
  let equal a b =
    let n = Array.length a.ints in
    n = Array.length b.ints
    && (let rec go i = i >= n || (a.ints.(i) = b.ints.(i) && go (i + 1)) in
        go 0)
    && Array.length a.bigs = Array.length b.bigs
    && (let nb = Array.length a.bigs in
        let rec go i = i >= nb || (Q.equal a.bigs.(i) b.bigs.(i)) && go (i + 1) in
        go 0)

  let hash { ints; bigs } =
    let h = ref 0x811c9dc5 in
    Array.iter (fun v -> h := (!h lxor v) * 0x01000193 land max_int) ints;
    Array.iter (fun q -> h := (!h lxor Q.hash q) * 0x01000193 land max_int) bigs;
    !h
end

module H = Hashtbl.Make (Key)

type node = { key : Key.t; parent : node option }

let solve ?(prune = true) instance =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_config: unit-size jobs only";
  let m = Instance.m instance in
  let n_i = Array.init m (Instance.n_i instance) in
  (* Requirements prefetched once: boxed rows plus small-tier parts
     (index n_i(i) holds the zero of the dummy job; reqq = 0 flags a
     bigint-tier requirement). *)
  let req_boxed =
    Array.init m (fun i ->
        Array.init
          (n_i.(i) + 1)
          (fun k ->
            if k < n_i.(i) then Job.requirement (Instance.job instance i k)
            else Q.zero))
  in
  let reqp = Array.map (fun row -> Array.make (Array.length row) 0) req_boxed in
  let reqq = Array.map (fun row -> Array.make (Array.length row) 0) req_boxed in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun k r ->
          if Q.is_small r then begin
            reqp.(i).(k) <- Q.small_num r;
            reqq.(i).(k) <- Q.small_den r
          end)
        row)
    req_boxed;
  (* Common-denominator mode (see header): lden = 0 disables it,
     otherwise reqn holds requirement numerators scaled to lden. The
     numerator cap keeps a sum over all m processors away from
     overflow (costs add at most m remainders). *)
  let lden, reqn =
    let max_num = (1 lsl 59) / max 1 m in
    let l = ref 1 and ok = ref true in
    Array.iter
      (Array.iter (fun q ->
           if q = 0 then ok := false
           else begin
             let l' = !l / Crs_num.Natural.gcd_int !l q * q in
             if l' > Q.small_bound then ok := false else l := l'
           end))
      reqq;
    if not !ok then (0, [||])
    else begin
      let scaled =
        Array.mapi
          (fun i row ->
            Array.mapi
              (fun k p ->
                let f = !l / reqq.(i).(k) in
                if p > max_num / f then ok := false;
                p * f)
              row)
          reqp
      in
      if !ok then (!l, scaled) else (0, [||])
    end
  in
  let klen = 3 * m in
  let jdx i = i
  and pdx i = m + (2 * i)
  and qdx i = m + (2 * i) + 1 in
  (* Boxed remainder of processor [i] in [key], canonicalized from the
     stored parts (or fetched from the side array: bigs are kept in
     ascending processor order). Only replay, big-tier compares and
     boxed fallbacks pay this. *)
  let rem_of (key : Key.t) i =
    let q = key.Key.ints.(qdx i) in
    if q <> 0 then SR.to_rational key.Key.ints.(pdx i) q
    else begin
      let bi = ref 0 in
      for j = 0 to i - 1 do
        if key.Key.ints.(qdx j) = 0 then incr bi
      done;
      key.Key.bigs.(!bi)
    end
  in
  let start =
    let ints = Array.make klen 0 in
    let bigs = ref [] in
    for i = m - 1 downto 0 do
      if lden <> 0 then begin
        ints.(pdx i) <- reqn.(i).(0);
        ints.(qdx i) <- lden
      end
      else begin
        let q = reqq.(i).(0) in
        ints.(pdx i) <- reqp.(i).(0);
        ints.(qdx i) <- q;
        if q = 0 then bigs := req_boxed.(i).(0) :: !bigs
      end
    done;
    {
      key =
        {
          Key.ints;
          bigs = (if !bigs = [] then [||] else Array.of_list !bigs);
        };
      parent = None;
    }
  in
  let is_final node =
    let rec go i = i >= m || (node.key.Key.ints.(jdx i) >= n_i.(i) && go (i + 1)) in
    go 0
  in
  if is_final start then
    { makespan = 0; schedule = Schedule.empty ~m;
      stats = { layers = []; generated = 0 } }
  else begin
    let seen : unit H.t = H.create 1024 in
    H.replace seen start.key ();
    let generated = ref 0 in
    let layer_sizes = ref [] in
    let max_layers = Instance.total_jobs instance + 1 in
    let layer_hist =
      if Crs_obs.Metrics.enabled () then
        Some (Crs_obs.Metrics.histogram "opt_config.layer_size")
      else None
    in
    (* Remainder order for processor [i], preferring the unboxed parts
       (equal denominators — always the case in common-denominator
       mode — compare by numerator, forming no products). *)
    let rem_cmp a b i =
      let qa = a.key.Key.ints.(qdx i) and qb = b.key.Key.ints.(qdx i) in
      if qa <> 0 && qb <> 0 then
        SR.compare a.key.Key.ints.(pdx i) qa b.key.Key.ints.(pdx i) qb
      else Q.compare (rem_of a.key i) (rem_of b.key i)
    in
    (* Per-processor desirability order: more jobs done, then smaller
       remainder. Sorting by it lexicographically puts every possible
       dominator of a candidate before the candidate. *)
    let node_cmp a b =
      let rec go i =
        if i >= m then 0
        else begin
          let ja = a.key.Key.ints.(jdx i) and jb = b.key.Key.ints.(jdx i) in
          if ja <> jb then Stdlib.compare (jb : int) ja
          else
            let c = rem_cmp a b i in
            if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    in
    (* Domination (Lemma 4): per processor, strictly more jobs done or
       the same job with no more remaining work. *)
    let dominates a b =
      let rec go i =
        i >= m
        || (let ja = a.key.Key.ints.(jdx i) and jb = b.key.Key.ints.(jdx i) in
            (ja > jb || (ja = jb && rem_cmp a b i <= 0))
            && go (i + 1))
      in
      go 0
    in
    let pareto_sweep candidates =
      let arr = Array.of_list candidates in
      Array.sort node_cmp arr;
      (* Candidates are deduped, so distinct entries are never equal and
         mutual domination is impossible; anything that dominates
         arr.(i) sorts before it, so frontier-only checks suffice, and
         the frontier is exactly the maximal set the pairwise filter
         kept. *)
      let rev_frontier = ref [] in
      Array.iter
        (fun cand ->
          if not (List.exists (fun s -> dominates s cand) !rev_frontier) then
            rev_frontier := cand :: !rev_frontier)
        arr;
      List.rev !rev_frontier
    in
    (* Scratch state for streaming successor enumeration: keys are
       assembled in place and only copied when a probe misses. *)
    let sk_ints = Array.make klen 0 in
    let sk = { Key.ints = sk_ints; bigs = [||] } in
    let actives = Array.make m 0 in
    let in_finished = Array.make m false in
    let cost = SR.out () and lo = SR.out () and vo = SR.out () in
    let lo_box = ref Q.zero and lo_have = ref false in
    (* One dedup table for the whole solve, cleared (capacity kept)
       between layers: fig3-like instances have hundreds of tiny
       layers, where a fresh bucket array per layer dominates. *)
    let next : node H.t = H.create 64 in
    let expand_layer layer =
      H.clear next;
      let rev_order = ref [] in
      let gen0 = !generated in
      (* Probe the scratch key ([bigs] lists any big-tier entries, in
         ascending processor order); on a miss, materialize and queue
         the successor. *)
      let commit nd bigs =
        let probe =
          if bigs = [] then sk
          else { Key.ints = sk_ints; bigs = Array.of_list bigs }
        in
        if not (H.mem seen probe) && not (H.mem next probe) then begin
          let key = { Key.ints = Array.copy sk_ints; bigs = probe.Key.bigs } in
          let node = { key; parent = Some nd } in
          H.add next key node;
          rev_order := node :: !rev_order
        end
      in
      let expand nd =
        let c_ints = nd.key.Key.ints in
        let k = ref 0 in
        for i = 0 to m - 1 do
          if c_ints.(jdx i) < n_i.(i) then begin
            actives.(!k) <- i;
            incr k
          end
        done;
        let k = !k in
        for mask = 1 to (1 lsl k) - 1 do
          if lden <> 0 then begin
            (* Common-denominator fast path: every remainder is a
               numerator over lden; the prefetch guard bounds sums, so
               nothing below can overflow. Stores are raw (num, lden)
               pairs — never reduced — keeping the encoding uniform
               for dedup. *)
            let cost_n = ref 0 in
            for b = 0 to k - 1 do
              if mask land (1 lsl b) <> 0 then begin
                let i = actives.(b) in
                in_finished.(i) <- true;
                cost_n := !cost_n + c_ints.(pdx i)
              end
            done;
            if !cost_n <= lden then begin
              let lo_n = lden - !cost_n in
              let emit partial pnum =
                Crs_util.Fuel.tick ();
                incr generated;
                for i = m - 1 downto 0 do
                  if in_finished.(i) then begin
                    let j' = c_ints.(jdx i) + 1 in
                    sk_ints.(jdx i) <- j';
                    sk_ints.(pdx i) <- reqn.(i).(j');
                    sk_ints.(qdx i) <- lden
                  end
                  else begin
                    sk_ints.(jdx i) <- c_ints.(jdx i);
                    sk_ints.(pdx i) <-
                      (if i = partial then pnum else c_ints.(pdx i));
                    sk_ints.(qdx i) <- c_ints.(qdx i)
                  end
                done;
                commit nd []
              in
              let has_other = ref false in
              for b = 0 to k - 1 do
                if not in_finished.(actives.(b)) then has_other := true
              done;
              if (not !has_other) || lo_n = 0 then emit (-1) 0
              else
                for b = 0 to k - 1 do
                  let p = actives.(b) in
                  if (not in_finished.(p)) && c_ints.(pdx p) > lo_n then
                    emit p (c_ints.(pdx p) - lo_n)
                done
            end;
            for b = 0 to k - 1 do
              if mask land (1 lsl b) <> 0 then in_finished.(actives.(b)) <- false
            done
          end
          else begin
            (* General path: canonical small-tier pairs with boxed
               fallbacks. Mark the finish set and accumulate its cost,
               staying on int pairs until a value leaves the small
               tier. *)
            cost.p <- 0;
            cost.q <- 1;
            let cost_big = ref None in
            for b = 0 to k - 1 do
              if mask land (1 lsl b) <> 0 then begin
                let i = actives.(b) in
                in_finished.(i) <- true;
                match !cost_big with
                | Some cb -> cost_big := Some (Q.add cb (rem_of nd.key i))
                | None ->
                  let p = c_ints.(pdx i) and q = c_ints.(qdx i) in
                  if not (q <> 0 && SR.add cost cost.p cost.q p q) then
                    cost_big :=
                      Some (Q.add (SR.to_rational cost.p cost.q) (rem_of nd.key i))
              end
            done;
            let cost_le_one =
              match !cost_big with
              | None -> cost.p <= cost.q
              | Some cb -> Q.(cb <= one)
            in
            if cost_le_one then begin
              (* leftover = 1 - cost; its parts inherit the cost's gcd. *)
              let lo_big =
                match !cost_big with
                | None ->
                  ignore (SR.one_minus lo cost.p cost.q);
                  None
                | Some cb -> Some (Q.sub Q.one cb)
              in
              (* Boxed leftover, built at most once per mask (only for
                 boxed fallbacks along partial successors). *)
              lo_have := false;
              let leftover_boxed () =
                if not !lo_have then begin
                  (lo_box :=
                     match lo_big with
                     | Some l -> l
                     | None -> SR.to_rational lo.p lo.q);
                  lo_have := true
                end;
                !lo_box
              in
              let leftover_zero =
                match lo_big with None -> lo.p = 0 | Some l -> Q.is_zero l
              in
              (* Emit one successor: [partial] < 0 finishes the set and
                 wastes any leftover; otherwise processor [partial]
                 receives the leftover. *)
              let emit partial =
                Crs_util.Fuel.tick ();
                incr generated;
                let bigs = ref [] in
                for i = m - 1 downto 0 do
                  if in_finished.(i) then begin
                    let j' = c_ints.(jdx i) + 1 in
                    sk_ints.(jdx i) <- j';
                    let q = reqq.(i).(j') in
                    sk_ints.(pdx i) <- reqp.(i).(j');
                    sk_ints.(qdx i) <- q;
                    if q = 0 then bigs := req_boxed.(i).(j') :: !bigs
                  end
                  else if i = partial then begin
                    sk_ints.(jdx i) <- c_ints.(jdx i);
                    let p = c_ints.(pdx i) and q = c_ints.(qdx i) in
                    if
                      q <> 0
                      && (match lo_big with
                         | None -> SR.sub vo p q lo.p lo.q
                         | Some _ -> false)
                    then begin
                      sk_ints.(pdx i) <- vo.p;
                      sk_ints.(qdx i) <- vo.q
                    end
                    else begin
                      let v' = Q.sub (rem_of nd.key i) (leftover_boxed ()) in
                      if Q.is_small v' then begin
                        sk_ints.(pdx i) <- Q.small_num v';
                        sk_ints.(qdx i) <- Q.small_den v'
                      end
                      else begin
                        sk_ints.(pdx i) <- 0;
                        sk_ints.(qdx i) <- 0;
                        bigs := v' :: !bigs
                      end
                    end
                  end
                  else begin
                    sk_ints.(jdx i) <- c_ints.(jdx i);
                    sk_ints.(pdx i) <- c_ints.(pdx i);
                    sk_ints.(qdx i) <- c_ints.(qdx i)
                  end
                done;
                commit nd !bigs
              in
              let has_other = ref false in
              for b = 0 to k - 1 do
                if not in_finished.(actives.(b)) then has_other := true
              done;
              if (not !has_other) || leftover_zero then emit (-1)
              else
                (* Non-wasting: the leftover must go to some still-active
                   job it cannot finish; if it could finish one, the
                   larger finish set covers that choice. *)
                for b = 0 to k - 1 do
                  let p = actives.(b) in
                  if not in_finished.(p) then begin
                    let vq = c_ints.(qdx p) in
                    let v_gt_leftover =
                      match lo_big with
                      | None when vq <> 0 ->
                        SR.compare c_ints.(pdx p) vq lo.p lo.q > 0
                      | _ -> Q.(rem_of nd.key p > leftover_boxed ())
                    in
                    if v_gt_leftover then emit p
                  end
                done
            end;
            for b = 0 to k - 1 do
              if mask land (1 lsl b) <> 0 then in_finished.(actives.(b)) <- false
            done
          end
        done
      in
      List.iter expand layer;
      let candidates = List.rev !rev_order in
      (* Mutual domination forces equality, and equal configs were
         merged above, so discarding every dominated candidate never
         empties a non-empty layer (and a singleton layer is its own
         frontier). *)
      let survivors =
        if not prune then candidates
        else
          match candidates with
          | [] | [ _ ] -> candidates
          | [ a; b ] ->
            (* Two candidates: the sweep reduces to direct checks (the
               dominator, if any, is the one sorting first). *)
            if dominates a b then [ a ]
            else if dominates b a then [ b ]
            else if node_cmp a b <= 0 then candidates
            else [ b; a ]
          | _ -> pareto_sweep candidates
      in
      (* Candidates were filtered against [seen], so survivors are new
         keys: plain add, no lookup-and-replace. *)
      List.iter (fun n -> H.add seen n.key ()) survivors;
      let width = List.length survivors in
      layer_sizes := width :: !layer_sizes;
      (match layer_hist with
      | Some h -> Crs_obs.Metrics.observe h width
      | None -> ());
      if Crs_obs.Trace.enabled () then
        Crs_obs.Trace.add_attrs
          [
            ("survivors", Crs_obs.Trace.Int width);
            ("generated", Crs_obs.Trace.Int (!generated - gen0));
          ];
      survivors
    in
    (* One span per time layer. The recursive call happens outside the
       span so layers appear as siblings under the solve root, not as an
       ever-deepening chain. *)
    let rec grow layer t =
      if t > max_layers then
        failwith "Opt_config.solve: exceeded layer budget (bug)"
      else begin
        let survivors =
          Crs_obs.Trace.with_span_l
            (fun () -> [ ("t", Crs_obs.Trace.Int t) ])
            "opt_config.layer"
            (fun () -> expand_layer layer)
        in
        match List.find_opt is_final survivors with
        | Some final -> (t, final)
        | None ->
          if survivors = [] then failwith "Opt_config.solve: dead end (bug)"
          else grow survivors (t + 1)
      end
    in
    let makespan, final = grow [ start ] 1 in
    (* Rebuild each step's share vector from the parent/child keys: a
       processor whose job count rose was finished (its share is the
       parent's whole remainder); one whose remainder shrank at the
       same job received the leftover; everyone else got zero. Shares
       come out canonical boxed either way, so schedule bytes don't
       depend on the encoding mode. *)
    let shares_of parent child =
      Array.init m (fun i ->
          if child.key.Key.ints.(jdx i) > parent.key.Key.ints.(jdx i) then
            rem_of parent.key i
          else begin
            let unchanged =
              child.key.Key.ints.(pdx i) = parent.key.Key.ints.(pdx i)
              && child.key.Key.ints.(qdx i) = parent.key.Key.ints.(qdx i)
              && (child.key.Key.ints.(qdx i) <> 0
                 || Q.equal (rem_of child.key i) (rem_of parent.key i))
            in
            if unchanged then Q.zero
            else Q.sub (rem_of parent.key i) (rem_of child.key i)
          end)
    in
    let rec collect node acc =
      match node.parent with
      | None -> acc
      | Some p -> collect p (shares_of p node :: acc)
    in
    let rows = collect final [] in
    let schedule = Schedule.of_rows (Array.of_list rows) in
    {
      makespan;
      schedule;
      stats = { layers = List.rev !layer_sizes; generated = !generated };
    }
  end

let makespan ?prune instance = (solve ?prune instance).makespan
