module Q = Crs_num.Rational
open Crs_core

(* Thin policy layer over {!Registry}: picks which registered exact
   solver answers a query; all dispatch and instrumentation lives in the
   registry itself. *)

type exact_method = Dp_two | Config_enum | Dfs_bnb

let solver_of_method = function
  | Dp_two -> Registry.Names.opt_two
  | Config_enum -> Registry.Names.opt_config
  | Dfs_bnb -> Registry.Names.brute_force

let optimal_makespan ?method_ instance =
  let name =
    match method_ with
    | Some m -> solver_of_method m
    | None -> Registry.Names.optimal
  in
  (Registry.solve (Registry.find_exn name) instance).Registry.makespan

let optimal_schedule instance =
  let out = Registry.solve (Registry.find_exn Registry.Names.optimal) instance in
  match out.Registry.schedule with
  | Some schedule -> schedule
  | None -> assert false (* "optimal" is a witness solver *)

let ratio ~algorithm instance =
  let opt = optimal_makespan instance in
  let alg = algorithm instance in
  if opt = 0 then
    if alg = 0 then Q.one
    else
      invalid_arg
        (Printf.sprintf
           "Solver.ratio: optimum is 0 but algorithm took %d steps (ratio undefined)"
           alg)
  else Q.of_ints alg opt

let certified_lower_bound instance =
  let schedule = Greedy_balance.schedule instance in
  let trace = Execution.run_exn instance schedule in
  let graph = Crs_hypergraph.Sched_graph.of_trace trace in
  Crs_hypergraph.Bounds.combined graph instance

let ratio_upper_bound instance =
  let gb = Greedy_balance.makespan instance in
  let lb = certified_lower_bound instance in
  if lb = 0 then Q.one else Q.of_ints gb lb
