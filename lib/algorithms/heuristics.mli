(** Baseline heuristics to compare against the paper's algorithms.

    None of these carries a worst-case guarantee; they exist as the
    "baseline comparators" for the benches (DESIGN.md, S5). All operate on
    arbitrary instances; approximation measurements in the benches use
    unit sizes. *)

val uniform : Crs_core.Policy.t
(** Equal split among active processors (capped per job). *)

val proportional : Crs_core.Policy.t
(** Split proportional to remaining work of active jobs (capped). *)

val fewest_remaining_first : Crs_core.Policy.t
(** Greedy fill prioritizing processors with FEWER remaining jobs — the
    anti-GreedyBalance, typically poor on imbalanced instances. *)

val largest_requirement_first : Crs_core.Policy.t
(** Greedy fill prioritizing the largest active remaining requirement,
    ignoring job counts (the Figure 1 example schedule prioritizes the
    other way; this is the natural bin-packing-flavoured greedy). *)

val smallest_requirement_first : Crs_core.Policy.t
(** Greedy fill prioritizing the smallest active remaining requirement —
    finishes as many jobs as possible per step (the schedule drawn in
    Figure 1a). *)

val staircase : Crs_core.Policy.t
(** Greedy fill with a fixed priority by processor index, highest index
    first. On the Theorem 8 block family this realizes the diagonal
    pipeline the optimal schedule uses (each processor runs one column
    ahead of the one above it), so it serves as the constructive
    near-optimal witness in the F5 experiment. *)

val makespan_of : Crs_core.Policy.t -> Crs_core.Instance.t -> int
(** Named sweeps live in {!Registry.policies}; the former [all] list
    moved there so algorithm names exist in exactly one module. *)
