(** OptResAssignment: exact polynomial algorithm for two processors and
    unit-size jobs (paper, Section 6, Algorithm 1).

    Dynamic program over states [(i1, i2)] = number of jobs completed on
    each processor. Each state stores the lexicographically minimal pair
    [(t, r)]: the earliest step count [t] by which the first [i1]/[i2]
    jobs can be finished and, for that [t], the minimal combined remaining
    requirement [r] of the two active jobs. Lemma 3 shows this sum is a
    sufficient statistic, and Lemma 1 that restricting to steps finishing
    at least one job is safe. Runtime O(n²) states with O(1) transitions.

    Note on the paper's pseudocode: lines 20-21 of Algorithm 1 write the
    invested remainder as [A1(i1) + A2(i2) − 1], which equals [r − 1] only
    when both active jobs are untouched; we use [r − 1], which is what the
    invariant of Theorem 5 requires (see EXPERIMENTS.md, erratum E1; the
    implementation is cross-validated against brute force). *)

type counters = {
  cells_expanded : int;  (** DP cells reached and expanded in the sweep *)
  relaxations : int;  (** transitions examined (relax calls) *)
}

type solution = {
  makespan : int;
  schedule : Crs_core.Schedule.t;  (** a witness achieving the makespan *)
  counters : counters;  (** work counters, surfaced via {!Registry} *)
}

val solve : Crs_core.Instance.t -> solution
(** @raise Invalid_argument unless the instance has exactly two processors
    and unit-size jobs. *)

val makespan : Crs_core.Instance.t -> int
(** Optimal makespan only (skips witness reconstruction bookkeeping). *)

val table_dims : Crs_core.Instance.t -> int * int
(** DP table dimensions [(n1+1, n2+1)]; exposed for complexity tests. *)
