(** Reference exact solver: depth-first branch-and-bound over the same
    normal-form step space as {!Opt_config} (every step finishes a
    non-empty job set and invests any leftover in at most one job), but
    with an independent implementation, search order (DFS instead of
    layered BFS), memoization and Observation 1 bounding. Used to
    cross-validate {!Opt_two} and {!Opt_config}; exponential, intended for
    tiny instances only. *)

type counters = { visited : int; memo_hits : int; memo_misses : int }
(** Search effort: nodes entered, and outcomes of the (keyed) memo-table
    probes at nodes that survived the lower-bound pruning. *)

val solve : ?node_limit:int -> Crs_core.Instance.t -> int * counters
(** Optimal makespan together with search counters.
    @raise Invalid_argument on non-unit sizes.
    @raise Failure when more than [node_limit] (default 2_000_000) search
    nodes are visited. *)

val makespan : ?node_limit:int -> Crs_core.Instance.t -> int
(** [fst (solve instance)]. *)
