(* The paper's m = 2 dynamic program (Section 4) on a flat state layout.

   The DP table is dense over (i1, i2) = jobs completed per processor,
   and the per-cell sufficient statistic is tiny: time t, the combined
   remainder r of the two active jobs, and the transition that produced
   the cell (the parent is derivable from the transition, so it is not
   stored). Instead of an [entry option array array] of boxed records,
   the kernel keeps one flat int array with a 4-word stride per
   row-major cell:

     word 0 -- t and the 3-bit transition code packed as
               (t lsl 3) lor via; -1 marks unreachable
     word 1 -- remainder numerator   (canonical small-tier parts,
     word 2 -- remainder denominator  [Rational]'s S invariant)
     word 3 -- padding, so a cell never straddles a cache line

   Word 2 = 0 flags a rare bigint-tier remainder spilled to a side
   table keyed by cell index. Interleaving matters as much as
   unboxing: the diagonal sweep strides through the table, so parallel
   arrays would cost one cache line per field where this layout pays
   one line per cell (and shares it with a neighbour).

   Relaxations on the small-tier fast path run entirely on ints via
   [Smallrat] — no allocation, no [Instance.job] bounds checks (the
   requirement rows are prefetched once) — and fall back to boxed
   [Rational.t] exactly when a value leaves the small tier. Results
   are byte-identical to the boxed kernel: [Smallrat] produces the
   same canonical parts [Rational] would, and the witness replay
   re-runs the share arithmetic on boxed values. *)

module Q = Crs_num.Rational
module SR = Crs_num.Smallrat
open Crs_core

type counters = { cells_expanded : int; relaxations : int }
type solution = { makespan : int; schedule : Schedule.t; counters : counters }

(* Transition codes packed into the low bits of word 0. The parent of
   a cell follows from its code: Finish_both came from (i1-1, i2-1),
   Finish_fst / Only_fst from (i1-1, i2), Finish_snd / Only_snd from
   (i1, i2-1). *)
let start = 0

let finish_both = 1
let finish_fst = 2 (* processor 0's job completes; leftover invested in 1 *)
let finish_snd = 3 (* symmetric *)
let only_fst = 4 (* processor 1 has no jobs left *)
let only_snd = 5

let check instance =
  if Instance.m instance <> 2 then
    invalid_arg "Opt_two: instance must have exactly 2 processors";
  if not (Instance.is_unit_size instance) then
    invalid_arg "Opt_two: unit-size jobs only"

(* Requirements of processor [i]'s jobs, prefetched once per solve:
   boxed values for the replay and the spill paths, small-tier parts
   for the hot loop. Index n_i holds the zero requirement of the
   paper's "dummy job"; reqq.(k) = 0 flags a bigint-tier requirement
   (then only the boxed array is meaningful). *)
type reqs = { boxed : Q.t array; reqp : int array; reqq : int array }

let prefetch instance i =
  let n = Instance.n_i instance i in
  let boxed =
    Array.init (n + 1) (fun k ->
        if k < n then Job.requirement (Instance.job instance i k) else Q.zero)
  in
  let reqp = Array.make (n + 1) 0 and reqq = Array.make (n + 1) 0 in
  Array.iteri
    (fun k r ->
      if Q.is_small r then begin
        reqp.(k) <- Q.small_num r;
        reqq.(k) <- Q.small_den r
      end)
    boxed;
  { boxed; reqp; reqq }

(* Common-denominator mode: when every requirement is small-tier and
   their denominators have a small lcm L, every remainder the DP can
   form is an exact multiple of 1/L, so the kernel stores plain
   numerators over an implicit L and the hot loop does no gcd work at
   all — adds are int adds, compares are int compares (relaxation
   decisions are on the same exact rationals, so the reachable set,
   counters and schedule are unchanged). The Figure-1/Figure-3
   families and most corpus instances qualify.

   Returns the scaled numerator arrays for both processors, or None
   when the mode doesn't apply (a bigint-tier requirement, lcm past
   [Rational.small_bound], or scaled numerators too large to add a
   few of together without overflow — the pair/spill path handles
   those). *)
let common_den r1 r2 =
  let max_num = 1 lsl 59 in
  let lden = ref 1 and ok = ref true in
  let fold r =
    Array.iter
      (fun q ->
        if q = 0 then ok := false
        else begin
          let l = !lden / Crs_num.Natural.gcd_int !lden q * q in
          if l > Q.small_bound then ok := false else lden := l
        end)
      r.reqq
  in
  fold r1;
  fold r2;
  if not !ok then None
  else begin
    let l = !lden in
    let scale r =
      Array.map2
        (fun p q ->
          let f = l / q in
          if p > max_num / f then ok := false;
          p * f)
        r.reqp r.reqq
    in
    let rn1 = scale r1 and rn2 = scale r2 in
    if !ok then Some (l, rn1, rn2) else None
  end

type tableau = {
  w : int; (* row stride in cells = n2 + 1 *)
  cells : int array; (* 4 words per cell, see layout above *)
  spill : (int, Q.t) Hashtbl.t;
}

let cell_r tab idx =
  let base = idx lsl 2 in
  let q = tab.cells.(base + 2) in
  if q <> 0 then SR.to_rational tab.cells.(base + 1) q
  else Hashtbl.find tab.spill idx

let run_dp instance =
  check instance;
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let w = n2 + 1 in
  let size = (n1 + 1) * w in
  let cells_a = Array.make (size * 4) (-1) in
  let tab = { w; cells = cells_a; spill = Hashtbl.create 16 } in
  let r1 = prefetch instance 0 and r2 = prefetch instance 1 in
  let cells = ref 0 and relaxes = ref 0 in
  (* Keep the candidate (t, r) iff the cell is empty or it improves the
     stored lex order on (t, r), exactly the boxed kernel's [better].
     q = 0 means the candidate remainder is the bigint-tier [rbig]. *)
  let relax idx t p q rbig via =
    incr relaxes;
    let base = idx lsl 2 in
    let cur_tv = cells_a.(base) in
    let cur_t = cur_tv asr 3 in
    let better =
      cur_tv < 0 || t < cur_t
      || t = cur_t
         &&
         let cq = cells_a.(base + 2) in
         if q <> 0 && cq <> 0 then SR.compare p q cells_a.(base + 1) cq < 0
         else begin
           let cand = if q <> 0 then SR.to_rational p q else rbig in
           Q.(cand < cell_r tab idx)
         end
    in
    if better then begin
      cells_a.(base) <- (t lsl 3) lor via;
      if q <> 0 then begin
        if cells_a.(base + 2) = 0 then Hashtbl.remove tab.spill idx;
        cells_a.(base + 1) <- p;
        cells_a.(base + 2) <- q
      end
      else begin
        cells_a.(base + 2) <- 0;
        Hashtbl.replace tab.spill idx rbig
      end
    end
  in
  (* Boxed results can re-enter the small tier (e.g. an overflowing
     cross product whose gcd shrinks it back); keep the stored tier
     faithful to the value's own. *)
  let relax_box idx t r via =
    if Q.is_small r then relax idx t (Q.small_num r) (Q.small_den r) Q.zero via
    else relax idx t 0 0 r via
  in
  (* Per-level state counts feed a log-scale histogram when metrics are
     on; the lookup happens once per solve, never per cell. *)
  let level_hist =
    if Crs_obs.Metrics.enabled () then
      Some (Crs_obs.Metrics.histogram "opt_two.states_per_level")
    else None
  in
  let acc = SR.out () and m1 = SR.out () in
  (* lden <> 0 selects the common-denominator mode: remainder words
     hold numerators over lden, arithmetic is pure int add/compare
     (relax's tie-break compares equal denominators by numerator, so
     no products form). lden = 0 falls back to canonical pairs with
     bigint spill. *)
  let lden, rn1, rn2 =
    match common_den r1 r2 with
    | Some (l, a, b) -> (l, a, b)
    | None -> (0, [||], [||])
  in
  let dp () =
    (* Start state: both first jobs active, r = their joint demand. *)
    (if lden <> 0 then relax 0 0 (rn1.(0) + rn2.(0)) lden Q.zero start
     else if
       r1.reqq.(0) <> 0 && r2.reqq.(0) <> 0
       && SR.add acc r1.reqp.(0) r1.reqq.(0) r2.reqp.(0) r2.reqq.(0)
     then relax 0 0 acc.p acc.q Q.zero start
     else relax_box 0 0 (Q.add r1.boxed.(0) r2.boxed.(0)) start);
    (* Transitions raise i1+i2 by 1 or 2, so diagonal order finalizes
       every state before it is expanded. *)
    for level = 0 to n1 + n2 - 1 do
      let level_cells = !cells in
      for i1 = max 0 (level - n2) to min level n1 do
        let i2 = level - i1 in
        let idx = (i1 * w) + i2 in
        let base = idx lsl 2 in
        let tv = cells_a.(base) in
        (* Fuel is charged per reachable cell: unreachable cells do no
           work, so they no longer burn budget (tick counts changed at
           the hoist; deterministic-timeout tests pin the new ones). *)
        if tv >= 0 then begin
          Crs_util.Fuel.tick ();
          incr cells;
          let t' = (tv asr 3) + 1 in
          let cp = cells_a.(base + 1) and cq = cells_a.(base + 2) in
          if i1 >= n1 && i2 < n2 then begin
            (* Only processor 1 active: one job per step, leftover
               wasted; the new remainder is just the fresh job's. *)
            let k = i2 + 1 in
            if lden <> 0 then relax (idx + 1) t' rn2.(k) lden Q.zero only_snd
            else if r2.reqq.(k) <> 0 then
              relax (idx + 1) t' r2.reqp.(k) r2.reqq.(k) Q.zero only_snd
            else relax (idx + 1) t' 0 0 r2.boxed.(k) only_snd
          end
          else if i2 >= n2 && i1 < n1 then begin
            let k = i1 + 1 in
            if lden <> 0 then relax (idx + w) t' rn1.(k) lden Q.zero only_fst
            else if r1.reqq.(k) <> 0 then
              relax (idx + w) t' r1.reqp.(k) r1.reqq.(k) Q.zero only_fst
            else relax (idx + w) t' 0 0 r1.boxed.(k) only_fst
          end
          else if i1 < n1 && i2 < n2 then begin
            let k1 = i1 + 1 and k2 = i2 + 1 in
            if lden <> 0 then begin
              (* Every reachable cell in this mode stores cq = lden;
                 the prefetch guard bounds numerator sums, so the int
                 arithmetic below cannot overflow. *)
              if cp <= lden then
                relax (idx + w + 1) t' (rn1.(k1) + rn2.(k2)) lden Q.zero
                  finish_both
              else begin
                let m = cp - lden in
                relax (idx + w) t' (rn1.(k1) + m) lden Q.zero finish_fst;
                relax (idx + 1) t' (m + rn2.(k2)) lden Q.zero finish_snd
              end
            end
            else begin
              let r_le_one =
                if cq <> 0 then SR.compare_one cp cq <= 0
                else Q.(Hashtbl.find tab.spill idx <= one)
              in
              if r_le_one then begin
                if r1.reqq.(k1) <> 0 && r2.reqq.(k2) <> 0
                   && SR.add acc r1.reqp.(k1) r1.reqq.(k1) r2.reqp.(k2) r2.reqq.(k2)
                then relax (idx + w + 1) t' acc.p acc.q Q.zero finish_both
                else
                  relax_box (idx + w + 1) t'
                    (Q.add r1.boxed.(k1) r2.boxed.(k2))
                    finish_both
              end
              else begin
                (* r > 1: finish one job (cost <= 1) and invest the
                   leftover in the other, which stays active with
                   remainder r - 1. *)
                if cq <> 0 && SR.sub_one m1 cp cq then begin
                  (if r1.reqq.(k1) <> 0 && SR.add acc r1.reqp.(k1) r1.reqq.(k1) m1.p m1.q
                   then relax (idx + w) t' acc.p acc.q Q.zero finish_fst
                   else
                     relax_box (idx + w) t'
                       (Q.add r1.boxed.(k1) (SR.to_rational m1.p m1.q))
                       finish_fst);
                  if r2.reqq.(k2) <> 0 && SR.add acc m1.p m1.q r2.reqp.(k2) r2.reqq.(k2)
                  then relax (idx + 1) t' acc.p acc.q Q.zero finish_snd
                  else
                    relax_box (idx + 1) t'
                      (Q.add (SR.to_rational m1.p m1.q) r2.boxed.(k2))
                      finish_snd
                end
                else begin
                  let rm1 = Q.sub (cell_r tab idx) Q.one in
                  relax_box (idx + w) t' (Q.add r1.boxed.(k1) rm1) finish_fst;
                  relax_box (idx + 1) t' (Q.add rm1 r2.boxed.(k2)) finish_snd
                end
              end
            end
          end
        end
      done;
      match level_hist with
      | Some h -> Crs_obs.Metrics.observe h (!cells - level_cells)
      | None -> ()
    done
  in
  Crs_obs.Trace.with_span_l
    (fun () -> [ ("n1", Crs_obs.Trace.Int n1); ("n2", Crs_obs.Trace.Int n2) ])
    "opt_two.dp"
    (fun () ->
      dp ();
      if Crs_obs.Trace.enabled () then
        Crs_obs.Trace.add_attrs
          [
            ("cells_expanded", Crs_obs.Trace.Int !cells);
            ("relaxations", Crs_obs.Trace.Int !relaxes);
          ]);
  (tab, r1, r2, { cells_expanded = !cells; relaxations = !relaxes })

let makespan instance =
  let tab, _, _, _ = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let tv = tab.cells.(((n1 * tab.w) + n2) lsl 2) in
  if tv < 0 then failwith "Opt_two.makespan: final state unreachable (bug)";
  tv asr 3

(* Replay the optimal path, tracking the individual remainders (v1, v2)
   of the active jobs to emit concrete share vectors. The walk follows
   via codes backwards (each code determines its parent cell); the
   share arithmetic runs on boxed values, so rows are byte-identical to
   the boxed kernel's. *)
let solve instance =
  let tab, r1, r2, counters = run_dp instance in
  let n1 = Instance.n_i instance 0 and n2 = Instance.n_i instance 1 in
  let w = tab.w in
  let final_tv = tab.cells.(((n1 * w) + n2) lsl 2) in
  if final_tv < 0 then failwith "Opt_two.solve: final state unreachable (bug)";
  let rec path i1 i2 acc =
    let idx = (i1 * w) + i2 in
    let tv = tab.cells.(idx lsl 2) in
    if tv < 0 then failwith "Opt_two.solve: broken parent chain";
    let via = tv land 7 in
    if via = start then acc
    else
      let pi1, pi2 =
        if via = finish_both then (i1 - 1, i2 - 1)
        else if via = finish_fst || via = only_fst then (i1 - 1, i2)
        else (i1, i2 - 1)
      in
      path pi1 pi2 ((via, idx) :: acc)
  in
  let steps = Crs_obs.Trace.with_span "opt_two.replay" (fun () -> path n1 n2 []) in
  let v1 = ref r1.boxed.(0) and v2 = ref r2.boxed.(0) in
  let i1 = ref 0 and i2 = ref 0 in
  let rows =
    List.map
      (fun (via, idx) ->
        let row =
          if via = finish_both then begin
            let row = [| !v1; !v2 |] in
            incr i1;
            incr i2;
            v1 := r1.boxed.(!i1);
            v2 := r2.boxed.(!i2);
            row
          end
          else if via = finish_fst then begin
            let give2 = Q.sub Q.one !v1 in
            let row = [| !v1; give2 |] in
            incr i1;
            v2 := Q.sub !v2 give2;
            v1 := r1.boxed.(!i1);
            row
          end
          else if via = finish_snd then begin
            let give1 = Q.sub Q.one !v2 in
            let row = [| give1; !v2 |] in
            incr i2;
            v1 := Q.sub !v1 give1;
            v2 := r2.boxed.(!i2);
            row
          end
          else if via = only_fst then begin
            let row = [| !v1; Q.zero |] in
            incr i1;
            v1 := r1.boxed.(!i1);
            row
          end
          else begin
            let row = [| Q.zero; !v2 |] in
            incr i2;
            v2 := r2.boxed.(!i2);
            row
          end
        in
        (* The replayed remainders must match the stored sufficient
           statistic at the state just reached. *)
        assert (Q.equal (Q.add !v1 !v2) (cell_r tab idx));
        row)
      steps
  in
  let schedule =
    if rows = [] then Schedule.empty ~m:2 else Schedule.of_rows (Array.of_list rows)
  in
  { makespan = final_tv asr 3; schedule; counters }

let table_dims instance =
  check instance;
  (Instance.n_i instance 0 + 1, Instance.n_i instance 1 + 1)
