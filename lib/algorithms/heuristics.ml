module Q = Crs_num.Rational
open Crs_core

let uniform = Policy.uniform
let proportional = Policy.proportional

let fewest_remaining_first =
  Policy.greedy_fill ~by:(fun st a b ->
      let ja = Policy.jobs_remaining st a and jb = Policy.jobs_remaining st b in
      if ja <> jb then ja < jb else a < b)

let largest_requirement_first =
  Policy.greedy_fill ~by:(fun st a b ->
      Q.(Policy.remaining_work st a > Policy.remaining_work st b))

let smallest_requirement_first =
  Policy.greedy_fill ~by:(fun st a b ->
      Q.(Policy.remaining_work st a < Policy.remaining_work st b))

let staircase =
  Policy.greedy_fill ~by:(fun _ a b -> a > b)

let makespan_of policy instance =
  Execution.makespan (Execution.run_exn instance (Policy.run policy instance))
