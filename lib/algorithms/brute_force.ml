module Q = Crs_num.Rational
open Crs_core

(* Memo keys are the DFS state: next-job indices and remaining
   requirements per processor. Keyed hashing through [Rational.hash] /
   [Rational.equal] replaces the old polymorphic hash of
   [(int list * Q.t list)]: no list conversion per probe, and no
   dependence of the hash on the rationals' internal representation
   (the two-tier split would otherwise silently change bucket
   placement semantics). The arrays are never mutated after a node is
   entered — children operate on copies — so they are safe to store. *)
module Key = struct
  type t = int array * Q.t array

  let equal (ja, va) (jb, vb) =
    let len = Array.length ja in
    len = Array.length jb
    && (let rec go i =
          i >= len || (ja.(i) = jb.(i) && Q.equal va.(i) vb.(i) && go (i + 1))
        in
        go 0)

  let hash (j, v) =
    let h = ref 17 in
    Array.iter (fun x -> h := ((!h * 31) + x) land max_int) j;
    Array.iter (fun x -> h := ((!h * 31) + Q.hash x) land max_int) v;
    !h
end

module Memo = Hashtbl.Make (Key)

type counters = { visited : int; memo_hits : int; memo_misses : int }

let solve ?(node_limit = 2_000_000) instance =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Brute_force: unit-size jobs only";
  let m = Instance.m instance in
  let n i = Instance.n_i instance i in
  let req i k = if k < n i then Job.requirement (Instance.job instance i k) else Q.zero in
  (* Suffix work sums: work of jobs k, k+1, … on processor i. *)
  let suffix =
    Array.init m (fun i ->
        let s = Array.make (n i + 1) Q.zero in
        for k = n i - 1 downto 0 do
          s.(k) <- Q.add s.(k + 1) (req i k)
        done;
        s)
  in
  let best = ref (Greedy_balance.makespan instance) in
  let visited = ref 0 in
  let memo_hits = ref 0 and memo_misses = ref 0 in
  let memo : int Memo.t = Memo.create 4096 in
  let rec dfs t (j : int array) (v : Q.t array) =
    Crs_util.Fuel.tick ();
    incr visited;
    if !visited > node_limit then failwith "Brute_force: node limit exceeded";
    let actives = List.filter (fun i -> j.(i) < n i) (Crs_util.Misc.range m) in
    if actives = [] then begin
      if t < !best then best := t
    end
    else begin
      (* Lower bounds: total remaining work at aggregate speed 1, and the
         one-job-per-step limit per processor. *)
      let work =
        List.fold_left
          (fun acc i -> Q.add acc (Q.add v.(i) suffix.(i).(j.(i) + 1)))
          Q.zero actives
      in
      let lb_work = Q.ceil_int work in
      let lb_jobs = List.fold_left (fun acc i -> max acc (n i - j.(i))) 0 actives in
      if t + max lb_work lb_jobs < !best then begin
        let key = (j, v) in
        let skip =
          match Memo.find_opt memo key with
          | Some t' when t' <= t ->
            incr memo_hits;
            true
          | _ ->
            incr memo_misses;
            false
        in
        if not skip then begin
          Memo.replace memo key t;
          (* Enumerate finish sets (non-empty, cost <= 1) and the optional
             partial investment of the leftover. *)
          let arr = Array.of_list actives in
          let k = Array.length arr in
          for mask = 1 to (1 lsl k) - 1 do
            let cost = ref Q.zero in
            for b = 0 to k - 1 do
              if mask land (1 lsl b) <> 0 then cost := Q.add !cost v.(arr.(b))
            done;
            if Q.(!cost <= one) then begin
              let leftover = Q.sub Q.one !cost in
              let apply_finish () =
                let j' = Array.copy j and v' = Array.copy v in
                for b = 0 to k - 1 do
                  if mask land (1 lsl b) <> 0 then begin
                    let i = arr.(b) in
                    j'.(i) <- j.(i) + 1;
                    v'.(i) <- req i j'.(i)
                  end
                done;
                (j', v')
              in
              let others =
                List.filter (fun b -> mask land (1 lsl b) = 0) (Crs_util.Misc.range k)
              in
              if others = [] || Q.is_zero leftover then begin
                let j', v' = apply_finish () in
                dfs (t + 1) j' v'
              end
              else
                List.iter
                  (fun b ->
                    let p = arr.(b) in
                    if Q.(v.(p) > leftover) then begin
                      let j', v' = apply_finish () in
                      v'.(p) <- Q.sub v.(p) leftover;
                      dfs (t + 1) j' v'
                    end)
                  others
            end
          done
        end
      end
    end
  in
  let j0 = Array.make m 0 in
  let v0 = Array.init m (fun i -> req i 0) in
  Crs_obs.Trace.with_span_l
    (fun () -> [ ("m", Crs_obs.Trace.Int m) ])
    "brute_force.search"
    (fun () ->
      dfs 0 j0 v0;
      if Crs_obs.Trace.enabled () then
        Crs_obs.Trace.add_attrs
          [
            ("visited", Crs_obs.Trace.Int !visited);
            ("memo_hits", Crs_obs.Trace.Int !memo_hits);
            ("memo_misses", Crs_obs.Trace.Int !memo_misses);
            ("best", Crs_obs.Trace.Int !best);
          ]);
  if Crs_obs.Metrics.enabled () then begin
    let probes = !memo_hits + !memo_misses in
    if probes > 0 then
      Crs_obs.Metrics.set
        (Crs_obs.Metrics.gauge "brute_force.memo_hit_ratio")
        (float_of_int !memo_hits /. float_of_int probes);
    Crs_obs.Metrics.observe
      (Crs_obs.Metrics.histogram "brute_force.nodes_visited")
      !visited
  end;
  ( !best,
    { visited = !visited; memo_hits = !memo_hits; memo_misses = !memo_misses } )

let makespan ?node_limit instance = fst (solve ?node_limit instance)
