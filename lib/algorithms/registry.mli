(** Capability-aware solver registry.

    Every algorithm in the repo — the paper's exact solvers, its
    2-approximations, the baseline heuristics and the semi-online
    variants — is exposed as a first-class module implementing
    {!SOLVER}: a canonical name, a {!kind}, a capability record
    ({!requires}) saying which instances it accepts, and a uniform
    [solve] returning the makespan, an optional witness schedule and
    structured work counters ({!Counters.t}).

    The registry is the single source of truth for algorithm name
    strings: the CLI derives its [--algorithm] enums from {!names}, the
    campaign runner filters by {!applicability} (an exact solver swept
    over an [m = 3] family reports [not_applicable] instead of
    crashing), and the benches look solvers up by name instead of
    hard-wiring [Crs_algorithms.*] call sites. *)

(** Canonical name constants — the only place these strings are
    defined. Everything else ([Spec], the CLI, the benches, the
    many-core policy table) refers to them by identifier. *)
module Names : sig
  val greedy_balance : string
  val round_robin : string
  val uniform : string
  val proportional : string
  val staircase : string
  val fewest_remaining_first : string
  val largest_requirement_first : string
  val smallest_requirement_first : string
  val optimal : string
  val opt_two : string
  val opt_two_pq : string
  val opt_two_pareto : string
  val opt_config : string
  val brute_force : string
  val online_greedy_balance : string
  val online_round_robin : string
end

(** Uniform work counters. Each solver fills the fields it can measure
    natively; {!solve} additionally meters [fuel_ticks] as the
    {!Crs_util.Fuel.ticks} delta across the run, so every fuel-aware
    solver gets a comparable work figure even when its native counters
    differ in meaning. *)
module Counters : sig
  type t = {
    states_expanded : int;  (** DP cells / PQ pops / search nodes / configs *)
    dp_relaxations : int;  (** transitions examined *)
    configs_enumerated : int;  (** configurations generated (Opt_config) *)
    memo_hits : int;  (** memo-table probes answered (Brute_force) *)
    memo_misses : int;  (** memo-table probes that missed (Brute_force) *)
    fuel_ticks : int;  (** {!Crs_util.Fuel.ticks} delta across the solve *)
  }

  val zero : t

  val to_assoc : t -> (string * int) list
  (** Stable field order for serialization (JSONL, bench reports). *)
end

type kind =
  | Exact  (** provably optimal makespan *)
  | Approx  (** worst-case approximation guarantee from the paper *)
  | Heuristic  (** no guarantee; baseline comparator *)
  | Online  (** information-restricted (semi-online) policy *)

val kind_to_string : kind -> string

(** What a solver needs from an instance. [applicability] checks these
    against a concrete instance before dispatch. *)
type requires = {
  min_m : int;  (** fewest processors accepted *)
  max_m : int option;  (** most processors accepted; [None] = unbounded *)
  unit_size_only : bool;  (** accepts only unit-size jobs *)
  fuel_aware : bool;  (** calls {!Crs_util.Fuel.tick}, so budgets apply *)
}

type outcome = {
  makespan : int;
  schedule : Crs_core.Schedule.t option;
      (** a witness achieving [makespan]; [None] for makespan-only
          solvers (opt-two-pq, opt-two-pareto, brute-force) *)
  counters : Counters.t;
}

module type SOLVER = sig
  val name : string
  val kind : kind
  val about : string
  (** One-line description for tables and [--help]. *)

  val requires : requires

  val witness : bool
  (** [solve] always returns [Some schedule]. *)

  val solve : Crs_core.Instance.t -> outcome
end

type solver = (module SOLVER)

val all : solver list
(** Every registered solver. The first nine entries keep the historical
    campaign-table order (heuristics then ["optimal"]); the exact
    variants and online policies follow. *)

val names : string list
(** Names of {!all}, in order. *)

val find : string -> solver option
val find_exn : string -> solver
(** @raise Invalid_argument on an unknown name, listing valid ones. *)

(** {2 Projections} *)

val name : solver -> string
val kind : solver -> kind
val about : solver -> string
val requires : solver -> requires
val witness : solver -> bool

val applicability : solver -> Crs_core.Instance.t -> (unit, string) result
(** [Ok ()] when the instance satisfies the solver's {!requires};
    otherwise [Error reason] with a human-readable sentence. *)

val solve : ?certify:bool -> solver -> Crs_core.Instance.t -> outcome
(** Checked dispatch: verifies {!applicability}, runs the solver, and
    fills [counters.fuel_ticks] with the {!Crs_util.Fuel.ticks} delta.
    With [~certify:true], a witness outcome is additionally audited by
    the installed independent certifier (see {!install_certifier}):
    feasibility, job order, completion, and the claimed makespan are
    re-derived from the schedule alone. Makespan-only outcomes are
    passed through unaudited.
    @raise Invalid_argument when the instance is not applicable.
    @raise Failure when certification fails, or when [~certify:true] is
    requested with no certifier installed. *)

val install_certifier :
  (Crs_core.Instance.t ->
  Crs_core.Schedule.t ->
  claimed:int ->
  (unit, string) result) ->
  unit
(** Install the post-pass used by [solve ~certify:true]. The certifier
    itself lives in [crs_fuzz] (which depends on this library), so it is
    injected here rather than referenced directly; linking
    [Crs_fuzz.Certify] installs the real one. *)

val policies : (string * Crs_core.Policy.t) list
(** The policy-backed solvers (kinds [Approx], [Heuristic], [Online]) as
    step policies, for property tests and the simulator. Replaces the
    former [Heuristics.all]. *)
