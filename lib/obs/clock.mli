(** Clock stubs shared by the tracer and the overhead bench. *)

val monotonic_ns : unit -> int64
(** [CLOCK_MONOTONIC]: never jumps on NTP adjustments; arbitrary epoch.
    The tracer timestamps spans with this. *)

val cputime_ns : unit -> int64
(** [CLOCK_PROCESS_CPUTIME_ID]: CPU time consumed by the whole process.
    The overhead bench gates on this instead of wall time — on shared
    hardware, wall-clock minima drift by more than the 2% bound being
    checked. *)
