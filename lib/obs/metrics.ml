module Stable_json = Crs_util.Stable_json

type counter = { cname : string; cell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

let hist_buckets = 64

type histogram = {
  hname : string;
  counts : int Atomic.t array; (* counts.(k): see bucket_of *)
  total : int Atomic.t;
  sum : int Atomic.t;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Registration is rare (module init, first use); a single mutex over
   three name tables keeps it simple. Updates never touch the tables. *)
let registry_mu = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let register table name create =
  Mutex.lock registry_mu;
  let m =
    match Hashtbl.find_opt table name with
    | Some m -> m
    | None ->
      let m = create () in
      Hashtbl.add table name m;
      m
  in
  Mutex.unlock registry_mu;
  m

let counter name =
  register counters name (fun () -> { cname = name; cell = Atomic.make 0 })

let gauge name =
  register gauges name (fun () -> { gname = name; gcell = Atomic.make 0.0 })

let histogram name =
  register histograms name (fun () ->
      {
        hname = name;
        counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
        total = Atomic.make 0;
        sum = Atomic.make 0;
      })

let add c n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1
let set g v = if Atomic.get enabled_flag then Atomic.set g.gcell v

(* bucket 0: v <= 0; bucket k >= 1: 2^(k-1) <= v < 2^k *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 0 in
    while v lsr !k > 0 do
      k := !k + 1
    done;
    min !k (hist_buckets - 1)
  end

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.total 1);
    ignore (Atomic.fetch_and_add h.sum v)
  end

let counter_value c = Atomic.get c.cell
let gauge_value g = Atomic.get g.gcell

let sorted_values table =
  Mutex.lock registry_mu;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) table [] in
  Mutex.unlock registry_mu;
  all

let snapshot () =
  let counters =
    sorted_values counters
    |> List.sort (fun a b -> String.compare a.cname b.cname)
    |> List.map (fun c -> (c.cname, Stable_json.int (Atomic.get c.cell)))
  in
  let gauges =
    sorted_values gauges
    |> List.sort (fun a b -> String.compare a.gname b.gname)
    |> List.map (fun g -> (g.gname, Stable_json.float (Atomic.get g.gcell)))
  in
  let hist_json h =
    let buckets = ref [] in
    for k = hist_buckets - 1 downto 0 do
      let c = Atomic.get h.counts.(k) in
      if c > 0 then
        buckets :=
          Stable_json.obj
            [
              ("lo", Stable_json.int (if k = 0 then 0 else 1 lsl (k - 1)));
              ("count", Stable_json.int c);
            ]
          :: !buckets
    done;
    Stable_json.obj
      [
        ("count", Stable_json.int (Atomic.get h.total));
        ("sum", Stable_json.int (Atomic.get h.sum));
        ("buckets", Stable_json.arr !buckets);
      ]
  in
  let histograms =
    sorted_values histograms
    |> List.sort (fun a b -> String.compare a.hname b.hname)
    |> List.map (fun h -> (h.hname, hist_json h))
  in
  Stable_json.obj
    [
      ("schema", Stable_json.str "crs-metrics/1");
      ("counters", Stable_json.obj counters);
      ("gauges", Stable_json.obj gauges);
      ("histograms", Stable_json.obj histograms);
    ]

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun a -> Atomic.set a 0) h.counts;
      Atomic.set h.total 0;
      Atomic.set h.sum 0)
    histograms;
  Mutex.unlock registry_mu
