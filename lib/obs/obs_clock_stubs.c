/* Monotonic clock for the tracer. CLOCK_MONOTONIC never jumps on NTP
   adjustments, so span durations stay meaningful; the raw epoch is
   arbitrary and exporters rebase it. No external dependency: bechamel
   carries its own clock but linking a bench-only library into every
   instrumented consumer would invert the dependency order. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value crs_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

/* Per-process CPU time. The tracing-overhead bench gates on this rather
   than wall time: on shared hardware wall-clock minima drift several
   percent between processes, far above the 2% bound being checked. */
CAMLprim value crs_obs_cputime_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
