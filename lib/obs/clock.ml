external monotonic_ns : unit -> int64 = "crs_obs_monotonic_ns"
external cputime_ns : unit -> int64 = "crs_obs_cputime_ns"
