(** Process-global metrics registry: typed counters, gauges and
    log-scale histograms registered by name.

    Like {!Trace}, recording is off by default and every update checks a
    single [Atomic.t] flag first, so instrumented code pays one load
    when metrics are disabled. Registration ({!counter} / {!gauge} /
    {!histogram}) is idempotent — the same name returns the same metric
    — and mutex-protected; updates are lock-free ([Atomic]) and safe
    under the campaign [Pool].

    Histograms bucket observations by powers of two (bucket 0 holds
    values [<= 0], bucket [k >= 1] holds [2^(k-1) <= v < 2^k]), which
    gives useful shape for quantities spanning orders of magnitude —
    DP states per instance, memo probes, shrink steps — at a fixed
    64-slot footprint.

    {!snapshot} serializes everything in the same stable-JSON style as
    campaign reports (sorted names, fixed key order, [%.6f] floats), so
    snapshots diff cleanly across runs. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {2 Registration (idempotent by name)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {2 Updates (no-ops while disabled)} *)

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val snapshot : unit -> string
(** Stable JSON:
    [{"schema":"crs-metrics/1","counters":{..},"gauges":{..},"histograms":{..}}]
    with names sorted within each section; histogram entries carry
    [count], [sum] and the non-empty [buckets] as [{"lo","count"}]
    pairs. *)

val reset : unit -> unit
(** Zero all values. Registrations persist. *)
