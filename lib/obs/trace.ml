module Stable_json = Crs_util.Stable_json

type value = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  attrs : (string * value) list;
  start_ns : int64;
  dur_ns : int64;
  tid : int;
  seq : int;
  depth : int;
}

type tree = { span : span; children : tree list }

let monotonic_ns = Clock.monotonic_ns

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Per-domain recording buffer. Only the owning domain mutates it; the
   collector reads after concurrent work has joined, so no lock guards
   the fields — only the registry of buffers is mutex-protected. *)
type buffer = {
  tid : int;
  mutable next_seq : int;
  mutable depth : int;
  mutable open_attrs : (string * value) list list;
      (* attribute stack for open spans, innermost first *)
  mutable recorded : span list; (* completion order, reversed *)
}

let registry_mu = Mutex.create ()
let buffers : buffer list ref = ref []
let next_tid = Atomic.make 0

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = Atomic.fetch_and_add next_tid 1;
          next_seq = 0;
          depth = 0;
          open_attrs = [];
          recorded = [];
        }
      in
      Mutex.lock registry_mu;
      buffers := b :: !buffers;
      Mutex.unlock registry_mu;
      b)

let buffer () = Domain.DLS.get dls_key

let record_span b ~attrs name f =
  let seq = b.next_seq in
  b.next_seq <- seq + 1;
  let depth = b.depth in
  b.depth <- depth + 1;
  b.open_attrs <- [] :: b.open_attrs;
  let start_ns = monotonic_ns () in
  let finish extra =
    let dur_ns = Int64.sub (monotonic_ns ()) start_ns in
    let added =
      match b.open_attrs with
      | hd :: tl ->
        b.open_attrs <- tl;
        List.rev hd
      | [] -> []
    in
    b.depth <- depth;
    b.recorded <-
      { name; attrs = attrs @ added @ extra; start_ns; dur_ns;
        tid = b.tid; seq; depth }
      :: b.recorded
  in
  match f () with
  | v ->
    finish [];
    v
  | exception e ->
    finish [ ("error", Str (Printexc.to_string e)) ];
    raise e

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else record_span (buffer ()) ~attrs name f

let with_span_l lazy_attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else record_span (buffer ()) ~attrs:(lazy_attrs ()) name f

let add_attrs kvs =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    match b.open_attrs with
    | hd :: tl -> b.open_attrs <- (List.rev kvs @ hd) :: tl
    | [] -> ()
  end

let all_buffers () =
  Mutex.lock registry_mu;
  let bs = !buffers in
  Mutex.unlock registry_mu;
  bs

let spans () =
  all_buffers ()
  |> List.concat_map (fun b -> b.recorded)
  |> List.sort (fun (a : span) (b : span) ->
         compare (a.tid, a.seq) (b.tid, b.seq))

let reset () =
  List.iter
    (fun b ->
      b.recorded <- [];
      b.next_seq <- 0;
      b.depth <- 0;
      b.open_attrs <- [])
    (all_buffers ())

(* ---- attribute encoding (shared by every exporter) ---- *)

let value_json = function
  | Str s -> Stable_json.str s
  | Int i -> Stable_json.int i
  | Float f -> Stable_json.float f
  | Bool b -> Stable_json.bool b

let attrs_json attrs =
  Stable_json.obj (List.map (fun (k, v) -> (k, value_json v)) attrs)

(* ---- forest reconstruction ---- *)

type node = { nspan : span; mutable rev_children : node list }

let forest () =
  let roots = ref [] in
  let per_tid = Hashtbl.create 8 in
  List.iter
    (fun (s : span) ->
      let group =
        match Hashtbl.find_opt per_tid s.tid with
        | Some g -> g
        | None ->
          let g = ref [] in
          Hashtbl.add per_tid s.tid g;
          g
      in
      group := s :: !group)
    (spans ());
  Hashtbl.iter
    (fun _tid group ->
      (* Start order + depth fully determine nesting: walk spans in
         start order keeping the stack of currently-open ancestors. *)
      let ordered =
        List.sort (fun (a : span) (b : span) -> compare a.seq b.seq) !group
      in
      let stack = ref [] in
      List.iter
        (fun (s : span) ->
          while List.length !stack > s.depth do
            stack := List.tl !stack
          done;
          let node = { nspan = s; rev_children = [] } in
          (match !stack with
          | parent :: _ -> parent.rev_children <- node :: parent.rev_children
          | [] -> roots := node :: !roots);
          stack := node :: !stack)
        ordered)
    per_tid;
  let rec freeze n =
    { span = n.nspan; children = List.rev_map freeze n.rev_children }
  in
  let key t = (t.span.name, attrs_json t.span.attrs) in
  !roots |> List.map freeze |> List.sort (fun a b -> compare (key a) (key b))

let signature () =
  let buf = Buffer.create 256 in
  let rec render indent t =
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_string buf t.span.name;
    if t.span.attrs <> [] then Buffer.add_string buf (attrs_json t.span.attrs);
    Buffer.add_char buf '\n';
    List.iter (render (indent + 2)) t.children
  in
  List.iter (render 0) (forest ());
  Buffer.contents buf

(* ---- exporters ---- *)

let micros_since epoch ns = Int64.to_float (Int64.sub ns epoch) /. 1000.

let to_chrome () =
  let ss = spans () in
  let epoch =
    List.fold_left
      (fun acc s -> if s.start_ns < acc then s.start_ns else acc)
      Int64.max_int ss
  in
  let event s =
    Stable_json.obj
      [
        ("name", Stable_json.str s.name);
        ("cat", Stable_json.str "crs");
        ("ph", Stable_json.str "X");
        ("ts", Stable_json.float (micros_since epoch s.start_ns));
        ("dur", Stable_json.float (Int64.to_float s.dur_ns /. 1000.));
        ("pid", Stable_json.int 1);
        ("tid", Stable_json.int s.tid);
        ("args", attrs_json s.attrs);
      ]
  in
  Stable_json.obj
    [
      ("traceEvents", Stable_json.arr (List.map event ss));
      ("displayTimeUnit", Stable_json.str "ns");
    ]

let to_jsonl () =
  let line s =
    Stable_json.obj
      [
        ("name", Stable_json.str s.name);
        ("tid", Stable_json.int s.tid);
        ("seq", Stable_json.int s.seq);
        ("depth", Stable_json.int s.depth);
        ("start_ns", Int64.to_string s.start_ns);
        ("dur_ns", Int64.to_string s.dur_ns);
        ("attrs", attrs_json s.attrs);
      ]
    ^ "\n"
  in
  String.concat "" (List.map line (spans ()))
