(** Span-based tracer with per-domain buffers.

    A span is a named, timed region of execution with key/value
    attributes; spans nest, so a run decomposes into a forest (one tree
    per top-level operation). Recording is off by default and the
    fast-path cost when disabled is a single [Atomic.get] — hot code may
    call {!with_span} unconditionally, but should guard attribute-list
    construction behind {!enabled} (or use {!with_span_l}) to avoid
    allocating when nothing listens.

    Each domain records into its own buffer ([Domain.DLS]), so tracing
    is safe under the campaign [Pool] without locking on the hot path.
    Which pool domain runs which item is scheduling-dependent, so raw
    buffers are not deterministic; {!forest} rebuilds the span trees and
    sorts roots by (name, attributes), which {i is} deterministic as
    long as concurrent root spans carry distinguishing attributes (the
    campaign runner tags each item span with its unique id).
    {!signature} renders that sorted forest without timestamps — two
    runs of the same seeded workload must produce equal signatures
    whatever the pool size.

    Exporters: {!to_chrome} writes Chrome [trace_event] JSON (load in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto});
    {!to_jsonl} writes one span object per line for ad-hoc analysis. *)

(** Attribute value. *)
type value = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  attrs : (string * value) list;
  start_ns : int64;  (** monotonic clock, arbitrary epoch *)
  dur_ns : int64;
  tid : int;  (** recording domain's trace id (dense, assigned on first span) *)
  seq : int;  (** start order within the recording domain *)
  depth : int;  (** nesting depth within the recording domain, 0 = root *)
}

(** A span and the spans started (and finished) inside it, in start
    order. *)
type tree = { span : span; children : tree list }

val monotonic_ns : unit -> int64
(** Raw [CLOCK_MONOTONIC] reading (C stub, no allocation beyond the
    boxed [int64]). *)

(** {2 Recording} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Tracing is process-global and off by default. Flip it before the
    traced workload; flipping it mid-span loses that span. *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~attrs name f] runs [f ()]; when tracing is enabled the
    region is recorded as a span. Exceptions propagate, and the span is
    still recorded with an ["error"] attribute appended. *)

val with_span_l :
  (unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** Like {!with_span} but the attribute list is built only when tracing
    is enabled — for call sites where constructing it costs. *)

val add_attrs : (string * value) list -> unit
(** Append attributes to the innermost open span of the calling domain
    (no-op when tracing is disabled or no span is open). Used by hooks
    that only know their numbers — counter deltas, result sizes — after
    the work ran. *)

(** {2 Collection} *)

val spans : unit -> span list
(** All recorded spans from every domain's buffer, sorted by
    [(tid, seq)]. Call after concurrent work has joined. *)

val forest : unit -> tree list
(** Span trees rebuilt from [(tid, seq, depth)], roots from all domains
    merged and sorted by (name, encoded attributes). *)

val signature : unit -> string
(** Deterministic rendering of {!forest}: one line per span, indented by
    depth, [name{attrs}] — no timestamps, tids or seqs. The trace
    determinism tests compare signatures across pool sizes. *)

val reset : unit -> unit
(** Drop all recorded spans (buffers stay registered). *)

(** {2 Exporters} *)

val to_chrome : unit -> string
(** Chrome [trace_event] JSON: [{"traceEvents":[...],"displayTimeUnit":"ns"}],
    one complete-duration ([ph:"X"]) event per span with [ts]/[dur] in
    microseconds rebased to the earliest span, [pid] 1, [tid] the
    recording domain, attributes under [args]. *)

val to_jsonl : unit -> string
(** One stable-JSON object per span per line:
    [{"name","tid","seq","depth","start_ns","dur_ns","attrs"}]. *)
