(* Tests for splittable bin packing with cardinality constraints (the
   paper's Section 2 baseline) and its use as a CRSharing relaxation. *)

module Q = Crs_num.Rational
module S = Crs_binpack.Splittable

let q = Helpers.q

let test_validation () =
  Alcotest.check_raises "k >= 1" (Invalid_argument "Splittable.make: k must be >= 1")
    (fun () -> ignore (S.make ~k:0 [| Q.one |]));
  Alcotest.check_raises "positive sizes"
    (Invalid_argument "Splittable.make: sizes must be positive") (fun () ->
      ignore (S.make ~k:2 [| Q.zero |]))

let test_next_fit_simple () =
  (* Three halves with k=2: bin1 = two halves, bin2 = one. *)
  let t = S.make ~k:2 [| Q.half; Q.half; Q.half |] in
  let p = S.next_fit t in
  Alcotest.(check bool) "valid" true (Result.is_ok (S.check t p));
  Alcotest.(check int) "2 bins" 2 (S.num_bins p)

let test_next_fit_splits () =
  (* An item larger than a bin must span bins. *)
  let t = S.make ~k:3 [| q "5/2" |] in
  let p = S.next_fit t in
  Alcotest.(check bool) "valid" true (Result.is_ok (S.check t p));
  Alcotest.(check int) "3 bins for size 5/2" 3 (S.num_bins p)

let test_cardinality_closes_bins () =
  (* Tiny items with k=2: cardinality, not capacity, limits bins. *)
  let t = S.make ~k:2 (Array.make 6 (q "1/100")) in
  let p = S.next_fit t in
  Alcotest.(check bool) "valid" true (Result.is_ok (S.check t p));
  Alcotest.(check int) "3 bins (6 items / k=2)" 3 (S.num_bins p);
  Alcotest.(check int) "cardinality bound" 3 (S.cardinality_bound t)

let test_check_catches_bad_packings () =
  let t = S.make ~k:2 [| Q.half; Q.half |] in
  let overfull = { S.bins = [ [ (0, Q.half); (1, q "3/5") ] ] } in
  Alcotest.(check bool) "overfull" true (Result.is_error (S.check t overfull));
  let too_many = { S.bins = [ [ (0, q "1/4"); (0, q "1/4"); (1, Q.half) ] ] } in
  Alcotest.(check bool) "cardinality" true (Result.is_error (S.check t too_many));
  let missing = { S.bins = [ [ (0, Q.half) ] ] } in
  Alcotest.(check bool) "item not fully packed" true (Result.is_error (S.check t missing))

let test_bounds () =
  let t = S.make ~k:2 [| q "3/4"; q "3/4"; q "3/4" |] in
  Alcotest.(check int) "material" 3 (S.material_bound t);
  Alcotest.(check int) "cardinality" 2 (S.cardinality_bound t);
  Alcotest.(check bool) "lower bound >= both" true (S.lower_bound t >= 3);
  Alcotest.check Helpers.check_q "guarantee k=2" (q "3/2") (S.next_fit_guarantee ~k:2);
  Alcotest.check Helpers.check_q "guarantee k=5" (q "9/5") (S.next_fit_guarantee ~k:5)

let test_interleave_family_ratio () =
  (* NextFit on the 3/5,1/5 family: ~7n/6 bins vs OPT = n. *)
  let n = 36 in
  let t = S.interleave_family ~n in
  let nf = S.num_bins (S.next_fit t) in
  let opt = S.interleave_family_opt ~n in
  Alcotest.(check bool) "valid" true (Result.is_ok (S.check t (S.next_fit t)));
  let ratio = float_of_int nf /. float_of_int opt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [1.1, 1.5]" ratio)
    true
    (ratio >= 1.1 && ratio <= 1.5);
  (* The decreasing-order ablation also cannot beat OPT. *)
  Alcotest.(check bool) "NFD >= OPT" true (S.num_bins (S.next_fit_decreasing t) >= opt)

let prop_next_fit_sound =
  Helpers.qcheck_case ~count:80 "NextFit packings valid; bins within 2-1/k of LB"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 5))
    (fun (seed, k) ->
      let st = Random.State.make [| seed |] in
      let n = 1 + Random.State.int st 12 in
      let sizes =
        Array.init n (fun _ -> Q.of_ints (1 + Random.State.int st 30) 10)
      in
      let t = S.make ~k sizes in
      let p = S.next_fit t in
      let pd = S.next_fit_decreasing t in
      let lb = max (S.lower_bound t) 1 in
      Result.is_ok (S.check t p)
      && Result.is_ok (S.check t pd)
      && S.num_bins p >= S.lower_bound t
      (* The certified bound's defining inequality. *)
      && Q.(Q.of_int (S.num_bins p) <= Q.mul (S.next_fit_guarantee ~k) (Q.of_int lb)))

(* The relaxation property: bin-packing lower bound never exceeds the
   true CRSharing optimum. *)
let prop_relaxation_sound =
  Helpers.qcheck_case ~count:40 "bin-packing relaxation bounds CRSharing OPT"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let opt = Crs_algorithms.Brute_force.makespan instance in
      S.crsharing_relaxation_bound instance <= opt)

let test_relaxation_on_figure1 () =
  let instance = Crs_generators.Adversarial.figure1 in
  let bound = S.crsharing_relaxation_bound instance in
  Alcotest.(check bool) "sound" true (bound <= 6);
  Alcotest.(check bool) "non-trivial" true (bound >= 4)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "next-fit: simple" `Quick test_next_fit_simple;
    Alcotest.test_case "next-fit: splits oversized items" `Quick test_next_fit_splits;
    Alcotest.test_case "next-fit: cardinality closes bins" `Quick
      test_cardinality_closes_bins;
    Alcotest.test_case "check: rejects bad packings" `Quick test_check_catches_bad_packings;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "interleave family: certified NF gap" `Quick
      test_interleave_family_ratio;
    prop_next_fit_sound;
    prop_relaxation_sound;
    Alcotest.test_case "relaxation bound on Figure 1" `Quick test_relaxation_on_figure1;
  ]
