(* Tests for the extensions: footnote-3 rescaling, arbitrary sizes,
   continuous time. *)

module Q = Crs_num.Rational
open Crs_core
module X = Crs_extension

let q = Helpers.q

(* ---------- rescaling (footnote 3) ---------- *)

let test_rescale_identity_below_one () =
  let j = X.Rescale.make ~requirement:(q "1/2") ~size:(q "3") in
  let r = X.Rescale.rescale j in
  Alcotest.check Helpers.check_q "requirement kept" (q "1/2") (Job.requirement r);
  Alcotest.check Helpers.check_q "size kept" (q "3") (Job.size r)

let test_rescale_above_one () =
  (* r=2, p=3  ->  r=1, p=6: same work per the paper's footnote. *)
  let j = X.Rescale.make ~requirement:(q "2") ~size:(q "3") in
  let r = X.Rescale.rescale j in
  Alcotest.check Helpers.check_q "requirement capped" Q.one (Job.requirement r);
  Alcotest.check Helpers.check_q "volume scaled" (q "6") (Job.size r);
  Alcotest.check Helpers.check_q "work invariant" (X.Rescale.work j) (Job.work r)

let test_rescale_behavioural_equivalence () =
  (* A requirement-2 job under shares <= 1 progresses at share/2 volume
     per step; the rescaled job at share/1 over twice the volume: same
     completion times under any schedule. *)
  let original =
    (* Emulate r=2 by rescaling; then compare against the direct r=1
       double-volume encoding executed on the same shares. *)
    X.Rescale.rescale_instance [| [| X.Rescale.make ~requirement:(q "2") ~size:Q.one |] |]
  in
  let direct = Instance.create [| [| Job.make ~requirement:Q.one ~size:Q.two |] |] in
  let sched = Helpers.schedule_of_strings [ [ "1" ]; [ "1/2" ]; [ "1/2" ] ] in
  let t1 = Execution.run_exn original sched in
  let t2 = Execution.run_exn direct sched in
  Alcotest.(check int) "same makespan" (Execution.makespan t1) (Execution.makespan t2)

let test_rescale_validation () =
  Alcotest.check_raises "zero requirement"
    (Invalid_argument "Rescale.make: requirement must be > 0") (fun () ->
      ignore (X.Rescale.make ~requirement:Q.zero ~size:Q.one))

(* ---------- general sizes ---------- *)

let test_split_integer_sizes () =
  let inst =
    Instance.create
      [| [| Job.make ~requirement:(q "1/2") ~size:(q "3") |]; [| Job.unit (q "1/4") |] |]
  in
  let split = X.General.split_integer_sizes inst in
  Alcotest.(check int) "3 unit jobs" 3 (Instance.n_i split 0);
  Alcotest.(check bool) "unit sizes" true (Instance.is_unit_size split);
  Alcotest.check Helpers.check_q "work preserved" (Instance.total_work inst)
    (Instance.total_work split);
  Alcotest.check_raises "fractional size rejected"
    (Invalid_argument "General.split_integer_sizes: sizes must be positive integers")
    (fun () ->
      ignore
        (X.General.split_integer_sizes
           (Instance.create [| [| Job.make ~requirement:Q.one ~size:(q "3/2") |] |])))

let test_bracket_optimum () =
  let inst =
    Instance.create
      [|
        [| Job.make ~requirement:(q "1/2") ~size:(q "2") |];
        [| Job.make ~requirement:(q "1/2") ~size:(q "2") |];
      |]
  in
  let lower, upper = X.General.bracket_optimum inst in
  Alcotest.(check bool) "bracket ordered" true (lower <= upper);
  (* Both jobs need 2 volume units at speed cap 1 => >= 2 steps; total
     work 2 => exactly 2 possible only if both run at full speed: their
     requirements sum to 1 so both CAN. *)
  Alcotest.(check int) "lower" 2 lower;
  Alcotest.(check int) "upper" 2 upper

let prop_general_round_robin_vs_bound =
  (* The paper conjectures Theorem 3 transfers to arbitrary sizes; we can
     check the one-sided certified version: RR within 2x of the certified
     lower bound + 1 (the +1 covers the ceiling granularity). *)
  Helpers.qcheck_case ~count:25 "RR within 2*LB + 1 on sized jobs"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let inst = Crs_generators.Random_gen.sized_jobs ~m:3 ~n:3 ~granularity:6 ~max_size:3 st in
      let rr =
        Execution.makespan
          (Execution.run_exn inst (Crs_algorithms.Round_robin.schedule inst))
      in
      let lb = Lower_bounds.combined inst in
      rr <= (2 * lb) + 1)

(* ---------- continuous time ---------- *)

let test_continuous_single_job () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ] ] in
  let r = X.Continuous.greedy_balance inst in
  (* Work 1/2 at max rate 1/2 (its own requirement): one time unit. *)
  Alcotest.check Helpers.check_q "makespan 1" Q.one r.X.Continuous.makespan

let test_continuous_beats_discrete () =
  (* Two big jobs on two processors: discrete needs 2 steps, continuous
     gets the second processor started mid-interval... here both have
     requirement 1: continuous also needs 2. Use asymmetric jobs where
     continuity helps. *)
  let inst = Helpers.instance_of_strings [ [ "3/4" ]; [ "3/4" ] ] in
  let r = X.Continuous.greedy_balance inst in
  (* Continuous: job 1 at rate 3/4 finishes at 1; job 2 received 1/4·1,
     then rate 3/4: finishes at 1 + (3/4 - 1/4)/(3/4) = 5/3. *)
  Alcotest.check Helpers.check_q "continuous makespan 5/3" (q "5/3")
    r.X.Continuous.makespan;
  Alcotest.(check int) "discrete takes 2" 2 (Crs_algorithms.Greedy_balance.makespan inst);
  Alcotest.check Helpers.check_q "overhead 1/3" (q "1/3")
    (X.Continuous.discretization_overhead inst)

let test_continuous_work_bound () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1/2" ] ] in
  Alcotest.check Helpers.check_q "bound = max(work, volume)" Q.two
    (X.Continuous.work_lower_bound inst)

let prop_continuous_sound =
  (* Continuous GB usually beats discrete GB but not always (different
     greedy trajectories; the discrete one may luck into a better job
     order), so the sound invariants are: at least the continuous work
     bound, and no worse than the discrete makespan plus the number of
     jobs (each completion event restarts at most one step's worth of
     slack). *)
  Helpers.qcheck_case ~count:40 "continuous GB within sound envelope"
    (Helpers.gen_instance ()) (fun instance ->
      let r = X.Continuous.greedy_balance instance in
      let discrete = Q.of_int (Crs_algorithms.Greedy_balance.makespan instance) in
      let slack = Q.of_int (Instance.total_jobs instance) in
      Q.(r.X.Continuous.makespan >= X.Continuous.work_lower_bound instance)
      && Q.(r.X.Continuous.makespan <= Q.add discrete slack))

let prop_continuous_completions_ordered =
  Helpers.qcheck_case ~count:30 "per-processor completion times increase"
    (Helpers.gen_instance ()) (fun instance ->
      let r = X.Continuous.greedy_balance instance in
      Array.for_all
        (fun row ->
          let ok = ref true in
          for k = 0 to Array.length row - 2 do
            let a = row.(k) and b = row.(k + 1) in
            if Q.(a >= b) then ok := false
          done;
          !ok)
        r.X.Continuous.completions)

(* ---------- free assignment (Section 9 outlook) ---------- *)

let test_free_assignment_bracket () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1/2" ] ] in
  let lb, ub, fixed =
    X.Free_assignment.price_of_fixed_assignment
      ~exact:Crs_algorithms.Solver.optimal_makespan inst
  in
  Alcotest.(check bool) "lb <= fixed" true (lb <= fixed);
  Alcotest.(check bool) "lb <= ub" true (lb <= ub);
  (* Three half-jobs, m=2: both free and fixed need 2 steps. *)
  Alcotest.(check int) "fixed" 2 fixed;
  Alcotest.(check int) "free lb" 2 lb

let test_free_assignment_schedulability () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ]; [ "1/2" ] ] in
  let relax = X.Free_assignment.relaxation inst in
  let nf = Crs_binpack.Splittable.next_fit relax in
  Alcotest.(check bool) "NextFit packings schedulable" true
    (X.Free_assignment.packing_is_schedulable inst nf);
  (* Two parts of one job in a bin is not schedulable. *)
  let bad = { Crs_binpack.Splittable.bins = [ [ (0, q "1/4"); (0, q "1/4") ] ] } in
  Alcotest.(check bool) "same-job bin rejected" false
    (X.Free_assignment.packing_is_schedulable inst bad)

let prop_free_assignment_relaxes =
  Helpers.qcheck_case ~count:40 "free-assignment LB <= fixed OPT; NF schedulable"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let lb, _ub, fixed =
        X.Free_assignment.price_of_fixed_assignment
          ~exact:Crs_algorithms.Brute_force.makespan instance
      in
      lb <= fixed
      && X.Free_assignment.packing_is_schedulable instance
           (Crs_binpack.Splittable.next_fit (X.Free_assignment.relaxation instance)))

(* ---------- multiple resources ---------- *)

module MR = X.Multi_resource

let test_multi_resource_validation () =
  Alcotest.(check bool) "bad requirement rejected" true
    (try ignore (MR.job ~requirements:[| q "3/2" |] ~size:Q.one); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dimension mismatch rejected" true
    (try
       ignore
         (MR.create ~d:2 [| [| MR.unit_job [| Q.half |] |] |]);
       false
     with Invalid_argument _ -> true)

let test_multi_resource_two_resources () =
  (* Two jobs: one bus-heavy, one memory-heavy — they can run at full
     speed together because they stress different resources. *)
  let t =
    MR.create ~d:2
      [|
        [| MR.unit_job [| q "9/10"; q "1/10" |] |];
        [| MR.unit_job [| q "1/10"; q "9/10" |] |];
      |]
  in
  let r = MR.greedy_balance t in
  Alcotest.(check bool) "valid" true (Result.is_ok (MR.check t r));
  Alcotest.(check int) "parallel in one step" 1 r.MR.makespan;
  (* Same jobs forced onto ONE resource would need two steps. *)
  let clash =
    MR.create ~d:2
      [|
        [| MR.unit_job [| q "9/10"; q "1/10" |] |];
        [| MR.unit_job [| q "9/10"; q "1/10" |] |];
      |]
  in
  let rc = MR.greedy_balance clash in
  Alcotest.(check int) "contended resource forces 2 steps" 2 rc.MR.makespan;
  Alcotest.(check int) "lower bound sees the bottleneck" 2 (MR.lower_bound clash)

let test_multi_resource_leontief_gating () =
  (* A job needing (1/2, 1/2) next to one needing (1/2, 0): the second
     resource is free for the second job, but resource 1 gates both. *)
  let t =
    MR.create ~d:2
      [|
        [| MR.unit_job [| Q.half; Q.half |] |];
        [| MR.unit_job [| Q.half; Q.zero |] |];
      |]
  in
  let r = MR.greedy_balance t in
  Alcotest.(check int) "fits in one step" 1 r.MR.makespan;
  Alcotest.(check bool) "valid" true (Result.is_ok (MR.check t r))

let prop_multi_resource_d1_bridge =
  Helpers.qcheck_case ~count:50 "d=1 embedding reproduces core GreedyBalance"
    (Helpers.gen_instance ()) MR.greedy_matches_single_resource

let prop_multi_resource_sound =
  Helpers.qcheck_case ~count:40 "vector greedy: valid runs above the lower bound"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, d) ->
      let st = Random.State.make [| seed |] in
      let m = 2 + Random.State.int st 2 in
      let t =
        MR.create ~d
          (Array.init m (fun _ ->
               Array.init
                 (1 + Random.State.int st 3)
                 (fun _ ->
                   MR.unit_job
                     (Array.init d (fun _ ->
                          Q.of_ints (1 + Random.State.int st 10) 10)))))
      in
      let greedy = MR.greedy_balance t in
      let unif = MR.uniform t in
      Result.is_ok (MR.check t greedy)
      && Result.is_ok (MR.check t unif)
      && greedy.MR.makespan >= MR.lower_bound t
      && unif.MR.makespan >= MR.lower_bound t)

let suite =
  [
    Alcotest.test_case "rescale: r <= 1 untouched" `Quick test_rescale_identity_below_one;
    Alcotest.test_case "rescale: footnote 3" `Quick test_rescale_above_one;
    Alcotest.test_case "rescale: behavioural equivalence" `Quick
      test_rescale_behavioural_equivalence;
    Alcotest.test_case "rescale: validation" `Quick test_rescale_validation;
    Alcotest.test_case "general: unit splitting" `Quick test_split_integer_sizes;
    Alcotest.test_case "general: optimum bracketing" `Quick test_bracket_optimum;
    prop_general_round_robin_vs_bound;
    Alcotest.test_case "continuous: single job" `Quick test_continuous_single_job;
    Alcotest.test_case "continuous: beats discrete" `Quick test_continuous_beats_discrete;
    Alcotest.test_case "continuous: work bound" `Quick test_continuous_work_bound;
    prop_continuous_sound;
    prop_continuous_completions_ordered;
    Alcotest.test_case "free assignment: bracket" `Quick test_free_assignment_bracket;
    Alcotest.test_case "free assignment: schedulability" `Quick
      test_free_assignment_schedulability;
    prop_free_assignment_relaxes;
    Alcotest.test_case "multi-resource: validation" `Quick test_multi_resource_validation;
    Alcotest.test_case "multi-resource: complementary demands" `Quick
      test_multi_resource_two_resources;
    Alcotest.test_case "multi-resource: Leontief gating" `Quick
      test_multi_resource_leontief_gating;
    prop_multi_resource_d1_bridge;
    prop_multi_resource_sound;
  ]
