(* Tests for the many-core bus simulator substrate. *)

module M = Crs_manycore

let task name phases = M.Task.make ~name phases

let test_task_validation () =
  Alcotest.check_raises "empty phases" (Invalid_argument "Task.make: empty phase list")
    (fun () -> ignore (task "t" []));
  Alcotest.check_raises "bad demand" (Invalid_argument "Task.make: demand must lie in (0,1]")
    (fun () -> ignore (task "t" [ M.Task.Io { demand = 1.5; volume = 1.0 } ]));
  let t = task "t" [ M.Task.Compute 2.0; M.Task.Io { demand = 0.5; volume = 3.0 } ] in
  Alcotest.(check (float 1e-9)) "ideal ticks" 5.0 (M.Task.total_ideal_ticks t);
  Alcotest.(check (float 1e-9)) "io fraction" 0.6 (M.Task.io_fraction t);
  Alcotest.(check int) "phases" 2 (M.Task.num_phases t)

let test_single_task_full_bus () =
  (* Alone on the bus, a task finishes in its ideal time; the unused
     capacity is 0.2 per I/O tick plus 1.0 per compute tick. *)
  let t = task "solo" [ M.Task.Io { demand = 0.8; volume = 4.0 }; M.Task.Compute 2.0 ] in
  let r = M.Engine.run M.Policy.fair_share [| t |] in
  Alcotest.(check int) "ideal makespan" 6 r.M.Engine.makespan;
  Alcotest.(check (float 1e-6)) "unused capacity" 2.8 r.M.Engine.wasted_bandwidth

let test_contention_slows_down () =
  (* Two full-demand streams must share: each runs at half speed. *)
  let mk i = task (Printf.sprintf "s%d" i) [ M.Task.Io { demand = 1.0; volume = 4.0 } ] in
  let r = M.Engine.run M.Policy.fair_share [| mk 0; mk 1 |] in
  Alcotest.(check int) "8 ticks for 2x4 at capacity 1" 8 r.M.Engine.makespan

let test_fair_share_water_filling () =
  (* A small demand caps out; the surplus flows to the big one. *)
  let small = task "small" [ M.Task.Io { demand = 0.2; volume = 5.0 } ] in
  let big = task "big" [ M.Task.Io { demand = 0.8; volume = 5.0 } ] in
  let r = M.Engine.run M.Policy.fair_share [| small; big |] in
  (* Both can run at full speed simultaneously (0.2 + 0.8 = 1). *)
  Alcotest.(check int) "both ideal" 5 r.M.Engine.makespan;
  Alcotest.(check (float 1e-6)) "zero waste" 0.0 r.M.Engine.wasted_bandwidth

let test_compute_needs_no_bus () =
  let c = task "compute" [ M.Task.Compute 3.0 ] in
  let s = task "stream" [ M.Task.Io { demand = 1.0; volume = 3.0 } ] in
  let r = M.Engine.run M.Policy.fair_share [| c; s |] in
  Alcotest.(check int) "run in parallel" 3 r.M.Engine.makespan

let test_policies_feasible () =
  let st = Random.State.make [| 12 |] in
  let tasks = M.Workload.io_burst ~cores:6 ~phases:3 ~io_intensity:0.7 st in
  List.iter
    (fun (p : M.Policy.t) ->
      let r = M.Engine.run p tasks in
      Alcotest.(check bool) (p.name ^ " completes") true (r.M.Engine.makespan > 0);
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: task %d completion recorded" p.name i)
            true
            (c >= 1 && c <= r.M.Engine.makespan))
        r.M.Engine.completion;
      (* Per-tick feasibility of recorded shares. *)
      List.iter
        (fun (rec_ : M.Engine.tick_record) ->
          let total = Array.fold_left ( +. ) 0.0 rec_.M.Engine.shares in
          Alcotest.(check bool) "share sum <= 1" true (total <= 1.0 +. 1e-9))
        r.M.Engine.records)
    M.Policy.all

let test_round_robin_gates_phases () =
  (* Two 2-phase tasks: round-robin must not start phase 2 anywhere until
     phase 1 finished everywhere. *)
  let t1 = task "a" [ M.Task.Io { demand = 1.0; volume = 2.0 }; M.Task.Io { demand = 0.1; volume = 1.0 } ] in
  let t2 = task "b" [ M.Task.Io { demand = 0.1; volume = 1.0 }; M.Task.Io { demand = 1.0; volume = 2.0 } ] in
  let r = M.Engine.run M.Policy.round_robin_phases [| t1; t2 |] in
  (* Phase boundaries: t2's first phase (0.1 work) finishes immediately,
     but its second phase waits for t1's heavy first phase. *)
  let first_finish_b2 =
    List.find_map
      (fun (rec_ : M.Engine.tick_record) ->
        if List.mem (1, 1) rec_.M.Engine.phases_finished then Some rec_.M.Engine.time
        else None)
      r.M.Engine.records
  in
  let first_finish_a1 =
    List.find_map
      (fun (rec_ : M.Engine.tick_record) ->
        if List.mem (0, 0) rec_.M.Engine.phases_finished then Some rec_.M.Engine.time
        else None)
      r.M.Engine.records
  in
  match (first_finish_a1, first_finish_b2) with
  | Some a, Some b -> Alcotest.(check bool) "b2 ends after a1" true (b > a)
  | _ -> Alcotest.fail "missing phase completions"

let test_stats () =
  let t = task "t" [ M.Task.Io { demand = 0.5; volume = 2.0 } ] in
  let r = M.Engine.run M.Policy.fair_share [| t |] in
  let s = M.Stats.of_result [| t |] r in
  Alcotest.(check int) "makespan" 2 s.M.Stats.makespan;
  Alcotest.(check (float 1e-9)) "slowdown 1.0" 1.0 s.M.Stats.max_slowdown;
  Alcotest.(check (float 1e-9)) "bus half used" 0.5 s.M.Stats.bus_utilization

let test_bridge_to_crsharing () =
  let tasks =
    [|
      task "a" [ M.Task.Io { demand = 0.5; volume = 2.0 }; M.Task.Compute 1.0 ];
      task "b" [ M.Task.Io { demand = 0.25; volume = 1.5 } ];
    |]
  in
  let inst = M.Workload.to_crsharing ~granularity:8 tasks in
  Alcotest.(check int) "2 processors" 2 (Crs_core.Instance.m inst);
  (* a: 2 unit I/O jobs (r=1/2) + 1 compute (r=0); b: 1 full (1/4) + 1
     fractional (1/4 * 1/2 = 1/8, exact on the 1/8 grid). *)
  Alcotest.(check int) "row a" 3 (Crs_core.Instance.n_i inst 0);
  Alcotest.(check int) "row b" 2 (Crs_core.Instance.n_i inst 1);
  Alcotest.check Helpers.check_q "a's I/O requirement" (Helpers.q "1/2")
    (Crs_core.Job.requirement (Crs_core.Instance.job inst 0 0));
  Alcotest.check Helpers.check_q "b's fractional tail" (Helpers.q "1/8")
    (Crs_core.Job.requirement (Crs_core.Instance.job inst 1 1))

let prop_greedy_balance_never_losing_badly =
  Helpers.qcheck_case ~count:15 "simulator GB within 2x of the work bound"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let tasks = M.Workload.io_burst ~cores:5 ~phases:3 ~io_intensity:0.8 st in
      let r = M.Engine.run M.Policy.greedy_balance tasks in
      (* Work bound: total I/O work at bus capacity 1 + per-core tick count. *)
      let work =
        Array.fold_left
          (fun acc (t : M.Task.t) ->
            List.fold_left
              (fun acc -> function
                | M.Task.Compute _ -> acc
                | M.Task.Io { demand; volume } -> acc +. (demand *. volume))
              acc t.M.Task.phases)
          0.0 tasks
      in
      let ticks =
        Array.fold_left
          (fun acc (t : M.Task.t) -> max acc (M.Task.total_ideal_ticks t))
          0.0 tasks
      in
      float_of_int r.M.Engine.makespan <= (2.0 *. Float.max work ticks) +. 2.0)

let test_trace_format_roundtrip () =
  let tasks =
    [|
      task "a" [ M.Task.Compute 2.5; M.Task.Io { demand = 0.8; volume = 3.0 } ];
      task "b" [ M.Task.Io { demand = 0.5; volume = 12.0 } ];
    |]
  in
  match M.Trace_format.parse (M.Trace_format.to_string tasks) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check int) "task count" 2 (Array.length parsed);
    Alcotest.(check string) "names" "a" parsed.(0).M.Task.name;
    Alcotest.(check (float 1e-9)) "ideal ticks preserved"
      (M.Task.total_ideal_ticks tasks.(0))
      (M.Task.total_ideal_ticks parsed.(0))

let test_trace_format_errors () =
  let bad input =
    Alcotest.(check bool) ("rejects: " ^ input) true
      (Result.is_error (M.Trace_format.parse input))
  in
  bad "";
  bad "io 0.5 2\n";
  bad "task t\n";
  bad "task t\n  io 1.5 2\n";
  bad "task t\n  frobnicate 3\n";
  bad "task t\n  io abc 2\n"

let test_run_csv_and_svg () =
  let tasks =
    [| task "x" [ M.Task.Io { demand = 0.5; volume = 2.0 } ]; task "y" [ M.Task.Compute 1.0 ] |]
  in
  let r = M.Engine.run M.Policy.fair_share tasks in
  let csv = M.Trace_format.run_to_csv r in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  (* header + ticks * cores rows *)
  Alcotest.(check int) "csv rows" (1 + (r.M.Engine.makespan * 2)) (List.length lines);
  let svg = M.Trace_format.timeline_svg tasks r in
  Alcotest.(check bool) "svg has task names" true
    (Helpers.contains ~needle:">x<" svg && Helpers.contains ~needle:">y<" svg)

let suite =
  [
    Alcotest.test_case "task: validation and metrics" `Quick test_task_validation;
    Alcotest.test_case "trace format: roundtrip" `Quick test_trace_format_roundtrip;
    Alcotest.test_case "trace format: rejects bad input" `Quick test_trace_format_errors;
    Alcotest.test_case "run export: csv + timeline svg" `Quick test_run_csv_and_svg;
    Alcotest.test_case "engine: solo task ideal time" `Quick test_single_task_full_bus;
    Alcotest.test_case "engine: contention halves speed" `Quick test_contention_slows_down;
    Alcotest.test_case "policy: fair-share water filling" `Quick
      test_fair_share_water_filling;
    Alcotest.test_case "engine: compute needs no bus" `Quick test_compute_needs_no_bus;
    Alcotest.test_case "policies: all feasible and complete" `Quick test_policies_feasible;
    Alcotest.test_case "round-robin gates phases" `Quick test_round_robin_gates_phases;
    Alcotest.test_case "stats derivation" `Quick test_stats;
    Alcotest.test_case "bridge to the exact model" `Quick test_bridge_to_crsharing;
    prop_greedy_balance_never_losing_badly;
  ]
