(* Tests for the scheduling hypergraph (Section 3.2) and the Lemma 5 / 6
   lower bounds (Section 8.1), pinned on Figure 1. *)

module Q = Crs_num.Rational
open Crs_core
module G = Crs_hypergraph.Sched_graph
module B = Crs_hypergraph.Bounds
module A = Crs_generators.Adversarial

(* The Figure 1 schedule: greedily finish as many jobs as possible, i.e.
   prioritize smaller remaining requirements. *)
let figure1_graph () =
  let sched =
    Policy.run Crs_algorithms.Heuristics.smallest_requirement_first A.figure1
  in
  G.of_trace (Execution.run_exn A.figure1 sched)

let test_figure1_shape () =
  let g = figure1_graph () in
  Alcotest.(check int) "12 nodes (jobs)" 12 (G.num_nodes g);
  Alcotest.(check int) "6 edges (steps)" 6 (G.num_edges g);
  Alcotest.(check int) "3 components" 3 (G.num_components g);
  (* e1 contains the three first jobs. *)
  Alcotest.(check (list (pair int int))) "e_1" [ (0, 0); (1, 0); (2, 0) ] (G.edge g 1);
  Alcotest.check Helpers.check_q "weight of (1,1) is 20%" (Helpers.q "1/5")
    (G.weight g (0, 0));
  (* Components of the Figure 1a schedule (hand-simulated): C1 = e1,e2
     with 5 nodes, C2 = e3,e4,e5 with 6 nodes, C3 = e6 with the single
     last job of processor 2. *)
  let sizes = List.map (fun c -> List.length c.G.nodes) (G.components g) in
  Alcotest.(check (list int)) "component sizes" [ 5; 6; 1 ] sizes;
  let edge_counts = List.map (fun c -> c.G.num_edges) (G.components g) in
  Alcotest.(check (list int)) "component edge counts" [ 2; 3; 1 ] edge_counts;
  let classes = List.map (fun c -> c.G.cls) (G.components g) in
  Alcotest.(check (list int)) "component classes" [ 3; 3; 1 ] classes

let test_figure1_observation2 () =
  let g = figure1_graph () in
  Alcotest.(check bool) "components are contiguous step intervals" true
    (Result.is_ok (G.check_observation_2 g));
  Alcotest.(check bool) "classes non-increasing" true
    (Result.is_ok (G.check_class_monotone g))

let test_component_of_step () =
  let g = figure1_graph () in
  Alcotest.(check int) "step 1 in C1" 0 (G.component_of_step g 1).G.index;
  Alcotest.(check int) "step 6 in C3" 2 (G.component_of_step g 6).G.index

let test_rejects_bad_traces () =
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  let short = Helpers.schedule_of_strings [ [ "1/2" ] ] in
  Alcotest.check_raises "incomplete trace"
    (Invalid_argument "Sched_graph.of_trace: trace does not finish all jobs")
    (fun () -> ignore (G.of_trace (Execution.run_exn inst short)));
  let sized = Instance.create [| [| Job.make ~requirement:Q.one ~size:Q.two |] |] in
  let sched = Helpers.schedule_of_strings [ [ "1" ]; [ "1" ] ] in
  Alcotest.check_raises "non-unit sizes"
    (Invalid_argument "Sched_graph.of_trace: hypergraph defined for unit-size jobs")
    (fun () -> ignore (G.of_trace (Execution.run_exn sized sched)))

let test_figure1_bounds () =
  let g = figure1_graph () in
  (* Σ(#k - 1) = 3 for three 2-edge components. *)
  Alcotest.(check int) "Lemma 5" 3 (B.lemma5 g);
  (* Lemma 6: 5/3 + 4/3 + 3/3 = 4. *)
  Alcotest.(check int) "Lemma 6" 4 (B.lemma6_int g);
  Alcotest.check Helpers.check_q "#_avg = 2" Q.two (B.average_edges_per_component g)

let test_theorem7_formula () =
  Alcotest.check Helpers.check_q "2-1/2" (Helpers.q "3/2") (B.theorem7_bound ~m:2);
  Alcotest.check Helpers.check_q "2-1/5" (Helpers.q "9/5") (B.theorem7_bound ~m:5)

(* The key soundness property: on balanced, non-wasting schedules, every
   lower bound is at most the true optimum (verified exactly on small
   instances). *)
let prop_bounds_below_optimum =
  Helpers.qcheck_case ~count:40 "Lemma 5/6 bounds never exceed OPT"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let opt = Crs_algorithms.Brute_force.makespan instance in
      let trace =
        Execution.run_exn instance (Crs_algorithms.Greedy_balance.schedule instance)
      in
      let g = G.of_trace trace in
      Crs_core.Lower_bounds.combined instance <= opt
      && B.lemma5 g <= opt
      && B.lemma6_int g <= opt
      && B.combined g instance <= opt)

(* Lemma 2 (component size vs edge count): |C_k| >= #_k + q_k - 1 for all
   but the last component; |C_N| >= #_N. *)
let prop_lemma2 =
  Helpers.qcheck_case ~count:60 "Lemma 2 on greedy-balance graphs"
    (Helpers.gen_instance ()) (fun instance ->
      let trace =
        Execution.run_exn instance (Crs_algorithms.Greedy_balance.schedule instance)
      in
      let g = G.of_trace trace in
      let comps = G.components g in
      let n = List.length comps in
      List.for_all
        (fun (c : G.component) ->
          let nodes = List.length c.G.nodes in
          if c.G.index = n - 1 then nodes >= c.G.num_edges
          else nodes >= c.G.num_edges + c.G.cls - 1)
        comps)

let prop_observation2_always =
  Helpers.qcheck_case ~count:60 "Observation 2 on arbitrary schedules"
    (Helpers.gen_instance_with_schedule ()) (fun (instance, schedule) ->
      let g = G.of_trace (Execution.run_exn instance schedule) in
      Result.is_ok (G.check_observation_2 g))

let prop_edges_sum_to_makespan =
  Helpers.qcheck_case ~count:60 "components' edge counts sum to makespan"
    (Helpers.gen_instance_with_schedule ()) (fun (instance, schedule) ->
      let trace = Execution.run_exn instance schedule in
      let g = G.of_trace trace in
      let total =
        List.fold_left (fun acc c -> acc + c.G.num_edges) 0 (G.components g)
      in
      total = Execution.makespan trace && total = G.num_edges g)

let suite =
  [
    Alcotest.test_case "figure 1: nodes, edges, components" `Quick test_figure1_shape;
    Alcotest.test_case "figure 1: observation 2 + class monotone" `Quick
      test_figure1_observation2;
    Alcotest.test_case "component_of_step" `Quick test_component_of_step;
    Alcotest.test_case "rejects incomplete / sized traces" `Quick test_rejects_bad_traces;
    Alcotest.test_case "figure 1: Lemma 5/6 values" `Quick test_figure1_bounds;
    Alcotest.test_case "Theorem 7 bound formula" `Quick test_theorem7_formula;
    prop_bounds_below_optimum;
    prop_lemma2;
    prop_observation2_always;
    prop_edges_sum_to_makespan;
  ]
