(* Tests for the semi-online policy interface. *)

open Crs_core

let test_online_gb_matches_offline () =
  let st = Random.State.make [| 21 |] in
  for _ = 1 to 40 do
    let inst = Helpers.random_instance st in
    let offline = Crs_algorithms.Greedy_balance.schedule inst in
    let online = Policy.run (Online.to_policy Online.greedy_balance) inst in
    Alcotest.(check bool) "bit-identical schedules" true (Schedule.equal offline online)
  done

let test_online_rr_matches_offline_equal_rows () =
  let st = Random.State.make [| 22 |] in
  for _ = 1 to 30 do
    let inst = Crs_generators.Random_gen.equal_rows ~m:3 ~n:4 ~granularity:10 st in
    let offline = Crs_algorithms.Round_robin.schedule inst in
    let online = Policy.run (Online.to_policy Online.round_robin) inst in
    Alcotest.(check bool) "same schedules on equal queues" true
      (Schedule.equal offline online)
  done

let prop_online_never_beats_offline_opt =
  Helpers.qcheck_case ~count:40 "online GB >= OPT; gap sound"
    (Helpers.gen_instance ~max_m:3 ~max_jobs:3 ()) (fun instance ->
      let online, opt =
        Online.clairvoyance_gap ~exact:Crs_algorithms.Brute_force.makespan
          Online.greedy_balance instance
      in
      online >= opt)

let test_online_views () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/4" ]; [] ] in
  let policy : Online.t =
    fun views ->
     Alcotest.(check int) "only active processors" 1 (Array.length views);
     Alcotest.(check int) "proc id" 0 views.(0).Online.proc;
     if views.(0).Online.time = 1 then
       Alcotest.(check int) "jobs behind at start" 1 views.(0).Online.jobs_behind;
     Array.map (fun v -> v.Online.remaining_work) views
  in
  let sched = Policy.run (Online.to_policy policy) inst in
  Alcotest.(check int) "completes in 2 steps" 2 (Schedule.horizon sched)

let test_online_arity_guard () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ] ] in
  let bad : Online.t = fun _ -> [||] in
  Alcotest.check_raises "wrong arity"
    (Failure "Online.to_policy: policy returned wrong arity") (fun () ->
      ignore (Policy.run (Online.to_policy bad) inst))

let suite =
  [
    Alcotest.test_case "online GreedyBalance = offline" `Quick
      test_online_gb_matches_offline;
    Alcotest.test_case "online RoundRobin = offline (equal queues)" `Quick
      test_online_rr_matches_offline_equal_rows;
    prop_online_never_beats_offline_opt;
    Alcotest.test_case "views restrict information" `Quick test_online_views;
    Alcotest.test_case "arity guard" `Quick test_online_arity_guard;
  ]
