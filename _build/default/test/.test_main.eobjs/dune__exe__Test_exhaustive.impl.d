test/test_exhaustive.ml: Alcotest Array Crs_algorithms Crs_binpack Crs_core Crs_num Execution Instance List Lower_bounds Properties
