test/test_model.ml: Alcotest Array Crs_algorithms Crs_core Crs_num Execution Helpers Instance Job QCheck2 Random Result Schedule
