test/test_extension.ml: Alcotest Array Crs_algorithms Crs_binpack Crs_core Crs_extension Crs_generators Crs_num Execution Helpers Instance Job Lower_bounds QCheck2 Random Result
