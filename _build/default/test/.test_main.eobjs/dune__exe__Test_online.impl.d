test/test_online.ml: Alcotest Array Crs_algorithms Crs_core Crs_generators Helpers Online Policy Random Schedule
