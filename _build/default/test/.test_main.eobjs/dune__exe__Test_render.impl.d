test/test_render.ml: Alcotest Array Crs_algorithms Crs_core Crs_generators Crs_hypergraph Crs_render Execution Helpers List String
