test/helpers.ml: Alcotest Array Crs_core Crs_num Crs_util Instance List Policy QCheck2 QCheck_alcotest Random Schedule String
