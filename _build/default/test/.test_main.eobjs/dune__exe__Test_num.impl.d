test/test_num.ml: Alcotest Crs_num Helpers List Printf QCheck2
