test/test_algorithms.ml: Alcotest Crs_algorithms Crs_core Crs_generators Crs_hypergraph Crs_num Execution Helpers Instance Job List Lower_bounds Printf Random
