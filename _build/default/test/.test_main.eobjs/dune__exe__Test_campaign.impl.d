test/test_campaign.ml: Alcotest Array Atomic Crs_campaign Crs_core Helpers List Printf String
