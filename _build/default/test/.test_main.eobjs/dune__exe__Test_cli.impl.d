test/test_cli.ml: Alcotest Filename Fun Helpers In_channel List Out_channel Printf String Sys
