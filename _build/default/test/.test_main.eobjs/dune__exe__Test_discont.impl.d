test/test_discont.ml: Alcotest Array Crs_discont Float Helpers List QCheck2 Random Result
