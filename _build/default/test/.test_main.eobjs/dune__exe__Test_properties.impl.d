test/test_properties.ml: Alcotest Crs_algorithms Crs_core Crs_generators Crs_num Execution Helpers Properties Random Result Schedule Transform
