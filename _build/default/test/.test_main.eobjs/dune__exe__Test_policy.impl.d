test/test_policy.ml: Alcotest Array Crs_algorithms Crs_core Crs_num Execution Helpers Instance List Policy Result Schedule
