test/test_manycore.ml: Alcotest Array Crs_core Crs_manycore Float Helpers List Printf QCheck2 Random Result String
