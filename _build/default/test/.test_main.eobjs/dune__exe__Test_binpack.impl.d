test/test_binpack.ml: Alcotest Array Crs_algorithms Crs_binpack Crs_generators Crs_num Helpers Printf QCheck2 Random Result
