test/test_generators.ml: Alcotest Array Crs_core Crs_generators Crs_num Crs_util Helpers Instance Job List Printf QCheck2 Random
