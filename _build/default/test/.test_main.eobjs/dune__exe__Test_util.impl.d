test/test_util.ml: Alcotest Array Crs_util Helpers Int List QCheck2
