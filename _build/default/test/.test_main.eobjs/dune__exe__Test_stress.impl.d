test/test_stress.ml: Alcotest Array Crs_algorithms Crs_core Crs_extension Crs_generators Crs_manycore Crs_num Execution Helpers Instance List Lower_bounds Random
