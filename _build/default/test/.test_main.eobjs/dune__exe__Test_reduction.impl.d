test/test_reduction.ml: Alcotest Crs_algorithms Crs_core Crs_num Crs_reduction Execution Helpers Instance Job List QCheck2 Random
