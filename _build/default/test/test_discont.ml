(* Tests for the discrete-continuous scheduling baseline. *)

module D = Crs_discont.Discont

let close = Alcotest.(check (float 1e-9))

let test_validation () =
  Alcotest.check_raises "alpha > 0" (Invalid_argument "Discont.make: alpha must be > 0")
    (fun () -> ignore (D.make ~m:2 ~alpha:0.0 [| 1.0 |]));
  Alcotest.check_raises "positive workloads"
    (Invalid_argument "Discont.make: workloads must be positive") (fun () ->
      ignore (D.make ~m:2 ~alpha:1.0 [| 0.0 |]))

let test_closed_forms () =
  let t = D.make ~m:4 ~alpha:0.5 [| 1.0; 1.0 |] in
  close "sequential = sum" 2.0 (D.sequential_makespan t);
  (* alpha = 1/2: T = (1^2 + 1^2)^(1/2) = sqrt 2. *)
  close "parallel closed form" (sqrt 2.0) (D.parallel_makespan t);
  let conv = D.make ~m:4 ~alpha:2.0 [| 1.0; 1.0 |] in
  (* alpha = 2: parallel (1 + 1)^2 = 4 beats nobody. *)
  close "parallel for convex" 4.0 (D.parallel_makespan conv)

let test_crossover () =
  (* Concave: parallel wins; convex: sequential wins; alpha = 1: tie. *)
  let para a = D.parallel_makespan (D.make ~m:8 ~alpha:a [| 2.0; 1.0; 1.0 |]) in
  let seq a = D.sequential_makespan (D.make ~m:8 ~alpha:a [| 2.0; 1.0; 1.0 |]) in
  Alcotest.(check bool) "concave: parallel strictly better" true (para 0.5 < seq 0.5);
  Alcotest.(check bool) "convex: sequential strictly better" true (seq 2.0 < para 2.0);
  close "alpha=1 ties" (seq 1.0) (para 1.0)

let test_optimal_dispatch () =
  let conc = D.make ~m:4 ~alpha:0.5 [| 1.0; 2.0 |] in
  close "concave -> parallel" (D.parallel_makespan conc) (D.optimal_makespan conc);
  let conv = D.make ~m:4 ~alpha:3.0 [| 1.0; 2.0 |] in
  close "convex -> sequential" 3.0 (D.optimal_makespan conv)

let test_heuristic_batches () =
  (* 4 jobs, 2 processors, alpha=1/2: two batches of two. *)
  let t = D.make ~m:2 ~alpha:0.5 [| 4.0; 1.0; 1.0; 4.0 |] in
  let r = D.list_heuristic t in
  Alcotest.(check bool) "valid run" true (Result.is_ok (D.check_run t r));
  (* Batch 1 = the two 4.0 jobs: (2+2)^... s = 4^2+4^2 -> wait: s = sum
     w^(1/alpha) = 16+16 = 32, duration = 32^(1/2)... alpha=0.5 =>
     duration = s^alpha = sqrt 32. Batch 2: s = 1+1 = 2, sqrt 2. *)
  close "batched makespan" (sqrt 32.0 +. sqrt 2.0) r.D.makespan;
  Alcotest.(check int) "two events" 2 (List.length r.D.events)

let test_heuristic_matches_parallel_when_n_le_m () =
  let t = D.make ~m:5 ~alpha:0.6 [| 3.0; 1.0; 0.5 |] in
  let r = D.list_heuristic t in
  close "single batch = parallel optimum" (D.parallel_makespan t) r.D.makespan

let prop_heuristic_sound =
  Helpers.qcheck_case ~count:60 "heuristic runs validate; above known lower bounds"
    QCheck2.Gen.(
      triple (int_bound 1_000_000) (int_range 1 4)
        (float_range 0.2 2.5))
    (fun (seed, m, alpha) ->
      let st = Random.State.make [| seed |] in
      let n = 1 + Random.State.int st 8 in
      let workloads = Array.init n (fun _ -> 0.25 +. Random.State.float st 4.0) in
      let t = D.make ~m ~alpha workloads in
      let r = D.list_heuristic t in
      let lower =
        (* Speeds are at most f(1) = 1, so no job beats its workload, and
           the whole resource processes at most max-batch speed... the
           simplest sound bounds: longest single workload, and for
           alpha >= 1 the total workload (concentration optimal). *)
        Array.fold_left Float.max 0.0 workloads
      in
      Result.is_ok (D.check_run t r)
      && r.D.makespan +. 1e-9 >= lower
      && (alpha < 1.0 || r.D.makespan +. 1e-9 >= D.sequential_makespan t))

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "closed forms" `Quick test_closed_forms;
    Alcotest.test_case "concave/convex crossover at alpha=1" `Quick test_crossover;
    Alcotest.test_case "optimal dispatch" `Quick test_optimal_dispatch;
    Alcotest.test_case "heuristic batches" `Quick test_heuristic_batches;
    Alcotest.test_case "heuristic = parallel when n <= m" `Quick
      test_heuristic_matches_parallel_when_n_le_m;
    prop_heuristic_sound;
  ]
