(* Tests for rendering: tables, Gantt charts, dot output. *)

open Crs_core

let has needle s = Helpers.contains ~needle s

let test_table_alignment () =
  let s =
    Crs_render.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header, rule, 2 rows, trailing empty *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "numbers right-aligned" true
    (let row = List.nth lines 2 in
     String.length row > 0 && row.[String.length row - 1] = '1');
  Alcotest.(check bool) "ragged rows padded" true
    (String.length (Crs_render.Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ]) > 0)

let test_table_floats () =
  let s =
    Crs_render.Table.render_floats ~decimals:2 ~header:[ "series"; "v1"; "v2" ]
      [ ("x", [ 1.0; 1.5 ]) ]
  in
  Alcotest.(check bool) "formats decimals" true (has "1.50" s)

let fig1_trace () =
  let inst = Crs_generators.Adversarial.figure1 in
  Execution.run_exn inst (Crs_algorithms.Greedy_balance.schedule inst)

let test_gantt_outputs () =
  let trace = fig1_trace () in
  let full = Crs_render.Gantt.render trace in
  List.iter
    (fun p -> Alcotest.(check bool) ("mentions " ^ p) true (has p full))
    [ "p1"; "p2"; "p3" ];
  let compact = Crs_render.Gantt.render_compact trace in
  Alcotest.(check int) "compact has m lines" 3
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' compact)));
  let summary = Crs_render.Gantt.summary trace in
  Alcotest.(check bool) "summary mentions makespan" true (has "makespan: 6" summary)

let test_dot_output () =
  let graph = Crs_hypergraph.Sched_graph.of_trace (fig1_trace ()) in
  let dot = Crs_render.Dot.of_graph graph in
  Alcotest.(check bool) "digraph document" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (has needle dot))
    [ "cluster_0"; "cluster_2"; "job_0_0"; "edge_6"; "}" ]

let test_svg_output () =
  let trace = fig1_trace () in
  let svg = Crs_render.Svg.of_trace trace in
  Alcotest.(check bool) "svg document" true (has "<svg" svg && has "</svg>" svg);
  Alcotest.(check bool) "step labels" true (has ">t6<" svg);
  Alcotest.(check bool) "processor labels" true (has ">p3<" svg);
  Alcotest.(check bool) "job labels" true (has ">j1<" svg);
  Alcotest.(check bool) "completion stars" true (has ">*<" svg)

let test_csv_export () =
  let trace = fig1_trace () in
  let csv = Crs_render.Export.trace_to_csv trace in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  (* Header + one row per (step, active processor). *)
  let active_cells =
    Array.fold_left
      (fun acc (s : Crs_core.Execution.step) ->
        acc + Array.fold_left (fun a o -> if o <> None then a + 1 else a) 0 s.active)
      0 trace.steps
  in
  Alcotest.(check int) "row count" (active_cells + 1) (List.length lines);
  Alcotest.(check bool) "header" true (has "share_exact" (List.hd lines));
  let comp = Crs_render.Export.completions_to_csv trace in
  let comp_lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' comp) in
  Alcotest.(check int) "one row per job + header" 13 (List.length comp_lines)

let test_csv_quoting () =
  let s = Crs_render.Export.series_to_csv ~header:[ "a"; "b" ] [ [ "x,y"; "q\"q" ] ] in
  Alcotest.(check bool) "comma quoted" true (has "\"x,y\"" s);
  Alcotest.(check bool) "quote doubled" true (has "\"q\"\"q\"" s)

let test_render_shares () =
  let sched = Helpers.schedule_of_strings [ [ "1/2"; "1/2" ] ] in
  let s = Crs_render.Gantt.render_shares sched in
  Alcotest.(check int) "one line per step" 1
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let suite =
  [
    Alcotest.test_case "table: alignment and padding" `Quick test_table_alignment;
    Alcotest.test_case "table: float rows" `Quick test_table_floats;
    Alcotest.test_case "gantt: full/compact/summary" `Quick test_gantt_outputs;
    Alcotest.test_case "dot: structure" `Quick test_dot_output;
    Alcotest.test_case "svg: structure" `Quick test_svg_output;
    Alcotest.test_case "csv: trace export" `Quick test_csv_export;
    Alcotest.test_case "csv: quoting" `Quick test_csv_quoting;
    Alcotest.test_case "share matrix rendering" `Quick test_render_shares;
  ]
