(* Shared helpers for the test suites. *)

module Q = Crs_num.Rational
open Crs_core

let q = Q.of_string

let check_q = Alcotest.testable Q.pp Q.equal

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let instance_of_strings rows =
  Instance.of_requirements
    (Array.of_list (List.map (fun row -> Array.of_list (List.map q row)) rows))

let schedule_of_strings rows =
  Schedule.of_rows
    (Array.of_list (List.map (fun row -> Array.of_list (List.map q row)) rows))

(* Deterministic random requirement on a grid, strictly positive unless
   allow_zero (zero requirements make Definition 5 unattainable — edge
   case Z1). *)
let rand_req ?(allow_zero = false) st granularity =
  let lo = if allow_zero then 0 else 1 in
  Q.of_ints (lo + Random.State.int st (granularity + 1 - lo)) granularity

let random_instance ?allow_zero ?(max_m = 3) ?(max_jobs = 4) st =
  let m = 2 + Random.State.int st (max_m - 1) in
  Instance.of_requirements
    (Array.init m (fun _ ->
         Array.init
           (1 + Random.State.int st max_jobs)
           (fun _ -> rand_req ?allow_zero st (4 + Random.State.int st 8))))

(* A randomized feasible completing schedule: random priorities and
   deliberate throttling/waste each step. *)
let random_schedule st instance =
  let policy (s : Policy.state) =
    let m = Instance.m instance in
    let shares = Array.make m Q.zero in
    let budget = ref Q.one in
    let order =
      List.sort (fun _ _ -> Random.State.int st 3 - 1) (Crs_util.Misc.range m)
    in
    List.iter
      (fun i ->
        if Policy.active s i && Random.State.int st 4 > 0 then begin
          let usable =
            Q.min (Policy.remaining_work s i) (Policy.active_requirement s i)
          in
          let frac = Q.of_ints (1 + Random.State.int st 4) 4 in
          let give = Q.min (Q.mul usable frac) !budget in
          shares.(i) <- give;
          budget := Q.sub !budget give
        end)
      order;
    if Array.for_all Q.is_zero shares then begin
      match List.find_opt (Policy.active s) (Crs_util.Misc.range m) with
      | Some i -> shares.(i) <- Q.min (Policy.remaining_work s i) Q.one
      | None -> ()
    end;
    shares
  in
  Policy.run ~max_steps:10_000 policy instance

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* Seeded generator of small random instances for qcheck properties. *)
let gen_instance ?allow_zero ?max_m ?max_jobs () =
  QCheck2.Gen.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      random_instance ?allow_zero ?max_m ?max_jobs st)
    QCheck2.Gen.(int_bound 1_000_000)

let gen_instance_with_schedule () =
  QCheck2.Gen.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let instance = random_instance st in
      (instance, random_schedule st instance))
    QCheck2.Gen.(int_bound 1_000_000)
