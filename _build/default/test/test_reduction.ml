(* Tests for the Partition substrate and the Theorem 4 reduction. *)

module Q = Crs_num.Rational
module P = Crs_reduction.Partition
module R = Crs_reduction.Reduce
open Crs_core

let test_partition_solver () =
  let yes = P.make [| 1; 2; 3 |] in
  (match P.solve yes with
  | Some cert ->
    Alcotest.(check bool) "certificate verifies" true (P.verify_certificate yes cert)
  | None -> Alcotest.fail "expected YES");
  Alcotest.(check bool) "odd total is NO" false (P.is_yes (P.make [| 1; 2 |]));
  Alcotest.(check bool) "3,3,3,3,2 is NO" false (P.is_yes (P.make [| 3; 3; 3; 3; 2 |]));
  Alcotest.(check bool) "singleton is NO" false (P.is_yes (P.make [| 4 |]));
  Alcotest.(check bool) "pair of equals is YES" true (P.is_yes (P.make [| 5; 5 |]))

let test_partition_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Partition.make: empty") (fun () ->
      ignore (P.make [||]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Partition.make: elements must be positive") (fun () ->
      ignore (P.make [| 1; 0 |]))

let test_certificate_checks () =
  let p = P.make [| 2; 2; 4 |] in
  Alcotest.(check bool) "good certificate" true (P.verify_certificate p [ 2 ]);
  Alcotest.(check bool) "wrong sum" false (P.verify_certificate p [ 0 ]);
  Alcotest.(check bool) "duplicate indices" false (P.verify_certificate p [ 2; 2 ]);
  Alcotest.(check bool) "out of range" false (P.verify_certificate p [ 3 ])

let prop_random_yes_generator =
  Helpers.qcheck_case ~count:50 "random_yes always yields YES instances"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      P.is_yes (P.random_yes ~n:5 ~max_value:12 st))

let prop_random_no_generator =
  Helpers.qcheck_case ~count:20 "random_no yields even-total NO instances"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p = P.random_no ~n:5 ~max_value:9 st in
      (not (P.is_yes p)) && P.total p mod 2 = 0)

let test_reduction_shape () =
  let p = P.make [| 1; 2; 3 |] in
  let inst = R.to_crsharing p in
  Alcotest.(check int) "n processors" 3 (Instance.m inst);
  Alcotest.(check int) "three jobs each" 3 (Instance.n_max inst);
  (* Row i is (a~_i, eps~, a~_i); with eps = 1/4 (n+1), delta = 3/4:
     a~_1 = 1/(3+3/4) = 4/15. *)
  Alcotest.check Helpers.check_q "a~_1" (Helpers.q "4/15")
    (Job.requirement (Instance.job inst 0 0));
  Alcotest.check Helpers.check_q "first = third"
    (Job.requirement (Instance.job inst 0 0))
    (Job.requirement (Instance.job inst 0 2));
  (* First jobs cannot all finish in step 1: their sum exceeds 1. *)
  let first_sum =
    Q.sum (List.map (fun i -> Job.requirement (Instance.job inst i 0)) [ 0; 1; 2 ])
  in
  Alcotest.(check bool) "Σ a~_i > 1" true Q.(first_sum > Q.one)

let test_reduction_guard_rails () =
  Alcotest.(check bool) "odd total rejected" true
    (try ignore (R.to_crsharing (P.make [| 1; 2 |])); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "A < 2 rejected" true
    (try ignore (R.to_crsharing (P.make [| 1; 1 |])); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "element > A rejected" true
    (try ignore (R.to_crsharing (P.make [| 5; 1; 1; 1 |])); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "epsilon >= 1/n rejected" true
    (try ignore (R.to_crsharing ~epsilon:Q.half (P.make [| 1; 2; 3 |])); false
     with Invalid_argument _ -> true)

let test_yes_witness () =
  let p = P.make [| 4; 1; 3; 2 |] in
  match P.solve p with
  | None -> Alcotest.fail "expected YES"
  | Some cert ->
    let sched = R.yes_witness_schedule p cert in
    let trace = Execution.run_exn (R.to_crsharing p) sched in
    Alcotest.(check bool) "completes" true trace.Execution.completed;
    Alcotest.(check int) "makespan exactly 4" R.yes_makespan (Execution.makespan trace)

let test_theorem4_fixed_instances () =
  let yes = P.make [| 1; 2; 3 |] in
  let no = P.make [| 3; 3; 3; 3; 2 |] in
  Alcotest.(check int) "YES gadget optimum 4" 4
    (Crs_algorithms.Opt_config.makespan (R.to_crsharing yes));
  let no_opt = Crs_algorithms.Opt_config.makespan (R.to_crsharing no) in
  Alcotest.(check bool) "NO gadget optimum >= 5" true (no_opt >= R.no_makespan_lower);
  Alcotest.(check bool) "decide YES" true
    (R.decide ~exact:Crs_algorithms.Opt_config.makespan yes);
  Alcotest.(check bool) "decide NO" false
    (R.decide ~exact:Crs_algorithms.Opt_config.makespan no)

let prop_theorem4_random =
  Helpers.qcheck_case ~count:15 "reduction decides random instances correctly"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p =
        if seed mod 2 = 0 then P.random_yes ~n:4 ~max_value:8 st
        else P.random_no ~n:4 ~max_value:8 st
      in
      R.decide ~exact:Crs_algorithms.Brute_force.makespan p = P.is_yes p)

let test_gap_ratio () =
  Alcotest.check Helpers.check_q "5/4" (Helpers.q "5/4") R.gap_ratio;
  Alcotest.(check bool) "gap consistent with makespans" true
    (Q.equal R.gap_ratio (Q.of_ints R.no_makespan_lower R.yes_makespan))

let suite =
  [
    Alcotest.test_case "partition: DP solver" `Quick test_partition_solver;
    Alcotest.test_case "partition: validation" `Quick test_partition_validation;
    Alcotest.test_case "partition: certificates" `Quick test_certificate_checks;
    prop_random_yes_generator;
    prop_random_no_generator;
    Alcotest.test_case "reduction: gadget shape" `Quick test_reduction_shape;
    Alcotest.test_case "reduction: guard rails" `Quick test_reduction_guard_rails;
    Alcotest.test_case "reduction: Figure 4a witness" `Quick test_yes_witness;
    Alcotest.test_case "Theorem 4 on fixed instances" `Quick test_theorem4_fixed_instances;
    prop_theorem4_random;
    Alcotest.test_case "Corollary 1 gap ratio" `Quick test_gap_ratio;
  ]
