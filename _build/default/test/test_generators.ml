(* Tests for instance generators: random families and the paper's
   adversarial constructions. *)

module Q = Crs_num.Rational
open Crs_core
module RG = Crs_generators.Random_gen
module A = Crs_generators.Adversarial

let test_default_random () =
  let st = Random.State.make [| 1 |] in
  let inst = RG.instance st in
  Alcotest.(check int) "m from spec" 3 (Instance.m inst);
  Alcotest.(check bool) "unit sizes" true (Instance.is_unit_size inst);
  Alcotest.(check bool) "within job range" true
    (Instance.n_max inst >= 1 && Instance.n_max inst <= 5)

let prop_requirements_in_range =
  Helpers.qcheck_case ~count:50 "requirements on the grid, positive, <= 1"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let spec = { RG.default_spec with granularity = 12 } in
      let inst = RG.instance ~spec st in
      let ok = ref true in
      for i = 0 to Instance.m inst - 1 do
        Array.iter
          (fun j ->
            let r = Job.requirement j in
            if not (Q.(r > Q.zero) && Q.in_unit_interval r) then ok := false;
            (* On the grid: r * 12 is an integer. *)
            if not (Q.is_integer (Q.mul r (Q.of_int 12))) then ok := false)
          (Instance.jobs_on inst i)
      done;
      !ok)

let prop_balanced_columns_sum_to_one =
  Helpers.qcheck_case ~count:30 "balanced_load columns sum to exactly 1"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let spec = { RG.default_spec with m = 4; granularity = 24 } in
      let inst = RG.balanced_load ~spec st in
      let n = Instance.n_max inst in
      let ok = ref (Instance.m inst = 4) in
      for j = 0 to n - 1 do
        let col =
          Q.sum
            (List.map
               (fun i -> Job.requirement (Instance.job inst i j))
               (Crs_util.Misc.range 4))
        in
        if not (Q.is_one col) then ok := false
      done;
      !ok)

let test_equal_rows () =
  let st = Random.State.make [| 3 |] in
  let inst = RG.equal_rows ~m:4 ~n:6 ~granularity:10 st in
  for i = 0 to 3 do
    Alcotest.(check int) "row length" 6 (Instance.n_i inst i)
  done

let test_sized_jobs () =
  let st = Random.State.make [| 4 |] in
  let inst = RG.sized_jobs ~m:2 ~n:3 ~granularity:10 ~max_size:3 st in
  Alcotest.(check bool) "not unit size" false (Instance.is_unit_size inst);
  for i = 0 to 1 do
    Array.iter
      (fun j ->
        Alcotest.(check bool) "size in [1, 4]" true
          Q.(Job.size j >= Q.one && Job.size j <= Q.of_int 4))
      (Instance.jobs_on inst i)
  done

let test_figure1_instance () =
  Alcotest.(check int) "3 processors" 3 (Instance.m A.figure1);
  Alcotest.(check (list int)) "row lengths" [ 4; 5; 3 ]
    (List.map (Instance.n_i A.figure1) [ 0; 1; 2 ]);
  Alcotest.check Helpers.check_q "r_23 = 90%" (Helpers.q "9/10")
    (Job.requirement (Instance.job A.figure1 1 2))

let test_rr_family_structure () =
  let inst = A.round_robin_family ~n:4 in
  (* r_1j + r_2j = 1 + 1/n for every j. *)
  for j = 0 to 3 do
    Alcotest.check Helpers.check_q "column sum" (Helpers.q "5/4")
      (Q.add
         (Job.requirement (Instance.job inst 0 j))
         (Job.requirement (Instance.job inst 1 j)))
  done;
  Alcotest.check Helpers.check_q "last job of proc 1 is 1" Q.one
    (Job.requirement (Instance.job inst 0 3))

let test_gb_family_requirements_valid () =
  List.iter
    (fun (m, blocks) ->
      let inst = A.greedy_balance_family ~m ~blocks () in
      Alcotest.(check int) "m rows" m (Instance.m inst);
      Alcotest.(check int) "m*blocks columns" (m * blocks) (Instance.n_max inst);
      for i = 0 to m - 1 do
        Array.iter
          (fun j ->
            Alcotest.(check bool) "requirement in (0,1)" true
              Q.(Job.requirement j > Q.zero && Job.requirement j < Q.one))
          (Instance.jobs_on inst i)
      done)
    [ (2, 1); (2, 8); (3, 5); (5, 3) ]

let test_gb_family_diagonals () =
  (* The design invariant behind the optimal pipeline: diagonals
     (r_{1,j}, r_{2,j+1}, ..., r_{m,j+m-1}) sum to exactly 1 for every j
     >= 2 (1-based), across block boundaries. *)
  let m = 3 and blocks = 4 in
  let inst = A.greedy_balance_family ~m ~blocks () in
  let n = m * blocks in
  for j = 1 to n - m do
    (* 0-based column of the diagonal head: j (so 1-based j+1 >= 2). *)
    let d =
      Q.sum
        (List.map
           (fun i -> Job.requirement (Instance.job inst i (j + i)))
           (Crs_util.Misc.range m))
    in
    Alcotest.check Helpers.check_q (Printf.sprintf "diagonal at col %d" (j + 1)) Q.one d
  done

let test_gb_family_epsilon_guard () =
  Alcotest.(check bool) "oversized epsilon rejected" true
    (try
       ignore (A.greedy_balance_family ~epsilon:(Helpers.q "1/4") ~m:3 ~blocks:5 ());
       false
     with Invalid_argument _ -> true)

let test_same_seed_same_instance () =
  (* Reproducibility contract for campaign items: every generator is a
     pure function of its explicit [Random.State.t] (no self_init, no
     shared global state), so the same seed gives the same instance —
     the property the parallel campaign runner relies on. *)
  let gens =
    [
      ("uniform", fun st -> RG.instance st);
      ("heavy-tailed", fun st -> RG.heavy_tailed st);
      ("balanced", fun st -> RG.balanced_load st);
      ("equal-rows", fun st -> RG.equal_rows ~m:3 ~n:4 ~granularity:12 st);
      ("sized-jobs", fun st -> RG.sized_jobs ~m:2 ~n:3 ~granularity:8 ~max_size:3 st);
    ]
  in
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun seed ->
          let a = gen (Random.State.make [| seed |]) in
          let b = gen (Random.State.make [| seed |]) in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d reproducible" name seed)
            true (Instance.equal a b))
        [ 0; 1; 42; 987654321 ])
    gens

let test_heavy_tailed_mixture () =
  let st = Random.State.make [| 9 |] in
  let spec = { RG.default_spec with m = 6; jobs_min = 8; jobs_max = 8; granularity = 100 } in
  let inst = RG.heavy_tailed ~spec st in
  (* Contains both light (< 1/4) and heavy (> 3/4) jobs. *)
  let all =
    List.concat_map
      (fun i -> Array.to_list (Instance.jobs_on inst i))
      (Crs_util.Misc.range 6)
  in
  Alcotest.(check bool) "has light jobs" true
    (List.exists (fun j -> Q.(Job.requirement j < Helpers.q "1/4")) all);
  Alcotest.(check bool) "has heavy jobs" true
    (List.exists (fun j -> Q.(Job.requirement j > Helpers.q "3/4")) all)

let suite =
  [
    Alcotest.test_case "random: defaults" `Quick test_default_random;
    prop_requirements_in_range;
    prop_balanced_columns_sum_to_one;
    Alcotest.test_case "random: equal rows" `Quick test_equal_rows;
    Alcotest.test_case "random: sized jobs" `Quick test_sized_jobs;
    Alcotest.test_case "figure 1 instance" `Quick test_figure1_instance;
    Alcotest.test_case "figure 3 family structure" `Quick test_rr_family_structure;
    Alcotest.test_case "figure 5 family: valid requirements" `Quick
      test_gb_family_requirements_valid;
    Alcotest.test_case "figure 5 family: unit diagonals" `Quick test_gb_family_diagonals;
    Alcotest.test_case "figure 5 family: epsilon guard" `Quick test_gb_family_epsilon_guard;
    Alcotest.test_case "heavy-tailed mixture" `Quick test_heavy_tailed_mixture;
    Alcotest.test_case "same seed => same instance (all generators)" `Quick
      test_same_seed_same_instance;
  ]
