(* Tests for schedule properties (Definitions 2-5) and the Lemma 1
   transformation, pinned on the paper's Figure 2 examples. *)

module Q = Crs_num.Rational
open Crs_core
module A = Crs_generators.Adversarial

let run_fig2 sched = Execution.run_exn A.figure2 sched

let test_figure2_classification () =
  let nested = run_fig2 A.figure2_nested_schedule in
  let unnested = run_fig2 A.figure2_unnested_schedule in
  Alcotest.(check bool) "2b non-wasting" true (Properties.is_non_wasting nested);
  Alcotest.(check bool) "2b progressive" true (Properties.is_progressive nested);
  Alcotest.(check bool) "2b nested" true (Properties.is_nested nested);
  Alcotest.(check bool) "2c non-wasting" true (Properties.is_non_wasting unnested);
  Alcotest.(check bool) "2c progressive" true (Properties.is_progressive unnested);
  Alcotest.(check bool) "2c NOT nested" false (Properties.is_nested unnested)

let test_non_wasting_detects () =
  (* Leave slack while a job is unfinished. *)
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "1/2" ]; [ "1/2" ] ] in
  let trace = Execution.run_exn inst sched in
  (match Properties.non_wasting trace with
  | Error v -> Alcotest.(check int) "violating step" 1 v.Properties.step
  | Ok () -> Alcotest.fail "expected violation")

let test_progressive_detects () =
  (* Two jobs both fed partially. *)
  let inst = Helpers.instance_of_strings [ [ "1" ]; [ "1" ] ] in
  let sched =
    Helpers.schedule_of_strings [ [ "1/2"; "1/2" ]; [ "1/2"; "1/2" ] ]
  in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check bool) "violation found" true
    (Result.is_error (Properties.progressive trace))

let test_balanced_detects () =
  (* Processor with fewer remaining jobs finishes while the longer queue
     stalls. *)
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1/2" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "0"; "1/2" ]; [ "1/2"; "0" ]; [ "1/2"; "0" ] ] in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check bool) "not balanced" true (Result.is_error (Properties.balanced trace))

(* Edge case Z1: zero-requirement jobs finish without resource, so no
   policy can be literally balanced when an r=0 job sits on a short
   queue. This documents the boundary of Definition 5. *)
let test_zero_requirement_breaks_balanced () =
  let inst =
    Helpers.instance_of_strings [ [ "4/5"; "1/3" ]; [ "1"; "2/5" ]; [ "0" ] ]
  in
  let trace = Execution.run_exn inst (Crs_algorithms.Greedy_balance.schedule inst) in
  Alcotest.(check bool) "Z1: literal Definition 5 unattainable" true
    (Result.is_error (Properties.balanced trace))

let test_greedy_balance_properties () =
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 40 do
    let inst = Helpers.random_instance st in
    let trace = Execution.run_exn inst (Crs_algorithms.Greedy_balance.schedule inst) in
    Alcotest.(check bool) "non-wasting" true (Properties.is_non_wasting trace);
    Alcotest.(check bool) "progressive" true (Properties.is_progressive trace);
    Alcotest.(check bool) "balanced" true (Properties.is_balanced trace);
    Alcotest.(check bool) "no overprovision" true
      (Result.is_ok (Properties.no_overprovision trace))
  done

let test_canonicalize () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ] ] in
  (* Assign more than the job can use; canonicalization trims it. *)
  let sched = Helpers.schedule_of_strings [ [ "1" ] ] in
  let canon = Transform.canonicalize inst sched in
  Alcotest.check Helpers.check_q "trimmed to consumption" (Helpers.q "1/2")
    (Schedule.share canon ~step:0 ~proc:0);
  let trace = Execution.run_exn inst canon in
  Alcotest.(check int) "same makespan" 1 (Execution.makespan trace)

let test_make_non_wasting () =
  let inst = Helpers.instance_of_strings [ [ "1"; "1/2" ] ] in
  (* Wasteful: trickle the first job over 4 steps. *)
  let sched =
    Helpers.schedule_of_strings [ [ "1/4" ]; [ "1/4" ]; [ "1/4" ]; [ "1/4" ]; [ "1/2" ] ]
  in
  let nw = Transform.make_non_wasting inst sched in
  let trace = Execution.run_exn inst nw in
  Alcotest.(check bool) "completed" true trace.completed;
  Alcotest.(check bool) "non-wasting now" true (Properties.is_non_wasting trace);
  Alcotest.(check int) "makespan improves to optimum" 2 (Execution.makespan trace)

let test_normalize_figure2c () =
  (* Normalizing the unnested Figure 2c schedule must produce a nested
     schedule with the same makespan 4. *)
  let normalized = Transform.normalize A.figure2 A.figure2_unnested_schedule in
  let trace = Execution.run_exn A.figure2 normalized in
  Alcotest.(check int) "makespan preserved" 4 (Execution.makespan trace);
  Alcotest.(check bool) "nested" true (Properties.is_nested trace);
  Alcotest.(check bool) "progressive" true (Properties.is_progressive trace);
  Alcotest.(check bool) "non-wasting" true (Properties.is_non_wasting trace)

(* Lemma 1 on random schedules. The transformation is expected to succeed
   on the vast majority of inputs; failures (finding E3, see
   EXPERIMENTS.md) must be explicit Failure raises, never bad schedules.
   We require >= 95% success and full validity of every success. *)
let test_normalize_fuzz_statistics () =
  let st = Random.State.make [| 123 |] in
  let trials = 120 in
  let failures = ref 0 in
  for _ = 1 to trials do
    let inst = Helpers.random_instance st in
    let sched = Helpers.random_schedule st inst in
    match Transform.normalize inst sched with
    | normalized ->
      let before = Execution.run_exn inst sched in
      let after = Execution.run_exn inst normalized in
      Alcotest.(check bool) "makespan not increased" true
        (Execution.makespan after <= Execution.makespan before);
      Alcotest.(check bool) "all three properties" true
        (Properties.is_non_wasting after && Properties.is_progressive after
        && Properties.is_nested after)
    | exception Failure _ -> incr failures
  done;
  if !failures * 20 > trials then
    Alcotest.failf "normalize failed on %d/%d inputs (> 5%%)" !failures trials

let suite =
  [
    Alcotest.test_case "figure 2: nested vs unnested" `Quick test_figure2_classification;
    Alcotest.test_case "non-wasting: violation detected" `Quick test_non_wasting_detects;
    Alcotest.test_case "progressive: violation detected" `Quick test_progressive_detects;
    Alcotest.test_case "balanced: violation detected" `Quick test_balanced_detects;
    Alcotest.test_case "Z1: zero requirements vs Definition 5" `Quick
      test_zero_requirement_breaks_balanced;
    Alcotest.test_case "greedy-balance has all properties" `Slow
      test_greedy_balance_properties;
    Alcotest.test_case "transform: canonicalize" `Quick test_canonicalize;
    Alcotest.test_case "transform: make_non_wasting" `Quick test_make_non_wasting;
    Alcotest.test_case "transform: normalize figure 2c" `Quick test_normalize_figure2c;
    Alcotest.test_case "transform: Lemma 1 fuzz (E3 statistics)" `Slow
      test_normalize_fuzz_statistics;
  ]
