(* Exhaustive verification on a complete universe of tiny instances:
   every 2-processor instance with 0-2 jobs per processor and
   requirements on the grid {1/4, 1/2, 3/4, 1}. For each of the 441
   instances, all exact solvers must agree and every theorem-level
   inequality must hold. Unlike the qcheck sweeps, this leaves no
   sampling gaps in its universe. *)

module Q = Crs_num.Rational
open Crs_core

let grid = List.map (fun k -> Q.of_ints k 4) [ 1; 2; 3; 4 ]

let rows_up_to_2 =
  (* [], [a], [a; b] for grid values a, b *)
  [ [] ]
  @ List.map (fun a -> [ a ]) grid
  @ List.concat_map (fun a -> List.map (fun b -> [ a; b ]) grid) grid

let all_instances =
  List.concat_map
    (fun r1 ->
      List.map
        (fun r2 ->
          Instance.of_requirements [| Array.of_list r1; Array.of_list r2 |])
        rows_up_to_2)
    rows_up_to_2

let test_solver_agreement () =
  List.iter
    (fun inst ->
      let dp = Crs_algorithms.Opt_two.makespan inst in
      let label = Instance.to_string inst in
      Alcotest.(check int) ("pq: " ^ label) dp (Crs_algorithms.Opt_two_pq.makespan inst);
      Alcotest.(check int) ("pareto: " ^ label) dp
        (Crs_algorithms.Opt_two_pareto.makespan inst);
      Alcotest.(check int) ("config: " ^ label) dp
        (Crs_algorithms.Opt_config.makespan inst);
      Alcotest.(check int) ("bnb: " ^ label) dp (Crs_algorithms.Brute_force.makespan inst))
    all_instances

let test_witnesses_and_bounds () =
  List.iter
    (fun inst ->
      let label = Instance.to_string inst in
      let sol = Crs_algorithms.Opt_two.solve inst in
      let opt = sol.Crs_algorithms.Opt_two.makespan in
      (* Witness achieves the optimum. *)
      (if Instance.total_jobs inst > 0 then begin
         let trace = Execution.run_exn inst sol.Crs_algorithms.Opt_two.schedule in
         Alcotest.(check bool) ("witness completes: " ^ label) true
           trace.Execution.completed;
         Alcotest.(check int) ("witness makespan: " ^ label) opt
           (Execution.makespan trace)
       end);
      (* Lower bounds never exceed OPT. *)
      Alcotest.(check bool) ("LB: " ^ label) true (Lower_bounds.combined inst <= opt);
      (* Theorem 3 and Theorem 7 for m=2 on the whole universe. *)
      let rr = Crs_algorithms.Round_robin.makespan inst in
      let gb = Crs_algorithms.Greedy_balance.makespan inst in
      Alcotest.(check bool) ("Thm 3: " ^ label) true (rr >= opt && rr <= 2 * opt);
      Alcotest.(check bool) ("Thm 7: " ^ label) true
        (gb >= opt && 2 * gb <= 3 * opt);
      (* The bin-packing relaxation is a valid lower bound. *)
      if Q.(Instance.total_work inst > zero) then
        Alcotest.(check bool) ("BP relax: " ^ label) true
          (Crs_binpack.Splittable.crsharing_relaxation_bound inst <= opt))
    all_instances

let test_greedy_properties_everywhere () =
  List.iter
    (fun inst ->
      if Instance.total_jobs inst > 0 then begin
        let label = Instance.to_string inst in
        let trace = Execution.run_exn inst (Crs_algorithms.Greedy_balance.schedule inst) in
        Alcotest.(check bool) ("nw: " ^ label) true (Properties.is_non_wasting trace);
        Alcotest.(check bool) ("prog: " ^ label) true (Properties.is_progressive trace);
        Alcotest.(check bool) ("bal: " ^ label) true (Properties.is_balanced trace)
      end)
    all_instances

let test_universe_size () =
  Alcotest.(check int) "441 instances" 441 (List.length all_instances)

let suite =
  [
    Alcotest.test_case "universe size" `Quick test_universe_size;
    Alcotest.test_case "all exact solvers agree on the full universe" `Slow
      test_solver_agreement;
    Alcotest.test_case "witnesses and theorem bounds on the full universe" `Slow
      test_witnesses_and_bounds;
    Alcotest.test_case "greedy-balance properties on the full universe" `Slow
      test_greedy_properties_everywhere;
  ]
