(* NP-hardness, executed: solve Partition by scheduling (Theorem 4).

   For random YES and NO Partition instances we build the CRSharing
   gadget, solve it exactly, and read the answer off the makespan:
   4 <=> YES, >= 5 <=> NO. Corollary 1's 5/4 gap is visible directly.

   Run with: dune exec examples/partition_hardness.exe *)

module P = Crs_reduction.Partition
module R = Crs_reduction.Reduce

let () =
  let st = Random.State.make [| 99 |] in
  Printf.printf "%-28s %-8s %-10s %-10s %s\n" "elements" "DP says" "makespan"
    "verdict" "agree?";
  let check p =
    let truth = P.is_yes p in
    let makespan = Crs_algorithms.Opt_config.makespan (R.to_crsharing p) in
    let verdict = makespan = R.yes_makespan in
    Printf.printf "%-28s %-8s %-10d %-10s %s\n"
      (String.concat ";" (Array.to_list (Array.map string_of_int p.P.elements)))
      (if truth then "YES" else "NO")
      makespan
      (if verdict then "YES" else "NO")
      (if truth = verdict then "ok" else "MISMATCH!");
    assert (truth = verdict)
  in
  for _ = 1 to 4 do
    check (P.random_yes ~n:4 ~max_value:9 st)
  done;
  for _ = 1 to 3 do
    check (P.random_no ~n:5 ~max_value:6 st)
  done;
  Printf.printf
    "\nEvery NO instance needs >= %d steps while YES instances finish in %d:\n\
     approximating CRSharing below %s is NP-hard (Corollary 1).\n"
    R.no_makespan_lower R.yes_makespan
    (Crs_num.Rational.to_string R.gap_ratio)
