(* Gallery: every figure of the paper, regenerated.

   Run with: dune exec examples/adversarial_gallery.exe *)

module Q = Crs_num.Rational
open Crs_core
module A = Crs_generators.Adversarial

let section title = Printf.printf "\n===== %s =====\n\n" title

let () =
  section "Figure 1 — scheduling hypergraph";
  let trace =
    Execution.run_exn A.figure1
      (Policy.run Crs_algorithms.Heuristics.smallest_requirement_first A.figure1)
  in
  print_string (Crs_render.Gantt.render trace);
  let graph = Crs_hypergraph.Sched_graph.of_trace trace in
  Format.printf "@.%a@." Crs_hypergraph.Sched_graph.pp graph;

  section "Figure 2 — nested vs unnested";
  let show name sched =
    let t = Execution.run_exn A.figure2 sched in
    Printf.printf "%s: %s\n" name (Crs_render.Gantt.summary t)
  in
  show "Figure 2b (nested)  " A.figure2_nested_schedule;
  show "Figure 2c (unnested)" A.figure2_unnested_schedule;

  section "Figure 3 / Theorem 3 — RoundRobin worst case";
  Printf.printf "%-6s %-12s %-12s %s\n" "n" "RoundRobin" "Optimal" "ratio";
  List.iter
    (fun n ->
      let instance = A.round_robin_family ~n in
      let rr = Crs_algorithms.Round_robin.makespan instance in
      let opt =
        Execution.makespan (Execution.run_exn instance (A.round_robin_family_opt_schedule ~n))
      in
      Printf.printf "%-6d %-12d %-12d %.4f\n" n rr opt
        (float_of_int rr /. float_of_int opt))
    [ 5; 10; 25; 50; 100 ];
  Printf.printf "(ratio tends to 2 as n grows, exactly as Theorem 3 proves)\n";

  section "Figure 4 / Theorem 4 — Partition gadget";
  let demo elements =
    let p = Crs_reduction.Partition.make elements in
    let opt = Crs_algorithms.Opt_config.makespan (Crs_reduction.Reduce.to_crsharing p) in
    Printf.printf "elements [%s]: optimal makespan %d => %s\n"
      (String.concat "; " (Array.to_list (Array.map string_of_int elements)))
      opt
      (if opt = Crs_reduction.Reduce.yes_makespan then "YES-instance" else "NO-instance")
  in
  demo [| 1; 2; 3 |];
  demo [| 3; 3; 3; 3; 2 |];

  section "Figure 5 / Theorem 8 — GreedyBalance worst case";
  Printf.printf "The Figure 5 instance (m=3, eps=1/100, 3 blocks):\n%s\n"
    (Instance.to_string A.figure5);
  Printf.printf "%-10s %-14s %-12s %s\n" "m,blocks" "GreedyBalance" "staircase" "ratio";
  List.iter
    (fun (m, blocks) ->
      let instance = A.greedy_balance_family ~m ~blocks () in
      let gb = Crs_algorithms.Greedy_balance.makespan instance in
      let stair =
        Crs_algorithms.Heuristics.makespan_of Crs_algorithms.Heuristics.staircase instance
      in
      Printf.printf "%d,%-8d %-14d %-12d %.4f   (2-1/m = %.4f)\n" m blocks gb stair
        (float_of_int gb /. float_of_int stair)
        (2.0 -. (1.0 /. float_of_int m)))
    [ (2, 4); (2, 16); (3, 4); (3, 12); (4, 8) ]
