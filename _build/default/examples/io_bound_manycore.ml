(* The paper's motivating scenario (Section 1): a many-core chip whose
   cores share one data bus, running I/O-intensive scientific workloads.
   The bandwidth distribution, not core speed, decides the makespan.

   We simulate 16 cores with bursty I/O tasks, compare bandwidth
   policies, then bridge the workload into the exact CRSharing model to
   certify how far each policy is from any possible schedule.

   Run with: dune exec examples/io_bound_manycore.exe *)

module M = Crs_manycore

let () =
  let st = Random.State.make [| 2014 |] in
  let tasks = M.Workload.io_burst ~cores:16 ~phases:4 ~io_intensity:0.9 st in
  Printf.printf "Workload: %d cores, bursty I/O (Section 1 scenario)\n\n"
    (Array.length tasks);

  let rows =
    List.map
      (fun (p : M.Policy.t) ->
        let r = M.Engine.run p tasks in
        p.name :: M.Stats.to_row (M.Stats.of_result tasks r))
      M.Policy.all
  in
  print_string (Crs_render.Table.render ~header:("policy" :: M.Stats.header) rows);
  print_newline ();

  (* Bridge into the exact model: I/O phases become unit-size CRSharing
     jobs on a rational grid. The certified lower bound then applies to
     EVERY bandwidth policy, simulated or not. *)
  let instance = M.Workload.to_crsharing ~granularity:20 tasks in
  let lb = Crs_core.Lower_bounds.combined instance in
  let gb = Crs_algorithms.Greedy_balance.makespan instance in
  Printf.printf
    "Exact-model bridge: %d jobs; no policy can beat %d ticks;\n\
     discrete GreedyBalance achieves %d (certified ratio <= %.3f, proved \
     bound %.3f).\n"
    (Crs_core.Instance.total_jobs instance)
    lb gb
    (float_of_int gb /. float_of_int lb)
    (2.0 -. (1.0 /. float_of_int (Crs_core.Instance.m instance)))
