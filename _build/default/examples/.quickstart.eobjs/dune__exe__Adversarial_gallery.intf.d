examples/adversarial_gallery.mli:
