examples/virtual_machines.mli:
