examples/adversarial_gallery.ml: Array Crs_algorithms Crs_core Crs_generators Crs_hypergraph Crs_num Crs_reduction Crs_render Execution Format Instance List Policy Printf String
