examples/quickstart.ml: Crs_algorithms Crs_core Crs_hypergraph Crs_num Crs_render Execution Format Instance Lower_bounds Printf
