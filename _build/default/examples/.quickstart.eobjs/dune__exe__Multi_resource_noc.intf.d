examples/multi_resource_noc.mli:
