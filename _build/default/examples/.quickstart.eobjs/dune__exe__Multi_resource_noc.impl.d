examples/multi_resource_noc.ml: Array Crs_extension Crs_num Printf Result
