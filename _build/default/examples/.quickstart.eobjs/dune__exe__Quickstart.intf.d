examples/quickstart.mli:
