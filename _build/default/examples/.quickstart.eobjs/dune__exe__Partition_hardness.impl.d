examples/partition_hardness.ml: Array Crs_algorithms Crs_num Crs_reduction Printf Random String
