examples/partition_hardness.mli:
