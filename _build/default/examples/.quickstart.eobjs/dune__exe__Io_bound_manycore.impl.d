examples/io_bound_manycore.ml: Array Crs_algorithms Crs_core Crs_manycore Crs_render List Printf Random
