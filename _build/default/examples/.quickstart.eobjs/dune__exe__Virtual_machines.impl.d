examples/virtual_machines.ml: Array Crs_manycore Crs_util Hashtbl List Printf Random String
