examples/io_bound_manycore.mli:
