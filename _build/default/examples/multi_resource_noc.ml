(* Beyond the paper (Section 9, "more realistic scenarios"): a chip
   where cores contend for TWO continuously divisible resources — the
   memory bus and a network-on-chip link — in fixed per-job proportions
   (Leontief). Complementary workloads overlap almost perfectly; when
   everyone hammers the same resource, it gates the whole chip.

   Run with: dune exec examples/multi_resource_noc.exe *)

module Q = Crs_num.Rational
module MR = Crs_extension.Multi_resource

let q = Q.of_string

let describe name t =
  let r = MR.greedy_balance t in
  let u = MR.uniform t in
  assert (Result.is_ok (MR.check t r));
  Printf.printf "%-28s greedy %2d | uniform %2d | lower bound %2d  (bus work %s, noc work %s)\n"
    name r.MR.makespan u.MR.makespan (MR.lower_bound t)
    (Q.to_string (MR.work t 0))
    (Q.to_string (MR.work t 1))

let () =
  Printf.printf "Two shared resources: [bus; noc]\n\n";

  (* Mixed traffic: half the cores stream from memory, half gossip over
     the NoC. The two populations barely interact. *)
  let mixed =
    MR.create ~d:2
      (Array.init 6 (fun i ->
           Array.init 3 (fun _ ->
               if i mod 2 = 0 then MR.unit_job [| q "4/5"; q "1/10" |]
               else MR.unit_job [| q "1/10"; q "4/5" |])))
  in
  describe "complementary traffic" mixed;

  (* Same aggregate demand, but everyone needs the bus. *)
  let clashing =
    MR.create ~d:2
      (Array.init 6 (fun _ ->
           Array.init 3 (fun _ -> MR.unit_job [| q "4/5"; q "1/10" |])))
  in
  describe "bus-bound traffic" clashing;

  (* Pipeline stages with shifting bottlenecks. *)
  let pipeline =
    MR.create ~d:2
      (Array.init 4 (fun _ ->
           [|
             MR.unit_job [| q "9/10"; q "1/10" |];
             MR.unit_job [| q "1/2"; q "1/2" |];
             MR.unit_job [| q "1/10"; q "9/10" |];
           |]))
  in
  describe "shifting bottleneck" pipeline;

  Printf.printf
    "\nThe single-resource model (d = 1) is the paper's; these runs use the\n\
     vector extension of GreedyBalance, which reduces to it exactly when\n\
     d = 1 (see Crs_extension.Multi_resource).\n"
