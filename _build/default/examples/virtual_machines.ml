(* The paper's second motivation (Section 1): virtual machines sharing a
   single, arbitrarily divisible host resource. Interactive, batch and
   backup VMs contend for it; the allocation policy decides who suffers.

   Run with: dune exec examples/virtual_machines.exe *)

module M = Crs_manycore

let class_of name =
  if String.length name >= 5 && String.sub name 0 5 = "inter" then "interactive"
  else if String.length name >= 5 && String.sub name 0 5 = "batch" then "batch"
  else "backup"

let () =
  let st = Random.State.make [| 7 |] in
  let tasks = M.Workload.mixed_vm ~cores:9 st in
  Printf.printf "Host with %d VMs: interactive / batch / backup mix\n\n"
    (Array.length tasks);

  List.iter
    (fun (p : M.Policy.t) ->
      let r = M.Engine.run p tasks in
      let stats = M.Stats.of_result tasks r in
      (* Per-class slowdown: completion over ideal runtime. *)
      let by_class = Hashtbl.create 3 in
      Array.iteri
        (fun i (t : M.Task.t) ->
          let cls = class_of t.name in
          let slow =
            float_of_int r.M.Engine.completion.(i) /. M.Task.total_ideal_ticks t
          in
          let prev = try Hashtbl.find by_class cls with Not_found -> [] in
          Hashtbl.replace by_class cls (slow :: prev))
        tasks;
      let cls_cell cls =
        match Hashtbl.find_opt by_class cls with
        | Some l -> Printf.sprintf "%.2f" (Crs_util.Misc.float_mean l)
        | None -> "-"
      in
      Printf.printf "%-20s makespan %3d | slowdown: interactive %s, batch %s, backup %s | bus %.0f%%\n"
        p.name stats.M.Stats.makespan (cls_cell "interactive") (cls_cell "batch")
        (cls_cell "backup")
        (100.0 *. stats.M.Stats.bus_utilization))
    M.Policy.all;

  print_newline ();
  Printf.printf
    "Note how round-robin phases (the paper's 2-approximation) trades\n\
     interactive latency for simplicity, while greedy-balance (the\n\
     (2-1/m)-approximation) keeps both makespan and utilization strong.\n"
