(* Quickstart: model a 3-core system sharing one memory bus, schedule it
   with the paper's algorithms, inspect the result.

   Run with: dune exec examples/quickstart.exe *)

module Q = Crs_num.Rational
open Crs_core

let () =
  (* An instance: three processors, each with a fixed job sequence. A job
     is its resource requirement (unit size): job "1/2" needs half the
     bus to run at full speed and carries half a unit of work. This is
     the instance of the paper's Figure 1. *)
  let instance =
    Instance.of_percent [ [ 20; 10; 10; 10 ]; [ 50; 55; 90; 55; 10 ]; [ 50; 40; 95 ] ]
  in
  Format.printf "Instance:@.%a@.@." Instance.pp instance;

  (* Certified lower bounds — no solving needed (Observation 1 + job
     count). *)
  Printf.printf "Lower bounds: total-work %d, job-count %d\n\n"
    (Lower_bounds.total_work instance)
    (Lower_bounds.job_count instance);

  (* GreedyBalance: the paper's linear-time (2 - 1/m)-approximation. *)
  let schedule = Crs_algorithms.Greedy_balance.schedule instance in
  let trace = Execution.run_exn instance schedule in
  Printf.printf "GreedyBalance: %s\n" (Crs_render.Gantt.summary trace);
  print_string (Crs_render.Gantt.render trace);
  print_newline ();

  (* The scheduling hypergraph of Section 3.2: edges are time steps,
     components are the contiguous phases of the schedule. *)
  let graph = Crs_hypergraph.Sched_graph.of_trace trace in
  Format.printf "%a@." Crs_hypergraph.Sched_graph.pp graph;
  Printf.printf "Lemma 5 bound: %d | Lemma 6 bound: %d\n\n"
    (Crs_hypergraph.Bounds.lemma5 graph)
    (Crs_hypergraph.Bounds.lemma6_int graph);

  (* Exact optimum via configuration enumeration (Section 7) — fine at
     this size. *)
  let opt = Crs_algorithms.Solver.optimal_makespan instance in
  Printf.printf "Exact optimum: %d steps (GreedyBalance found %d; bound %s)\n"
    opt
    (Execution.makespan trace)
    (Q.to_string (Crs_hypergraph.Bounds.theorem7_bound ~m:(Instance.m instance)))
