type t = {
  makespan : int;
  avg_completion : float;
  max_slowdown : float;
  avg_slowdown : float;
  bus_utilization : float;
  wasted_bandwidth : float;
}

let of_result tasks (r : Engine.result) =
  let n = Array.length tasks in
  let completions = Array.map float_of_int r.completion in
  let slowdowns =
    Array.mapi
      (fun i c ->
        let ideal = Task.total_ideal_ticks tasks.(i) in
        if ideal <= 0.0 then 1.0 else c /. ideal)
      completions
  in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (max 1 n) in
  {
    makespan = r.makespan;
    avg_completion = mean completions;
    max_slowdown = Array.fold_left Float.max 0.0 slowdowns;
    avg_slowdown = mean slowdowns;
    bus_utilization =
      (if r.makespan = 0 then 0.0
       else 1.0 -. (r.wasted_bandwidth /. float_of_int r.makespan));
    wasted_bandwidth = r.wasted_bandwidth;
  }

let header =
  [ "makespan"; "avg-completion"; "max-slowdown"; "avg-slowdown"; "bus-util" ]

let to_row t =
  [
    string_of_int t.makespan;
    Printf.sprintf "%.1f" t.avg_completion;
    Printf.sprintf "%.2f" t.max_slowdown;
    Printf.sprintf "%.2f" t.avg_slowdown;
    Printf.sprintf "%.1f%%" (100.0 *. t.bus_utilization);
  ]

let pp fmt t =
  Format.fprintf fmt
    "makespan %d | avg completion %.1f | slowdown max %.2f avg %.2f | bus \
     utilization %.1f%%"
    t.makespan t.avg_completion t.max_slowdown t.avg_slowdown
    (100.0 *. t.bus_utilization)
