type phase =
  | Compute of float
  | Io of { demand : float; volume : float }

type t = { name : string; phases : phase list }

let make ~name phases =
  if phases = [] then invalid_arg "Task.make: empty phase list";
  List.iter
    (function
      | Compute d -> if d <= 0.0 then invalid_arg "Task.make: non-positive compute duration"
      | Io { demand; volume } ->
        if demand <= 0.0 || demand > 1.0 then
          invalid_arg "Task.make: demand must lie in (0,1]";
        if volume <= 0.0 then invalid_arg "Task.make: non-positive volume")
    phases;
  { name; phases }

let phase_ideal = function
  | Compute d -> d
  | Io { volume; _ } -> volume

let total_ideal_ticks t = List.fold_left (fun acc p -> acc +. phase_ideal p) 0.0 t.phases
let num_phases t = List.length t.phases

let io_fraction t =
  let io =
    List.fold_left
      (fun acc -> function Compute _ -> acc | Io { volume; _ } -> acc +. volume)
      0.0 t.phases
  in
  let total = total_ideal_ticks t in
  if total <= 0.0 then 0.0 else io /. total

let pp fmt t =
  Format.fprintf fmt "task %s (%d phases, ideal %.1f ticks, %.0f%% I/O)" t.name
    (num_phases t) (total_ideal_ticks t) (100.0 *. io_fraction t)
