(** Text format for simulator workloads, so measured or hand-written
    task mixes can be replayed (the stand-in for the production traces
    the paper's scenario alludes to; see DESIGN.md substitutions).

    {v
    # comment
    task matmul
      compute 2.5
      io 0.8 3
      compute 1
    task backup
      io 0.5 12
    v}

    [io DEMAND VOLUME] with demand in (0,1]; [compute DURATION]. *)

val parse : string -> (Task.t array, string) result
val to_string : Task.t array -> string
val load : string -> (Task.t array, string) result
val save : string -> Task.t array -> unit

(** {1 Run export} *)

val run_to_csv : Engine.result -> string
(** One row per (tick, core): [tick,core,share,used,phase_finished]. *)

val timeline_svg : ?cell:int -> Task.t array -> Engine.result -> string
(** Cores as rows, ticks as columns; fill height = bus share consumed,
    gray = compute phase (no bus), dot = phase completion. *)
