let to_string tasks =
  let buf = Buffer.create 512 in
  Array.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf (Printf.sprintf "task %s\n" t.Task.name);
      List.iter
        (fun phase ->
          match phase with
          | Task.Compute d -> Buffer.add_string buf (Printf.sprintf "  compute %g\n" d)
          | Task.Io { demand; volume } ->
            Buffer.add_string buf (Printf.sprintf "  io %g %g\n" demand volume))
        t.Task.phases)
    tasks;
  Buffer.contents buf

let parse text =
  let exception Bad of string in
  let tasks = ref [] in
  let current_name = ref None in
  let current_phases = ref [] in
  let flush () =
    match !current_name with
    | None ->
      if !current_phases <> [] then raise (Bad "phases before any 'task' line")
    | Some name ->
      if !current_phases = [] then raise (Bad (Printf.sprintf "task %s has no phases" name));
      tasks := Task.make ~name (List.rev !current_phases) :: !tasks;
      current_name := None;
      current_phases := []
  in
  let float_of token =
    match float_of_string_opt token with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "not a number: %s" token))
  in
  try
    List.iteri
      (fun lineno raw ->
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else begin
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          in
          match tokens with
          | [ "task"; name ] ->
            flush ();
            current_name := Some name
          | [ "compute"; d ] ->
            if !current_name = None then
              raise (Bad (Printf.sprintf "line %d: phase outside a task" (lineno + 1)));
            current_phases := Task.Compute (float_of d) :: !current_phases
          | [ "io"; demand; volume ] ->
            if !current_name = None then
              raise (Bad (Printf.sprintf "line %d: phase outside a task" (lineno + 1)));
            current_phases :=
              Task.Io { demand = float_of demand; volume = float_of volume }
              :: !current_phases
          | _ -> raise (Bad (Printf.sprintf "line %d: cannot parse %S" (lineno + 1) line))
        end)
      (String.split_on_char '\n' text);
    flush ();
    match List.rev !tasks with
    | [] -> Error "no tasks in trace"
    | l -> Ok (Array.of_list l)
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let save path tasks =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string tasks))

let run_to_csv (r : Engine.result) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "tick,core,share,used,phase_finished\n";
  List.iter
    (fun (rec_ : Engine.tick_record) ->
      Array.iteri
        (fun core share ->
          let finished =
            if List.exists (fun (c, _) -> c = core) rec_.Engine.phases_finished then 1
            else 0
          in
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%.6f,%.6f,%d\n" rec_.Engine.time core share
               rec_.Engine.used.(core) finished))
        rec_.Engine.shares)
    r.Engine.records;
  Buffer.contents buf

let timeline_svg ?(cell = 14) tasks (r : Engine.result) =
  let cores = Array.length tasks in
  let ticks = r.Engine.makespan in
  let label_w = 90 in
  let header_h = 18 in
  let width = label_w + (ticks * cell) + 4 in
  let height = header_h + (cores * cell) + 4 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"9\">\n"
       width height width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  let records = Array.of_list r.Engine.records in
  for core = 0 to cores - 1 do
    let y0 = header_h + (core * cell) in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" text-anchor=\"end\" fill=\"#333\">%s</text>\n"
         (label_w - 6)
         (y0 + cell - 4)
         tasks.(core).Task.name);
    Array.iter
      (fun (rec_ : Engine.tick_record) ->
        let t = rec_.Engine.time - 1 in
        let x0 = label_w + (t * cell) in
        let used = rec_.Engine.used.(core) in
        if used > 0.0 then begin
          let h = int_of_float (float_of_int cell *. used) in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#4e79a7\"/>\n"
               x0
               (y0 + cell - h)
               (cell - 1) (max 1 h))
        end
        else if core < cores && rec_.Engine.time <= r.Engine.completion.(core) then
          (* Running but not on the bus: a compute phase. *)
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#ddd\"/>\n"
               x0 (y0 + cell - 3) (cell - 1) 3);
        if List.exists (fun (c, _) -> c = core) rec_.Engine.phases_finished then
          Buffer.add_string buf
            (Printf.sprintf "<circle cx=\"%d\" cy=\"%d\" r=\"2\" fill=\"#e15759\"/>\n"
               (x0 + (cell / 2))
               (y0 + 3)))
      records
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
