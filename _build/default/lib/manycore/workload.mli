(** Synthetic workloads for the bus simulator, standing in for the
    I/O-intensive scientific-computing traces the paper's introduction
    invokes (substitution documented in DESIGN.md). *)

val io_burst :
  cores:int -> phases:int -> io_intensity:float -> Random.State.t -> Task.t array
(** Alternating compute/I-O tasks. [io_intensity ∈ (0,1]] scales how much
    of each task is I/O; demands are drawn uniformly from (0.2, 1.0],
    volumes from [1, 4] ticks. *)

val streaming : cores:int -> length:float -> Random.State.t -> Task.t array
(** Pure-I/O streaming tasks (single long I/O phase, random demand):
    maximal bus contention. *)

val mixed_vm :
  cores:int -> Random.State.t -> Task.t array
(** "Virtual machine" mix: a third interactive (many short phases), a
    third batch (compute-heavy), a third backup (streaming). *)

val to_crsharing : granularity:int -> Task.t array -> Crs_core.Instance.t
(** Map I/O phases to unit-size CRSharing jobs by rounding each phase's
    demand·volume work onto a rational grid (compute phases become
    zero-requirement jobs). This is the bridge that lets the exact
    analysis layer bound what any bus policy could achieve on a simulator
    workload; phases with volume > 1 are split into ⌈volume⌉ unit jobs. *)
