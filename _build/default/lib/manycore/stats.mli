(** Derived metrics from a simulation run. *)

type t = {
  makespan : int;
  avg_completion : float;
  max_slowdown : float;
      (** worst per-task [completion / ideal_runtime] (≥ 1 up to tick
          rounding) *)
  avg_slowdown : float;
  bus_utilization : float;  (** mean consumed bandwidth per tick *)
  wasted_bandwidth : float;
}

val of_result : Task.t array -> Engine.result -> t

val to_row : t -> string list
(** For tabular rendering: makespan, avg completion, slowdowns,
    utilization. *)

val header : string list

val pp : Format.formatter -> t -> unit
