lib/manycore/engine.mli: Policy Task
