lib/manycore/task.mli: Format
