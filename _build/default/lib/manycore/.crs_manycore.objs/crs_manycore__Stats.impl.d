lib/manycore/stats.ml: Array Engine Float Format Printf Task
