lib/manycore/workload.ml: Array Crs_core Crs_num Float List Printf Random Task
