lib/manycore/engine.ml: Array Float List Policy Printf String Task
