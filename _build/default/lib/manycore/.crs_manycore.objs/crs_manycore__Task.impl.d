lib/manycore/task.ml: Format List
