lib/manycore/stats.mli: Engine Format Task
