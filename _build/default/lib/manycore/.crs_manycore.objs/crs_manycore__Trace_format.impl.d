lib/manycore/trace_format.ml: Array Buffer Engine Fun In_channel List Printf String Task
