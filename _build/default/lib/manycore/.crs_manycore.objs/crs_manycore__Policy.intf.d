lib/manycore/policy.mli:
