lib/manycore/workload.mli: Crs_core Random Task
