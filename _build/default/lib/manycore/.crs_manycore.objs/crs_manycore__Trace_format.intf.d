lib/manycore/trace_format.mli: Engine Task
