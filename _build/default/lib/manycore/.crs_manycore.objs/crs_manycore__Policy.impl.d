lib/manycore/policy.ml: Array Float List
