(** Tasks for the many-core bus simulator.

    A task is a sequence of phases, each either pure compute (no bus
    needed) or I/O-bound with a bandwidth demand: exactly the paper's
    picture of a program as "a number of jobs that must be processed
    sequentially, one after another", where each job is "a phase of the
    task's processing where the resource requirement is constant"
    (Section 1). The simulator is float-based — it plays the role of the
    authors' missing testbed, while the analysis layer stays exact. *)

type phase =
  | Compute of float  (** duration in ticks at full speed *)
  | Io of { demand : float; volume : float }
      (** [demand ∈ (0,1]]: bus fraction needed for full speed; [volume]:
          ticks of I/O at full speed *)

type t = { name : string; phases : phase list }

val make : name:string -> phase list -> t
(** @raise Invalid_argument on empty phases, non-positive durations or
    volumes, or demands outside (0,1]. *)

val total_ideal_ticks : t -> float
(** Runtime when always granted its full demand. *)

val num_phases : t -> int

val io_fraction : t -> float
(** Share of ideal runtime spent in I/O phases: 1.0 = pure I/O. *)

val pp : Format.formatter -> t -> unit
