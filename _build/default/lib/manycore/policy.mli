(** Bandwidth-allocation policies for the bus simulator.

    A policy sees the per-core view at the start of a tick — current
    phase kind, bandwidth demand, remaining volume, remaining phase
    count — and returns each core's bus share (summing to at most 1;
    the engine asserts feasibility up to float slack). *)

type core_view = {
  core : int;
  demand : float;  (** 0.0 during compute phases or when idle *)
  remaining_volume : float;  (** of the current phase *)
  remaining_phases : int;  (** including the current one; 0 = done *)
  remaining_work : float;  (** Σ demand·volume over remaining I/O phases *)
}

type t = { name : string; allocate : core_view array -> float array }

val fair_share : t
(** Water-filling: equal split among demanding cores, with surplus from
    cores that need less than their split redistributed until exhausted. *)

val demand_proportional : t
(** Shares proportional to current demands, capped at the demand. *)

val first_come : t
(** Fixed priority by core index — the staircase policy. *)

val greedy_balance : t
(** The paper's GreedyBalance lifted to the simulator: priority by
    remaining phase count, then by remaining work of the current phase;
    pour the bus down the priority list. *)

val round_robin_phases : t
(** The paper's RoundRobin: only cores in the lowest unfinished phase
    index receive bandwidth. *)

val all : t list
