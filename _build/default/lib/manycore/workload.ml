module Q = Crs_num.Rational

let uniform st lo hi = lo +. (Random.State.float st (hi -. lo))

let io_burst ~cores ~phases ~io_intensity st =
  if io_intensity <= 0.0 || io_intensity > 1.0 then
    invalid_arg "Workload.io_burst: io_intensity must lie in (0,1]";
  Array.init cores (fun c ->
      let phase k =
        if k mod 2 = 0 then
          Task.Io
            {
              demand = uniform st 0.2 1.0;
              volume = Float.round (uniform st 1.0 4.0 *. io_intensity *. 10.0) /. 10.0
              |> Float.max 0.1;
            }
        else Task.Compute (Float.max 0.5 (Float.round (uniform st 0.5 3.0 *. 2.0) /. 2.0))
      in
      Task.make ~name:(Printf.sprintf "burst-%d" c) (List.init (2 * phases) phase))

let streaming ~cores ~length st =
  Array.init cores (fun c ->
      Task.make
        ~name:(Printf.sprintf "stream-%d" c)
        [ Task.Io { demand = uniform st 0.5 1.0; volume = length } ])

let mixed_vm ~cores st =
  Array.init cores (fun c ->
      match c mod 3 with
      | 0 ->
        (* Interactive: many short I/O requests with small demands. *)
        Task.make
          ~name:(Printf.sprintf "interactive-%d" c)
          (List.concat
             (List.init 6 (fun _ ->
                  [
                    Task.Io { demand = uniform st 0.05 0.3; volume = 1.0 };
                    Task.Compute 1.0;
                  ])))
      | 1 ->
        (* Batch: compute-heavy with occasional checkpoints. *)
        Task.make
          ~name:(Printf.sprintf "batch-%d" c)
          [
            Task.Compute 5.0;
            Task.Io { demand = uniform st 0.6 1.0; volume = 2.0 };
            Task.Compute 5.0;
            Task.Io { demand = uniform st 0.6 1.0; volume = 2.0 };
          ]
      | _ ->
        (* Backup: one long stream. *)
        Task.make
          ~name:(Printf.sprintf "backup-%d" c)
          [ Task.Io { demand = uniform st 0.4 0.9; volume = 12.0 } ])

let round_to_grid ~granularity x =
  let g = granularity in
  let k = int_of_float (Float.round (x *. float_of_int g)) in
  Q.of_ints (min g (max 0 k)) g

let to_crsharing ~granularity tasks =
  if granularity < 1 then invalid_arg "Workload.to_crsharing: granularity >= 1";
  let job_of_phase = function
    | Task.Compute d ->
      List.init (int_of_float (Float.ceil d)) (fun _ -> Q.zero)
    | Task.Io { demand; volume } ->
      let full = int_of_float (Float.floor volume) in
      let frac = volume -. float_of_int full in
      let fulls =
        List.init full (fun _ ->
            Q.max (Q.of_ints 1 granularity) (round_to_grid ~granularity demand))
      in
      if frac > 1e-9 then
        fulls
        @ [ Q.max (Q.of_ints 1 granularity) (round_to_grid ~granularity (demand *. frac)) ]
      else fulls
  in
  Crs_core.Instance.of_requirements
    (Array.map
       (fun (t : Task.t) ->
         Array.of_list (List.concat_map job_of_phase t.phases))
       tasks)
