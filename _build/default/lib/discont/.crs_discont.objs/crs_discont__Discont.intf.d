lib/discont/discont.mli:
