lib/discont/discont.ml: Array Crs_util Float List Printf
