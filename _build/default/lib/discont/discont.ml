type t = { m : int; alpha : float; workloads : float array }

let make ~m ~alpha workloads =
  if m < 1 then invalid_arg "Discont.make: m must be >= 1";
  if alpha <= 0.0 then invalid_arg "Discont.make: alpha must be > 0";
  if Array.length workloads = 0 then invalid_arg "Discont.make: no jobs";
  Array.iter
    (fun w -> if w <= 0.0 then invalid_arg "Discont.make: workloads must be positive")
    workloads;
  { m; alpha; workloads = Array.copy workloads }

let sequential_makespan t = Array.fold_left ( +. ) 0.0 t.workloads

let batch_makespan alpha ws =
  (* All jobs of the batch in parallel with the equalizing constant
     shares R_j = w_j^{1/α} / S: every job runs at speed w_j / S^α and
     they finish together at time S^α. *)
  let s = List.fold_left (fun acc w -> acc +. (w ** (1.0 /. alpha))) 0.0 ws in
  s ** alpha

let parallel_makespan t =
  if Array.length t.workloads > t.m then
    invalid_arg "Discont.parallel_makespan: needs n <= m";
  batch_makespan t.alpha (Array.to_list t.workloads)

type run = {
  makespan : float;
  completions : float array;
  events : (float * float array) list;
}

let list_heuristic t =
  let n = Array.length t.workloads in
  (* Longest workloads first. *)
  let order =
    List.sort
      (fun a b -> compare t.workloads.(b) t.workloads.(a))
      (Crs_util.Misc.range n)
  in
  let completions = Array.make n 0.0 in
  let events = ref [] in
  let now = ref 0.0 in
  let rec batches = function
    | [] -> ()
    | rest ->
      let batch = Crs_util.Misc.take t.m rest in
      let remaining = Crs_util.Misc.drop t.m rest in
      let s =
        List.fold_left
          (fun acc j -> acc +. (t.workloads.(j) ** (1.0 /. t.alpha)))
          0.0 batch
      in
      let shares = Array.make n 0.0 in
      List.iter
        (fun j -> shares.(j) <- (t.workloads.(j) ** (1.0 /. t.alpha)) /. s)
        batch;
      events := (!now, shares) :: !events;
      let duration = s ** t.alpha in
      now := !now +. duration;
      List.iter (fun j -> completions.(j) <- !now) batch;
      batches remaining
  in
  batches order;
  { makespan = !now; completions; events = List.rev !events }

let optimal_makespan t =
  if t.alpha >= 1.0 then sequential_makespan t
  else if Array.length t.workloads <= t.m then parallel_makespan t
  else (list_heuristic t).makespan

let check_run t run =
  let exception Bad of string in
  let n = Array.length t.workloads in
  try
    (* Feasibility of every share vector. *)
    List.iter
      (fun (time, shares) ->
        let total = Array.fold_left ( +. ) 0.0 shares in
        if total > 1.0 +. 1e-9 then
          raise (Bad (Printf.sprintf "shares sum to %.6f at t=%.3f" total time));
        Array.iter
          (fun s -> if s < -1e-12 then raise (Bad "negative share"))
          shares)
      run.events;
    (* Integrate each job's speed over the piecewise-constant profile. *)
    let horizon = run.makespan in
    let segments =
      let rec pair = function
        | [] -> []
        | [ (start, shares) ] -> [ (start, horizon, shares) ]
        | (start, shares) :: ((next, _) :: _ as rest) ->
          (start, next, shares) :: pair rest
      in
      pair run.events
    in
    for j = 0 to n - 1 do
      let work =
        List.fold_left
          (fun acc (t0, t1, shares) ->
            (* The job only progresses until its completion time. *)
            let t1 = Float.min t1 run.completions.(j) in
            if t1 <= t0 then acc
            else acc +. ((t1 -. t0) *. (shares.(j) ** t.alpha)))
          0.0 segments
      in
      if Float.abs (work -. t.workloads.(j)) > 1e-6 then
        raise
          (Bad
             (Printf.sprintf "job %d processed %.6f of %.6f" j work t.workloads.(j)))
    done;
    Ok ()
  with Bad msg -> Error msg
