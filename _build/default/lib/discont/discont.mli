(** Discrete-continuous scheduling baseline (paper, Section 2;
    Józefowska & Weglarz 1998, and the power-rate special case of
    Józefowska et al. 1999).

    [n] independent, non-preemptable jobs on [m] identical processors
    share one continuously divisible, renewable resource. Job [j] has
    workload [w_j] and is processed at speed [f(R_j(t))] when granted the
    resource share [R_j(t)] ([Σ_j R_j(t) ≤ 1]). We implement the
    power-rate family [f(R) = R^α], [α > 0]:

    - [α < 1]: [f] concave — sharing the resource is efficient; with
      [n ≤ m] the optimum processes all jobs in parallel with constant
      shares and has the closed form [T* = (Σ_j w_j^{1/α})^α].
    - [α = 1]: all work-conserving policies tie (the resource is a fluid).
    - [α > 1]: [f] convex — concentration wins; the optimum runs one job
      at a time at full resource, [T* = Σ_j w_j].

    This is the analytical landscape the paper contrasts itself against
    ("cases that can be analyzed analytically turn out to feature quite
    simple solution structures"); CRSharing's own speed function
    [min(R/r, 1)] is concave with a cap, which is where the simple
    structures stop working. Floating point throughout — this module is
    a baseline, not part of the exact core. *)

type t = private { m : int; alpha : float; workloads : float array }

val make : m:int -> alpha:float -> float array -> t
(** @raise Invalid_argument if [m < 1], [alpha <= 0], no jobs, or a
    non-positive workload. *)

(** {1 Closed forms} *)

val sequential_makespan : t -> float
(** One job at a time at full resource: [Σ w_j] (optimal for [α ≥ 1]). *)

val parallel_makespan : t -> float
(** All jobs simultaneously with constant equalizing shares,
    [T = (Σ w_j^{1/α})^α]. Requires [n ≤ m].
    @raise Invalid_argument otherwise. *)

val optimal_makespan : t -> float
(** The analytical optimum where known: [α ≥ 1] sequential; [α < 1] and
    [n ≤ m] parallel. For [α < 1], [n > m] falls back to
    {!list_heuristic} (only an upper bound — the general concave case
    with processor limits is exactly what the literature solves
    heuristically). *)

(** {1 Event-driven heuristic} *)

type run = {
  makespan : float;
  completions : float array;
  events : (float * float array) list;
      (** (time, share vector) at each reallocation *)
}

val list_heuristic : t -> run
(** List scheduling: keep up to [m] jobs running (longest workload
    first); between completion events give the running jobs the constant
    shares that would let them finish together ([R_j ∝ (w_j^{1/α}]
    normalized). This mirrors the heuristics surveyed in the paper's
    Section 2 [8, 9, 16]. *)

val check_run : t -> run -> (unit, string) result
(** Validates a run: shares feasible at every event, every job finishes
    exactly at its completion time (numerical tolerance 1e-6). *)
