module Q = Crs_num.Rational

let lemma5 g =
  List.fold_left (fun acc (c : Sched_graph.component) -> acc + c.num_edges - 1) 0
    (Sched_graph.components g)

let lemma6 g =
  match List.rev (Sched_graph.components g) with
  | [] -> Q.zero
  | last :: earlier_rev ->
    let m = Sched_graph.m g in
    let early_sum =
      List.fold_left
        (fun acc (c : Sched_graph.component) ->
          Q.add acc (Q.of_ints (List.length c.nodes) c.cls))
        Q.zero earlier_rev
    in
    Q.add early_sum (Q.of_ints (List.length last.nodes) m)

let lemma6_int g = Q.ceil_int (lemma6 g)

let combined g instance =
  max
    (Crs_core.Lower_bounds.combined instance)
    (max (lemma5 g) (lemma6_int g))

let average_edges_per_component g =
  let n = Sched_graph.num_components g in
  if n = 0 then Q.zero else Q.of_ints (Sched_graph.num_edges g) n

let theorem7_bound ~m = Q.sub Q.two (Q.of_ints 1 m)

let theorem7_ratio_bounds g ~m =
  let avg = average_edges_per_component g in
  let eq10 =
    if Q.(avg <= one) then None
    else Some (Q.div avg (Q.sub avg Q.one))
  in
  let eq11 =
    Q.div (Q.mul (Q.of_int m) avg) (Q.add avg (Q.of_int (m - 1)))
  in
  (eq10, eq11)
