(** Lower bounds on the optimal makespan derived from a schedule's
    hypergraph (paper, Section 8.1).

    Both bounds are statements about [OPT], computed from an arbitrary
    schedule [S] of the right kind: Lemma 5 needs [S] non-wasting, Lemma 6
    needs [S] balanced. Callers are responsible for the precondition
    (tests pair these with {!Crs_core.Properties}). *)

val lemma5 : Sched_graph.t -> int
(** [OPT ≥ Σ_k (#_k − 1)] for the graph of a non-wasting schedule: within
    a component every step but the last uses the full resource. *)

val lemma6 : Sched_graph.t -> Crs_num.Rational.t
(** [OPT ≥ n ≥ Σ_{k<N} |C_k|/q_k + |C_N|/m] for a balanced schedule. The
    exact rational value is returned; compare with [Q.ceil]. *)

val lemma6_int : Sched_graph.t -> int
(** [⌈lemma6⌉] (makespans are integral). *)

val combined : Sched_graph.t -> Crs_core.Instance.t -> int
(** Max of Observation 1, the job-count bound, Lemma 5 and Lemma 6 — the
    strongest certified lower bound available from this schedule. Only
    valid if the schedule is non-wasting and balanced. *)

val average_edges_per_component : Sched_graph.t -> Crs_num.Rational.t
(** The paper's [#_∅] used in the Theorem 7 proof; exposed for the
    analysis-replication tests. *)

val theorem7_bound : m:int -> Crs_num.Rational.t
(** The approximation guarantee [2 − 1/m] of Theorem 7. *)

val theorem7_ratio_bounds :
  Sched_graph.t -> m:int -> Crs_num.Rational.t option * Crs_num.Rational.t
(** The two intermediate bounds from the proof of Theorem 7,
    [#_∅/(#_∅−1)] (Eq. 10) and [m·#_∅/(#_∅+m−1)] (Eq. 11), evaluated on
    this schedule's graph. Their minimum upper-bounds [S/OPT] for a
    non-wasting, progressive, balanced [S]. The first is [None] when
    [#_∅ = 1] (the Eq. 10 bound degenerates to [+∞]). *)
