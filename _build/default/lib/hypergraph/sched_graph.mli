(** The scheduling hypergraph [H_S] of a schedule for unit-size jobs
    (paper, Section 3.2).

    Nodes are the jobs [(i,j)], weighted by their resource requirements;
    edge [e_t] contains the jobs active during time step [t]. Connected
    components of [H_S] are contiguous runs of time steps (Observation 2)
    and carry the structural information used by the Lemma 5 and Lemma 6
    lower bounds. *)

type node = int * int
(** Job [(processor, index)], 0-based. *)

type component = {
  index : int;  (** 0-based, in left-to-right (time) order *)
  nodes : node list;  (** members, sorted *)
  first_step : int;  (** 1-based first time step of the component *)
  last_step : int;
  num_edges : int;  (** the paper's [#_k] *)
  cls : int;  (** the paper's class [q_k]: size of the first edge *)
}

type t

val of_trace : Crs_core.Execution.trace -> t
(** Build [H_S]. @raise Invalid_argument on a non-unit-size instance or an
    incomplete trace (the hypergraph is defined for finished schedules). *)

val instance : t -> Crs_core.Instance.t
val m : t -> int
(** Number of processors of the underlying instance. *)

val num_nodes : t -> int
val num_edges : t -> int
(** Equals the schedule's makespan. *)

val edge : t -> int -> node list
(** [edge g t] is [e_t], 1-based. Never empty for [t] up to the makespan. *)

val weight : t -> node -> Crs_num.Rational.t
(** The node's resource requirement. *)

val components : t -> component list
(** Ordered left to right; their [num_edges] sum to the makespan. *)

val num_components : t -> int

val component_of_step : t -> int -> component
(** Component whose step range contains the given 1-based step. *)

val check_observation_2 : t -> (unit, string) result
(** Every component's edges form a contiguous interval of time steps. True
    by construction; exposed for tests. *)

val check_class_monotone : t -> (unit, string) result
(** Component classes [q_k] are non-increasing in [k] for balanced
    schedules (paper, remark after Definition 1). Only meaningful when the
    underlying schedule is balanced. *)

val pp : Format.formatter -> t -> unit
