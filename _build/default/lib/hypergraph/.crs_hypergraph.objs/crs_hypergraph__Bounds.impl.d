lib/hypergraph/bounds.ml: Crs_core Crs_num List Sched_graph
