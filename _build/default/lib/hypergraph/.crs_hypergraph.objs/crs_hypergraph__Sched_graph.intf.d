lib/hypergraph/sched_graph.mli: Crs_core Crs_num Format
