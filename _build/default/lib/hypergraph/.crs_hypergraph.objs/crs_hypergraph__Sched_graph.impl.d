lib/hypergraph/sched_graph.ml: Array Crs_core Crs_num Crs_util Execution Format Hashtbl Instance Job List Printf
