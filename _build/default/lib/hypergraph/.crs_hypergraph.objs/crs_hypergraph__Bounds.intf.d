lib/hypergraph/bounds.mli: Crs_core Crs_num Sched_graph
