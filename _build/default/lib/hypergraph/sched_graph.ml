module Q = Crs_num.Rational
open Crs_core

type node = int * int

type component = {
  index : int;
  nodes : node list;
  first_step : int;
  last_step : int;
  num_edges : int;
  cls : int;
}

type t = {
  instance : Instance.t;
  edges : node list array;  (* edges.(t-1) = e_t *)
  comps : component list;
}

let node_ids instance =
  (* Dense ids for union-find: prefix sums of row lengths. *)
  let m = Instance.m instance in
  let offsets = Array.make m 0 in
  let total = ref 0 in
  for i = 0 to m - 1 do
    offsets.(i) <- !total;
    total := !total + Instance.n_i instance i
  done;
  let id (i, j) = offsets.(i) + j in
  (id, !total)

let of_trace (trace : Execution.trace) =
  if not (Instance.is_unit_size trace.instance) then
    invalid_arg "Sched_graph.of_trace: hypergraph defined for unit-size jobs";
  if not trace.completed then
    invalid_arg "Sched_graph.of_trace: trace does not finish all jobs";
  let instance = trace.instance in
  let makespan = Execution.makespan trace in
  let edges = Array.init makespan (fun t -> Execution.active_jobs trace (t + 1)) in
  let id, total = node_ids instance in
  let uf = Crs_util.Union_find.create (max total 1) in
  Array.iter
    (fun edge ->
      match edge with
      | [] -> ()
      | first :: rest -> List.iter (fun n -> Crs_util.Union_find.union uf (id first) (id n)) rest)
    edges;
  (* Group consecutive edges by component representative. Observation 2
     guarantees the representative changes only between components, so a
     simple scan suffices. *)
  let comps = ref [] in
  let cur_rep = ref (-1) in
  let cur_first = ref 0 in
  let cur_edges = ref 0 in
  let flush last_step =
    if !cur_rep >= 0 then begin
      let first = !cur_first in
      let first_edge = edges.(first - 1) in
      comps :=
        {
          index = 0;
          nodes = [];
          first_step = first;
          last_step;
          num_edges = !cur_edges;
          cls = List.length first_edge;
        }
        :: !comps
    end
  in
  Array.iteri
    (fun t edge ->
      match edge with
      | [] -> ()
      | first :: _ ->
        let rep = Crs_util.Union_find.find uf (id first) in
        if rep <> !cur_rep then begin
          flush t;
          cur_rep := rep;
          cur_first := t + 1;
          cur_edges := 1
        end
        else incr cur_edges)
    edges;
  flush makespan;
  let comps = List.rev !comps in
  (* Attach sorted member lists: collect the nodes of each component's
     step range. *)
  let comps =
    List.mapi
      (fun k c ->
        let members = Hashtbl.create 16 in
        for t = c.first_step to c.last_step do
          List.iter (fun n -> Hashtbl.replace members n ()) edges.(t - 1)
        done;
        let nodes = Hashtbl.fold (fun n () acc -> n :: acc) members [] in
        { c with index = k; nodes = List.sort compare nodes })
      comps
  in
  { instance; edges; comps }

let instance g = g.instance
let m g = Instance.m g.instance
let num_nodes g = Instance.total_jobs g.instance
let num_edges g = Array.length g.edges

let edge g t =
  if t < 1 || t > num_edges g then invalid_arg "Sched_graph.edge: step out of range";
  g.edges.(t - 1)

let weight g (i, j) = Job.requirement (Instance.job g.instance i j)
let components g = g.comps
let num_components g = List.length g.comps

let component_of_step g t =
  match List.find_opt (fun c -> c.first_step <= t && t <= c.last_step) g.comps with
  | Some c -> c
  | None -> invalid_arg "Sched_graph.component_of_step: step out of range"

let check_observation_2 g =
  (* Components must tile [1..makespan] contiguously in order. *)
  let rec go expected = function
    | [] ->
      if expected = num_edges g + 1 then Ok ()
      else Error (Printf.sprintf "components end at %d, makespan %d" (expected - 1) (num_edges g))
    | c :: rest ->
      if c.first_step <> expected then
        Error
          (Printf.sprintf "component %d starts at %d, expected %d" c.index
             c.first_step expected)
      else if c.last_step - c.first_step + 1 <> c.num_edges then
        Error (Printf.sprintf "component %d is not contiguous" c.index)
      else go (c.last_step + 1) rest
  in
  go 1 g.comps

let check_class_monotone g =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if a.cls < b.cls then
        Error
          (Printf.sprintf "class increases from component %d (q=%d) to %d (q=%d)"
             a.index a.cls b.index b.cls)
      else go rest
    | _ -> Ok ()
  in
  go g.comps

let pp fmt g =
  Format.fprintf fmt "@[<v>hypergraph: %d nodes, %d edges, %d components@,"
    (num_nodes g) (num_edges g) (num_components g);
  List.iter
    (fun c ->
      Format.fprintf fmt "C%d: steps %d-%d, #%d edges, class %d, %d nodes@,"
        (c.index + 1) c.first_step c.last_step c.num_edges c.cls
        (List.length c.nodes))
    g.comps;
  Format.fprintf fmt "@]"
