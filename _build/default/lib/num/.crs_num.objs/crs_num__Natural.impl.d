lib/num/natural.ml: Array Buffer Format List Printf Stdlib String
