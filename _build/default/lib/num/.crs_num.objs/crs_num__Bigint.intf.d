lib/num/bigint.mli: Format Natural
