lib/num/bigint.ml: Format Natural Stdlib String
