lib/num/rational.mli: Bigint Format
