lib/num/rational.ml: Array Bigint Char Format List Natural Stdlib String
