lib/num/natural.mli: Format
