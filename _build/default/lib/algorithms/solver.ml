module Q = Crs_num.Rational
open Crs_core

type exact_method = Dp_two | Config_enum | Dfs_bnb

let optimal_makespan ?method_ instance =
  let method_ =
    match method_ with
    | Some m -> m
    | None -> if Instance.m instance = 2 then Dp_two else Config_enum
  in
  match method_ with
  | Dp_two -> Opt_two.makespan instance
  | Config_enum -> Opt_config.makespan instance
  | Dfs_bnb -> Brute_force.makespan instance

let optimal_schedule instance =
  if Instance.m instance = 2 then (Opt_two.solve instance).schedule
  else (Opt_config.solve instance).schedule

let ratio ~algorithm instance =
  let opt = optimal_makespan instance in
  let alg = algorithm instance in
  if opt = 0 then Q.one else Q.of_ints alg opt

let certified_lower_bound instance =
  let schedule = Greedy_balance.schedule instance in
  let trace = Execution.run_exn instance schedule in
  let graph = Crs_hypergraph.Sched_graph.of_trace trace in
  Crs_hypergraph.Bounds.combined graph instance

let ratio_upper_bound instance =
  let gb = Greedy_balance.makespan instance in
  let lb = certified_lower_bound instance in
  if lb = 0 then Q.one else Q.of_ints gb lb
