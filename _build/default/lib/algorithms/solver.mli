(** Facade dispatching to the best available exact solver and computing
    approximation ratios. *)

type exact_method = Dp_two | Config_enum | Dfs_bnb

val optimal_makespan : ?method_:exact_method -> Crs_core.Instance.t -> int
(** Exact optimum. Default method: {!Opt_two} for [m = 2], {!Opt_config}
    otherwise. @raise Invalid_argument on non-unit sizes. *)

val optimal_schedule : Crs_core.Instance.t -> Crs_core.Schedule.t
(** A witness optimal schedule ({!Opt_two} for two processors,
    {!Opt_config} otherwise). *)

val ratio : algorithm:(Crs_core.Instance.t -> int) -> Crs_core.Instance.t -> Crs_num.Rational.t
(** [algorithm makespan / optimal makespan]; 1 when both are 0. *)

val certified_lower_bound : Crs_core.Instance.t -> int
(** Cheap lower bound without exact solving: runs GreedyBalance, builds
    its hypergraph and takes the strongest of Observation 1, job count,
    Lemma 5, Lemma 6. Valid because GreedyBalance schedules are
    non-wasting and balanced. *)

val ratio_upper_bound : Crs_core.Instance.t -> Crs_num.Rational.t
(** GreedyBalance makespan divided by {!certified_lower_bound}: a
    certified upper bound on its true approximation ratio on this
    instance, computable without exact solving. *)
