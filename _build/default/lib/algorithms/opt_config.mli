(** OptResAssignment2: exact algorithm for any fixed number of processors
    and unit-size jobs (paper, Section 7, Algorithm 2).

    Layered breadth-first enumeration of configurations
    [(t, j_1..j_m, v_1..v_m)] — jobs completed per processor and remaining
    requirement of each active job. Successors follow Lemma 1's
    normal form: every step finishes a non-empty set [F] of active jobs
    (total cost at most 1) and invests any leftover in at most one further
    active job (progressive), wasting nothing that could be used
    (non-wasting). Dominated configurations are discarded layer by layer
    (Lemma 4): [γ] dominates [γ'] when, per processor, [γ] has either
    strictly more jobs done or the same job with no more remaining work.

    Polynomial for fixed [m] (Theorem 6); the practical cost grows quickly
    with [m], which the ablation bench quantifies (pruning on/off). *)

type stats = {
  layers : int list;  (** surviving configurations per time layer *)
  generated : int;  (** configurations generated before pruning *)
}

type solution = {
  makespan : int;
  schedule : Crs_core.Schedule.t;
  stats : stats;
}

val solve : ?prune:bool -> Crs_core.Instance.t -> solution
(** [prune] defaults to [true]; [false] disables domination pruning (for
    the ablation bench) but keeps exact-duplicate merging.
    @raise Invalid_argument on non-unit job sizes. *)

val makespan : ?prune:bool -> Crs_core.Instance.t -> int
