module Q = Crs_num.Rational
open Crs_core

type config = { j : int array; v : Q.t array }
(* v = remaining requirement of the active job (invested = full - v). *)

type node = {
  config : config;
  (* For each supported processor: (round, core) of the configuration
     after the round in which it last received resource — everything
     step-equality of Definition 6 needs. *)
  last : (int * (int * int array)) list;
}

type verdict = {
  layers_checked : int;
  configurations : int;
  step_equal_pairs : int;
  counterexample : string option;
}

let req instance i k =
  if k < Instance.n_i instance i then Job.requirement (Instance.job instance i k)
  else Q.zero

let support instance c =
  List.filter
    (fun i ->
      c.j.(i) < Instance.n_i instance i
      && Q.(c.v.(i) < req instance i c.j.(i)))
    (Crs_util.Misc.range (Instance.m instance))

let dominates a b =
  let m = Array.length a.j in
  let rec go i =
    i >= m
    || ((a.j.(i) > b.j.(i) || (a.j.(i) = b.j.(i) && Q.(a.v.(i) <= b.v.(i)))) && go (i + 1))
  in
  go 0

(* Successors in the Lemma 1 normal form (same space as Opt_config). *)
let successors instance c =
  let m = Instance.m instance in
  let actives = List.filter (fun i -> c.j.(i) < Instance.n_i instance i) (Crs_util.Misc.range m) in
  let result = ref [] in
  let arr = Array.of_list actives in
  let k = Array.length arr in
  for mask = 1 to (1 lsl k) - 1 do
    let finished = ref [] in
    let cost = ref Q.zero in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then begin
        finished := arr.(b) :: !finished;
        cost := Q.add !cost c.v.(arr.(b))
      end
    done;
    if Q.(!cost <= one) then begin
      let leftover = Q.sub Q.one !cost in
      let others = List.filter (fun i -> not (List.mem i !finished)) actives in
      let emit partial =
        let j = Array.copy c.j and v = Array.copy c.v in
        List.iter
          (fun i ->
            j.(i) <- c.j.(i) + 1;
            v.(i) <- req instance i j.(i))
          !finished;
        (match partial with
        | None -> ()
        | Some p -> v.(p) <- Q.sub c.v.(p) leftover);
        let received = !finished @ (match partial with Some p -> [ p ] | None -> []) in
        result := ({ j; v }, received) :: !result
      in
      if others = [] || Q.is_zero leftover then emit None
      else
        List.iter
          (fun p -> if Q.(c.v.(p) > leftover) then emit (Some p))
          others
    end
  done;
  !result

let audit ?(nested = true) instance =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Lemma4_audit: unit-size jobs only";
  let m = Instance.m instance in
  let initial =
    { config = { j = Array.make m 0; v = Array.init m (fun i -> req instance i 0) };
      last = [] }
  in
  let is_final c =
    List.for_all (fun i -> c.j.(i) >= Instance.n_i instance i) (Crs_util.Misc.range m)
  in
  let layers_checked = ref 0 in
  let configurations = ref 1 in
  let pairs = ref 0 in
  let counterexample = ref None in
  let max_configs = 50_000 in
  let rec grow layer round =
    if List.exists (fun n -> is_final n.config) layer || layer = [] then ()
    else begin
      incr layers_checked;
      let next = Hashtbl.create 256 in
      List.iter
        (fun node ->
          List.iter
            (fun (cfg, received) ->
              let supp = support instance cfg in
              (* Nested (+ progressive) schedules keep at most one "open"
                 (invested, unfinished) job at any time; the paper's
                 Algorithm 2 enumerates only those. *)
              if nested && List.length supp > 1 then ()
              else begin
              let last =
                List.filter_map
                  (fun i ->
                    if List.mem i received then Some (i, (round, Array.copy cfg.j))
                    else List.assoc_opt i node.last |> Option.map (fun e -> (i, e)))
                  supp
              in
              let key =
                ( Array.to_list cfg.j,
                  List.map (fun (i, v) -> (i, Q.to_string v)) (List.combine supp (List.map (fun i -> cfg.v.(i)) supp)),
                  List.map (fun (i, (r, core)) -> (i, r, Array.to_list core)) last )
              in
              if not (Hashtbl.mem next key) then begin
                Hashtbl.replace next key { config = cfg; last };
                incr configurations
              end
              end)
            (successors instance node.config))
        layer;
      if !configurations > max_configs then
        failwith "Lemma4_audit: instance too large";
      let nodes = Hashtbl.fold (fun _ n acc -> n :: acc) next [] in
      (* Group by extended step-equality: same core, same support, and
         step-equal last-receipt configurations per supported processor. *)
      let groups = Hashtbl.create 64 in
      List.iter
        (fun n ->
          let supp = support instance n.config in
          let gkey =
            ( Array.to_list n.config.j,
              supp,
              List.map
                (fun i ->
                  match List.assoc_opt i n.last with
                  | Some (r, core) -> (i, r, Array.to_list core)
                  | None -> (i, -1, []))
                supp )
          in
          let prev = try Hashtbl.find groups gkey with Not_found -> [] in
          Hashtbl.replace groups gkey (n :: prev))
        nodes;
      Hashtbl.iter
        (fun _ members ->
          let rec all_pairs = function
            | [] | [ _ ] -> ()
            | a :: rest ->
              List.iter
                (fun b ->
                  incr pairs;
                  if
                    (not (dominates a.config b.config))
                    && not (dominates b.config a.config)
                  then
                    counterexample :=
                      Some
                        (Format.asprintf
                           "round %d: step-equal extended configurations with \
                            incomparable remainders (%s) vs (%s)"
                           round
                           (String.concat ","
                              (Array.to_list (Array.map Q.to_string a.config.v)))
                           (String.concat ","
                              (Array.to_list (Array.map Q.to_string b.config.v)))))
                rest;
              all_pairs rest
          in
          all_pairs members)
        groups;
      grow nodes (round + 1)
    end
  in
  grow [ initial ] 1;
  {
    layers_checked = !layers_checked;
    configurations = !configurations;
    step_equal_pairs = !pairs;
    counterexample = !counterexample;
  }

let holds ?nested instance = (audit ?nested instance).counterexample = None
