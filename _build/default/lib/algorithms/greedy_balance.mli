(** The GreedyBalance algorithm (paper, Section 8.3).

    At each step, processors are prioritized by the number of remaining
    jobs (more first) and, on ties, by the remaining resource requirement
    of the active job (larger first); the resource is poured down this
    priority list. The resulting schedules are non-wasting, progressive
    and balanced, hence (Theorems 7 and 8) a worst-case
    [(2 − 1/m)]-approximation, and that ratio is tight. *)

val policy : Crs_core.Policy.t

val schedule : Crs_core.Instance.t -> Crs_core.Schedule.t
val makespan : Crs_core.Instance.t -> int

val ordering : Crs_core.Policy.state -> int -> int -> bool
(** The strict priority order used at each step (exposed for the
    tie-breaking ablation bench). *)
