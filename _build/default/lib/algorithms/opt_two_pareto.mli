(** Pareto-set variant of {!Opt_two}, used to audit the paper's Lemma 3.

    The paper argues (Lemma 3) that per DP cell it suffices to keep the
    single lexicographically best pair [(t, r)] — earliest completion
    count, then smallest combined remainder. The domination argument
    compares states at equal times, so keeping just one pair across
    *different* times is the part that deserves scrutiny. This solver
    keeps the full Pareto frontier of [(t, r)] pairs per cell instead
    (smaller [t] or smaller [r] both non-dominated) and therefore cannot
    lose an optimal trajectory. Agreement with {!Opt_two} on randomized
    instances (property-tested) is the executable confirmation of
    Lemma 3's sufficiency. *)

val makespan : Crs_core.Instance.t -> int
(** @raise Invalid_argument unless two processors, unit sizes. *)

val frontier_sizes : Crs_core.Instance.t -> int * float
(** (max, mean) number of Pareto points per reachable cell — measures
    how much Lemma 3 actually saves. *)
