(** The RoundRobin algorithm (paper, Section 4.2).

    Works in phases [j = 1 .. n]: during phase [j] only the [j]-th jobs
    are processed; the resource is handed out greedily in processor order
    among the processors that have not finished their [j]-th job. Resource
    left over at the end of a phase is wasted. Theorem 3: worst-case
    approximation ratio exactly 2 (for unit-size jobs). *)

val policy : Crs_core.Policy.t

val schedule : Crs_core.Instance.t -> Crs_core.Schedule.t
(** Run to completion. Works for arbitrary job sizes; the Theorem 3
    guarantee is stated for unit sizes. *)

val makespan : Crs_core.Instance.t -> int

val phase_of_step : Crs_core.Instance.t -> int -> int
(** For analysis/tests: the phase the RoundRobin schedule is in at a given
    1-based step. *)

val predicted_makespan_unit : Crs_core.Instance.t -> int
(** The closed form from the proof of Theorem 3 for unit-size jobs:
    [Σ_j ⌈Σ_{i ∈ M_j} r_ij⌉], with phases of zero total requirement still
    costing one step (a processor finishes at most one job per step).
    @raise Invalid_argument on non-unit sizes. *)
