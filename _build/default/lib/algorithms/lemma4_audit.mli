(** Executable audit of the paper's Lemma 4 (Section 7).

    Definition 6 attaches to each configuration
    [γ = (t, j⃗, v⃗)] its {e extended configuration}
    [E(γ) = (γ, (i, γ_i)_{i ∈ supp γ})], where [supp γ] is the set of
    processors whose active job is partially processed and [γ_i] is the
    configuration right after the round in which processor [i] last
    received resource. Lemma 4 claims: {e if two extended configurations
    are step-equal, one dominates the other} — the counting argument
    behind Theorem 6's polynomial bound.

    This module re-runs the layered enumeration {e without} domination
    pruning, tracking every configuration's extended part, groups each
    layer by step-equality of the extended configurations, and checks the
    claimed domination pairwise. Any violating pair is returned as a
    counterexample (none have ever been found; see EXPERIMENTS.md). *)

type verdict = {
  layers_checked : int;
  configurations : int;  (** total enumerated (no pruning) *)
  step_equal_pairs : int;
      (** DISTINCT extended configurations that are step-equal. The
          proof of Lemma 4 in fact concludes step-equal extended
          configurations are {e identical}, so the strong form predicts
          0 here; any pair that does appear is additionally checked for
          mutual domination (the lemma's stated form). *)
  counterexample : string option;
      (** description of a violating pair, if Lemma 4 failed *)
}

val audit : ?nested:bool -> Crs_core.Instance.t -> verdict
(** [nested] (default true) restricts the enumeration to nested
    schedules, as the paper's Algorithm 2 does — equivalently, at most
    one invested-and-unfinished ("open") job at any time.

    {b Reproduction finding (E4).} With [nested:false] the enumeration
    also visits unnested schedules (still non-wasting and progressive),
    and there Lemma 4 is {e false}: step-equal extended configurations
    with incomparable remainder vectors exist. The pinned witness
    (instance [7/8 / 10/11 1 / 1/3 2/3]) reaches, after three rounds and
    with identical cores, supports and last-receipt rounds, both
    remainders (0, 1/3, 119/264) and (0, 8/33, 13/24). The nestedness
    hypothesis — used only implicitly in the paper's proof — is
    therefore essential to the Theorem 6 counting argument.

    @raise Invalid_argument on non-unit sizes. Exponential — tiny
    instances only. *)

val holds : ?nested:bool -> Crs_core.Instance.t -> bool
