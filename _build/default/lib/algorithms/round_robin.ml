module Q = Crs_num.Rational
open Crs_core

(* Current phase (0-based job index) = smallest active job index; the
   round-robin discipline keeps all processors within one phase. *)
let current_phase (state : Policy.state) =
  let m = Instance.m state.instance in
  let phase = ref max_int in
  for i = 0 to m - 1 do
    if Policy.active state i then phase := min !phase state.next_job.(i)
  done;
  !phase

let policy state =
  let phase = current_phase state in
  Policy.greedy_fill
    ~by:(fun st a b ->
      (* Only phase members may receive resource: order them before
         everyone else, then by processor id. Non-members end up sorted
         after all members, and greedy_fill would still feed them, so we
         zero them below. *)
      let mem i = st.Policy.next_job.(i) = phase in
      match (mem a, mem b) with
      | true, false -> true
      | false, true -> false
      | _ -> a < b)
    state
  |> fun shares ->
  Array.mapi
    (fun i s -> if Policy.active state i && state.Policy.next_job.(i) = phase then s else Q.zero)
    shares

let schedule instance = Policy.run policy instance

let makespan instance =
  Execution.makespan (Execution.run_exn instance (schedule instance))

let phase_of_step instance t =
  let sched = schedule instance in
  let rec walk state step =
    if step = t then current_phase state + 1
    else walk (Policy.advance state (Schedule.row sched (step - 1))) (step + 1)
  in
  if t < 1 || t > Schedule.horizon sched then
    invalid_arg "Round_robin.phase_of_step: step out of range";
  walk (Policy.initial instance) 1

let predicted_makespan_unit instance =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Round_robin.predicted_makespan_unit: unit sizes only";
  let n = Instance.n_max instance in
  let total = ref 0 in
  for j = 1 to n do
    let phase_requirement =
      Q.sum
        (List.filter_map
           (fun i ->
             if Instance.n_i instance i >= j then
               Some (Job.requirement (Instance.job instance i (j - 1)))
             else None)
           (Crs_util.Misc.range (Instance.m instance)))
    in
    total := !total + max 1 (Q.ceil_int phase_requirement)
  done;
  !total
