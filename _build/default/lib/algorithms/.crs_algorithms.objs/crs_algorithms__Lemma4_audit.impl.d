lib/algorithms/lemma4_audit.ml: Array Crs_core Crs_num Crs_util Format Hashtbl Instance Job List Option String
