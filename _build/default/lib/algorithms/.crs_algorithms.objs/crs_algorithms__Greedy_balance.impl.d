lib/algorithms/greedy_balance.ml: Crs_core Crs_num Execution Policy
