lib/algorithms/opt_two_pareto.mli: Crs_core
