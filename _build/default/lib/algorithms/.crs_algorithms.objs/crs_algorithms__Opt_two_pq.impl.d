lib/algorithms/opt_two_pq.ml: Crs_core Crs_num Crs_util Hashtbl Instance Job
