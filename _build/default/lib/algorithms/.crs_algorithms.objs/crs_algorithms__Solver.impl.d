lib/algorithms/solver.ml: Brute_force Crs_core Crs_hypergraph Crs_num Execution Greedy_balance Instance Opt_config Opt_two
