lib/algorithms/brute_force.ml: Array Crs_core Crs_num Crs_util Greedy_balance Hashtbl Instance Job List
