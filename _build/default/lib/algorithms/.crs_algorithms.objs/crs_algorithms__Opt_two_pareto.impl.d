lib/algorithms/opt_two_pareto.ml: Array Crs_core Crs_num Instance Job List
