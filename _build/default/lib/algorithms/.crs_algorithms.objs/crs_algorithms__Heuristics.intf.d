lib/algorithms/heuristics.mli: Crs_core
