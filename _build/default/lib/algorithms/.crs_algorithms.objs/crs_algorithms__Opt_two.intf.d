lib/algorithms/opt_two.mli: Crs_core
