lib/algorithms/heuristics.ml: Crs_core Crs_num Execution Greedy_balance Policy Round_robin
