lib/algorithms/round_robin.ml: Array Crs_core Crs_num Crs_util Execution Instance Job List Policy Schedule
