lib/algorithms/opt_two_pq.mli: Crs_core
