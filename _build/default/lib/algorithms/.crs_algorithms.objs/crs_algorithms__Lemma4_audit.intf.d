lib/algorithms/lemma4_audit.mli: Crs_core
