lib/algorithms/round_robin.mli: Crs_core
