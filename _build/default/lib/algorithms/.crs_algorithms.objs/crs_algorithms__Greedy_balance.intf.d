lib/algorithms/greedy_balance.mli: Crs_core
