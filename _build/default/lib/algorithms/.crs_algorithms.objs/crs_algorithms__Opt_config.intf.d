lib/algorithms/opt_config.mli: Crs_core
