lib/algorithms/opt_config.ml: Array Crs_core Crs_num Crs_util Hashtbl Instance Job List Schedule
