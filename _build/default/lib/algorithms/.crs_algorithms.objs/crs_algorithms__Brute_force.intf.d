lib/algorithms/brute_force.mli: Crs_core
