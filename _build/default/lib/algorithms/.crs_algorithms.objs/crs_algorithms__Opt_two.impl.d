lib/algorithms/opt_two.ml: Array Crs_core Crs_num Crs_util Instance Job List Schedule
