lib/algorithms/opt_two.ml: Array Crs_core Crs_num Instance Job List Schedule
