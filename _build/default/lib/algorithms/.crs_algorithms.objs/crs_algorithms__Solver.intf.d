lib/algorithms/solver.mli: Crs_core Crs_num
