module Q = Crs_num.Rational
open Crs_core

let ordering (state : Policy.state) a b =
  let ja = Policy.jobs_remaining state a and jb = Policy.jobs_remaining state b in
  if ja <> jb then ja > jb
  else begin
    let wa = Policy.remaining_work state a and wb = Policy.remaining_work state b in
    Q.(wa > wb)
  end

let policy = Policy.greedy_fill ~by:ordering
let schedule instance = Policy.run policy instance

let makespan instance =
  Execution.makespan (Execution.run_exn instance (schedule instance))
