(** Arbitrary job sizes (paper, Section 9: the authors conjecture their
    results transfer but leave analysis open).

    The core execution semantics ({!Crs_core.Execution}, {!Crs_core.Policy})
    already handle arbitrary sizes; this module adds the tooling used by
    the general-size experiments: certified lower bounds, the
    unit-splitting restriction, and measured-ratio helpers. *)

val split_integer_sizes : Crs_core.Instance.t -> Crs_core.Instance.t
(** Replace every job of integer size [p] with [p] consecutive unit jobs
    of the same requirement. This restricts the scheduler (the original
    job could spread a volume unit across a step boundary; the split jobs
    cannot), so [OPT(split) ≥ OPT(original)], while work- and job-count
    lower bounds coincide. Together with an exact solve of the split
    instance this brackets the general-size optimum:
    [combined_lower_bound ≤ OPT(original) ≤ OPT(split)].
    @raise Invalid_argument if some size is not a positive integer. *)

val ratio_vs_lower_bound :
  (Crs_core.Instance.t -> int) -> Crs_core.Instance.t -> Crs_num.Rational.t
(** [algorithm makespan / combined lower bound] — a certified upper bound
    on the algorithm's true approximation factor on this instance (the
    denominator is a lower bound on OPT). This is how the general-size
    experiments test the paper's transfer conjecture without a
    general-size exact solver. *)

val bracket_optimum : Crs_core.Instance.t -> int * int
(** [(lower, upper)] bounds on the general-size optimum: the combined
    lower bound, and the exact optimum of the unit-split restriction
    (needs integer sizes and a small instance; uses {!Crs_algorithms.Solver}). *)
