module S = Crs_binpack.Splittable

let relaxation instance = S.of_crsharing instance

let lower_bound instance = S.lower_bound (relaxation instance)

let upper_bound instance = S.num_bins (S.next_fit (relaxation instance))

let packing_is_schedulable instance (packing : S.packing) =
  let m = Crs_core.Instance.m instance in
  List.for_all
    (fun bin ->
      List.length bin <= m
      &&
      let items = List.map fst bin in
      List.length (List.sort_uniq compare items) = List.length items)
    packing.S.bins

let price_of_fixed_assignment ~exact instance =
  (lower_bound instance, upper_bound instance, exact instance)
