(** Continuous-time CRSharing (paper, Section 9 outlook).

    The scheduler may redistribute the resource at arbitrary (rational)
    times instead of integer step boundaries; a processor may also move
    to its next job mid-"step". Completion of a job requires its full
    work [r·p] at rates capped by [r] per job and 1 in aggregate; a
    processor still runs one job at a time, but consecutive jobs may abut
    at any time point.

    The event-driven scheduler here is continuous GreedyBalance: at every
    completion event, re-sort processors by (remaining job count,
    remaining work) and pour the rate budget down the list. Everything is
    exact rational arithmetic. *)

type event = {
  time : Crs_num.Rational.t;  (** when this allocation interval starts *)
  rates : Crs_num.Rational.t array;  (** per-processor rates until next event *)
}

type result = {
  makespan : Crs_num.Rational.t;
  events : event list;  (** chronological *)
  completions : Crs_num.Rational.t array array;  (** completion time per job *)
}

val greedy_balance : Crs_core.Instance.t -> result
(** Run continuous GreedyBalance to completion (any job sizes). *)

val work_lower_bound : Crs_core.Instance.t -> Crs_num.Rational.t
(** Continuous analogue of Observation 1: [makespan ≥ Σ r_ij·p_ij]
    (no ceiling — time is continuous). Also [≥ max_i Σ_j p_ij]. *)

val discretization_overhead : Crs_core.Instance.t -> Crs_num.Rational.t
(** Discrete GreedyBalance makespan minus continuous GreedyBalance
    makespan: the price of step-boundary-only decisions on this instance.
    Usually positive, but can be negative — the two greedy trajectories
    differ, and the discrete one occasionally lucks into a better job
    order (measured in the outlook bench). *)
