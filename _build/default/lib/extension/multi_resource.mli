(** CRSharing with several shared continuous resources (paper, Section 9:
    "extend the model to other, possibly more realistic scenarios";
    Section 2 frames resource-constrained scheduling with "one or more
    additional resources").

    Each of the [d] resources is continuously divisible with capacity 1
    per step. A job has a requirement vector [r ∈ [0,1]^d] and runs
    Leontief-style: granted shares [x·r] (componentwise, [x ≤ 1]) it
    processes [x] volume units — the resources are needed in fixed
    proportion, so the slowest-granted resource gates progress. [d = 1]
    is exactly the paper's model (bridge-tested against the core
    implementation). *)

type job = private { requirements : Crs_num.Rational.t array; size : Crs_num.Rational.t }

type t = private { d : int; procs : job array array }

val job : requirements:Crs_num.Rational.t array -> size:Crs_num.Rational.t -> job
(** @raise Invalid_argument unless every component is in [0,1], the
    vector is non-empty, and size > 0. *)

val unit_job : Crs_num.Rational.t array -> job

val create : d:int -> job array array -> t
(** @raise Invalid_argument on dimension mismatches or zero
    processors. *)

val of_instance : Crs_core.Instance.t -> t
(** Embed a single-resource instance ([d = 1]). *)

val m : t -> int
val total_jobs : t -> int

val work : t -> int -> Crs_num.Rational.t
(** Total work on resource [k]: [Σ r_ijk·p_ij]. *)

val lower_bound : t -> int
(** [max_k ⌈work k⌉] and the per-processor job-count bound. *)

(** {1 Scheduling} *)

type run = {
  makespan : int;
  shares : Crs_num.Rational.t array array array;
      (** [shares.(t).(i).(k)]: resource [k] granted to processor [i] in
          step [t] *)
}

val check : t -> run -> (unit, string) Stdlib.result
(** Per-step, per-resource capacity and exact completion of all jobs. *)

val greedy_balance : t -> run
(** The paper's GreedyBalance lifted to vectors: priority by remaining
    job count, then by remaining work summed over resources; each job in
    priority order receives the largest feasible speed given what is
    left of every resource it needs. *)

val uniform : t -> run
(** Baseline: equal speed targets for all active processors, capped by
    the per-resource budgets in processor order. *)

val greedy_matches_single_resource : Crs_core.Instance.t -> bool
(** Bridge check: on [d = 1] embeddings, the vector GreedyBalance
    produces the same makespan as [Crs_algorithms.Greedy_balance]
    (property-tested). *)
