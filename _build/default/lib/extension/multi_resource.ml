module Q = Crs_num.Rational

type job = { requirements : Q.t array; size : Q.t }
type t = { d : int; procs : job array array }

let job ~requirements ~size =
  if Array.length requirements = 0 then
    invalid_arg "Multi_resource.job: empty requirement vector";
  Array.iter
    (fun r ->
      if not (Q.in_unit_interval r) then
        invalid_arg "Multi_resource.job: requirement outside [0,1]")
    requirements;
  if Q.(size <= zero) then invalid_arg "Multi_resource.job: size must be positive";
  { requirements = Array.copy requirements; size }

let unit_job requirements = job ~requirements ~size:Q.one

let create ~d procs =
  if d < 1 then invalid_arg "Multi_resource.create: d must be >= 1";
  if Array.length procs = 0 then invalid_arg "Multi_resource.create: no processors";
  Array.iter
    (Array.iter (fun j ->
         if Array.length j.requirements <> d then
           invalid_arg "Multi_resource.create: dimension mismatch"))
    procs;
  { d; procs = Array.map Array.copy procs }

let of_instance instance =
  create ~d:1
    (Array.map
       (Array.map (fun j ->
            job
              ~requirements:[| Crs_core.Job.requirement j |]
              ~size:(Crs_core.Job.size j)))
       (Crs_core.Instance.rows instance))

let m t = Array.length t.procs
let total_jobs t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.procs

let work t k =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc j -> Q.add acc (Q.mul j.requirements.(k) j.size))
        acc row)
    Q.zero t.procs

let lower_bound t =
  let resource_bound =
    List.fold_left (fun acc k -> max acc (Q.ceil_int (work t k))) 0
      (Crs_util.Misc.range t.d)
  in
  let jobs_bound =
    Array.fold_left
      (fun acc row ->
        max acc
          (Array.fold_left (fun a j -> a + Q.ceil_int j.size) 0 row))
      0 t.procs
  in
  max resource_bound jobs_bound

type run = { makespan : int; shares : Q.t array array array }

(* Largest speed x <= cap for a job given the remaining per-resource
   budgets: x·r_k <= budget_k for every needed resource. *)
let max_speed budgets requirements cap =
  Array.to_list (Array.mapi (fun k r -> (k, r)) requirements)
  |> List.fold_left
       (fun acc (k, r) ->
         if Q.is_zero r then acc else Q.min acc (Q.div budgets.(k) r))
       cap

type sim = { next : int array; volume : Q.t array }

let start t =
  {
    next = Array.make (m t) 0;
    volume =
      Array.init (m t) (fun i ->
          if Array.length t.procs.(i) > 0 then t.procs.(i).(0).size else Q.zero);
  }

let active t sim i = sim.next.(i) < Array.length t.procs.(i)
let is_done t sim = not (List.exists (active t sim) (Crs_util.Misc.range (m t)))

let advance t sim i x =
  sim.volume.(i) <- Q.sub sim.volume.(i) x;
  if Q.is_zero sim.volume.(i) then begin
    sim.next.(i) <- sim.next.(i) + 1;
    if active t sim i then sim.volume.(i) <- t.procs.(i).(sim.next.(i)).size
  end

(* Remaining work of the ACTIVE job, summed over resources — the vector
   analogue of the tie-breaking quantity GreedyBalance uses, so the d = 1
   embedding reproduces the core algorithm exactly. *)
let remaining_active_work t sim i =
  let total = ref Q.zero in
  if active t sim i then begin
    let cur = t.procs.(i).(sim.next.(i)) in
    Array.iter (fun r -> total := Q.add !total (Q.mul r sim.volume.(i))) cur.requirements
  end;
  !total

let run_with t choose_order share_cap =
  let sim = start t in
  let steps = ref [] in
  let fuel = ref ((10 * total_jobs t) + 100) in
  while not (is_done t sim) do
    decr fuel;
    if !fuel < 0 then failwith "Multi_resource: no progress (bug)";
    let budgets = Array.make t.d Q.one in
    let row = Array.make_matrix (m t) t.d Q.zero in
    let actives = List.filter (active t sim) (Crs_util.Misc.range (m t)) in
    let order = choose_order t sim actives in
    List.iter
      (fun i ->
        let cur = t.procs.(i).(sim.next.(i)) in
        let cap = Q.min Q.one (Q.min sim.volume.(i) (share_cap (List.length actives))) in
        let x = max_speed budgets cur.requirements cap in
        if Q.(x > zero) || Array.for_all Q.is_zero cur.requirements then begin
          Array.iteri
            (fun k r ->
              let used = Q.mul (Q.max x Q.zero) r in
              row.(i).(k) <- used;
              budgets.(k) <- Q.sub budgets.(k) used)
            cur.requirements;
          (* Zero-requirement jobs progress at the cap regardless. *)
          let progress = if Array.for_all Q.is_zero cur.requirements then cap else x in
          advance t sim i progress
        end)
      order;
    steps := row :: !steps
  done;
  { makespan = List.length !steps; shares = Array.of_list (List.rev !steps) }

let greedy_balance t =
  run_with t
    (fun t sim actives ->
      List.sort
        (fun a b ->
          let ja = Array.length t.procs.(a) - sim.next.(a)
          and jb = Array.length t.procs.(b) - sim.next.(b) in
          if ja <> jb then compare jb ja
          else begin
            let wa = remaining_active_work t sim a
            and wb = remaining_active_work t sim b in
            let c = Q.compare wb wa in
            if c <> 0 then c else compare a b
          end)
        actives)
    (fun _count -> Q.one)

let uniform t =
  run_with t
    (fun _ _ actives -> actives)
    (fun count -> if count = 0 then Q.one else Q.of_ints 1 count)

let check t result =
  let exception Bad of string in
  try
    let sim = start t in
    Array.iteri
      (fun step row ->
        if Array.length row <> m t then raise (Bad "wrong row width");
        (* Capacity per resource. *)
        for k = 0 to t.d - 1 do
          let total =
            Array.fold_left (fun acc shares -> Q.add acc shares.(k)) Q.zero row
          in
          if Q.(total > one) then
            raise (Bad (Printf.sprintf "resource %d overused at step %d" k step))
        done;
        (* Progress semantics. *)
        Array.iteri
          (fun i shares ->
            if active t sim i then begin
              let cur = t.procs.(i).(sim.next.(i)) in
              let speed =
                if Array.for_all Q.is_zero cur.requirements then Q.one
                else max_speed shares cur.requirements Q.one
              in
              let progress = Q.min speed sim.volume.(i) in
              advance t sim i progress
            end)
          row)
      result.shares;
    if not (is_done t sim) then raise (Bad "not all jobs complete");
    Ok ()
  with Bad msg -> Error msg

let greedy_matches_single_resource instance =
  let vector = greedy_balance (of_instance instance) in
  vector.makespan = Crs_algorithms.Greedy_balance.makespan instance
