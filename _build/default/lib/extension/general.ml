module Q = Crs_num.Rational
open Crs_core

let split_integer_sizes instance =
  let split_job job =
    let size = Job.size job in
    match Q.to_int_opt size with
    | Some p when p >= 1 ->
      List.init p (fun _ -> Job.unit (Job.requirement job))
    | _ ->
      invalid_arg "General.split_integer_sizes: sizes must be positive integers"
  in
  Instance.create
    (Array.map
       (fun row -> Array.of_list (List.concat_map split_job (Array.to_list row)))
       (Instance.rows instance))

let ratio_vs_lower_bound algorithm instance =
  let lb = Lower_bounds.combined instance in
  let measured = algorithm instance in
  if lb = 0 then Q.one else Q.of_ints measured lb

let bracket_optimum instance =
  let lower = Lower_bounds.combined instance in
  let upper = Crs_algorithms.Solver.optimal_makespan (split_integer_sizes instance) in
  (lower, upper)
