module Q = Crs_num.Rational
open Crs_core

type event = { time : Q.t; rates : Q.t array }

type result = {
  makespan : Q.t;
  events : event list;
  completions : Q.t array array;
}

let greedy_balance instance =
  let m = Instance.m instance in
  let next = Array.make m 0 in
  let vol =
    Array.init m (fun i ->
        if Instance.n_i instance i > 0 then Job.size (Instance.job instance i 0)
        else Q.zero)
  in
  let completions = Array.init m (fun i -> Array.make (Instance.n_i instance i) Q.zero) in
  let events = ref [] in
  let now = ref Q.zero in
  let active i = next.(i) < Instance.n_i instance i in
  let requirement i = Job.requirement (Instance.job instance i next.(i)) in
  let remaining_work i =
    (* r·(remaining volume of active job) + full work of later jobs *)
    let rest = ref (Q.mul (requirement i) vol.(i)) in
    for j = next.(i) + 1 to Instance.n_i instance i - 1 do
      rest := Q.add !rest (Job.work (Instance.job instance i j))
    done;
    !rest
  in
  let guard = ref (Instance.total_jobs instance + 1) in
  while Array.exists (fun i -> active i) (Array.init m (fun i -> i)) do
    decr guard;
    if !guard < 0 then failwith "Continuous.greedy_balance: event budget exceeded (bug)";
    let actives = List.filter active (Crs_util.Misc.range m) in
    let order =
      List.sort
        (fun a b ->
          let ja = Instance.n_i instance a - next.(a)
          and jb = Instance.n_i instance b - next.(b) in
          if ja <> jb then compare jb ja
          else begin
            let c = Q.compare (remaining_work b) (remaining_work a) in
            if c <> 0 then c else compare a b
          end)
        actives
    in
    let rates = Array.make m Q.zero in
    let budget = ref Q.one in
    List.iter
      (fun i ->
        let give = Q.min (requirement i) !budget in
        rates.(i) <- give;
        budget := Q.sub !budget give)
      order;
    (* Per-processor speed in volume units per time. *)
    let speed i =
      let r = requirement i in
      if Q.is_zero r then Q.one else Q.min (Q.div rates.(i) r) Q.one
    in
    let dt =
      List.fold_left
        (fun acc i ->
          let s = speed i in
          if Q.(s > zero) then
            let d = Q.div vol.(i) s in
            match acc with
            | None -> Some d
            | Some best -> Some (Q.min best d)
          else acc)
        None actives
    in
    let dt =
      match dt with
      | Some d -> d
      | None -> failwith "Continuous.greedy_balance: no progress possible (bug)"
    in
    events := { time = !now; rates } :: !events;
    List.iter
      (fun i ->
        let s = speed i in
        if Q.(s > zero) then begin
          vol.(i) <- Q.sub vol.(i) (Q.mul s dt);
          if Q.is_zero vol.(i) then begin
            completions.(i).(next.(i)) <- Q.add !now dt;
            next.(i) <- next.(i) + 1;
            if active i then vol.(i) <- Job.size (Instance.job instance i next.(i))
          end
        end)
      actives;
    now := Q.add !now dt
  done;
  { makespan = !now; events = List.rev !events; completions }

let work_lower_bound instance =
  let per_proc i =
    Array.fold_left (fun acc j -> Q.add acc (Job.size j)) Q.zero
      (Instance.jobs_on instance i)
  in
  let volume_bound =
    List.fold_left (fun acc i -> Q.max acc (per_proc i)) Q.zero
      (Crs_util.Misc.range (Instance.m instance))
  in
  Q.max (Instance.total_work instance) volume_bound

let discretization_overhead instance =
  let discrete = Q.of_int (Crs_algorithms.Greedy_balance.makespan instance) in
  let continuous = (greedy_balance instance).makespan in
  Q.sub discrete continuous
