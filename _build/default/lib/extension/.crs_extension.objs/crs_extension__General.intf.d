lib/extension/general.mli: Crs_core Crs_num
