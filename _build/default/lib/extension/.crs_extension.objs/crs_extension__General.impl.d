lib/extension/general.ml: Array Crs_algorithms Crs_core Crs_num Instance Job List Lower_bounds
