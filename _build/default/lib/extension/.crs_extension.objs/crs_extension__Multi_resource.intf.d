lib/extension/multi_resource.mli: Crs_core Crs_num Stdlib
