lib/extension/multi_resource.ml: Array Crs_algorithms Crs_core Crs_num Crs_util List Printf
