lib/extension/free_assignment.mli: Crs_binpack Crs_core
