lib/extension/rescale.mli: Crs_core Crs_num
