lib/extension/rescale.ml: Array Crs_core Crs_num
