lib/extension/free_assignment.ml: Crs_binpack Crs_core List
