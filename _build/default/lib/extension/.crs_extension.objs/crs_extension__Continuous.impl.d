lib/extension/continuous.ml: Array Crs_algorithms Crs_core Crs_num Crs_util Instance Job List
