lib/extension/continuous.mli: Crs_core Crs_num
