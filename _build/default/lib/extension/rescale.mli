(** Requirements above 1 (paper, footnote 3).

    The model caps useful shares at 1, so a job demanding [r > 1] can
    never run at full speed. The paper's footnote: rescale such a job
    (requirement [r], volume [p]) to requirement [1] and volume [r·p] —
    identical completion behaviour under any schedule. This module
    provides the "extended" job description and the reduction to the core
    model. *)

type extended_job = { requirement : Crs_num.Rational.t; size : Crs_num.Rational.t }
(** Like {!Crs_core.Job.t} but with unbounded positive requirement. *)

val make : requirement:Crs_num.Rational.t -> size:Crs_num.Rational.t -> extended_job
(** @raise Invalid_argument unless requirement > 0 and size > 0. *)

val rescale : extended_job -> Crs_core.Job.t
(** Identity on jobs with [r ≤ 1]; otherwise requirement 1, volume [r·p]. *)

val rescale_instance : extended_job array array -> Crs_core.Instance.t

val work : extended_job -> Crs_num.Rational.t
(** [min(r,1)·(effective volume)] — invariant under {!rescale} (checked in
    tests): rescaling preserves the Observation 1 lower bound. *)
