module Q = Crs_num.Rational

type extended_job = { requirement : Q.t; size : Q.t }

let make ~requirement ~size =
  if Q.(requirement <= zero) then invalid_arg "Rescale.make: requirement must be > 0";
  if Q.(size <= zero) then invalid_arg "Rescale.make: size must be > 0";
  { requirement; size }

let rescale j =
  if Q.(j.requirement <= one) then
    Crs_core.Job.make ~requirement:j.requirement ~size:j.size
  else
    Crs_core.Job.make ~requirement:Q.one ~size:(Q.mul j.requirement j.size)

let rescale_instance rows = Crs_core.Instance.create (Array.map (Array.map rescale) rows)

let work j = Crs_core.Job.work (rescale j)
