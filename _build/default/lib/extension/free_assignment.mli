(** The Section 9 outlook: "What analytical results are possible if we
    re-introduce the classical scheduling aspect, where jobs of a task
    are not a priori fixed to a specific processor?"

    Fully relaxing both the processor binding and the per-task order of
    unit-size jobs turns CRSharing into exactly the splittable bin
    packing problem of Section 2 (bins = time steps, cardinality = m, a
    bin never holds two parts of one job because a job runs on one
    processor per step). This module makes that correspondence
    executable and brackets the "price of fixed assignment". *)

val relaxation : Crs_core.Instance.t -> Crs_binpack.Splittable.t
(** The job multiset as a packing instance ([k = m]); requires at least
    one positive-work job. *)

val lower_bound : Crs_core.Instance.t -> int
(** Certified lower bound on the free-assignment optimum (bin packing
    bounds). *)

val upper_bound : Crs_core.Instance.t -> int
(** NextFit bins: an achievable free-assignment makespan (each NextFit
    bin holds at most [m] parts of distinct jobs, so bin [t] maps to time
    step [t] with one processor per part). *)

val packing_is_schedulable : Crs_core.Instance.t -> Crs_binpack.Splittable.packing -> bool
(** A packing maps to a free-assignment schedule iff no bin holds two
    parts of the same job (one processor per job per step) and no bin
    exceeds [m] parts. *)

val price_of_fixed_assignment :
  exact:(Crs_core.Instance.t -> int) -> Crs_core.Instance.t -> int * int * int
(** [(free_lb, free_ub, fixed_opt)]: how much the paper's fixed
    assignment costs on this instance. Always [free_lb <= fixed_opt]
    (relaxation) — property-tested. *)
