module Q = Crs_num.Rational
open Crs_core

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let row cells = String.concat "," (List.map quote cells) ^ "\n"

let series_to_csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row header);
  List.iter (fun r -> Buffer.add_string buf (row r)) rows;
  Buffer.contents buf

let dec q = Printf.sprintf "%.6f" (Q.to_float q)

let trace_to_csv (trace : Execution.trace) =
  let rows = ref [] in
  Array.iteri
    (fun t (step : Execution.step) ->
      Array.iteri
        (fun i active ->
          match active with
          | None -> ()
          | Some j ->
            let r = Job.requirement (Instance.job trace.instance i j) in
            rows :=
              [
                string_of_int (t + 1);
                string_of_int (i + 1);
                string_of_int (j + 1);
                dec r;
                dec step.shares.(i);
                dec step.consumed.(i);
                dec step.progress.(i);
                (if List.mem (i, j) step.finished then "1" else "0");
                Q.to_string step.shares.(i);
              ]
              :: !rows)
        step.active)
    trace.steps;
  series_to_csv
    ~header:
      [
        "step"; "proc"; "job"; "requirement"; "share"; "consumed"; "progress";
        "finished"; "share_exact";
      ]
    (List.rev !rows)

let completions_to_csv (trace : Execution.trace) =
  let rows = ref [] in
  let m = Instance.m trace.instance in
  for i = m - 1 downto 0 do
    for j = Instance.n_i trace.instance i - 1 downto 0 do
      rows :=
        [
          string_of_int (i + 1);
          string_of_int (j + 1);
          dec (Job.requirement (Instance.job trace.instance i j));
          string_of_int trace.start_step.(i).(j);
          string_of_int trace.completion_step.(i).(j);
        ]
        :: !rows
    done
  done;
  series_to_csv ~header:[ "proc"; "job"; "requirement"; "start"; "completion" ] !rows

let save path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
