(** ASCII rendering of schedules, in the style of the paper's figures:
    one row per processor, one column block per time step, each cell
    showing the active job's requirement (in percent) and how much
    resource it received. *)

val render : Crs_core.Execution.trace -> string
(** Full trace rendering. Cells show [jJ:RR%→SS%] — active job index,
    requirement, share received; [--] for idle processors; a [*] marks
    completion steps. *)

val render_compact : Crs_core.Execution.trace -> string
(** One character class per cell: ['#'] full-speed work, ['+'] partial,
    ['.'] active but unfed, [' '] idle. Suited to long schedules. *)

val render_shares : Crs_core.Schedule.t -> string
(** Just the share matrix (percentages), without instance context. *)

val summary : Crs_core.Execution.trace -> string
(** Makespan, waste, property flags — a one-paragraph digest. *)
