(** Standalone SVG rendering of executions: one column per time step,
    stacked per-processor resource shares (the paper's pictures turned
    into vector graphics). No external dependencies; the output is a
    self-contained [<svg>] document. *)

val of_trace : ?cell:int -> Crs_core.Execution.trace -> string
(** [cell] is the pixel size of one step column (default 48). Each
    processor gets a fixed hue; the filled height of a cell is the share
    consumed that step, a star marks job completions, and idle processors
    are hatched. *)

val save : string -> Crs_core.Execution.trace -> unit
