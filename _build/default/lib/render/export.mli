(** CSV export of traces and experiment series, for downstream analysis
    (spreadsheets, pandas, gnuplot). *)

val trace_to_csv : Crs_core.Execution.trace -> string
(** One row per (step, processor):
    [step,proc,job,requirement,share,consumed,progress,finished]. Exact
    rationals are rendered as decimals with 6 digits plus an exact column. *)

val completions_to_csv : Crs_core.Execution.trace -> string
(** One row per job: [proc,job,requirement,start,completion]. *)

val series_to_csv : header:string list -> string list list -> string
(** Generic: header + rows, RFC-4180-style quoting for cells containing
    commas or quotes. *)

val save : string -> string -> unit
(** [save path contents]. *)
