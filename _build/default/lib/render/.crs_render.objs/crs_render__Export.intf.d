lib/render/export.mli: Crs_core
