lib/render/export.ml: Array Buffer Crs_core Crs_num Execution Fun Instance Job List Printf String
