lib/render/svg.mli: Crs_core
