lib/render/table.mli:
