lib/render/dot.ml: Buffer Crs_core Crs_hypergraph Crs_num Fun Instance Job List Printf
