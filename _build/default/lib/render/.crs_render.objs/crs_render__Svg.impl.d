lib/render/svg.ml: Array Buffer Crs_core Crs_num Execution Fun Instance List Printf
