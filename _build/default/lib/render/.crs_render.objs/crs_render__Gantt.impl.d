lib/render/gantt.ml: Array Buffer Crs_core Crs_num Execution Float Instance Job List Printf Properties Result Schedule String
