lib/render/dot.mli: Crs_hypergraph
