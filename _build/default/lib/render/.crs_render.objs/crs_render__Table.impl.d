lib/render/table.ml: List Printf String
