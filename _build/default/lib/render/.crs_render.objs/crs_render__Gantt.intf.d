lib/render/gantt.mli: Crs_core
