(** Graphviz output for scheduling hypergraphs: nodes laid out in the
    paper's row-per-processor style (Figure 1), with hyperedges drawn as
    labelled boxes connected to their member jobs, and components
    clustered. *)

val of_graph : Crs_hypergraph.Sched_graph.t -> string
(** A complete [digraph] document; render with [dot -Tsvg]. *)

val save : string -> Crs_hypergraph.Sched_graph.t -> unit
(** Write to a file path. *)
