module Q = Crs_num.Rational
open Crs_core

let pct q =
  (* Requirements in the paper's figures are percentages; render with up
     to one decimal, dropping trailing zeros. *)
  let v = Q.to_float (Q.mul q (Q.of_int 100)) in
  if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.1f" v

let render (trace : Execution.trace) =
  let m = Instance.m trace.instance in
  let buf = Buffer.create 1024 in
  let steps = Array.length trace.steps in
  let cell t i =
    let step = trace.steps.(t) in
    match step.active.(i) with
    | None -> "--"
    | Some j ->
      let r = Job.requirement (Instance.job trace.instance i j) in
      let star = if List.mem (i, j) step.finished then "*" else "" in
      Printf.sprintf "j%d:%s%%>%s%%%s" (j + 1) (pct r) (pct step.shares.(i)) star
  in
  let widths =
    Array.init steps (fun t ->
        let w = ref (String.length (Printf.sprintf "t%d" (t + 1))) in
        for i = 0 to m - 1 do
          w := max !w (String.length (cell t i))
        done;
        !w)
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Buffer.add_string buf (pad "" 5);
  for t = 0 to steps - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "t%d" (t + 1)) (widths.(t) + 2))
  done;
  Buffer.add_char buf '\n';
  for i = 0 to m - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "p%d" (i + 1)) 5);
    for t = 0 to steps - 1 do
      Buffer.add_string buf (pad (cell t i) (widths.(t) + 2))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render_compact (trace : Execution.trace) =
  let m = Instance.m trace.instance in
  let buf = Buffer.create 256 in
  for i = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-3d|" (i + 1));
    Array.iter
      (fun (step : Execution.step) ->
        let c =
          match step.active.(i) with
          | None -> ' '
          | Some j ->
            let r = Job.requirement (Instance.job trace.instance i j) in
            if Q.is_zero step.progress.(i) then '.'
            else if Q.(step.shares.(i) >= r) || Q.is_zero r then '#'
            else '+'
        in
        Buffer.add_char buf c)
      trace.steps;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf

let render_shares schedule =
  let buf = Buffer.create 256 in
  for t = 0 to Schedule.horizon schedule - 1 do
    Buffer.add_string buf (Printf.sprintf "t%-3d" (t + 1));
    Array.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf " %6s%%" (pct s)))
      (Schedule.row schedule t);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let summary (trace : Execution.trace) =
  let flags =
    Properties.check_all trace
    |> List.map (fun (name, r) ->
           Printf.sprintf "%s=%s" name (if Result.is_ok r then "yes" else "no"))
    |> String.concat ", "
  in
  let makespan =
    match Execution.makespan_opt trace with
    | Some v -> string_of_int v
    | None -> "unfinished"
  in
  Printf.sprintf "makespan: %s | unused capacity: %s | %s" makespan
    (Q.to_string (Execution.unused_capacity trace))
    flags
