type align = Left | Right

let render ?align ~header rows =
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let pad_row row = row @ List.init (cols - List.length row) (fun _ -> "") in
  let header = pad_row header in
  let rows = List.map pad_row rows in
  let align =
    match align with
    | Some a -> pad_row (List.map (function Left -> "l" | Right -> "r") a)
                |> List.map (fun s -> if s = "r" then Right else Left)
    | None -> List.init cols (fun c -> if c = 0 then Left else Right)
  in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row c)))
      (String.length (List.nth header c))
      rows
  in
  let widths = List.init cols width in
  let fmt_cell a w s =
    let pad = String.make (max 0 (w - String.length s)) ' ' in
    match a with Left -> s ^ pad | Right -> pad ^ s
  in
  let fmt_row row =
    List.map2 (fun (a, w) s -> fmt_cell a w s) (List.combine align widths) row
    |> String.concat "  "
  in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((fmt_row header :: rule :: List.map fmt_row rows) @ [ "" ])

let render_floats ?(decimals = 3) ~header rows =
  render ~header
    (List.map
       (fun (label, values) ->
         label :: List.map (fun v -> Printf.sprintf "%.*f" decimals v) values)
       rows)
