module Q = Crs_num.Rational
open Crs_core

(* A small qualitative palette; hues repeat beyond 8 processors. *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948"; "#9c755f" |]

let color i = palette.(i mod Array.length palette)

let of_trace ?(cell = 48) (trace : Execution.trace) =
  let m = Instance.m trace.instance in
  let steps = Array.length trace.steps in
  let label_w = 64 in
  let header_h = 24 in
  let width = label_w + (steps * cell) + 8 in
  let height = header_h + (m * cell) + 8 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n"
       width height width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* Step labels. *)
  for t = 0 to steps - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"16\" text-anchor=\"middle\" fill=\"#333\">t%d</text>\n"
         (label_w + (t * cell) + (cell / 2))
         (t + 1))
  done;
  for i = 0 to m - 1 do
    let y0 = header_h + (i * cell) in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" text-anchor=\"end\" fill=\"#333\">p%d</text>\n"
         (label_w - 8) (y0 + (cell / 2) + 4) (i + 1));
    for t = 0 to steps - 1 do
      let x0 = label_w + (t * cell) in
      let step = trace.steps.(t) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
            stroke=\"#ccc\"/>\n"
           x0 y0 cell cell);
      (match step.active.(i) with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n"
             x0 y0 (x0 + cell) (y0 + cell))
      | Some j ->
        let consumed = Q.to_float step.consumed.(i) in
        let h = int_of_float (float_of_int (cell - 2) *. consumed) in
        if h > 0 then
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
                fill-opacity=\"0.85\"/>\n"
               (x0 + 1)
               (y0 + cell - 1 - h)
               (cell - 2) h (color i));
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" fill=\"#222\">j%d</text>\n"
             (x0 + (cell / 2))
             (y0 + 14) (j + 1));
        if List.mem (i, j) step.finished then
          Buffer.add_string buf
            (Printf.sprintf
               "<text x=\"%d\" y=\"%d\" text-anchor=\"end\" fill=\"#222\">*</text>\n"
               (x0 + cell - 4)
               (y0 + cell - 6)))
    done
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (of_trace trace))
