module Q = Crs_num.Rational
module G = Crs_hypergraph.Sched_graph
open Crs_core

let node_id (i, j) = Printf.sprintf "job_%d_%d" i j
let edge_id t = Printf.sprintf "edge_%d" t

let of_graph g =
  let buf = Buffer.create 2048 in
  let instance = G.instance g in
  Buffer.add_string buf "digraph scheduling_graph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  (* One cluster per connected component, as in Figure 1b. *)
  List.iter
    (fun (c : G.component) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"C%d (class %d)\";\n"
           c.index (c.index + 1) c.cls);
      List.iter
        (fun ((i, j) as node) ->
          let r = Job.requirement (Instance.job instance i j) in
          Buffer.add_string buf
            (Printf.sprintf "    %s [label=\"%s\\np%d j%d\"];\n" (node_id node)
               (Q.to_string r) (i + 1) (j + 1)))
        c.nodes;
      for t = c.first_step to c.last_step do
        Buffer.add_string buf
          (Printf.sprintf
             "    %s [shape=box, style=dashed, label=\"e%d\", fontsize=9];\n"
             (edge_id t) t)
      done;
      Buffer.add_string buf "  }\n")
    (G.components g);
  (* Hyperedge membership arcs. *)
  for t = 1 to G.num_edges g do
    List.iter
      (fun node ->
        Buffer.add_string buf
          (Printf.sprintf "  %s -> %s [dir=none, color=gray];\n" (edge_id t)
             (node_id node)))
      (G.edge g t)
  done;
  (* Job-order chains per processor, to hint the row layout. *)
  for i = 0 to Instance.m instance - 1 do
    for j = 0 to Instance.n_i instance i - 2 do
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [style=invis];\n" (node_id (i, j))
           (node_id (i, j + 1)))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (of_graph g))
