(** Plain-text tables for the benchmark harness and the CLI: fixed-width
    columns, a header rule, right-aligned numeric cells. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows]; [align] defaults to [Left] for the first
    column and [Right] for the rest. Ragged rows are padded with empty
    cells. *)

val render_floats :
  ?decimals:int -> header:string list -> (string * float list) list -> string
(** Rows of labelled float series (e.g. ratio sweeps); [decimals]
    defaults to 3. *)
