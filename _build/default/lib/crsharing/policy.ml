module Q = Crs_num.Rational

type state = {
  time : int;
  instance : Instance.t;
  next_job : int array;
  remaining_volume : Q.t array;
}

let initial instance =
  let m = Instance.m instance in
  {
    time = 1;
    instance;
    next_job = Array.make m 0;
    remaining_volume =
      Array.init m (fun i ->
          if Instance.n_i instance i > 0 then Job.size (Instance.job instance i 0)
          else Q.zero);
  }

let active state i = state.next_job.(i) < Instance.n_i state.instance i
let is_done state = not (List.exists (active state) (Crs_util.Misc.range (Instance.m state.instance)))
let jobs_remaining state i = Instance.n_i state.instance i - state.next_job.(i)

let active_requirement state i =
  if not (active state i) then invalid_arg "Policy.active_requirement: processor done";
  Job.requirement (Instance.job state.instance i state.next_job.(i))

let remaining_work state i =
  if not (active state i) then Q.zero
  else Q.mul (active_requirement state i) state.remaining_volume.(i)

(* Most resource the active job can absorb during one step: the speed cap
   limits consumption to r, the remaining volume to r·vol. *)
let usable state i =
  if not (active state i) then Q.zero
  else Q.min (active_requirement state i) (remaining_work state i)

type t = state -> Q.t array

let advance state shares =
  let m = Instance.m state.instance in
  if Array.length shares <> m then failwith "Policy.advance: wrong share vector width";
  let next_job = Array.copy state.next_job in
  let remaining_volume = Array.copy state.remaining_volume in
  for i = 0 to m - 1 do
    if active state i then begin
      let r = active_requirement state i in
      let speed = if Q.is_zero r then Q.one else Q.min (Q.div shares.(i) r) Q.one in
      let p = Q.min speed remaining_volume.(i) in
      remaining_volume.(i) <- Q.sub remaining_volume.(i) p;
      if Q.is_zero remaining_volume.(i) then begin
        next_job.(i) <- next_job.(i) + 1;
        if next_job.(i) < Instance.n_i state.instance i then
          remaining_volume.(i) <- Job.size (Instance.job state.instance i next_job.(i))
      end
    end
  done;
  { state with time = state.time + 1; next_job; remaining_volume }

let run ?max_steps policy instance =
  let fuel =
    match max_steps with
    | Some f -> f
    | None -> (10 * Instance.total_jobs instance) + 100
  in
  let rec go state acc fuel =
    if is_done state then Schedule.of_rows (Array.of_list (List.rev acc))
    else if fuel <= 0 then
      failwith "Policy.run: fuel exhausted (policy not making progress?)"
    else begin
      let shares = policy state in
      if Array.exists (fun s -> not (Q.in_unit_interval s)) shares then
        failwith "Policy.run: share outside [0,1]";
      if Q.(Q.sum_array shares > one) then failwith "Policy.run: resource overused";
      go (advance state shares) (shares :: acc) (fuel - 1)
    end
  in
  if is_done (initial instance) then Schedule.empty ~m:(Instance.m instance)
  else go (initial instance) [] fuel

let idle state = Array.make (Instance.m state.instance) Q.zero

let uniform state =
  let m = Instance.m state.instance in
  let actives = List.filter (active state) (Crs_util.Misc.range m) in
  let k = List.length actives in
  let fair = if k = 0 then Q.zero else Q.div Q.one (Q.of_int k) in
  Array.init m (fun i ->
      if active state i then Q.min fair (usable state i) else Q.zero)

let proportional state =
  let m = Instance.m state.instance in
  let total = Q.sum (List.map (remaining_work state) (Crs_util.Misc.range m)) in
  if Q.is_zero total then
    (* Only zero-requirement work left; it progresses without resource. *)
    Array.make m Q.zero
  else
    Array.init m (fun i ->
        if active state i then
          Q.min (Q.div (remaining_work state i) total) (usable state i)
        else Q.zero)

let greedy_fill ~by state =
  let m = Instance.m state.instance in
  let order =
    List.filter (active state) (Crs_util.Misc.range m)
    |> List.sort (fun a b ->
           if by state a b then -1 else if by state b a then 1 else compare a b)
  in
  let shares = Array.make m Q.zero in
  let budget = ref Q.one in
  List.iter
    (fun i ->
      let give = Q.min (usable state i) !budget in
      shares.(i) <- give;
      budget := Q.sub !budget give)
    order;
  shares
