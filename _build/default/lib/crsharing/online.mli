(** Information-restricted (semi-online) policies.

    The paper's model hands the scheduler the entire instance, but its
    two practical algorithms never look ahead: at each step they read
    only each processor's {e current} job (requirement and remaining
    work) and how many jobs remain behind it. This module makes that
    observation precise: an online policy sees a {!view} per processor
    and nothing else, and an adapter turns it into an ordinary
    {!Policy.t}. Tests confirm RoundRobin and GreedyBalance factor
    through this interface unchanged, i.e. they are semi-online (they
    still know the {e number} of remaining jobs, not their
    requirements). *)

type view = {
  proc : int;
  active_requirement : Crs_num.Rational.t;  (** of the current job *)
  remaining_work : Crs_num.Rational.t;  (** of the current job *)
  jobs_behind : int;  (** unfinished jobs after the current one *)
  time : int;  (** current step, 1-based *)
}

type t = view array -> Crs_num.Rational.t array
(** Views of the processors that still have work, in processor order.
    The result assigns shares by position in the input array. *)

val to_policy : t -> Policy.t
(** Run an online policy in the full model: builds the views, calls the
    policy, scatters the shares (inactive processors get zero). *)

val greedy_balance : t
(** GreedyBalance expressed online: sort by (jobs remaining, remaining
    work) descending and pour. Produces bit-identical schedules to
    [Crs_algorithms.Greedy_balance] (tested). *)

val round_robin : t
(** RoundRobin expressed online: only processors whose
    total-remaining-count is maximal … cannot be expressed with
    [jobs_behind] alone when queues have different lengths; the online
    RoundRobin gates on the maximum remaining count, which coincides
    with the paper's phases when all queues start equal (tested), and is
    a natural semi-online generalization otherwise. *)

val clairvoyance_gap :
  exact:(Instance.t -> int) -> t -> Instance.t -> int * int
(** [(online_makespan, offline_optimum)]: what the information
    restriction costs on this instance. *)
