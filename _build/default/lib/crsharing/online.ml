module Q = Crs_num.Rational

type view = {
  proc : int;
  active_requirement : Q.t;
  remaining_work : Q.t;
  jobs_behind : int;
  time : int;
}

type t = view array -> Q.t array

let views_of_state (state : Policy.state) =
  let m = Instance.m state.Policy.instance in
  List.filter_map
    (fun i ->
      if Policy.active state i then
        Some
          {
            proc = i;
            active_requirement = Policy.active_requirement state i;
            remaining_work = Policy.remaining_work state i;
            jobs_behind = Policy.jobs_remaining state i - 1;
            time = state.Policy.time;
          }
      else None)
    (Crs_util.Misc.range m)
  |> Array.of_list

let to_policy (online : t) : Policy.t =
 fun state ->
  let m = Instance.m state.Policy.instance in
  let views = views_of_state state in
  let assigned = online views in
  if Array.length assigned <> Array.length views then
    failwith "Online.to_policy: policy returned wrong arity";
  let shares = Array.make m Q.zero in
  Array.iteri (fun k v -> shares.(v.proc) <- assigned.(k)) views;
  shares

(* Pour the unit budget down a priority order of view indices. *)
let pour order views =
  let shares = Array.make (Array.length views) Q.zero in
  let budget = ref Q.one in
  List.iter
    (fun k ->
      let v = views.(k) in
      let usable = Q.min v.active_requirement v.remaining_work in
      let give = Q.min usable !budget in
      shares.(k) <- give;
      budget := Q.sub !budget give)
    order;
  shares

let greedy_balance views =
  let order =
    List.sort
      (fun a b ->
        let va = views.(a) and vb = views.(b) in
        if va.jobs_behind <> vb.jobs_behind then compare vb.jobs_behind va.jobs_behind
        else begin
          let c = Q.compare vb.remaining_work va.remaining_work in
          if c <> 0 then c else compare va.proc vb.proc
        end)
      (Crs_util.Misc.range (Array.length views))
  in
  pour order views

let round_robin views =
  match views with
  | [||] -> [||]
  | _ ->
    let front =
      Array.fold_left (fun acc v -> max acc v.jobs_behind) min_int views
    in
    let members =
      List.filter (fun k -> views.(k).jobs_behind = front)
        (Crs_util.Misc.range (Array.length views))
    in
    pour members views

let clairvoyance_gap ~exact online instance =
  let schedule = Policy.run (to_policy online) instance in
  let makespan = Execution.makespan (Execution.run_exn instance schedule) in
  (makespan, exact instance)
