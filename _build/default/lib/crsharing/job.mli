(** A job in the CRSharing model (paper, Section 3.1).

    A job has a processing volume (size) [p > 0] and a resource
    requirement [r ∈ [0,1]]: granted a share [x·r] of the resource during
    a time step, exactly [x] units of volume are processed ([x ≤ 1];
    granting more than [r] brings no speedup). The paper's analysis
    focuses on unit-size jobs ([p = 1]). *)

type t = private { requirement : Crs_num.Rational.t; size : Crs_num.Rational.t }

val make : requirement:Crs_num.Rational.t -> size:Crs_num.Rational.t -> t
(** @raise Invalid_argument unless [0 <= requirement <= 1] and [size > 0]. *)

val unit : Crs_num.Rational.t -> t
(** Unit-size job with the given requirement. *)

val of_percent : int -> t
(** Unit-size job with requirement [p/100]; convenience for transcribing
    the paper's figures (whose labels are percentages). *)

val requirement : t -> Crs_num.Rational.t
val size : t -> Crs_num.Rational.t

val work : t -> Crs_num.Rational.t
(** The job's total work [p̃ = r·p] in the alternative model
    interpretation (Eq. 2): the amount of resource-time the job consumes.
    Zero-requirement jobs have zero work but still occupy time steps. *)

val is_unit_size : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
