(** Executing a schedule against an instance: the model semantics of
    Section 3.1 / Eq. (1).

    During step [t], processor [i] works on its first unfinished job
    [(i,j)] (a processor never processes two jobs in one step); with share
    [R_i(t)] it processes [min(R_i(t)/r_ij, 1)] volume units (jobs with
    [r_ij = 0] always run at full speed). Resource assigned beyond what
    the active job can use is wasted. *)

type step = {
  shares : Crs_num.Rational.t array;  (** assignment [R_i(t)] *)
  active : int option array;
      (** active job index per processor at the start of the step;
          [None] once the processor has finished all its jobs *)
  progress : Crs_num.Rational.t array;
      (** volume units processed this step, per processor *)
  consumed : Crs_num.Rational.t array;
      (** resource actually used ([min(R_i, r·progress-capped)]) *)
  finished : (int * int) list;  (** jobs completed during this step *)
}

type trace = {
  instance : Instance.t;
  schedule : Schedule.t;
  steps : step array;
  start_step : int array array;
      (** [S(i,j)], 1-based first step the job receives processing
          attention (is active while its processor is scheduled);
          0 when never started *)
  completion_step : int array array;  (** [C(i,j)], 1-based; 0 if unfinished *)
  completed : bool;  (** all jobs finished within the schedule's horizon *)
}

val run : Instance.t -> Schedule.t -> (trace, string) result
(** Simulate. Errors if the schedule is infeasible or has the wrong number
    of processors. A too-short schedule yields [completed = false]. *)

val run_exn : Instance.t -> Schedule.t -> trace

val makespan : trace -> int
(** Latest completion step over all jobs (0 for a job-less instance).
    @raise Failure if the trace is not completed. *)

val makespan_opt : trace -> int option

val active_jobs : trace -> int -> (int * int) list
(** Jobs active at a (1-based) step: processor had unfinished jobs at the
    step's start. This is the paper's edge [e_t] of the scheduling graph. *)

val jobs_remaining : trace -> int -> int array
(** [n_i(t)] for each processor at the start of 1-based step [t]. *)

val wasted : trace -> Crs_num.Rational.t
(** Total assigned-but-unused resource across the horizon. *)

val unused_capacity : trace -> Crs_num.Rational.t
(** Total resource capacity left unconsumed, [Σ_t (1 − consumed(t))],
    counted over steps up to the last completion — the paper's notion of
    waste in the Theorem 3 and Theorem 8 constructions. *)

val verify_completion_times : trace -> (unit, string) result
(** Recheck Eq. (2): for every finished unit-size job, the prefix sums of
    [min(R_i(t), r_ij)] reach [r_ij·p_ij] exactly at the recorded
    completion step and not before. Used in tests to pin the two model
    interpretations against each other. *)
