(** Instance-level lower bounds on the optimal makespan.

    These are the paper's Observation 1 (total work) and the trivial
    job-count bound used in Theorem 3 and Lemma 6. Component-structure
    bounds (Lemmas 5 and 6) depend on a schedule's hypergraph and live in
    [Crs_hypergraph.Bounds]. *)

val total_work : Instance.t -> int
(** Observation 1: any feasible schedule needs at least
    [⌈Σ_ij r_ij·p_ij⌉] steps (the aggregate speed never exceeds 1, and
    makespans are integral). *)

val job_count : Instance.t -> int
(** Each job [(i,j)] occupies at least [⌈p_ij⌉] steps of its processor,
    so [OPT ≥ max_i Σ_j ⌈p_ij⌉]; for unit sizes this is the paper's
    [OPT ≥ max_i n_i]. *)

val combined : Instance.t -> int
(** Max of all instance-level bounds. *)
