(** Online resource-assignment policies.

    A policy looks at the current system state at the start of a time
    step and decides the share vector for that step. Running a policy to
    completion yields a concrete {!Schedule.t}; this is how all the
    paper's algorithms (RoundRobin, GreedyBalance, …) are realized. *)

type state = {
  time : int;  (** 1-based index of the step being decided *)
  instance : Instance.t;
  next_job : int array;
      (** per processor, index of the active job; [n_i] when done *)
  remaining_volume : Crs_num.Rational.t array;
      (** remaining processing volume (p-units) of the active job;
          zero for finished processors *)
}

val initial : Instance.t -> state

val is_done : state -> bool
val active : state -> int -> bool
(** Processor still has unfinished jobs. *)

val jobs_remaining : state -> int -> int
(** [n_i(t)]: unfinished jobs on the processor. *)

val active_requirement : state -> int -> Crs_num.Rational.t
(** Requirement of the active job. @raise Invalid_argument if done. *)

val remaining_work : state -> int -> Crs_num.Rational.t
(** Remaining work [r·(remaining volume)] of the active job — the
    resource still needed to finish it (alternative interpretation);
    zero for finished processors. *)

type t = state -> Crs_num.Rational.t array
(** Must return a feasible share vector (entries in [0,1], sum at most 1). *)

val advance : state -> Crs_num.Rational.t array -> state
(** One step of the model semantics. *)

val run : ?max_steps:int -> t -> Instance.t -> Schedule.t
(** Run the policy until every job finishes.

    @param max_steps fuel limit (default [10·total_jobs + 100]); exceeding
    it raises [Failure], which flags a policy that stopped making
    progress.
    @raise Failure also when the policy emits an infeasible share
    vector. *)

(** {1 Stock policies} *)

val idle : t
(** Assigns nothing; useful only in tests. *)

val uniform : t
(** Splits the resource evenly among active processors, capped per job at
    its usable amount; surplus is not redistributed. *)

val proportional : t
(** Splits proportionally to the active jobs' remaining work; capped at
    the usable amount. *)

val greedy_fill : by:(state -> int -> int -> bool) -> t
(** [greedy_fill ~by] sorts active processors with the strict ordering
    [by state] (a [<]-like predicate on processor ids) and pours the
    resource down the list, giving each active job exactly the resource it
    can still use this step. The resulting schedules are non-wasting and
    progressive by construction. *)
