module Q = Crs_num.Rational

let total_work instance = Q.ceil_int (Instance.total_work instance)
let job_count instance =
  (* Volume is processed at speed at most 1, so job (i,j) occupies at
     least ⌈p_ij⌉ steps of its processor; sequences add up. For unit
     sizes this is the paper's bound OPT >= max_i n_i. *)
  let per_proc i =
    Array.fold_left
      (fun acc job -> acc + Q.ceil_int (Job.size job))
      0
      (Instance.jobs_on instance i)
  in
  List.fold_left (fun acc i -> max acc (per_proc i)) 0
    (Crs_util.Misc.range (Instance.m instance))
let combined instance = max (total_work instance) (job_count instance)
