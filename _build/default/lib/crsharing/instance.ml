module Q = Crs_num.Rational

type t = { procs : Job.t array array }

let create rows =
  if Array.length rows = 0 then invalid_arg "Instance.create: no processors";
  { procs = Array.map Array.copy rows }

let of_requirements reqs = create (Array.map (Array.map Job.unit) reqs)

let of_percent rows =
  create
    (Array.of_list
       (List.map (fun row -> Array.of_list (List.map Job.of_percent row)) rows))

let m t = Array.length t.procs
let n_i t i = Array.length t.procs.(i)

let n_max t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.procs

let total_jobs t =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 t.procs

let job t i j =
  if i < 0 || i >= m t then invalid_arg "Instance.job: processor out of range";
  if j < 0 || j >= n_i t i then invalid_arg "Instance.job: job out of range";
  t.procs.(i).(j)

let jobs_on t i = Array.copy t.procs.(i)
let rows t = Array.map Array.copy t.procs

let total_work t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc j -> Q.add acc (Job.work j)) acc row)
    Q.zero t.procs

let m_j t j =
  Array.fold_left (fun acc row -> if Array.length row >= j then acc + 1 else acc) 0 t.procs

let is_unit_size t =
  Array.for_all (fun row -> Array.for_all Job.is_unit_size row) t.procs

let concat_processors a b = create (Array.append a.procs b.procs)

let append_jobs a b =
  if m a <> m b then invalid_arg "Instance.append_jobs: processor counts differ";
  create (Array.map2 Array.append a.procs b.procs)

let map_jobs f t =
  create (Array.mapi (fun i row -> Array.mapi (fun j job -> f i j job) row) t.procs)

let scale_requirements factor t =
  map_jobs
    (fun _ _ job ->
      Job.make
        ~requirement:(Q.mul factor (Job.requirement job))
        ~size:(Job.size job))
    t

let sub_processors t selection =
  if selection = [] then invalid_arg "Instance.sub_processors: empty selection";
  List.iter
    (fun i ->
      if i < 0 || i >= m t then
        invalid_arg "Instance.sub_processors: processor out of range")
    selection;
  create (Array.of_list (List.map (fun i -> Array.copy t.procs.(i)) selection))

let equal a b =
  m a = m b
  && Array.for_all2 (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 Job.equal ra rb) a.procs b.procs

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i row ->
      Format.fprintf fmt "p%d:" i;
      Array.iter (fun j -> Format.fprintf fmt " %a" Job.pp j) row;
      if i < m t - 1 then Format.fprintf fmt "@,")
    t.procs;
  Format.fprintf fmt "@]"

let job_to_string j =
  if Job.is_unit_size j then Q.to_string (Job.requirement j)
  else Q.to_string (Job.requirement j) ^ "*" ^ Q.to_string (Job.size j)

let to_string t =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun k j ->
          if k > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (job_to_string j))
        row;
      Buffer.add_char buf '\n')
    t.procs;
  Buffer.contents buf

let job_of_string s =
  match String.index_opt s '*' with
  | None -> Job.unit (Q.of_string s)
  | Some i ->
    let r = String.sub s 0 i in
    let p = String.sub s (i + 1) (String.length s - i - 1) in
    Job.make ~requirement:(Q.of_string r) ~size:(Q.of_string p)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse_line line =
    let tokens =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
    in
    Array.of_list (List.map job_of_string tokens)
  in
  let meaningful =
    List.filter
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      lines
  in
  match meaningful with
  | [] -> Error "Instance.of_string: no processor lines"
  | lines -> (
    try Ok (create (Array.of_list (List.map parse_line lines))) with
    | Invalid_argument msg | Failure msg -> Error msg
    | Division_by_zero -> Error "Instance.of_string: zero denominator")

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))
