module Q = Crs_num.Rational

(* All surgery happens on a mutable consumption matrix w.(t).(i) (0-based
   steps). The invariants maintained by every primitive:
   - Σ_i w.(t).(i) <= 1 for all t;
   - each processor's row, read in step order, feeds its jobs in order
     and sums to exactly the total work (so the schedule completes);
   - a job only receives resource during steps where it is active.
   After each primitive we re-derive the trace from scratch rather than
   patching bookkeeping incrementally — O(T·m) per primitive, robustness
   over speed. *)

let trace_of instance w =
  let rows = Array.map Array.copy w in
  if Array.length rows = 0 then
    Execution.run_exn instance (Schedule.empty ~m:(Instance.m instance))
  else Execution.run_exn instance (Schedule.of_rows rows)

(* Truncate trailing steps after the last completion. *)
let truncate instance w =
  let trace = trace_of instance w in
  let last =
    Array.fold_left
      (fun acc row -> Array.fold_left max acc row)
      0 trace.Execution.completion_step
  in
  if last < Array.length w then Array.sub w 0 last else w

let consumption_matrix (trace : Execution.trace) =
  Array.map (fun (s : Execution.step) -> Array.copy s.consumed) trace.steps

let check_input instance schedule =
  if not (Instance.is_unit_size instance) then
    invalid_arg "Transform: unit-size jobs only";
  (match Schedule.check_feasible schedule with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Transform: infeasible schedule: " ^ msg));
  let trace = Execution.run_exn instance schedule in
  if not trace.Execution.completed then
    invalid_arg "Transform: schedule does not finish all jobs"

let canonicalize_matrix instance schedule =
  let trace = Execution.run_exn instance schedule in
  truncate instance (consumption_matrix trace)

(* The active job of processor i at 0-based step t, if any. *)
let active_at (trace : Execution.trace) t i = trace.steps.(t).Execution.active.(i)

(* Future receipt steps of the job active on processor i at step t:
   0-based steps t' > t where the same job receives positive resource. *)
let future_receipts (trace : Execution.trace) w t i =
  match active_at trace t i with
  | None -> []
  | Some j ->
    let horizon = Array.length w in
    let rec go t' acc =
      if t' >= horizon then List.rev acc
      else
        match active_at trace t' i with
        | Some j' when j' = j ->
          go (t' + 1) (if Q.(w.(t').(i) > zero) then t' :: acc else acc)
        | _ -> List.rev acc
    in
    go (t + 1) []

let row_sum w t = Q.sum_array w.(t)

(* Pass 1: saturation. One ascending sweep; in each step, pull active
   jobs' future receipts forward until the step is saturated or every
   active job completes within it. *)
let saturate instance w =
  let w = ref w in
  let horizon () = Array.length !w in
  let t = ref 0 in
  while !t < horizon () do
    let continue_step = ref true in
    while !continue_step do
      continue_step := false;
      let trace = trace_of instance !w in
      if !t < Array.length !w then begin
        let slack = Q.sub Q.one (row_sum !w !t) in
        if Q.(slack > zero) then begin
          let m = Instance.m instance in
          let moved = ref false in
          let i = ref 0 in
          while (not !moved) && !i < m do
            (match future_receipts trace !w !t !i with
            | t' :: _ ->
              let delta = Q.min slack !w.(t').(!i) in
              if Q.(delta > zero) then begin
                !w.(t').(!i) <- Q.sub !w.(t').(!i) delta;
                !w.(!t).(!i) <- Q.add !w.(!t).(!i) delta;
                moved := true
              end
            | [] -> ());
            incr i
          done;
          if !moved then continue_step := true
        end
      end
    done;
    (* Pulling forward may have emptied trailing steps. *)
    w := truncate instance !w;
    incr t
  done;
  truncate instance !w

(* Violating pairs of the nested property. Definition 4 with the
   in-progress reading of "running" reduces to the pair condition
   S(i,j) < S(i',j') < C(i,j) together with S(i',j') < C(i',j'): while a
   job is strictly in progress, no multi-step job may start. (The proof of
   Lemma 1 spells out only the strict interleaving S < S' < C < C', but
   the equal-completion case C = C' violates Definition 4 just the same —
   witness Figure 2c — and the same window exchange repairs it.) Returns
   the pair with smallest (S', S) not in [skip], or None. *)
let find_violating_pair ?(min_start = 0) ?(skip = []) (trace : Execution.trace) =
  let instance = trace.Execution.instance in
  let jobs =
    List.concat_map
      (fun i ->
        List.map (fun j -> (i, j)) (Crs_util.Misc.range (Instance.n_i instance i)))
      (Crs_util.Misc.range (Instance.m instance))
  in
  let s (i, j) = trace.Execution.start_step.(i).(j) in
  let c (i, j) = trace.Execution.completion_step.(i).(j) in
  let best = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if fst a <> fst b then begin
            let sa = s a and sb = s b and ca = c a and cb = c b in
            if sa > 0 && sb > 0 && sa < sb && sb < ca && sb < cb && sb > min_start
               && not (List.mem (a, b) skip)
            then begin
              match !best with
              | Some (_, _, key) when key <= (sb, sa) -> ()
              | _ -> best := Some (a, b, (sb, sa))
            end
          end)
        jobs)
    jobs;
  match !best with
  | Some (a, b, _) -> Some (a, b)
  | None -> None

(* Fix one violating pair (ia,ja) / (ib,jb): within steps S(b)..C(a),
   re-split the combined budget of the two processors so that job a is
   fed first (up to its remaining need) and job b gets the rest. Unit
   sizes make the per-step caps vacuous (remaining work <= requirement
   <= 1 >= any step budget share). *)
exception Unfixable_pair

(* Enclosed shape: job b starts and completes strictly inside job a's
   span. Repair: make b single-step. Pick a window step u whose combined
   two-row budget covers b's whole remaining work w_b; b receives exactly
   w_b at u and nothing else, a absorbs every other scrap of the window
   budget (its per-step cap is its remaining work, which unit sizes keep
   above any prefix of its total take). Work per row and per step is
   conserved, b becomes a one-step job (S = C, never a violator again),
   and no other job's receipts change. Raises [Unfixable_pair] when no
   single step's budget covers w_b. *)
let fix_enclosed instance w (ia, ja) (ib, jb) =
  ignore instance;
  let trace = trace_of instance w in
  let s_b = trace.Execution.start_step.(ib).(jb) in
  let c_b = trace.Execution.completion_step.(ib).(jb) in
  let window = List.init (c_b - s_b + 1) (fun k -> s_b - 1 + k) in
  let part_a t = if active_at trace t ia = Some ja then w.(t).(ia) else Q.zero in
  let part_b t = if active_at trace t ib = Some jb then w.(t).(ib) else Q.zero in
  let budget t = Q.add (part_a t) (part_b t) in
  let w_b = Q.sum (List.map part_b window) in
  let u =
    List.fold_left
      (fun best t ->
        match best with
        | Some tb when Q.(budget tb >= budget t) -> best
        | _ -> Some t)
      None window
  in
  match u with
  | Some u when Q.(budget u >= w_b) ->
    (* Snapshot the combined budgets before mutating the matrix. *)
    let budgets = List.map (fun t -> (t, budget t)) window in
    List.iter
      (fun (t, b_t) ->
        let y = if t = u then w_b else Q.zero in
        let b_other =
          if active_at trace t ib = Some jb then Q.zero else w.(t).(ib)
        in
        let a_other =
          if active_at trace t ia = Some ja then Q.zero else w.(t).(ia)
        in
        w.(t).(ib) <- Q.add b_other y;
        w.(t).(ia) <- Q.add a_other (Q.sub b_t y))
      budgets
  | _ -> raise Unfixable_pair

let fix_pair instance w ((ia, ja) as _a) ((ib, jb) as _b) =
  let trace = trace_of instance w in
  let s_b = trace.Execution.start_step.(ib).(jb) in
  let c_a = trace.Execution.completion_step.(ia).(ja) in
  let c_b = trace.Execution.completion_step.(ib).(jb) in
  (* The window exchange redistributes the two jobs' combined budget over
     [S(b), C(a)]: feed a to completion first, then b with the remainder.
     When C(b) >= C(a), b is active through the window and the exchange
     is the paper's. When C(b) < C(a) (enclosed shape), the same exchange
     remains valid provided b may be DELAYED through the window, i.e. its
     successors receive nothing in (C(b), C(a)] — exactly how Figure 2b
     repairs Figure 2c. Otherwise fall back to compacting b into one
     step. Per-step caps cannot force waste for unit sizes: a's take is
     bounded by its remaining work, b's by its remaining work <= r_b. *)
  let tail_free =
    c_b >= c_a
    || List.for_all
         (fun t -> Q.is_zero w.(t).(ib))
         (List.init (c_a - c_b) (fun k -> c_b + k))
  in
  if not tail_free then fix_enclosed instance w (ia, ja) (ib, jb)
  else begin
    let window = List.init (c_a - s_b + 1) (fun k -> s_b - 1 + k) in
    let receipts_of i j =
      List.fold_left
        (fun acc t ->
          if active_at trace t i = Some j then Q.add acc w.(t).(i) else acc)
        Q.zero window
    in
    let need_a = ref (receipts_of ia ja) in
    let need_b = ref (receipts_of ib jb) in
    (* Whether row b's budget at step t belonged to job b (it may be zero
       tail space where b is merely allowed to run after the delay). *)
    let b_slot t = active_at trace t ib = Some jb || Q.is_zero w.(t).(ib) in
    List.iter
      (fun t ->
        (* Only the budget these two jobs were using is redistributed. *)
        let part_a = if active_at trace t ia = Some ja then w.(t).(ia) else Q.zero in
        let part_b = if active_at trace t ib = Some jb then w.(t).(ib) else Q.zero in
        let budget = Q.add part_a part_b in
        let give_a = Q.min budget !need_a in
        let give_b = Q.min (Q.sub budget give_a) !need_b in
        if active_at trace t ia = Some ja then
          w.(t).(ia) <- Q.add (Q.sub w.(t).(ia) part_a) give_a
        else assert (Q.is_zero give_a);
        if b_slot t then w.(t).(ib) <- Q.add (Q.sub w.(t).(ib) part_b) give_b
        else assert (Q.is_zero give_b);
        need_a := Q.sub !need_a give_a;
        need_b := Q.sub !need_b give_b)
      window;
    if not (Q.is_zero !need_a && Q.is_zero !need_b) then
      failwith "Transform.fix_pair: exchange did not conserve work (bug)"
  end

let eliminate_pairs ?min_start instance w =
  let fuel = ref (Instance.total_jobs instance * Instance.total_jobs instance * 4) in
  let skipped = ref [] in
  let rec loop () =
    let trace = trace_of instance w in
    match find_violating_pair ?min_start ~skip:!skipped trace with
    | None -> ()
    | Some (a, b) ->
      decr fuel;
      if !fuel < 0 then failwith "Transform.eliminate_pairs: no fixpoint (bug)";
      (try fix_pair instance w a b
       with Unfixable_pair -> skipped := (a, b) :: !skipped);
      loop ()
  in
  loop ()

(* Pass 3: per-step untangling. For 1-based step t: among jobs receiving
   resource at t and active after t, keep only the one with the smallest
   completion time; exchange the others' step-t shares against its
   receipts in later steps. *)
let untangle_step instance w t0 =
  let m = Instance.m instance in
  let fuel = ref ((4 * m) + 8) in
  let rec loop () =
    decr fuel;
    if !fuel < 0 then failwith "Transform.untangle_step: no fixpoint (bug)";
    let trace = trace_of instance w in
    if t0 >= Array.length w then ()
    else begin
      let c i j = trace.Execution.completion_step.(i).(j) in
      let partial =
        List.filter_map
          (fun i ->
            match active_at trace t0 i with
            | Some j
              when Q.(w.(t0).(i) > zero)
                   && (c i j = 0 || c i j > t0 + 1) ->
              Some (i, j)
            | _ -> None)
          (Crs_util.Misc.range m)
      in
      match partial with
      | [] | [ _ ] -> ()
      | _ ->
        (* Keeper: smallest completion time (0 = never completes, treated
           as infinity; cannot happen for completing schedules). *)
        let key (i, j) =
          let v = c i j in
          if v = 0 then max_int else v
        in
        let keeper =
          List.fold_left
            (fun best cand -> if key cand < key best then cand else best)
            (List.hd partial) (List.tl partial)
        in
        let ik, _jk = keeper in
        let donors = List.filter (fun cand -> cand <> keeper) partial in
        (* Move x from a donor's step-t share to the keeper and hand the
           same amount of the keeper's later receipts back to the donor,
           earliest steps first. The donor can absorb at most
           [r_donor - current share] extra per step (speed cap); the
           keeper's completion time is minimal among the partial jobs, so
           all its receipt steps lie within the donor's job's window and
           the remaining-work cap cannot bind (the donor is owed exactly
           what it gave). x is capped by the total absorbency so the
           compensation always lands. *)
        let future = future_receipts trace w t0 ik in
        let try_donor (id, jd) =
          let r_donor = Job.requirement (Instance.job instance id jd) in
          let caps =
            List.map
              (fun t' ->
                (t', Q.min w.(t').(ik) (Q.max Q.zero (Q.sub r_donor w.(t').(id)))))
              future
          in
          let absorbency = Q.sum (List.map snd caps) in
          let x = Q.min w.(t0).(id) absorbency in
          if Q.(x > zero) then begin
            w.(t0).(id) <- Q.sub w.(t0).(id) x;
            w.(t0).(ik) <- Q.add w.(t0).(ik) x;
            let remaining = ref x in
            List.iter
              (fun (t', cap) ->
                if Q.(!remaining > zero) then begin
                  let y = Q.min !remaining cap in
                  w.(t').(ik) <- Q.sub w.(t').(ik) y;
                  w.(t').(id) <- Q.add w.(t').(id) y;
                  remaining := Q.sub !remaining y
                end)
              caps;
            if not (Q.is_zero !remaining) then
              failwith "Transform.untangle_step: compensation exhausted (bug)";
            true
          end
          else false
        in
        if List.exists try_donor donors then loop ()
        else
          failwith
            "Transform.untangle_step: no donor exchange possible (speed caps \
             block the Lemma 1 argument on this input — please report)"
    end
  in
  loop ()

let schedule_of w m = if Array.length w = 0 then Schedule.empty ~m else Schedule.of_rows w

let make_non_wasting instance schedule =
  check_input instance schedule;
  let w = canonicalize_matrix instance schedule in
  let w = saturate instance w in
  schedule_of w (Instance.m instance)

let canonicalize instance schedule =
  check_input instance schedule;
  schedule_of (canonicalize_matrix instance schedule) (Instance.m instance)

let debug_enabled = lazy (Sys.getenv_opt "CRS_TRANSFORM_DEBUG" <> None)

let debug_status instance w round =
  if Lazy.force debug_enabled then begin
    let trace = trace_of instance w in
    let status =
      List.map
        (fun (n, r) ->
          Printf.sprintf "%s=%s" n
            (match r with
            | Ok () -> "ok"
            | Error v -> Format.asprintf "FAIL(%a)" Properties.pp_violation v))
        (Properties.check_all trace)
      |> String.concat " "
    in
    Printf.eprintf "[transform] round %d horizon %d: %s\n%!" round
      (Array.length w) status
  end

let properties_hold instance w =
  let trace = trace_of instance w in
  trace.Execution.completed
  && Result.is_ok (Properties.non_wasting trace)
  && Result.is_ok (Properties.progressive trace)
  && Result.is_ok (Properties.nested trace)

let normalize instance schedule =
  check_input instance schedule;
  let original_makespan =
    Execution.makespan (Execution.run_exn instance schedule)
  in
  (* The three passes interact: pair elimination and untangling preserve
     every step's total but move completion times, which can re-expose
     underused steps with unfinished active jobs; saturation in turn can
     create new interleavings. Each pass never increases the makespan, so
     we simply iterate the pipeline until all three properties hold
     (fuzzing shows 2-3 rounds typical; the round budget is a bug guard). *)
  let w = ref (canonicalize_matrix instance schedule) in
  let rounds = ref 0 in
  while not (properties_hold instance !w) do
    debug_status instance !w !rounds;
    incr rounds;
    if !rounds > 30 then
      failwith "Transform.normalize: passes did not reach a fixpoint (bug)";
    w := saturate instance !w;
    eliminate_pairs instance !w;
    let horizon = Array.length !w in
    for t0 = 0 to horizon - 1 do
      untangle_step instance !w t0;
      (* Shrinking a completion time may create fresh interleavings that
         start after t (proof of Lemma 1); clean them before moving on. *)
      eliminate_pairs ~min_start:(t0 + 1) instance !w
    done;
    w := truncate instance !w
  done;
  let result = schedule_of !w (Instance.m instance) in
  (* Re-validate everything the lemma promises before handing it out. *)
  let trace = Execution.run_exn instance result in
  if not trace.Execution.completed then
    failwith "Transform.normalize: result does not complete (bug)";
  if Execution.makespan trace > original_makespan then
    failwith "Transform.normalize: makespan increased (bug)";
  List.iter
    (fun (name, check) ->
      match check with
      | Ok () -> ()
      | Error v ->
        failwith
          (Format.asprintf "Transform.normalize: result not %s: %a (bug)" name
             Properties.pp_violation v))
    [
      ("non-wasting", Properties.non_wasting trace);
      ("progressive", Properties.progressive trace);
      ("nested", Properties.nested trace);
    ];
  result
