(** Structural properties of schedules (paper, Definitions 2-5).

    All predicates are evaluated on an execution trace. For a completed
    trace they decide exactly the paper's definitions; steps after all
    jobs completed are ignored. *)

type violation = { step : int; reason : string }
(** A witness for a failed property, with the 1-based step involved. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Definition 2: non-wasting}

    In every step [t] with [Σ_i R_i(t) < 1], all active jobs finish. *)

val non_wasting : Execution.trace -> (unit, violation) result
val is_non_wasting : Execution.trace -> bool

(** {1 Definition 3: progressive}

    In every step, among jobs that are assigned resources, at most one is
    only partially processed: [|{i : n_i(t) = n_i(t+1) ∧ R_i(t) > 0}| ≤ 1]. *)

val progressive : Execution.trace -> (unit, violation) result
val is_progressive : Execution.trace -> bool

(** {1 Definition 4: nested}

    At no step [t] are there jobs [(i,j)], [(i',j')] with
    [S(i,j) < S(i',j') ≤ t < C(i',j')], [S(i',j') < C(i,j)], and [(i,j)]
    running during [t]. A job is "running" at [t] when it has started and
    is not yet completed ([S ≤ t ≤ C]): the Lemma 1 proof and the
    Figure 2c example both force this in-progress reading rather than
    "receives resource at [t]". *)

val nested : Execution.trace -> (unit, violation) result
val is_nested : Execution.trace -> bool

(** {1 Definition 5: balanced}

    Whenever processor [i] finishes a job at step [t], every processor
    [i'] with [n_i'(t) > n_i(t)] also finishes a job at [t]. *)

val balanced : Execution.trace -> (unit, violation) result
val is_balanced : Execution.trace -> bool

(** {1 Extra sanity predicates} *)

val no_overprovision : Execution.trace -> (unit, violation) result
(** No processor is assigned resource its active job cannot use
    ([consumed = share] everywhere). Not required by the paper, but
    natural for canonical schedules produced by our algorithms. *)

val check_all :
  Execution.trace -> (string * (unit, violation) result) list
(** Evaluate the four paper properties, labelled. *)
