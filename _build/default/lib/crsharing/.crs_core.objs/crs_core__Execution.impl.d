lib/crsharing/execution.ml: Array Crs_num Instance Job List Printf Schedule
