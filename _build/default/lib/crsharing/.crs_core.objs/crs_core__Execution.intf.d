lib/crsharing/execution.mli: Crs_num Instance Schedule
