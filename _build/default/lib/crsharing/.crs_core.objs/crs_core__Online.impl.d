lib/crsharing/online.ml: Array Crs_num Crs_util Execution Instance List Policy
