lib/crsharing/lower_bounds.mli: Instance
