lib/crsharing/properties.mli: Execution Format
