lib/crsharing/properties.ml: Array Crs_num Crs_util Execution Format Instance List Option Printf Result
