lib/crsharing/job.ml: Crs_num Format
