lib/crsharing/policy.mli: Crs_num Instance Schedule
