lib/crsharing/lower_bounds.ml: Array Crs_num Crs_util Instance Job List
