lib/crsharing/transform.ml: Array Crs_num Crs_util Execution Format Instance Job Lazy List Printf Properties Result Schedule String Sys
