lib/crsharing/online.mli: Crs_num Instance Policy
