lib/crsharing/transform.mli: Instance Schedule
