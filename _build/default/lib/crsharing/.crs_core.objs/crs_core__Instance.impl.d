lib/crsharing/instance.ml: Array Buffer Crs_num Format Fun In_channel Job List String
