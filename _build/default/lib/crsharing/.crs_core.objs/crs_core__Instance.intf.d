lib/crsharing/instance.mli: Crs_num Format Job
