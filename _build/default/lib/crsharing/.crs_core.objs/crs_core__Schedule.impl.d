lib/crsharing/schedule.ml: Array Buffer Crs_num Format Fun In_channel List Printf String
