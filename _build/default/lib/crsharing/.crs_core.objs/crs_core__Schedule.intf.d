lib/crsharing/schedule.mli: Crs_num Format
