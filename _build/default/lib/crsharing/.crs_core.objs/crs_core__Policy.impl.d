lib/crsharing/policy.ml: Array Crs_num Crs_util Instance Job List Schedule
