lib/crsharing/job.mli: Crs_num Format
