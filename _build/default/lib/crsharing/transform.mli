(** The Lemma 1 normalization: every feasible schedule can be transformed
    — without increasing its makespan — into one that is non-wasting,
    progressive and nested.

    The implementation follows the proof's three exchange arguments
    operating on the per-step consumption matrix:

    + {b saturation}: in each underusing step, pull the active jobs'
      future receipts forward until the step is full or every active job
      finishes in it (non-wasting);
    + {b pair elimination}: for jobs with interleaved windows
      [S(i,j) < S(i',j') < C(i,j) < C(i',j')], re-split the two jobs'
      combined window budget to complete [(i,j)] before [(i',j')] starts;
    + {b per-step untangling}: in each step, among jobs that receive
      resource and survive the step, keep only the one completing
      earliest, exchanging the others' shares against its later receipts
      (progressive + nested).

    Unit-size jobs only (the paper's Lemma 1 is stated for the general
    model, but all uses are in the unit-size analysis; unit sizes
    guarantee the per-step speed caps can never force waste during the
    exchanges). *)

val normalize : Instance.t -> Schedule.t -> Schedule.t
(** @raise Invalid_argument if the instance has non-unit sizes, the
    schedule is infeasible, or it does not finish every job.
    @raise Failure when the exchange passes cannot reach a fixpoint. The
    result is always re-validated before being returned, so a returned
    schedule provably has all three properties and no larger makespan.

    {b Reproduction finding (E3).} The paper's proof of Lemma 1 spells
    out the exchange for interleaved pairs [S < S' < C < C'] but not for
    {e enclosed} pairs ([C' ≤ C]), where the per-step speed caps
    ([consumption ≤ r] per job per step) and the one-job-per-step rule
    can block the obvious exchanges. We repair enclosed pairs by
    compacting the inner job into a single step whenever some window
    step's combined budget covers its remaining work; on adversarial
    random schedules this normalizes ≈99% of inputs, and the remainder
    raises rather than returning a non-nested schedule (measured in the
    property-test suite; see EXPERIMENTS.md, E3). *)

val make_non_wasting : Instance.t -> Schedule.t -> Schedule.t
(** Only the saturation pass (plus consumption canonicalization): useful
    on its own to certify the Lemma 5 lower bound for arbitrary input
    schedules. *)

val canonicalize : Instance.t -> Schedule.t -> Schedule.t
(** Replace every assignment with what the active job actually consumes
    and drop trailing idle steps. Completion times are unchanged. *)
