module Q = Crs_num.Rational

type step = {
  shares : Q.t array;
  active : int option array;
  progress : Q.t array;
  consumed : Q.t array;
  finished : (int * int) list;
}

type trace = {
  instance : Instance.t;
  schedule : Schedule.t;
  steps : step array;
  start_step : int array array;
  completion_step : int array array;
  completed : bool;
}

let run instance schedule =
  match Schedule.check_feasible schedule with
  | Error msg -> Error msg
  | Ok () ->
    if Schedule.m schedule <> Instance.m instance then
      Error
        (Printf.sprintf "schedule is for %d processors, instance has %d"
           (Schedule.m schedule) (Instance.m instance))
    else begin
      let m = Instance.m instance in
      let horizon = Schedule.horizon schedule in
      let next = Array.make m 0 in
      (* Remaining volume of the active job, in p-units. *)
      let remaining = Array.make m Q.zero in
      for i = 0 to m - 1 do
        if Instance.n_i instance i > 0 then
          remaining.(i) <- Job.size (Instance.job instance i 0)
      done;
      let start_step = Array.init m (fun i -> Array.make (Instance.n_i instance i) 0) in
      let completion_step = Array.init m (fun i -> Array.make (Instance.n_i instance i) 0) in
      let steps = ref [] in
      for t = 0 to horizon - 1 do
        let shares = Schedule.row schedule t in
        let active = Array.make m None in
        let progress = Array.make m Q.zero in
        let consumed = Array.make m Q.zero in
        let finished = ref [] in
        for i = 0 to m - 1 do
          if next.(i) < Instance.n_i instance i then begin
            let j = next.(i) in
            active.(i) <- Some j;
            let r = Job.requirement (Instance.job instance i j) in
            (* Speed = min(share/r, 1); requirement 0 means full speed. *)
            let speed =
              if Q.is_zero r then Q.one else Q.min (Q.div shares.(i) r) Q.one
            in
            let p = Q.min speed remaining.(i) in
            if Q.(p > zero) then begin
              if start_step.(i).(j) = 0 then start_step.(i).(j) <- t + 1;
              progress.(i) <- p;
              consumed.(i) <- Q.mul p r;
              remaining.(i) <- Q.sub remaining.(i) p;
              if Q.is_zero remaining.(i) then begin
                completion_step.(i).(j) <- t + 1;
                (* A zero-size remainder can only occur through completion;
                   job sizes are positive. *)
                finished := (i, j) :: !finished;
                next.(i) <- j + 1;
                if next.(i) < Instance.n_i instance i then
                  remaining.(i) <- Job.size (Instance.job instance i next.(i))
              end
            end
          end
        done;
        steps :=
          { shares; active; progress; consumed; finished = List.rev !finished }
          :: !steps
      done;
      let completed =
        Array.for_all (fun (i : int) -> next.(i) >= Instance.n_i instance i)
          (Array.init m (fun i -> i))
      in
      Ok
        {
          instance;
          schedule;
          steps = Array.of_list (List.rev !steps);
          start_step;
          completion_step;
          completed;
        }
    end

let run_exn instance schedule =
  match run instance schedule with
  | Ok t -> t
  | Error msg -> failwith ("Execution.run: " ^ msg)

let makespan_opt trace =
  if not trace.completed then None
  else
    Some
      (Array.fold_left
         (fun acc row -> Array.fold_left max acc row)
         0 trace.completion_step)

let makespan trace =
  match makespan_opt trace with
  | Some v -> v
  | None -> failwith "Execution.makespan: schedule does not finish all jobs"

let active_jobs trace t =
  if t < 1 || t > Array.length trace.steps then
    invalid_arg "Execution.active_jobs: step out of range";
  let step = trace.steps.(t - 1) in
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      match a with
      | Some j -> acc := (i, j) :: !acc
      | None -> ())
    step.active;
  List.rev !acc

let jobs_remaining trace t =
  if t < 1 || t > Array.length trace.steps + 1 then
    invalid_arg "Execution.jobs_remaining: step out of range";
  let m = Instance.m trace.instance in
  let n = Array.init m (fun i -> Instance.n_i trace.instance i) in
  (* Subtract the jobs finished strictly before step t. *)
  for s = 0 to min (t - 2) (Array.length trace.steps - 1) do
    List.iter (fun (i, _) -> n.(i) <- n.(i) - 1) trace.steps.(s).finished
  done;
  n

let wasted trace =
  Array.fold_left
    (fun acc step ->
      Q.add acc (Q.sub (Q.sum_array step.shares) (Q.sum_array step.consumed)))
    Q.zero trace.steps

let unused_capacity trace =
  let last =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 0
      trace.completion_step
  in
  let total = ref Q.zero in
  for t = 0 to min last (Array.length trace.steps) - 1 do
    total := Q.add !total (Q.sub Q.one (Q.sum_array trace.steps.(t).consumed))
  done;
  !total

let verify_completion_times trace =
  let exception Bad of string in
  let instance = trace.instance in
  try
    for i = 0 to Instance.m instance - 1 do
      for j = 0 to Instance.n_i instance i - 1 do
        let c = trace.completion_step.(i).(j) in
        if c > 0 then begin
          let job = Instance.job instance i j in
          let r = Job.requirement job in
          if not (Q.is_zero r) then begin
            (* Alternative interpretation, Eq. (2): accumulate
               min(R_i(t), r) over steps where (i,j) is active; the first
               step reaching r·p must be the recorded completion step. *)
            let target = Job.work job in
            let acc = ref Q.zero in
            let reached = ref 0 in
            Array.iteri
              (fun t step ->
                if !reached = 0 && step.active.(i) = Some j then begin
                  acc := Q.add !acc (Q.min step.shares.(i) r);
                  if Q.(!acc >= target) then reached := t + 1
                end)
              trace.steps;
            if !reached <> c then
              raise
                (Bad
                   (Printf.sprintf
                      "job (%d,%d): Eq.(2) completion %d but trace says %d" i j
                      !reached c))
          end
        end
      done
    done;
    Ok ()
  with Bad msg -> Error msg
