module Q = Crs_num.Rational

type t = { requirement : Q.t; size : Q.t }

let make ~requirement ~size =
  if not (Q.in_unit_interval requirement) then
    invalid_arg "Job.make: requirement outside [0,1]";
  if Q.(size <= zero) then invalid_arg "Job.make: size must be positive";
  { requirement; size }

let unit requirement = make ~requirement ~size:Q.one
let of_percent p = unit (Q.of_ints p 100)

let requirement t = t.requirement
let size t = t.size
let work t = Q.mul t.requirement t.size
let is_unit_size t = Q.is_one t.size

let equal a b = Q.equal a.requirement b.requirement && Q.equal a.size b.size

let compare a b =
  let c = Q.compare a.requirement b.requirement in
  if c <> 0 then c else Q.compare a.size b.size

let pp fmt t =
  if is_unit_size t then Format.fprintf fmt "job(r=%a)" Q.pp t.requirement
  else Format.fprintf fmt "job(r=%a, p=%a)" Q.pp t.requirement Q.pp t.size
