module Q = Crs_num.Rational

type violation = { step : int; reason : string }

let pp_violation fmt v = Format.fprintf fmt "step %d: %s" v.step v.reason

(* Last 1-based step during which some job is still active; later steps
   are vacuous for every property. *)
let live_horizon (trace : Execution.trace) =
  let last = ref 0 in
  Array.iteri
    (fun t (step : Execution.step) ->
      if Array.exists Option.is_some step.active then last := t + 1)
    trace.steps;
  !last

let finished_this_step (step : Execution.step) i =
  List.exists (fun (i', _) -> i' = i) step.finished

let non_wasting (trace : Execution.trace) =
  let exception Bad of violation in
  try
    let horizon = live_horizon trace in
    for t = 1 to horizon do
      let step = trace.steps.(t - 1) in
      if Q.(Q.sum_array step.shares < one) then
        Array.iteri
          (fun i active ->
            match active with
            | Some j ->
              if not (finished_this_step step i) then
                raise
                  (Bad
                     {
                       step = t;
                       reason =
                         Printf.sprintf
                           "resource underused yet job (%d,%d) not finished" i j;
                     })
            | None -> ())
          step.active
    done;
    Ok ()
  with Bad v -> Error v

let progressive (trace : Execution.trace) =
  let exception Bad of violation in
  try
    let horizon = live_horizon trace in
    for t = 1 to horizon do
      let step = trace.steps.(t - 1) in
      let partial = ref [] in
      Array.iteri
        (fun i active ->
          match active with
          | Some j ->
            if Q.(step.shares.(i) > zero) && not (finished_this_step step i) then
              partial := (i, j) :: !partial
          | None -> ())
        step.active;
      if List.length !partial > 1 then
        raise
          (Bad
             {
               step = t;
               reason =
                 Printf.sprintf "%d jobs partially processed with resource"
                   (List.length !partial);
             })
    done;
    Ok ()
  with Bad v -> Error v

let nested (trace : Execution.trace) =
  let exception Bad of violation in
  let instance = trace.instance in
  let all_jobs =
    List.concat_map
      (fun i -> List.map (fun j -> (i, j)) (Crs_util.Misc.range (Instance.n_i instance i)))
      (Crs_util.Misc.range (Instance.m instance))
  in
  let s (i, j) =
    let v = trace.start_step.(i).(j) in
    if v = 0 then max_int else v
  in
  let c (i, j) =
    let v = trace.completion_step.(i).(j) in
    if v = 0 then max_int else v
  in
  (* "Running" = in progress: started by step t and not completed before
     it. The Lemma 1 proof picks t = C(i,j) and says the job "would run in
     step t", so the completion step counts as running; Figure 2c is only
     a violation under this reading. *)
  let running job t =
    let s0 = s job in
    s0 <> max_int && s0 <= t && t <= c job
  in
  try
    List.iter
      (fun job ->
        if s job <> max_int then
          List.iter
            (fun job' ->
              if job <> job' && s job' <> max_int && s job < s job'
                 && s job' < c job then
                (* Candidate pair; look for a step t with
                   S' <= t < C' where job runs. *)
                let upper = min (c job') (Array.length trace.steps + 1) in
                for t = s job' to upper - 1 do
                  if running job t then
                    raise
                      (Bad
                         {
                           step = t;
                           reason =
                             Printf.sprintf
                               "job (%d,%d) [S=%d,C=%d] runs inside job \
                                (%d,%d) [S=%d,C=%d]"
                               (fst job) (snd job) (s job)
                               trace.completion_step.(fst job).(snd job)
                               (fst job') (snd job') (s job')
                               trace.completion_step.(fst job').(snd job');
                         })
                done)
            all_jobs)
      all_jobs;
    Ok ()
  with Bad v -> Error v

let balanced (trace : Execution.trace) =
  let exception Bad of violation in
  let m = Instance.m trace.instance in
  try
    let horizon = live_horizon trace in
    let n = Array.init m (fun i -> Instance.n_i trace.instance i) in
    for t = 1 to horizon do
      let step = trace.steps.(t - 1) in
      let finishes = Array.init m (fun i -> finished_this_step step i) in
      for i = 0 to m - 1 do
        if finishes.(i) then
          for i' = 0 to m - 1 do
            if n.(i') > n.(i) && not finishes.(i') then
              raise
                (Bad
                   {
                     step = t;
                     reason =
                       Printf.sprintf
                         "proc %d (n=%d) finishes but proc %d (n=%d) does not"
                         i n.(i) i' n.(i');
                   })
          done
      done;
      List.iter (fun (i, _) -> n.(i) <- n.(i) - 1) step.finished
    done;
    Ok ()
  with Bad v -> Error v

let no_overprovision (trace : Execution.trace) =
  let exception Bad of violation in
  try
    Array.iteri
      (fun t (step : Execution.step) ->
        Array.iteri
          (fun i share ->
            if not (Q.equal share step.consumed.(i)) then
              raise
                (Bad
                   {
                     step = t + 1;
                     reason =
                       Printf.sprintf "proc %d assigned %s but consumed %s" i
                         (Q.to_string share)
                         (Q.to_string step.consumed.(i));
                   }))
          step.shares)
      trace.steps;
    Ok ()
  with Bad v -> Error v

let is_non_wasting t = Result.is_ok (non_wasting t)
let is_progressive t = Result.is_ok (progressive t)
let is_nested t = Result.is_ok (nested t)
let is_balanced t = Result.is_ok (balanced t)

let check_all trace =
  [
    ("non-wasting", non_wasting trace);
    ("progressive", progressive trace);
    ("nested", nested trace);
    ("balanced", balanced trace);
  ]
