(** A CRSharing problem instance: [m] processors, each with a fixed,
    ordered sequence of jobs (paper, Section 3.1).

    Processors are indexed [0 .. m-1] and jobs on a processor
    [0 .. n_i - 1]; the paper's job [(i, j)] (1-based) is [job t (i-1)
    (j-1)] here. *)

type t

(** {1 Construction} *)

val create : Job.t array array -> t
(** [create rows] where [rows.(i)] is processor [i]'s job sequence.
    @raise Invalid_argument if there are no processors. Empty rows are
    allowed (a processor may have zero jobs). *)

val of_requirements : Crs_num.Rational.t array array -> t
(** Unit-size instance from a requirement matrix. *)

val of_percent : int list list -> t
(** Unit-size instance with requirements given in percent, matching the
    paper's figure labels; e.g. Figure 1's instance is
    [of_percent [[20;10;10;10]; [50;55;90;55;10]; [50;40;95]]]. *)

(** {1 Accessors} *)

val m : t -> int
(** Number of processors. *)

val n_i : t -> int -> int
(** Number of jobs on a processor. *)

val n_max : t -> int
(** [max_i n_i] — the paper's [n]. *)

val total_jobs : t -> int

val job : t -> int -> int -> Job.t
(** [job t i j] is the [j]-th job of processor [i] (both 0-based).
    @raise Invalid_argument when out of range. *)

val jobs_on : t -> int -> Job.t array
(** Fresh copy of a processor's job sequence. *)

val rows : t -> Job.t array array
(** Fresh copy of the whole matrix. *)

val total_work : t -> Crs_num.Rational.t
(** [Σ_ij r_ij·p_ij] — the total load in the alternative interpretation,
    the basis of the Observation 1 lower bound. *)

val m_j : t -> int -> int
(** [m_j t j] is [|M_j|], the number of processors with at least [j] jobs
    ([j] 1-based as in the paper). *)

val is_unit_size : t -> bool
(** All job sizes equal one. *)

(** {1 Combinators} *)

val concat_processors : t -> t -> t
(** Side-by-side union: the processors of both instances in one system
    (shares one resource). *)

val append_jobs : t -> t -> t
(** Sequential composition: processor [i] runs [a]'s row then [b]'s row.
    @raise Invalid_argument unless both have the same number of
    processors. *)

val map_jobs : (int -> int -> Job.t -> Job.t) -> t -> t
(** [map_jobs f t] rebuilds with [f proc index job]. *)

val scale_requirements : Crs_num.Rational.t -> t -> t
(** Multiply every requirement by a factor (clamped nowhere — the result
    must stay within [0,1] or {!Job.make} raises). *)

val sub_processors : t -> int list -> t
(** Restriction to the given processors (in the given order).
    @raise Invalid_argument on out-of-range or empty selections. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Serialization}

    Text format: one line per processor; each job is [r] (unit size) or
    [r*p]; rationals as [p/q] or decimals. ['#'] starts a comment line. *)

val to_string : t -> string

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read an instance from a file path. *)

val save : string -> t -> unit
