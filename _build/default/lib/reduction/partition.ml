type t = { elements : int array }

let make elements =
  if Array.length elements = 0 then invalid_arg "Partition.make: empty";
  Array.iter
    (fun a -> if a <= 0 then invalid_arg "Partition.make: elements must be positive")
    elements;
  { elements = Array.copy elements }

let total t = Array.fold_left ( + ) 0 t.elements

let half_opt t =
  let s = total t in
  if s mod 2 = 0 then Some (s / 2) else None

let solve t =
  match half_opt t with
  | None -> None
  | Some target ->
    let n = Array.length t.elements in
    (* from.(s) = index of the last element of some subset reaching sum s
       (sentinel n for the empty set), or -1 if unreachable. The downward
       scan per element gives the usual 0/1 subset-sum semantics: each
       element is used at most once, and witnesses reconstruct by walking
       back through strictly earlier indices. *)
    let from = Array.make (target + 1) (-1) in
    from.(0) <- n;
    for i = 0 to n - 1 do
      let a = t.elements.(i) in
      for s = target downto a do
        if from.(s) < 0 && from.(s - a) >= 0 then from.(s) <- i
      done
    done;
    if from.(target) < 0 then None
    else begin
      let rec walk s acc =
        if s = 0 then acc
        else begin
          let i = from.(s) in
          walk (s - t.elements.(i)) (i :: acc)
        end
      in
      Some (walk target [])
    end

let is_yes t = solve t <> None

let verify_certificate t indices =
  match half_opt t with
  | None -> false
  | Some target ->
    let sorted = List.sort_uniq compare indices in
    List.length sorted = List.length indices
    && List.for_all (fun i -> i >= 0 && i < Array.length t.elements) sorted
    && List.fold_left (fun acc i -> acc + t.elements.(i)) 0 sorted = target

let random_yes ~n ~max_value st =
  if n < 2 then invalid_arg "Partition.random_yes: n must be >= 2";
  if max_value < 1 then invalid_arg "Partition.random_yes: max_value >= 1";
  (* Draw k elements for the left side, then emit right-side elements
     that sum to the same total. *)
  let k = 1 + Random.State.int st (n - 1) in
  let left = Array.init k (fun _ -> 1 + Random.State.int st max_value) in
  let target = Array.fold_left ( + ) 0 left in
  let right_count = n - k in
  let right = Array.make right_count 1 in
  let remaining = ref (target - right_count) in
  (* Distribute the remaining mass randomly (entries stay >= 1). If the
     left total is too small to give each right element at least 1, bump
     a left element instead. *)
  if !remaining < 0 then begin
    left.(0) <- left.(0) - !remaining;
    remaining := 0
  end;
  for idx = 0 to right_count - 1 do
    let give =
      if idx = right_count - 1 then !remaining
      else Random.State.int st (!remaining + 1)
    in
    right.(idx) <- right.(idx) + give;
    remaining := !remaining - give
  done;
  make (Array.append left right)

let random_no ~n ~max_value st =
  if n < 1 then invalid_arg "Partition.random_no: n must be >= 1";
  if max_value < 2 then invalid_arg "Partition.random_no: max_value >= 2";
  let attempts = 10_000 in
  let rec try_once k =
    if k = 0 then failwith "Partition.random_no: could not find a NO instance"
    else begin
      let elements = Array.init n (fun _ -> 1 + Random.State.int st max_value) in
      let s = Array.fold_left ( + ) 0 elements in
      if s mod 2 <> 0 then try_once (k - 1)
      else begin
        let cand = make elements in
        if is_yes cand then try_once (k - 1) else cand
      end
    end
  in
  try_once attempts
