lib/reduction/partition.ml: Array List Random
