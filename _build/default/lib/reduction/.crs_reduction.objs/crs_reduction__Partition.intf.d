lib/reduction/partition.mli: Random
