lib/reduction/reduce.ml: Array Crs_core Crs_num Instance List Partition Schedule
