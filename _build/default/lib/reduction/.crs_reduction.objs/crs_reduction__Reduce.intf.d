lib/reduction/reduce.mli: Crs_core Crs_num Partition
