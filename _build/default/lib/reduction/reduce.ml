module Q = Crs_num.Rational
open Crs_core

let yes_makespan = 4
let no_makespan_lower = 5
let gap_ratio = Q.of_ints 5 4

let params ?epsilon (p : Partition.t) =
  let n = Array.length p.Partition.elements in
  let a_half =
    match Partition.half_opt p with
    | Some a -> a
    | None -> invalid_arg "Reduce: Partition total must be even (Σ a_i = 2A)"
  in
  if a_half < 2 then invalid_arg "Reduce: requires A >= 2 (paper's w.l.o.g.)";
  let eps = match epsilon with Some e -> e | None -> Q.of_ints 1 (n + 1) in
  if not (Q.(eps > zero) && Q.(eps < Q.of_ints 1 n)) then
    invalid_arg "Reduce: epsilon must lie in (0, 1/n)";
  Array.iter
    (fun a ->
      if a > a_half then
        invalid_arg
          "Reduce: some element exceeds A (instance is trivially NO; the \
           gadget requires a_i <= A so requirements stay in [0,1])")
    p.Partition.elements;
  let delta = Q.mul (Q.of_int n) eps in
  let denom = Q.add (Q.of_int a_half) delta in
  let a_tilde i = Q.div (Q.of_int p.Partition.elements.(i)) denom in
  let eps_tilde = Q.div eps denom in
  (n, a_tilde, eps_tilde)

let to_crsharing ?epsilon p =
  let n, a_tilde, eps_tilde = params ?epsilon p in
  Instance.of_requirements
    (Array.init n (fun i -> [| a_tilde i; eps_tilde; a_tilde i |]))

let decide ~exact p =
  match Partition.half_opt p with
  | None -> false
  | Some a_half ->
    if Array.exists (fun a -> a > a_half) p.Partition.elements then false
    else exact (to_crsharing p) = yes_makespan

let yes_witness_schedule p certificate =
  if not (Partition.verify_certificate p certificate) then
    invalid_arg "Reduce.yes_witness_schedule: invalid certificate";
  let n, a_tilde, eps_tilde = params p in
  let in_cert = Array.make n false in
  List.iter (fun i -> in_cert.(i) <- true) certificate;
  (* Figure 4a: certificate processors run their jobs at steps 1,2,3;
     the others at steps 2,3,4. Each step's total is at most
     (A + n·ε)/(A + δ) = 1. *)
  let row step =
    Array.init n (fun i ->
        if in_cert.(i) then
          match step with
          | 1 -> a_tilde i
          | 2 -> eps_tilde
          | 3 -> a_tilde i
          | _ -> Q.zero
        else
          match step with
          | 2 -> a_tilde i
          | 3 -> eps_tilde
          | 4 -> a_tilde i
          | _ -> Q.zero)
  in
  Schedule.of_rows [| row 1; row 2; row 3; row 4 |]
