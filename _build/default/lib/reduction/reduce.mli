(** The Theorem 4 reduction: Partition ≤p CRSharing with unit-size jobs.

    An instance [a_1..a_n] with [Σ a_i = 2A] becomes a CRSharing instance
    on [n] processors, three jobs each: requirements
    [ã_i, ε̃, ã_i] where [ã_i = a_i/(A+δ)], [ε̃ = ε/(A+δ)], [δ = n·ε],
    for any [ε ∈ (0, 1/n)]. The reduced instance has optimal makespan 4
    iff the Partition instance is YES (and at least 5 otherwise), giving
    NP-hardness and Corollary 1's 5/4 inapproximability. *)

val to_crsharing :
  ?epsilon:Crs_num.Rational.t -> Partition.t -> Crs_core.Instance.t
(** [epsilon] defaults to [1/(n+1)].
    @raise Invalid_argument if the Partition total is odd (the gadget
    needs [Σ a_i = 2A]), if [A < 2] (the proof's w.l.o.g.), or if
    [epsilon ∉ (0, 1/n)]. *)

val yes_makespan : int
(** 4. *)

val no_makespan_lower : int
(** 5. *)

val decide :
  exact:(Crs_core.Instance.t -> int) -> Partition.t -> bool
(** Decide Partition through the reduction using any exact CRSharing
    solver: YES iff the reduced instance's optimal makespan is 4. *)

val yes_witness_schedule : Partition.t -> int list -> Crs_core.Schedule.t
(** The Figure 4a schedule for a YES instance and a certificate (indices
    of one side of the partition): makespan exactly 4.
    @raise Invalid_argument if the certificate is wrong. *)

val gap_ratio : Crs_num.Rational.t
(** [5/4], the inapproximability factor of Corollary 1. *)
