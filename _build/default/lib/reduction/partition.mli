(** The Partition problem: given positive integers [a_1..a_n] with even
    total [2A], decide whether some subset sums to exactly [A].

    Substrate for the Theorem 4 NP-hardness reduction. The solver is the
    classic pseudo-polynomial subset-sum dynamic program — exponential
    only in the bit length, which is all we need to *execute* the
    reduction on concrete instances. *)

type t = private { elements : int array }

val make : int array -> t
(** @raise Invalid_argument if empty or any element is non-positive. *)

val total : t -> int

val half_opt : t -> int option
(** [Some A] when the total [2A] is even; [None] otherwise (such
    instances are trivially NO). *)

val solve : t -> int list option
(** Indices (ascending) of a subset summing to half the total, if one
    exists. O(n·A) time and space. *)

val is_yes : t -> bool

val verify_certificate : t -> int list -> bool
(** Do the given indices sum to half the total? *)

(** {1 Instance generators} *)

val random_yes : n:int -> max_value:int -> Random.State.t -> t
(** Builds a YES instance by drawing one random side and mirroring its
    total onto the other: both sides sum to the same [A]. [n ≥ 2]. *)

val random_no : n:int -> max_value:int -> Random.State.t -> t
(** Rejection-samples even-total instances until the DP says NO (an
    odd-total instance would be trivially NO but is useless to the
    reduction, which needs [Σ a_i = 2A]). May be slow for tiny
    [max_value] where almost everything partitions; raises [Failure]
    after 10000 attempts. *)
