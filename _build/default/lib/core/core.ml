let placeholder () = ()
