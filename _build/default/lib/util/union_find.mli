(** Imperative disjoint-set forest with union by rank and path
    compression. Used to extract the connected components of scheduling
    hypergraphs (paper, Section 3.2). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct sets. *)

val groups : t -> int list array
(** All sets as lists of members, indexed arbitrarily but deterministically
    (by smallest member, ascending); members sorted ascending. The result
    array has [count t] entries. *)
