(** Small array/list helpers shared across the library. *)

val array_sum_int : int array -> int
val array_max_int : int array -> int
(** @raise Invalid_argument on an empty array. *)

val array_argmax : compare:('a -> 'a -> int) -> 'a array -> int
(** Index of the maximal element (first on ties).
    @raise Invalid_argument on an empty array. *)

val array_argmin : compare:('a -> 'a -> int) -> 'a array -> int

val list_init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array
(** [list_init_matrix rows cols f] builds [f i j] for each cell. *)

val range : int -> int list
(** [range n] is [[0; 1; …; n-1]]. *)

val sum_by : ('a -> int) -> 'a list -> int

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val string_repeat : string -> int -> string

val split_on_string : sep:string -> string -> string list
(** Split on a multi-character separator (no regexes). *)

val float_mean : float list -> float
(** 0.0 on the empty list. *)

val float_max : float list -> float
(** neg_infinity on the empty list. *)
