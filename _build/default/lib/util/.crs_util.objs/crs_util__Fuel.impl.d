lib/util/fuel.ml: Domain Fun
