lib/util/misc.ml: Array Buffer List String
