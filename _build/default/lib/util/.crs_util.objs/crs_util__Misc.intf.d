lib/util/misc.mli:
