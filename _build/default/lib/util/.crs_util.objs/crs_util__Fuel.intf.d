lib/util/fuel.mli:
