lib/util/pqueue.mli:
