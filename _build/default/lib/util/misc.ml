let array_sum_int a = Array.fold_left ( + ) 0 a

let array_max_int a =
  if Array.length a = 0 then invalid_arg "Misc.array_max_int: empty array";
  Array.fold_left max a.(0) a

let array_argmax ~compare a =
  if Array.length a = 0 then invalid_arg "Misc.array_argmax: empty array";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if compare a.(i) a.(!best) > 0 then best := i
  done;
  !best

let array_argmin ~compare a =
  array_argmax ~compare:(fun x y -> compare y x) a

let list_init_matrix rows cols f =
  Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let range n = List.init n (fun i -> i)

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n l =
  match l with
  | [] -> []
  | _ :: rest -> if n <= 0 then l else drop (n - 1) rest

let string_repeat s n =
  let buf = Buffer.create (String.length s * max n 0) in
  for _ = 1 to n do
    Buffer.add_string buf s
  done;
  Buffer.contents buf

let split_on_string ~sep s =
  if sep = "" then invalid_arg "Misc.split_on_string: empty separator";
  let sep_len = String.length sep and len = String.length s in
  let rec go start acc =
    if start > len then List.rev acc
    else begin
      let rec find i =
        if i + sep_len > len then None
        else if String.sub s i sep_len = sep then Some i
        else find (i + 1)
      in
      match find start with
      | None -> List.rev (String.sub s start (len - start) :: acc)
      | Some i -> go (i + sep_len) (String.sub s start (i - start) :: acc)
    end
  in
  go 0 []

let float_mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let float_max l = List.fold_left max neg_infinity l
