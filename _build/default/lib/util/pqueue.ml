module Make (Ord : sig
  type t

  val compare : t -> t -> int
end) =
struct
  type elt = Ord.t

  type t =
    | Empty
    | Node of elt * t list

  let empty = Empty

  let is_empty = function
    | Empty -> true
    | Node _ -> false

  let singleton x = Node (x, [])

  let merge a b =
    match (a, b) with
    | Empty, h | h, Empty -> h
    | Node (x, xs), Node (y, ys) ->
      if Ord.compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

  let insert x h = merge (singleton x) h

  let find_min = function
    | Empty -> None
    | Node (x, _) -> Some x

  (* Two-pass pairing merge keeps the amortized O(log n) bound. *)
  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

  let pop = function
    | Empty -> None
    | Node (x, hs) -> Some (x, merge_pairs hs)

  let of_list l = List.fold_left (fun h x -> insert x h) empty l

  let to_sorted_list h =
    let rec go acc h =
      match pop h with
      | None -> List.rev acc
      | Some (x, h') -> go (x :: acc) h'
    in
    go [] h

  let rec size = function
    | Empty -> 0
    | Node (_, hs) -> 1 + List.fold_left (fun acc h -> acc + size h) 0 hs
end
