(** Purely functional priority queue (pairing heap), min-first.

    Used by the priority-queue variant of the two-processor optimal
    algorithm (paper, end of Section 6) and by the discrete-event engine
    of the many-core simulator. *)

module Make (Ord : sig
  type t

  val compare : t -> t -> int
end) : sig
  type elt = Ord.t
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : elt -> t
  val insert : elt -> t -> t
  val merge : t -> t -> t

  val find_min : t -> elt option

  val pop : t -> (elt * t) option
  (** Remove and return the minimum element. *)

  val of_list : elt list -> t

  val to_sorted_list : t -> elt list
  (** Ascending order; O(n log n). *)

  val size : t -> int
  (** O(n). *)
end
