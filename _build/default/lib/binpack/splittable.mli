(** Packing splittable items with cardinality constraints (paper,
    Section 2; Chung, Graham, Mao, Varghese 2006; Epstein & van Stee
    2011/2012).

    Bins have capacity 1 and may hold at most [k] item {e parts}; items
    have positive (possibly > 1) sizes and may be split arbitrarily. The
    objective is to minimize the number of bins.

    The paper presents this problem as the closest relative of
    CRSharing: "understanding the number of processors as cardinality
    constraints and the bins with a limited capacity as time steps" —
    but with free job-to-processor assignment and free preemption. That
    makes it a {e relaxation}: see {!crsharing_relaxation_bound}. *)

type t = private { k : int; sizes : Crs_num.Rational.t array }

val make : k:int -> Crs_num.Rational.t array -> t
(** @raise Invalid_argument if [k < 1], no items, or a non-positive
    size. *)

(** A packing assigns each bin a list of (item index, part size). *)
type packing = { bins : (int * Crs_num.Rational.t) list list }

val num_bins : packing -> int

val check : t -> packing -> (unit, string) result
(** Validates capacity, cardinality, and that parts of each item sum to
    its size. *)

(** {1 Algorithms} *)

val next_fit : t -> packing
(** The NextFit algorithm analyzed by Chung et al. and Epstein & van
    Stee: one open bin; each item is poured into it and split to a fresh
    bin whenever capacity runs out or the part budget [k] is exhausted.
    Absolute approximation factor exactly [2 − 1/k]. *)

val next_fit_decreasing : t -> packing
(** Ablation: NextFit after sorting items by decreasing size. *)

(** {1 Bounds} *)

val material_bound : t -> int
(** [⌈Σ sizes⌉]: capacity alone. *)

val cardinality_bound : t -> int
(** [⌈n / k⌉]: every item needs at least one part. *)

val lower_bound : t -> int
(** Strongest of: the two combinatorial bounds above and the certified
    bound [⌈NextFit / (2 − 1/k)⌉] derived from the Epstein–van Stee
    absolute factor. *)

val next_fit_guarantee : k:int -> Crs_num.Rational.t
(** [2 − 1/k]. *)

(** {1 Adversarial family} *)

val interleave_family : n:int -> t
(** [k = 2]: [n] items of size 3/5 followed by [n] of size 1/5. The
    optimum pairs one of each per bin (exactly [n] bins: the part count
    forces [≥ n] and the pairing achieves it with all sums 4/5). NextFit,
    processing the sizes in the given order, chains remainders through
    cardinality-closed bins and needs ≈ 7n/6 — a concrete, certified gap
    below the 2 − 1/k worst-case factor (whose exact tight family is more
    delicate; see Epstein & van Stee). *)

val interleave_family_opt : n:int -> int
(** [n], with the pairing witness packing. *)

(** {1 Bridge to CRSharing} *)

val of_crsharing : Crs_core.Instance.t -> t
(** Items = the works [r_ij·p_ij] of all (positive-work) jobs,
    cardinality [k = m]: dropping the job-to-processor binding, the
    order, and the one-job-per-step rule yields exactly this problem, so
    any CRSharing schedule with makespan [T] induces a packing into [T]
    bins. @raise Invalid_argument when every job has zero work. *)

val crsharing_relaxation_bound : Crs_core.Instance.t -> int
(** [lower_bound (of_crsharing instance)] — a certified lower bound on
    the CRSharing optimum through the relaxation. *)
