lib/binpack/splittable.ml: Array Crs_core Crs_num Crs_util List Printf
