lib/binpack/splittable.mli: Crs_core Crs_num
