module Q = Crs_num.Rational

type t = { k : int; sizes : Q.t array }

let make ~k sizes =
  if k < 1 then invalid_arg "Splittable.make: k must be >= 1";
  if Array.length sizes = 0 then invalid_arg "Splittable.make: no items";
  Array.iter
    (fun s -> if Q.(s <= zero) then invalid_arg "Splittable.make: sizes must be positive")
    sizes;
  { k; sizes = Array.copy sizes }

type packing = { bins : (int * Q.t) list list }

let num_bins p = List.length p.bins

let check t p =
  let exception Bad of string in
  let collected = Array.make (Array.length t.sizes) Q.zero in
  try
    List.iteri
      (fun b bin ->
        if List.length bin > t.k then
          raise (Bad (Printf.sprintf "bin %d holds %d > k parts" b (List.length bin)));
        let fill = Q.sum (List.map snd bin) in
        if Q.(fill > one) then
          raise (Bad (Printf.sprintf "bin %d overfull: %s" b (Q.to_string fill)));
        List.iter
          (fun (i, part) ->
            if i < 0 || i >= Array.length t.sizes then
              raise (Bad (Printf.sprintf "bin %d references item %d" b i));
            if Q.(part <= zero) then
              raise (Bad (Printf.sprintf "bin %d has a non-positive part" b));
            collected.(i) <- Q.add collected.(i) part)
          bin)
      p.bins;
    Array.iteri
      (fun i total ->
        if not (Q.equal total t.sizes.(i)) then
          raise
            (Bad
               (Printf.sprintf "item %d packed %s of %s" i (Q.to_string total)
                  (Q.to_string t.sizes.(i)))))
      collected;
    Ok ()
  with Bad msg -> Error msg

let next_fit_order t order =
  (* One open bin: (parts so far, used capacity). Splitting an item never
     leaves capacity unused in a closed bin unless the part budget closed
     it early. *)
  let bins = ref [] in
  let cur = ref [] in
  let cur_fill = ref Q.zero in
  let cur_parts = ref 0 in
  let close () =
    if !cur <> [] then begin
      bins := List.rev !cur :: !bins;
      cur := [];
      cur_fill := Q.zero;
      cur_parts := 0
    end
  in
  List.iter
    (fun i ->
      let remaining = ref t.sizes.(i) in
      while Q.(!remaining > zero) do
        if !cur_parts >= t.k || Q.(Q.sub one !cur_fill <= zero) then close ();
        let room = Q.sub Q.one !cur_fill in
        let part = Q.min room !remaining in
        cur := (i, part) :: !cur;
        cur_fill := Q.add !cur_fill part;
        incr cur_parts;
        remaining := Q.sub !remaining part
      done)
    order;
  close ();
  { bins = List.rev !bins }

let next_fit t = next_fit_order t (Crs_util.Misc.range (Array.length t.sizes))

let next_fit_decreasing t =
  let order =
    List.sort
      (fun a b -> Q.compare t.sizes.(b) t.sizes.(a))
      (Crs_util.Misc.range (Array.length t.sizes))
  in
  next_fit_order t order

let material_bound t = Q.ceil_int (Q.sum_array t.sizes)

let cardinality_bound t =
  let n = Array.length t.sizes in
  (n + t.k - 1) / t.k

let next_fit_guarantee ~k = Q.sub Q.two (Q.of_ints 1 k)

let lower_bound t =
  let nf = num_bins (next_fit t) in
  let certified =
    (* OPT >= NF / (2 - 1/k), and OPT is integral. *)
    Q.ceil_int (Q.div (Q.of_int nf) (next_fit_guarantee ~k:t.k))
  in
  max (max (material_bound t) (cardinality_bound t)) certified

let interleave_family ~n =
  if n < 1 then invalid_arg "Splittable.interleave_family: n >= 1";
  let big = Q.of_ints 3 5 and small = Q.of_ints 1 5 in
  make ~k:2 (Array.init (2 * n) (fun i -> if i < n then big else small))

let interleave_family_opt ~n = n

let of_crsharing instance =
  let works = ref [] in
  for i = Crs_core.Instance.m instance - 1 downto 0 do
    Array.iter
      (fun job ->
        let w = Crs_core.Job.work job in
        if Q.(w > zero) then works := w :: !works)
      (Crs_core.Instance.jobs_on instance i)
  done;
  if !works = [] then
    invalid_arg "Splittable.of_crsharing: instance has no positive-work jobs"
  else make ~k:(Crs_core.Instance.m instance) (Array.of_list !works)

let crsharing_relaxation_bound instance =
  (* Degenerate all-zero-work instances still need one step per job on
     the longest queue; the combinatorial job-count bound covers that, so
     here zero work maps to the trivial bound 0. *)
  if Q.is_zero (Crs_core.Instance.total_work instance) then 0
  else lower_bound (of_crsharing instance)
