(** Campaign execution: expand a {!Spec.t} into items and evaluate them,
    sequentially or on a {!Pool} of domains.

    Determinism contract: item results (minus timing) depend only on the
    spec — instances are regenerated from their seed inside the item,
    timeouts are fuel-based (work-metered, not wall-clock), and items
    share no mutable state — so [run ~domains:1] and [run ~domains:k]
    produce identical {!Report.payload}s. *)

val algorithms : (string * (Crs_core.Instance.t -> Crs_core.Schedule.t)) list
(** Name → algorithm registry shared with the crsched CLI. *)

val algorithm_names : string list

val run_item : Spec.t -> Spec.item -> Report.record
(** Evaluate one item: regenerate the instance from its seed, run the
    algorithm and then the baseline (each under the spec's fuel budget),
    capture [Out_of_fuel] as [Timeout] and any other exception as
    [Error]. Never raises. *)

val run : ?domains:int -> Spec.t -> Report.record array
(** Run the whole campaign; records are in item order regardless of the
    pool size. [domains <= 1] (default) runs sequentially in the calling
    domain; larger values use {!Pool.map}.
    @raise Invalid_argument when {!Spec.validate} rejects the spec. *)

val compare_records :
  ?names:string list ->
  ?baseline:Spec.baseline ->
  ?fuel:int ->
  family:string ->
  Crs_core.Instance.t ->
  Report.record list
(** Evaluate the named algorithms (default: all) on one concrete
    instance, yielding campaign-schema records — the backend of
    [crsched compare --json]. [family] labels the records (e.g.
    ["file"]). *)
