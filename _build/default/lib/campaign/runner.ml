open Crs_core

(* The algorithm registry shared by the campaign runner and the crsched
   CLI (both `campaign` and `compare` dispatch through it, so the two
   paths agree on names and semantics). *)
let algorithms : (string * (Instance.t -> Schedule.t)) list =
  [
    ("greedy-balance", Crs_algorithms.Greedy_balance.schedule);
    ("round-robin", Crs_algorithms.Round_robin.schedule);
    ("uniform", Policy.run Crs_algorithms.Heuristics.uniform);
    ("proportional", Policy.run Crs_algorithms.Heuristics.proportional);
    ("staircase", Policy.run Crs_algorithms.Heuristics.staircase);
    ( "fewest-remaining-first",
      Policy.run Crs_algorithms.Heuristics.fewest_remaining_first );
    ( "largest-requirement-first",
      Policy.run Crs_algorithms.Heuristics.largest_requirement_first );
    ( "smallest-requirement-first",
      Policy.run Crs_algorithms.Heuristics.smallest_requirement_first );
    ("optimal", Crs_algorithms.Solver.optimal_schedule);
  ]

let algorithm_names = List.map fst algorithms

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type 'a metered = Value of 'a | Ran_out | Raised of string

let metered fuel f =
  try Value (Crs_util.Fuel.with_fuel fuel f) with
  | Crs_util.Fuel.Out_of_fuel -> Ran_out
  | e -> Raised (Printexc.to_string e)

(* Evaluate one algorithm on one instance. Each phase (algorithm, then
   baseline) gets its own fuel budget; running out in either records a
   Timeout instead of hanging the campaign, and any other exception is
   captured so one poisoned instance never kills the run. *)
let evaluate ~fuel ~baseline ~algorithm instance =
  let makespan_result =
    match List.assoc_opt algorithm algorithms with
    | None -> Raised (Printf.sprintf "unknown algorithm %s" algorithm)
    | Some algo ->
      metered fuel (fun () ->
          Execution.makespan (Execution.run_exn instance (algo instance)))
  in
  let baseline_result =
    match makespan_result with
    | Ran_out | Raised _ -> Value 0 (* unused *)
    | Value _ ->
      metered fuel (fun () ->
          match baseline with
          | Spec.Exact -> Crs_algorithms.Solver.optimal_makespan instance
          | Spec.Lower_bound -> Crs_algorithms.Solver.certified_lower_bound instance)
  in
  let outcome, makespan, optimum =
    match (makespan_result, baseline_result) with
    | Ran_out, _ -> (Report.Timeout, None, None)
    | Raised msg, _ -> (Report.Error msg, None, None)
    | Value ms, Value opt -> (Report.Done, Some ms, Some opt)
    | Value ms, Ran_out -> (Report.Timeout, Some ms, None)
    | Value ms, Raised msg -> (Report.Error msg, Some ms, None)
  in
  let ratio =
    match (makespan, optimum) with
    | Some ms, Some opt when opt > 0 -> Some (float_of_int ms /. float_of_int opt)
    | _ -> None
  in
  (outcome, makespan, optimum, ratio)

let run_item spec (item : Spec.item) =
  let t0 = now_ns () in
  let instance = Spec.instance spec ~seed:item.seed in
  let digest = Digest.to_hex (Digest.string (Instance.to_string instance)) in
  let outcome, makespan, optimum, ratio =
    evaluate ~fuel:spec.Spec.fuel ~baseline:spec.Spec.baseline
      ~algorithm:item.algorithm instance
  in
  {
    Report.id = item.id;
    family = Spec.family_to_string spec.Spec.family;
    m = spec.Spec.m;
    n = spec.Spec.n;
    granularity = Some spec.Spec.granularity;
    seed = Some item.seed;
    digest;
    algorithm = item.algorithm;
    outcome;
    makespan;
    baseline = Spec.baseline_to_string spec.Spec.baseline;
    optimum;
    ratio;
    wall_ns = now_ns () - t0;
  }

let run ?(domains = 1) spec =
  match Spec.validate spec with
  | Stdlib.Error msg -> invalid_arg ("Runner.run: " ^ msg)
  | Ok spec ->
    let items = Spec.expand spec in
    if domains <= 1 then Array.map (run_item spec) items
    else Pool.map ~domains (run_item spec) items

let compare_records ?(names = algorithm_names) ?(baseline = Spec.Exact) ?fuel
    ~family instance =
  let digest = Digest.to_hex (Digest.string (Instance.to_string instance)) in
  List.mapi
    (fun id name ->
      let t0 = now_ns () in
      let outcome, makespan, optimum, ratio =
        evaluate ~fuel ~baseline ~algorithm:name instance
      in
      {
        Report.id;
        family;
        m = Instance.m instance;
        n = Instance.n_max instance;
        granularity = None;
        seed = None;
        digest;
        algorithm = name;
        outcome;
        makespan;
        baseline = Spec.baseline_to_string baseline;
        optimum;
        ratio;
        wall_ns = now_ns () - t0;
      })
    names
