lib/campaign/runner.mli: Crs_core Report Spec
