lib/campaign/spec.mli: Crs_core
