lib/campaign/pool.mli:
