lib/campaign/spec.ml: Array Crs_generators Printf Random String
