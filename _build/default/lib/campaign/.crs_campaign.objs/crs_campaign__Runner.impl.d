lib/campaign/runner.ml: Array Crs_algorithms Crs_core Crs_util Digest Execution Instance List Policy Pool Printexc Printf Report Schedule Spec Stdlib Unix
