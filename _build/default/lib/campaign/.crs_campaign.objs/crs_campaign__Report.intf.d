lib/campaign/report.mli:
