lib/campaign/pool.ml: Array Condition Domain Fun Mutex Queue
