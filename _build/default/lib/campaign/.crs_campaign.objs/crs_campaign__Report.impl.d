lib/campaign/report.ml: Array Buffer Char Digest Filename List Option Out_channel Printf String Sys
