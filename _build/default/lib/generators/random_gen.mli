(** Random CRSharing instance generators.

    All generators are deterministic given the [Random.State.t] and
    produce exact rational requirements (denominators bounded by
    [granularity]) so exact solvers stay fast. *)

type spec = {
  m : int;  (** processors *)
  jobs_min : int;
  jobs_max : int;  (** per-processor job count range (inclusive) *)
  granularity : int;  (** requirements are multiples of 1/granularity *)
  allow_zero : bool;
      (** permit zero requirements; default generators exclude them
          because zero-requirement jobs complete without resource, making
          the literal Definition 5 (balanced) unattainable (see
          EXPERIMENTS.md, edge case Z1) *)
}

val default_spec : spec
(** 3 processors, 1-5 jobs, granularity 20, no zeros. *)

val instance : ?spec:spec -> Random.State.t -> Crs_core.Instance.t
(** Uniform requirements in (0,1] (or [0,1] with [allow_zero]). *)

val heavy_tailed : ?spec:spec -> Random.State.t -> Crs_core.Instance.t
(** Mix of many light jobs and a few near-saturating ones — the
    I/O-intensive many-core picture of the paper's introduction. *)

val balanced_load : ?spec:spec -> Random.State.t -> Crs_core.Instance.t
(** Every step's "column" sums close to 1: instances where near-perfect
    packings exist and greedy choices matter. *)

val equal_rows : m:int -> n:int -> granularity:int -> Random.State.t -> Crs_core.Instance.t
(** All processors have exactly [n] jobs (random requirements); the shape
    assumed in Lemma 6 intuition and the Theorem 8 family. *)

val unit_sized : Crs_core.Instance.t -> bool
(** Alias of {!Crs_core.Instance.is_unit_size} for readability. *)

val sized_jobs :
  m:int -> n:int -> granularity:int -> max_size:int -> Random.State.t -> Crs_core.Instance.t
(** Arbitrary-size jobs (sizes uniform in [1, max_size], possibly
    fractional): exercises the general model of Section 3.1. *)
