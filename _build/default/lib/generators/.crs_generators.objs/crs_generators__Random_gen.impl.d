lib/generators/random_gen.ml: Array Crs_core Crs_num Instance Job List Random
