lib/generators/random_gen.mli: Crs_core Random
