lib/generators/adversarial.ml: Array Crs_core Crs_num Instance Printf Schedule
