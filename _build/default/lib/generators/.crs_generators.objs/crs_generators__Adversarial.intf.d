lib/generators/adversarial.mli: Crs_core Crs_num
