(** The paper's explicit instance families and worked examples.

    These are the paper's "evaluation artifacts": each figure's instance
    is reproduced exactly, and each lower-bound family is provided as a
    parameterized generator together with the paper's predictions, so the
    benches can check measured ratios against the claims.

    Two transcription notes (full discussion in EXPERIMENTS.md):
    - E1 (Algorithm 1, lines 20-21) is handled in {!Crs_algorithms.Opt_two}.
    - E2: the printed formula for a block's second-column head job in the
      proof of Theorem 8 reads [1 − Σ_i (1 − r_ij) + ε], which contradicts
      the labels of Figure 5 (e.g. it yields 0.95 where the figure says
      0.07); the figure's values satisfy [Σ_i (1 − r_ij) + ε], which also
      makes the diagonals sum to exactly 1 as the proof requires. We use
      the latter. *)

(** {1 Figure 1: hypergraph illustration} *)

val figure1 : Crs_core.Instance.t
(** Three processors with requirements (in percent)
    [20 10 10 10 / 50 55 90 55 10 / 50 40 95]. *)

(** {1 Figure 2: nested vs unnested} *)

val figure2 : Crs_core.Instance.t
(** [50 50 50 50 / 100 / 100]. *)

val figure2_nested_schedule : Crs_core.Schedule.t
(** The schedule of Figure 2b (non-wasting, progressive, nested). *)

val figure2_unnested_schedule : Crs_core.Schedule.t
(** The schedule of Figure 2c (non-wasting, progressive, not nested). *)

(** {1 Figure 3 / Theorem 3: RoundRobin worst-case family} *)

val round_robin_family : n:int -> Crs_core.Instance.t
(** Two processors, [n] jobs each, [ε = 1/n]: [r_1j = j·ε] and
    [r_2j = (1 + ε) − r_1j]. *)

val round_robin_family_opt_schedule : n:int -> Crs_core.Schedule.t
(** The staircase optimum of Figure 3a with makespan [n + 1]: step [t]
    completes job [t] of processor 1 (for [t ≤ n]) and job [t − 1] of
    processor 2 (for [t ≥ 2]), pre-investing the slack of step [t] into
    processor 2's job [t]. *)

val round_robin_family_predicted : n:int -> int * int
(** [(2n, n+1)]: RoundRobin and optimal makespans proved in Theorem 3. *)

(** {1 Figure 5 / Theorem 8: GreedyBalance worst-case family} *)

val greedy_balance_family :
  ?epsilon:Crs_num.Rational.t -> m:int -> blocks:int -> unit -> Crs_core.Instance.t
(** The block construction from the proof of Theorem 8 (with erratum E2
    applied): [m] processors, [blocks] blocks of [m×m] jobs. [epsilon]
    defaults to [1/(2·m²·blocks)], small enough that every requirement
    stays in [(0,1)] for the requested number of blocks (checked; the
    constructor raises otherwise).
    @raise Invalid_argument if [m < 2], [blocks < 1] or [epsilon] leads to
    requirements outside [0,1]. *)

val greedy_balance_family_predicted : m:int -> blocks:int -> int
(** GreedyBalance's makespan on the family: [(2m−1)] steps per block as
    proved in Theorem 8 (checked in tests/benches against the measured
    value). *)

val figure5 : Crs_core.Instance.t
(** The family at [m = 3], [ε = 1/100], 3 blocks — the instance whose
    first nine columns Figure 5 depicts. *)

(** {1 Figure 4} is the Partition gadget; see [Crs_reduction.Reduce]. *)
