module Q = Crs_num.Rational
open Crs_core

type spec = {
  m : int;
  jobs_min : int;
  jobs_max : int;
  granularity : int;
  allow_zero : bool;
}

let default_spec = { m = 3; jobs_min = 1; jobs_max = 5; granularity = 20; allow_zero = false }

let check spec =
  if spec.m < 1 then invalid_arg "Random_gen: m must be at least 1";
  if spec.jobs_min < 0 || spec.jobs_max < spec.jobs_min then
    invalid_arg "Random_gen: bad job count range";
  if spec.granularity < 1 then invalid_arg "Random_gen: granularity must be >= 1"

let req_of spec st =
  let lo = if spec.allow_zero then 0 else 1 in
  Q.of_ints (lo + Random.State.int st (spec.granularity + 1 - lo)) spec.granularity

let job_count spec st = spec.jobs_min + Random.State.int st (spec.jobs_max - spec.jobs_min + 1)

let instance ?(spec = default_spec) st =
  check spec;
  Instance.of_requirements
    (Array.init spec.m (fun _ -> Array.init (job_count spec st) (fun _ -> req_of spec st)))

let heavy_tailed ?(spec = default_spec) st =
  check spec;
  let g = spec.granularity in
  let heavy () = Q.of_ints (max 1 (g - Random.State.int st (max 1 (g / 5)))) g in
  let light () = Q.of_ints (1 + Random.State.int st (max 1 (g / 5))) g in
  Instance.of_requirements
    (Array.init spec.m (fun _ ->
         Array.init (job_count spec st) (fun _ ->
             if Random.State.int st 4 = 0 then heavy () else light ())))

let balanced_load ?(spec = default_spec) st =
  check spec;
  if spec.granularity < spec.m then
    invalid_arg "Random_gen.balanced_load: granularity must be >= m";
  (* Build column by column: split 1 into m random positive parts by
     choosing m-1 cut points on the granularity grid, then deal column j
     to the processors that still need a j-th job. *)
  let n = job_count spec st in
  let g = spec.granularity in
  let column () =
    let cuts =
      List.init (spec.m - 1) (fun _ -> 1 + Random.State.int st (g - 1))
      |> List.sort_uniq compare
    in
    let rec parts last = function
      | [] -> [ g - last ]
      | c :: rest -> (c - last) :: parts c rest
    in
    let raw = parts 0 cuts in
    (* sort_uniq may have merged cut points; pad with 1/g jobs borrowed
       from the largest part to restore m entries. *)
    let raw = ref raw in
    while List.length !raw < spec.m do
      let largest = List.fold_left max 0 !raw in
      let replaced = ref false in
      raw :=
        List.concat_map
          (fun p ->
            if p = largest && (not !replaced) && p > 1 then begin
              replaced := true;
              [ p - 1; 1 ]
            end
            else [ p ])
          !raw
    done;
    List.map (fun p -> Q.of_ints (max p 1) g) !raw
  in
  let cols = Array.init n (fun _ -> Array.of_list (column ())) in
  Instance.of_requirements
    (Array.init spec.m (fun i -> Array.init n (fun j -> cols.(j).(i))))

let equal_rows ~m ~n ~granularity st =
  let spec = { default_spec with m; jobs_min = n; jobs_max = n; granularity } in
  instance ~spec st

let unit_sized = Instance.is_unit_size

let sized_jobs ~m ~n ~granularity ~max_size st =
  if max_size < 1 then invalid_arg "Random_gen.sized_jobs: max_size must be >= 1";
  let spec = { default_spec with m; jobs_min = n; jobs_max = n; granularity } in
  check spec;
  let size () =
    Q.of_ints
      (granularity + Random.State.int st (granularity * max_size))
      granularity
  in
  Instance.create
    (Array.init m (fun _ ->
         Array.init n (fun _ ->
             Job.make ~requirement:(req_of spec st) ~size:(size ()))))
