module Q = Crs_num.Rational
open Crs_core

let figure1 =
  Instance.of_percent [ [ 20; 10; 10; 10 ]; [ 50; 55; 90; 55; 10 ]; [ 50; 40; 95 ] ]

let figure2 = Instance.of_percent [ [ 50; 50; 50; 50 ]; [ 100 ]; [ 100 ] ]

let half = Q.half

let figure2_nested_schedule =
  (* t1: p0 job1 + half of p1; t2: p0 job2 + rest of p1;
     t3: p0 job3 + half of p2; t4: p0 job4 + rest of p2. *)
  Schedule.of_rows
    [|
      [| half; half; Q.zero |];
      [| half; half; Q.zero |];
      [| half; Q.zero; half |];
      [| half; Q.zero; half |];
    |]

let figure2_unnested_schedule =
  (* p1's job is split across t1 and t4; p2's occupies t2-t3 inside it. *)
  Schedule.of_rows
    [|
      [| half; half; Q.zero |];
      [| half; Q.zero; half |];
      [| half; Q.zero; half |];
      [| half; half; Q.zero |];
    |]

let round_robin_family ~n =
  if n < 1 then invalid_arg "Adversarial.round_robin_family: n must be >= 1";
  let eps = Q.of_ints 1 n in
  let r1 j = Q.mul (Q.of_int j) eps in
  let r2 j = Q.sub (Q.add Q.one eps) (r1 j) in
  Instance.of_requirements
    [|
      Array.init n (fun j -> r1 (j + 1));
      Array.init n (fun j -> r2 (j + 1));
    |]

let round_robin_family_opt_schedule ~n =
  (* Step 1: processor 2's job 1 alone (requirement 1). Steps t = 2..n:
     processor 1's job t-1 paired with processor 2's job t — their
     requirements sum to exactly 1. Step n+1: processor 1's job n
     (requirement 1) alone. Zero waste, makespan n + 1. *)
  let eps = Q.of_ints 1 n in
  Schedule.of_rows
    (Array.init (n + 1) (fun t0 ->
         let t = t0 + 1 in
         if t = 1 then [| Q.zero; Q.one |]
         else if t <= n then begin
           let a = Q.mul (Q.of_int (t - 1)) eps in
           [| a; Q.sub Q.one a |]
         end
         else [| Q.one; Q.zero |]))

let round_robin_family_predicted ~n = (2 * n, n + 1)

let default_epsilon ~m ~blocks = Q.of_ints 1 (2 * m * m * blocks)

let greedy_balance_family ?epsilon ~m ~blocks () =
  if m < 2 then invalid_arg "Adversarial.greedy_balance_family: m must be >= 2";
  if blocks < 1 then invalid_arg "Adversarial.greedy_balance_family: blocks >= 1";
  let eps = match epsilon with Some e -> e | None -> default_epsilon ~m ~blocks in
  if Q.(eps <= zero) then invalid_arg "Adversarial.greedy_balance_family: epsilon <= 0";
  let n = m * blocks in
  let r = Array.make_matrix m n Q.zero in
  for l = 0 to blocks - 1 do
    let jc = l * m in
    (* First column. Block 1: staircase r_i = 1 - (i+1)·ε. Later blocks:
       heavy rows 0..m-2, bottom row completing the diagonal ending here
       to exactly 1 (this reads the PREVIOUS block's columns, so blocks
       must be built in order). *)
    if l = 0 then
      for i = 0 to m - 1 do
        r.(i).(0) <- Q.sub Q.one (Q.mul (Q.of_int (i + 1)) eps)
      done
    else begin
      for i = 0 to m - 2 do
        r.(i).(jc) <- Q.sub Q.one (Q.mul (Q.of_int (m - 1)) eps)
      done;
      let diag_sum = ref Q.zero in
      for i' = 1 to m - 1 do
        diag_sum := Q.add !diag_sum r.(m - 1 - i').(jc - i')
      done;
      r.(m - 1).(jc) <- Q.sub Q.one !diag_sum
    end;
    (* Second column: head job collects the first column's slack plus ε
       (erratum E2: the figure's values satisfy Σ(1-r) + ε); the rest of
       the block is ε-filler. *)
    let slack = ref Q.zero in
    for i = 0 to m - 1 do
      slack := Q.add !slack (Q.sub Q.one r.(i).(jc))
    done;
    r.(0).(jc + 1) <- Q.add !slack eps;
    for i = 1 to m - 1 do
      r.(i).(jc + 1) <- eps
    done;
    for j = jc + 2 to jc + m - 1 do
      for i = 0 to m - 1 do
        r.(i).(j) <- eps
      done
    done
  done;
  (* Guard every entry; a too-large epsilon would push the bottom-row or
     head-job requirements outside (0,1). *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if not (Q.(v > zero) && Q.(v < one)) then
            invalid_arg
              (Printf.sprintf
                 "Adversarial.greedy_balance_family: requirement (%d,%d)=%s \
                  outside (0,1); epsilon too large for %d blocks"
                 i j (Q.to_string v) blocks))
        row)
    r;
  Instance.of_requirements r

let greedy_balance_family_predicted ~m ~blocks = (2 * m - 1) * blocks

let figure5 = greedy_balance_family ~epsilon:(Q.of_ints 1 100) ~m:3 ~blocks:3 ()
