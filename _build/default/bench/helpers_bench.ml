(* Shared helpers for the bench harness. *)

module Q = Crs_num.Rational

(* Random 2-processor unit-size instance. With [~n] both rows have
   exactly n jobs; otherwise row lengths are 1 + seed_jobs + random. *)
let random_two_proc ?n st extra =
  let row () =
    let len = match n with Some n -> n | None -> 1 + extra + Random.State.int st 3 in
    Array.init len (fun _ -> Q.of_ints (1 + Random.State.int st 10) 10)
  in
  Crs_core.Instance.of_requirements [| row (); row () |]
