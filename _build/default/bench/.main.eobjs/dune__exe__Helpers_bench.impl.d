bench/helpers_bench.ml: Array Crs_core Crs_num Random
