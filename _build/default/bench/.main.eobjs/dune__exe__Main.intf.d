bench/main.mli:
