(* Regenerate the pinned regression corpus under data/corpus/.

   Run from the repo root:  dune exec tools/corpus_init/corpus_init.exe

   Every entry is replayed before it is written, so a corpus produced by
   this tool is green by construction. The seed-stability entries pin
   the exact instance text a generator family produces for a known seed;
   if Random.State or a generator changes, `crsched replay data/corpus`
   (and tier-1) fail loudly and this tool rewrites the pins once the
   change is accepted as intentional. *)

module Fuzz = Crs_fuzz
module Spec = Crs_campaign.Spec
module A = Crs_generators.Adversarial

let dir = ref "data/corpus"

let seeded ~family ~seed ~m ~n ~granularity ~oracle ~name ~note =
  let fam =
    match Spec.family_of_string family with
    | Some f -> f
    | None -> failwith ("bad family " ^ family)
  in
  let spec = { Spec.default with Spec.family = fam; m; n; granularity } in
  Fuzz.Corpus.make ~name ~oracle ~note ~family ~seed ~gen_m:m ~gen_n:n
    ~gen_granularity:granularity
    (Spec.instance spec ~seed)

let entries () =
  [
    (* Seed-stability goldens: three seeds across the three generator
       families; replay regenerates from the seed and compares text. *)
    seeded ~family:"uniform" ~seed:1 ~m:3 ~n:3 ~granularity:10
      ~oracle:"exact-agreement" ~name:"seed-uniform-1"
      ~note:"seed-stability golden: uniform family, seed 1";
    seeded ~family:"heavy-tailed" ~seed:42 ~m:3 ~n:3 ~granularity:10
      ~oracle:"witness-certified" ~name:"seed-heavy-tailed-42"
      ~note:"seed-stability golden: heavy-tailed family, seed 42";
    seeded ~family:"balanced" ~seed:2024 ~m:3 ~n:3 ~granularity:12
      ~oracle:"approx-bounds" ~name:"seed-balanced-2024"
      ~note:"seed-stability golden: balanced family, seed 2024";
    (* Pinned paper instances: certify every witness on them forever. *)
    Fuzz.Corpus.make ~name:"figure1-witnesses" ~oracle:"witness-certified"
      ~note:"Figure 1 instance; all witness schedules must certify"
      A.figure1;
    Fuzz.Corpus.make ~name:"figure2-exact" ~oracle:"exact-agreement"
      ~note:"Figure 2 instance; exact solvers must agree" A.figure2;
    (* Near-misses: adversarial families sitting close to the proved
       approximation bounds; approx-bounds must still hold. *)
    Fuzz.Corpus.make ~name:"rr-family-near-2x" ~oracle:"approx-bounds"
      ~note:"Figure 3 family (n=4): RoundRobin approaches its 2x bound"
      (A.round_robin_family ~n:4);
    Fuzz.Corpus.make ~name:"gb-family-near-bound" ~oracle:"approx-bounds"
      ~note:"Theorem 8 family (m=2, 2 blocks): GreedyBalance approaches 2-1/m"
      (A.greedy_balance_family ~m:2 ~blocks:2 ());
    Fuzz.Corpus.make ~name:"figure5-witnesses" ~oracle:"witness-certified"
      ~note:"Figure 5 instance (27 jobs): policy witnesses must certify"
      A.figure5;
  ]

let () =
  (match Array.to_list Sys.argv with
  | _ :: d :: _ -> dir := d
  | _ -> ());
  let failures = ref 0 in
  List.iter
    (fun entry ->
      match Fuzz.Corpus.replay entry with
      | Error msg ->
        incr failures;
        Printf.eprintf "REFUSING to pin %s: %s\n" entry.Fuzz.Corpus.name msg
      | Ok () ->
        let path = Fuzz.Corpus.save ~dir:!dir entry in
        Printf.printf "pinned %s (oracle %s)\n" path entry.Fuzz.Corpus.oracle)
    (entries ());
  if !failures > 0 then exit 1
