(* docs_check — a markdown link and anchor checker for the repo's
   prose. Run as `docs_check FILE...` (paths relative to the repo
   root); exits 1 listing every broken reference.

   Checked, per file:
   - relative links must point at an existing file (anchors stripped,
     resolved against the linking file's directory);
   - `#fragment` links — both same-page and on relative links whose
     target is itself in the checked set — must match a heading's
     GitHub-style slug in the target document;
   - `http(s):`/`mailto:` links are skipped (no network in tier-1).

   Markdown subset: ATX headings (`#`..`######`) and inline
   `[text](target)` links. Fenced code blocks are stripped first so
   code samples containing brackets or `#` lines cannot produce false
   positives. This is deliberately small — it checks the repo's own
   docs, not arbitrary markdown. *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Drop fenced code blocks (``` or ~~~, any info string). Inline
   `code spans` survive, but links inside backticks are rare enough in
   this repo's docs that stripping fences is the right cost/benefit. *)
let strip_fences lines =
  let fence line =
    let t = String.trim line in
    String.length t >= 3
    && (String.sub t 0 3 = "```" || String.sub t 0 3 = "~~~")
  in
  let _, kept =
    List.fold_left
      (fun (in_fence, acc) line ->
        if fence line then (not in_fence, acc)
        else if in_fence then (in_fence, acc)
        else (in_fence, line :: acc))
      (false, []) lines
  in
  List.rev kept

(* GitHub heading slug: lowercase; spaces to dashes; keep only
   alphanumerics, dashes and underscores. Inline markup is crude-
   stripped (backticks, emphasis, link syntax) before slugging. *)
let slug heading =
  let b = Buffer.create (String.length heading) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '-'
      | _ -> ())
    heading;
  Buffer.contents b

let headings lines =
  List.filter_map
    (fun line ->
      let n = String.length line in
      let rec hashes i = if i < n && line.[i] = '#' then hashes (i + 1) else i in
      let h = hashes 0 in
      if h = 0 || h > 6 || (h < n && line.[h] <> ' ') then None
      else
        let text = String.trim (String.sub line h (n - h)) in
        (* Strip inline markup that GitHub drops from slugs: backticks,
           emphasis markers, and link syntax `[text](target)`. *)
        let b = Buffer.create (String.length text) in
        let skip = ref 0 in
        String.iter
          (fun c ->
            match c with
            | '`' | '*' | '[' | ']' -> ()
            | '(' when Buffer.length b > 0 && !skip = 0 ->
              (* A '(' right after ']' starts a link target; we already
                 dropped the ']', so approximate: drop parenthesized
                 runs that look like targets (contain no spaces). *)
              skip := 1
            | ')' when !skip = 1 -> skip := 0
            | _ when !skip = 1 -> ()
            | c -> Buffer.add_char b c)
          text;
        Some (slug (String.trim (Buffer.contents b))))
    lines

(* All inline [text](target) links in a line. Tolerates nested
   brackets in the text by tracking depth. *)
let links_of_line line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = '[' then begin
      let depth = ref 1 in
      let j = ref (!i + 1) in
      while !j < n && !depth > 0 do
        (match line.[!j] with
        | '[' -> incr depth
        | ']' -> decr depth
        | _ -> ());
        if !depth > 0 then incr j
      done;
      if !j + 1 < n && !depth = 0 && line.[!j + 1] = '(' then begin
        let k = ref (!j + 2) in
        while !k < n && line.[!k] <> ')' do
          incr k
        done;
        if !k < n then begin
          out := String.sub line (!j + 2) (!k - !j - 2) :: !out;
          i := !k + 1
        end
        else i := !j + 1
      end
      else i := !i + 1
    end
    else incr i
  done;
  List.rev !out

let external_target t =
  let pre p =
    String.length t >= String.length p && String.sub t 0 (String.length p) = p
  in
  pre "http://" || pre "https://" || pre "mailto:"

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then (
    prerr_endline "usage: docs_check FILE.md ...";
    exit 2);
  (* Heading slugs per checked file, keyed by normalized path, so
     anchors on cross-links into the checked set are verified too. *)
  let norm p =
    (* Resolve "." and ".." segments lexically. *)
    let parts = String.split_on_char '/' p in
    let stack =
      List.fold_left
        (fun acc part ->
          match (part, acc) with
          | ("" | "."), _ -> acc
          | "..", _ :: rest -> rest
          | "..", [] -> [ ".." ]
          | p, _ -> p :: acc)
        [] parts
    in
    String.concat "/" (List.rev stack)
  in
  let slugs = Hashtbl.create 16 in
  let contents =
    List.map
      (fun f ->
        let lines = strip_fences (read_lines f) in
        Hashtbl.replace slugs (norm f) (headings lines);
        (f, lines))
      files
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun (file, lines) ->
      let dir = Filename.dirname file in
      List.iteri
        (fun ln line ->
          List.iter
            (fun target ->
              if external_target target || target = "" then ()
              else
                let path, anchor =
                  match String.index_opt target '#' with
                  | Some 0 -> ("", String.sub target 1 (String.length target - 1))
                  | Some i ->
                    ( String.sub target 0 i,
                      String.sub target (i + 1) (String.length target - i - 1)
                    )
                  | None -> (target, "")
                in
                let resolved =
                  if path = "" then norm file
                  else norm (Filename.concat dir path)
                in
                if path <> "" && not (Sys.file_exists resolved) then
                  fail "%s:%d: broken link: %s (no such file %s)" file (ln + 1)
                    target resolved
                else if anchor <> "" then
                  match Hashtbl.find_opt slugs resolved with
                  | None -> () (* target exists but is outside the set *)
                  | Some hs ->
                    if not (List.mem anchor hs) then
                      fail "%s:%d: broken anchor: %s (no heading #%s in %s)"
                        file (ln + 1) target anchor resolved)
            (links_of_line line))
        lines)
    contents;
  match !failures with
  | [] ->
    Printf.printf "docs-check: %d files, all links and anchors resolve\n"
      (List.length files)
  | fs ->
    List.iter prerr_endline (List.rev fs);
    Printf.eprintf "docs-check: %d broken references\n" (List.length fs);
    exit 1
