(* Tests for the observability layer: span recording and forest
   reconstruction, the zero-cost-when-disabled contract, the Chrome
   trace_event exporter schema, metrics snapshots, and the trace
   determinism contract (same seeded campaign -> identical span trees at
   any pool size).

   Trace and Metrics are process-global; every test that enables them
   runs under [traced] / [metered], which restores the disabled state
   and clears the buffers even on failure. *)

module Trace = Crs_obs.Trace
module Metrics = Crs_obs.Metrics
module J = Crs_util.Stable_json

let traced f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let metered f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* ---- Trace ---- *)

let test_disabled_records_nothing () =
  Trace.reset ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.with_span ~attrs:[ ("k", Trace.Int 1) ] "noop" (fun () -> 7) in
  Alcotest.(check int) "thunk result" 7 r;
  Trace.add_attrs [ ("late", Trace.Bool true) ];
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans ()))

let test_nesting_and_signature () =
  traced (fun () ->
      Trace.with_span "root" (fun () ->
          Trace.with_span ~attrs:[ ("i", Trace.Int 1) ] "child" (fun () -> ());
          Trace.with_span ~attrs:[ ("i", Trace.Int 2) ] "child" (fun () -> ()));
      Trace.with_span "root2" (fun () -> ());
      Alcotest.(check int) "span count" 4 (List.length (Trace.spans ()));
      Alcotest.(check string) "signature"
        "root\n  child{\"i\":1}\n  child{\"i\":2}\nroot2\n" (Trace.signature ()))

let test_exception_recorded () =
  traced (fun () ->
      (try
         Trace.with_span "boom" (fun () -> failwith "expected")
       with Failure _ -> ());
      match Trace.spans () with
      | [ s ] ->
        Alcotest.(check bool) "error attr present" true
          (List.mem_assoc "error" s.Trace.attrs)
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_add_attrs_and_lazy () =
  traced (fun () ->
      let built = ref 0 in
      Trace.with_span_l
        (fun () ->
          incr built;
          [ ("eager", Trace.Int 1) ])
        "s"
        (fun () -> Trace.add_attrs [ ("late", Trace.Str "v") ]);
      Alcotest.(check int) "lazy attrs built once" 1 !built;
      Alcotest.(check string) "both attr kinds in signature"
        "s{\"eager\":1,\"late\":\"v\"}\n" (Trace.signature ()));
  (* Disabled: the lazy thunk must never run. *)
  let built = ref 0 in
  Trace.with_span_l
    (fun () ->
      incr built;
      [])
    "s"
    (fun () -> ());
  Alcotest.(check int) "lazy attrs not built when disabled" 0 !built

let test_reset_clears () =
  traced (fun () ->
      Trace.with_span "a" (fun () -> ());
      Trace.reset ();
      Alcotest.(check int) "cleared" 0 (List.length (Trace.spans ())))

(* ---- Chrome exporter schema ---- *)

let parse_exn label s =
  match J.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: parse error: %s" label msg

let test_chrome_schema () =
  traced (fun () ->
      Trace.with_span ~attrs:[ ("q", Trace.Str "a\"b\n") ] "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ()));
      let chrome = Trace.to_chrome () in
      let doc = parse_exn "chrome" chrome in
      (* Round-trip law: re-encoding the parsed document reproduces it. *)
      Alcotest.(check string) "round trip" chrome (J.to_string doc);
      let events =
        match J.member "traceEvents" doc with
        | Some (J.List evs) -> evs
        | _ -> Alcotest.fail "traceEvents missing or not a list"
      in
      Alcotest.(check int) "event count" 2 (List.length events);
      List.iter
        (fun ev ->
          (match J.member "ph" ev with
          | Some (J.Str "X") -> ()
          | _ -> Alcotest.fail "ph must be \"X\"");
          (match J.member "pid" ev with
          | Some (J.Int _) -> ()
          | _ -> Alcotest.fail "pid must be an int");
          (match J.member "tid" ev with
          | Some (J.Int _) -> ()
          | _ -> Alcotest.fail "tid must be an int");
          (match (J.member "ts" ev, J.member "dur" ev) with
          | Some (J.Float ts), Some (J.Float dur) ->
            Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
            Alcotest.(check bool) "dur >= 0" true (dur >= 0.0)
          | _ -> Alcotest.fail "ts/dur must be floats");
          match J.member "name" ev with
          | Some (J.Str _) -> ()
          | _ -> Alcotest.fail "name must be a string")
        events)

let test_jsonl_lines_parse () =
  traced (fun () ->
      Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
      let lines =
        String.split_on_char '\n' (Trace.to_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "line per span" 2 (List.length lines);
      List.iter
        (fun line ->
          let v = parse_exn "jsonl line" line in
          match (J.member "name" v, J.member "depth" v) with
          | Some (J.Str _), Some (J.Int _) -> ()
          | _ -> Alcotest.fail "jsonl line missing name/depth")
        lines)

(* ---- Metrics ---- *)

let test_metrics_disabled_noop () =
  Metrics.reset ();
  let c = Metrics.counter "test.disabled" in
  Metrics.add c 5;
  Alcotest.(check int) "no update while disabled" 0 (Metrics.counter_value c)

let test_metrics_counters_gauges () =
  metered (fun () ->
      let c = Metrics.counter "test.c" in
      let g = Metrics.gauge "test.g" in
      Metrics.incr c;
      Metrics.add c 4;
      Metrics.set g 2.5;
      Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
      Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge_value g);
      Alcotest.(check bool) "registration is idempotent" true
        (Metrics.counter_value (Metrics.counter "test.c") = 5))

let test_metrics_histogram_snapshot () =
  metered (fun () ->
      let h = Metrics.histogram "test.h" in
      List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4 ];
      let doc = parse_exn "snapshot" (Metrics.snapshot ()) in
      (match J.member "schema" doc with
      | Some (J.Str "crs-metrics/1") -> ()
      | _ -> Alcotest.fail "schema marker missing");
      let hist =
        match J.member "histograms" doc with
        | Some o -> (
          match J.member "test.h" o with
          | Some h -> h
          | None -> Alcotest.fail "test.h missing")
        | None -> Alcotest.fail "histograms missing"
      in
      (match (J.member "count" hist, J.member "sum" hist) with
      | Some (J.Int 5), Some (J.Int 10) -> ()
      | _ -> Alcotest.fail "count/sum wrong");
      (* Buckets: 0 -> lo 0; 1 -> lo 1; 2,3 -> lo 2; 4 -> lo 4. *)
      match J.member "buckets" hist with
      | Some (J.List buckets) ->
        let pairs =
          List.map
            (fun b ->
              match (J.member "lo" b, J.member "count" b) with
              | Some (J.Int lo), Some (J.Int c) -> (lo, c)
              | _ -> Alcotest.fail "bucket shape")
            buckets
        in
        Alcotest.(check (list (pair int int)))
          "log-scale buckets"
          [ (0, 1); (1, 1); (2, 2); (4, 1) ]
          pairs
      | _ -> Alcotest.fail "buckets missing")

(* ---- profiling hooks + determinism across pool sizes ---- *)

let campaign_spec =
  {
    Crs_campaign.Spec.family = Crs_campaign.Spec.Uniform;
    m = 3;
    n = 3;
    granularity = 10;
    seed_lo = 1;
    seed_hi = 4;
    algorithms =
      [
        Crs_algorithms.Registry.Names.greedy_balance;
        Crs_algorithms.Registry.Names.round_robin;
      ];
    baseline = Crs_campaign.Spec.Lower_bound;
    fuel = Some 2_000_000;
  }

let signature_of_campaign ~domains =
  traced (fun () ->
      ignore (Crs_campaign.Runner.run ~domains campaign_spec);
      Trace.signature ())

let test_campaign_trace_deterministic () =
  let s1 = signature_of_campaign ~domains:1 in
  let s2 = signature_of_campaign ~domains:2 in
  let s3 = signature_of_campaign ~domains:3 in
  Alcotest.(check bool) "non-empty" true (String.length s1 > 0);
  (* 8 items, each campaign.item + registry.solve. *)
  Alcotest.(check int) "16 span lines" 16
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' s1)));
  Alcotest.(check string) "1 vs 2 domains" s1 s2;
  Alcotest.(check string) "1 vs 3 domains" s1 s3

let test_solver_root_span_counters () =
  traced (fun () ->
      metered (fun () ->
          let inst = Crs_generators.Adversarial.round_robin_family ~n:5 in
          let solver =
            Crs_algorithms.Registry.find_exn Crs_algorithms.Registry.Names.opt_two
          in
          ignore (Crs_algorithms.Registry.solve solver inst);
          (* Root span carries the makespan and counter deltas. *)
          let root =
            match Trace.forest () with
            | [ t ] -> t
            | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)
          in
          Alcotest.(check string) "root name" "registry.solve"
            root.Trace.span.Trace.name;
          Alcotest.(check bool) "makespan attr" true
            (List.mem_assoc "makespan" root.Trace.span.Trace.attrs);
          Alcotest.(check bool) "dp phase child present" true
            (List.exists
               (fun (c : Trace.tree) -> c.Trace.span.Trace.name = "opt_two.dp")
               root.Trace.children);
          (* Counters exported under solver.<name>.*. *)
          Alcotest.(check int) "solve counted" 1
            (Metrics.counter_value (Metrics.counter "solver.opt-two.solves"))))

let test_fuzz_spans () =
  traced (fun () ->
      let oracle =
        match Crs_fuzz.Oracle.find "approx-bounds" with
        | Some o -> o
        | None -> List.hd Crs_fuzz.Oracle.all
      in
      let config =
        {
          Crs_fuzz.Driver.family = Crs_campaign.Spec.Uniform;
          m = 2;
          n = 2;
          granularity = 10;
          seed_lo = 1;
          seed_hi = 3;
          fuel = Some 2_000_000;
        }
      in
      ignore (Crs_fuzz.Driver.run ~domains:2 config oracle);
      let roots = Trace.forest () in
      Alcotest.(check int) "one span per seed" 3 (List.length roots);
      List.iter
        (fun (t : Trace.tree) ->
          Alcotest.(check string) "fuzz.case" "fuzz.case" t.Trace.span.Trace.name;
          Alcotest.(check bool) "outcome attr" true
            (List.mem_assoc "outcome" t.Trace.span.Trace.attrs))
        roots)

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "nesting and signature" `Quick test_nesting_and_signature;
    Alcotest.test_case "exception recorded" `Quick test_exception_recorded;
    Alcotest.test_case "add_attrs and lazy attrs" `Quick test_add_attrs_and_lazy;
    Alcotest.test_case "reset clears" `Quick test_reset_clears;
    Alcotest.test_case "chrome trace schema" `Quick test_chrome_schema;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
    Alcotest.test_case "metrics disabled no-op" `Quick test_metrics_disabled_noop;
    Alcotest.test_case "metrics counters and gauges" `Quick
      test_metrics_counters_gauges;
    Alcotest.test_case "metrics histogram snapshot" `Quick
      test_metrics_histogram_snapshot;
    Alcotest.test_case "campaign trace deterministic across pool sizes" `Quick
      test_campaign_trace_deterministic;
    Alcotest.test_case "solver root span and counters" `Quick
      test_solver_root_span_counters;
    Alcotest.test_case "fuzz case spans" `Quick test_fuzz_spans;
  ]
