(* Tests for the work-stealing executor substrate (crs_exec): the
   Chase–Lev deque's owner/thief semantics, the executor's determinism
   and containment contracts, nested submission, and the saturation
   stats the serve layer reports. *)

module Deque = Crs_exec.Deque
module Exec = Crs_exec.Exec

(* ---- deque (single-domain semantics) ---- *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "pop on empty" None (Deque.pop d);
  Alcotest.(check (option int)) "steal on empty" None (Deque.steal d);
  for i = 1 to 5 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 5 (Deque.size d);
  (* Owner pops newest first... *)
  Alcotest.(check (option int)) "pop is LIFO" (Some 5) (Deque.pop d);
  (* ...thieves take oldest first. *)
  Alcotest.(check (option int)) "steal is FIFO" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "steal again" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "pop meets steals" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "last element" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "drained" None (Deque.pop d);
  Alcotest.(check int) "size 0" 0 (Deque.size d)

let test_deque_growth () =
  (* Push far past the initial capacity: growth must preserve order and
     lose nothing. *)
  let d = Deque.create () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Deque.push d i
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "steal %d in push order" i)
      (Some i) (Deque.steal d)
  done

let test_deque_concurrent_thieves () =
  (* One owner pushing and popping, two thief domains stealing: every
     value is received exactly once across the three parties. *)
  let d = Deque.create () in
  let n = 20_000 in
  let stolen1 = ref [] and stolen2 = ref [] in
  let stop = Atomic.make false in
  let thief acc =
    Domain.spawn (fun () ->
        let continue = ref true in
        while !continue do
          match Deque.steal d with
          | Some v -> acc := v :: !acc
          | None -> if Atomic.get stop then continue := false else Domain.cpu_relax ()
        done)
  in
  let t1 = thief stolen1 and t2 = thief stolen2 in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Deque.push d i;
    if i land 3 = 0 then
      match Deque.pop d with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> if Deque.size d > 0 then drain ()
  in
  drain ();
  Atomic.set stop true;
  Domain.join t1;
  Domain.join t2;
  let all = List.concat [ !stolen1; !stolen2; !popped ] in
  Alcotest.(check int) "every push received exactly once" n (List.length all);
  let sorted = List.sort compare all in
  List.iteri
    (fun i v -> if i <> v then Alcotest.failf "value %d missing or duplicated (saw %d)" i v)
    sorted

(* ---- executor ---- *)

let test_exec_map_order_preserved () =
  let n = 500 in
  let input = Array.init n (fun i -> i) in
  let out = Exec.map ~domains:3 (fun i -> (2 * i) + 1) input in
  Alcotest.(check int) "all results" n (Array.length out);
  Array.iteri
    (fun i r -> Alcotest.(check int) "order preserved" ((2 * i) + 1) r)
    out

let test_exec_map_deterministic_across_domains () =
  (* Variable-cost work so stealing actually redistributes: results must
     still be byte-identical to the sequential map at every size. *)
  let st = Random.State.make [| 2024 |] in
  let costs = Array.init 200 (fun _ -> Random.State.int st 2000) in
  let f c =
    let acc = ref 0 in
    for i = 1 to c do
      acc := (!acc * 31) + i
    done;
    !acc
  in
  let expect = Array.map f costs in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "map at %d domains equals sequential" domains)
        true
        (Exec.map ~domains f costs = expect))
    [ 1; 2; 3; 8 ]

let test_exec_reuse_and_containment () =
  Exec.with_exec ~domains:2 (fun t ->
      let counter = Atomic.make 0 in
      for _ = 1 to 50 do
        Exec.submit t (fun () -> Atomic.incr counter)
      done;
      Alcotest.(check bool) "no failure" true (Exec.await_all t = None);
      Alcotest.(check int) "all tasks ran" 50 (Atomic.get counter);
      (* A raising task is contained: reported once, others still run,
         and the executor stays usable for the next batch. *)
      for i = 1 to 20 do
        Exec.submit t (fun () ->
            if i = 7 then failwith "poisoned" else Atomic.incr counter)
      done;
      (match Exec.await_all t with
      | Some (Failure msg) -> Alcotest.(check string) "failure surfaced" "poisoned" msg
      | _ -> Alcotest.fail "expected the task failure to surface");
      Alcotest.(check int) "others completed" 69 (Atomic.get counter);
      Exec.submit t (fun () -> Atomic.incr counter);
      Alcotest.(check bool) "failure cleared for next batch" true
        (Exec.await_all t = None);
      Alcotest.(check int) "next batch ran" 70 (Atomic.get counter))

let test_exec_nested_submission () =
  (* Tasks submitting tasks: the inner pushes go to the running worker's
     own deque and still complete before await_all returns. *)
  Exec.with_exec ~domains:3 (fun t ->
      let hits = Atomic.make 0 in
      for _ = 1 to 10 do
        Exec.submit t (fun () ->
            for _ = 1 to 10 do
              Exec.submit t (fun () -> Atomic.incr hits)
            done)
      done;
      Alcotest.(check bool) "no failure" true (Exec.await_all t = None);
      Alcotest.(check int) "all nested tasks ran" 100 (Atomic.get hits))

let test_exec_shutdown_rejects_submit () =
  let t = Exec.create ~domains:1 in
  Exec.shutdown t;
  Exec.shutdown t (* idempotent *);
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       Exec.submit t (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* Batch handles let several threads multiplex one executor (the
   concurrent serve frontend's shape): each batch waits only on its own
   tasks and sees only its own first failure; the executor-wide failure
   slot that await_all reads stays clean. *)
let test_exec_batch_isolation () =
  Exec.with_exec ~domains:2 (fun t ->
      let counter = Atomic.make 0 in
      let run_batch fail =
        let b = Exec.Batch.create t in
        for i = 1 to 25 do
          Exec.Batch.submit b (fun () ->
              if fail && i = 9 then failwith "batch1" else Atomic.incr counter)
        done;
        Exec.Batch.await b
      in
      let r1 = ref None and r2 = ref None in
      let th1 = Thread.create (fun () -> r1 := run_batch true) () in
      let th2 = Thread.create (fun () -> r2 := run_batch false) () in
      Thread.join th1;
      Thread.join th2;
      (match !r1 with
      | Some (Failure msg) ->
        Alcotest.(check string) "batch 1 sees its own failure" "batch1" msg
      | _ -> Alcotest.fail "batch 1 failure not surfaced");
      Alcotest.(check bool) "batch 2 unaffected by batch 1's failure" true
        (!r2 = None);
      Alcotest.(check int) "all non-failing tasks ran" 49 (Atomic.get counter);
      (* Batch failures never leak into the executor-wide slot, and the
         executor remains usable for plain submit/await_all rounds. *)
      Exec.submit t (fun () -> Atomic.incr counter);
      Alcotest.(check bool) "await_all stays clean" true
        (Exec.await_all t = None);
      Alcotest.(check int) "post-batch task ran" 50 (Atomic.get counter))

let test_exec_stats () =
  Exec.with_exec ~domains:2 (fun t ->
      let s0 = Exec.stats t in
      Alcotest.(check int) "workers" 2 s0.Exec.workers;
      Alcotest.(check int) "two depth slots" 2 (Array.length s0.Exec.depths);
      for _ = 1 to 40 do
        Exec.submit t (fun () -> ())
      done;
      ignore (Exec.await_all t);
      let s = Exec.stats t in
      Alcotest.(check bool) "pushes counted" true (s.Exec.pushes >= 40);
      Alcotest.(check int) "backlog drained" 0 s.Exec.queued;
      Alcotest.(check int) "injector drained" 0 s.Exec.injected;
      Alcotest.(check int) "pending agrees" 0 (Exec.pending t);
      Alcotest.(check bool) "steal count non-negative" true (s.Exec.steals >= 0);
      Alcotest.(check bool) "park count non-negative" true (s.Exec.parks >= 0))

let test_exec_obs_counters () =
  (* With metrics enabled the executor records exec.push (and park /
     steal, which are scheduling-dependent and only checked >= 0). *)
  Crs_obs.Metrics.reset ();
  Crs_obs.Metrics.set_enabled true;
  ignore (Exec.map ~domains:2 (fun i -> i * i) (Array.init 64 Fun.id));
  Crs_obs.Metrics.set_enabled false;
  let v name = Crs_obs.Metrics.counter_value (Crs_obs.Metrics.counter name) in
  Alcotest.(check bool) "exec.push recorded" true (v "exec.push" >= 64);
  Alcotest.(check bool) "exec.steal sane" true (v "exec.steal" >= 0);
  Alcotest.(check bool) "exec.park sane" true (v "exec.park" >= 0);
  Alcotest.(check bool) "queue-depth histogram in snapshot" true
    (Helpers.contains ~needle:"exec.queue_depth.d0" (Crs_obs.Metrics.snapshot ()));
  Crs_obs.Metrics.reset ()

let test_exec_map_chunked () =
  let input = Array.init 97 (fun i -> i) in
  let out = Exec.map ~chunk:10 ~domains:3 (fun i -> i + 1) input in
  Array.iteri (fun i r -> Alcotest.(check int) "chunked order" (i + 1) r) out;
  Alcotest.(check bool) "chunk < 1 rejected" true
    (try
       ignore (Exec.map ~chunk:0 ~domains:2 Fun.id input);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "deque: owner LIFO, thief FIFO" `Quick test_deque_lifo_fifo;
    Alcotest.test_case "deque: growth preserves order" `Quick test_deque_growth;
    Alcotest.test_case "deque: concurrent thieves, no loss, no dupes" `Quick
      test_deque_concurrent_thieves;
    Alcotest.test_case "exec: map order preserved" `Quick
      test_exec_map_order_preserved;
    Alcotest.test_case "exec: map deterministic at domains 1/2/3/8" `Quick
      test_exec_map_deterministic_across_domains;
    Alcotest.test_case "exec: reuse + exception containment" `Quick
      test_exec_reuse_and_containment;
    Alcotest.test_case "exec: nested submission from tasks" `Quick
      test_exec_nested_submission;
    Alcotest.test_case "exec: shutdown rejects submit" `Quick
      test_exec_shutdown_rejects_submit;
    Alcotest.test_case "exec: concurrent batches isolate failures" `Quick
      test_exec_batch_isolation;
    Alcotest.test_case "exec: saturation stats" `Quick test_exec_stats;
    Alcotest.test_case "exec: crs_obs counters + histogram" `Quick
      test_exec_obs_counters;
    Alcotest.test_case "exec: chunked map" `Quick test_exec_map_chunked;
  ]
