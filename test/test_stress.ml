(* Stress tests: the linear-time algorithms and exact arithmetic at
   scales well beyond the other suites. *)

module Q = Crs_num.Rational
open Crs_core

let test_greedy_on_large_family () =
  (* m=6, 40 blocks: 240 jobs per processor, 1440 jobs total. *)
  let inst = Crs_generators.Adversarial.greedy_balance_family ~m:6 ~blocks:40 () in
  let gb = Crs_algorithms.Greedy_balance.makespan inst in
  Alcotest.(check int) "prediction holds at scale"
    (Crs_generators.Adversarial.greedy_balance_family_predicted ~m:6 ~blocks:40)
    gb;
  Alcotest.(check bool) "above work bound" true (gb >= Lower_bounds.total_work inst)

let test_round_robin_closed_form_large () =
  let inst = Crs_generators.Adversarial.round_robin_family ~n:1000 in
  Alcotest.(check int) "RR = 2n at n=1000" 2000
    (Crs_algorithms.Round_robin.predicted_makespan_unit inst);
  let witness =
    Execution.run_exn inst
      (Crs_generators.Adversarial.round_robin_family_opt_schedule ~n:1000)
  in
  Alcotest.(check int) "OPT witness = 1001" 1001 (Execution.makespan witness);
  Alcotest.check Helpers.check_q "witness zero waste" Q.zero
    (Execution.unused_capacity witness)

let test_opt_two_medium () =
  let st = Random.State.make [| 77 |] in
  let rows =
    Array.init 2 (fun _ ->
        Array.init 150 (fun _ -> Q.of_ints (1 + Random.State.int st 100) 100))
  in
  let inst = Instance.of_requirements rows in
  let dp = Crs_algorithms.Opt_two.makespan inst in
  let pq = Crs_algorithms.Opt_two_pq.makespan inst in
  Alcotest.(check int) "dp = pq at n=150" dp pq;
  Alcotest.(check bool) "within bounds" true
    (dp >= Lower_bounds.combined inst && dp <= 300)

let test_bignum_large_ops () =
  let module N = Crs_num.Natural in
  (* 2000-bit arithmetic: (2^a - 1)(2^b - 1) divmod checks. *)
  let a = N.sub (N.shift_left N.one 1000) N.one in
  let b = N.sub (N.shift_left N.one 997) N.one in
  let p = N.mul a b in
  let q, r = N.divmod p b in
  Alcotest.(check bool) "divmod exact at 2000 bits" true (N.equal q a && N.is_zero r);
  let g = N.gcd p a in
  Alcotest.(check bool) "gcd(p, a) = a" true (N.equal g a);
  (* Harmonic sum: denominators with hundreds of digits. *)
  let h = Q.sum (List.init 300 (fun i -> Q.of_ints 1 (i + 1))) in
  Alcotest.(check bool) "harmonic sum sane" true
    Q.(h > Q.of_int 6 && h < Q.of_int 7)

let test_continuous_large () =
  let inst = Crs_generators.Adversarial.greedy_balance_family ~m:4 ~blocks:15 () in
  let r = Crs_extension.Continuous.greedy_balance inst in
  Alcotest.(check bool) "continuous >= work bound" true
    Q.(r.Crs_extension.Continuous.makespan >= Crs_extension.Continuous.work_lower_bound inst);
  (* Each event completes >= 1 job; simultaneous completions merge. *)
  let events = List.length r.Crs_extension.Continuous.events in
  Alcotest.(check bool) "at most one event per job" true
    (events >= 1 && events <= Instance.total_jobs inst)

let test_simulator_large () =
  let st = Random.State.make [| 88 |] in
  let tasks = Crs_manycore.Workload.io_burst ~cores:64 ~phases:6 ~io_intensity:0.9 st in
  let r = Crs_manycore.Engine.run Crs_manycore.Policy.greedy_balance tasks in
  Alcotest.(check bool) "64-core run completes" true (r.Crs_manycore.Engine.makespan > 0)

let test_executor_seeded_stress () =
  (* Hundreds of variable-cost tasks (cost spread over two orders of
     magnitude, seeded) on an oversubscribed executor, repeated across
     distinct steal schedules: results must equal the sequential map
     element-for-element every time. This is the torture version of the
     campaign determinism contract, aimed at the deque's pop-vs-steal
     races rather than at solver behavior. *)
  let st = Random.State.make [| 4099 |] in
  let n = 600 in
  let costs =
    Array.init n (fun i -> (i, 50 + Random.State.int st 5000))
  in
  let work (i, c) =
    let acc = ref i in
    for k = 1 to c do
      acc := (!acc * 1103515245) + k
    done;
    (i, !acc)
  in
  let expect = Array.map work costs in
  for round = 1 to 3 do
    let domains = [| 2; 4; 8 |].(round - 1) in
    let got = Crs_exec.Exec.map ~domains work costs in
    Alcotest.(check bool)
      (Printf.sprintf "round %d (%d domains): order-preserving" round domains)
      true (got = expect)
  done

let suite =
  [
    Alcotest.test_case "greedy-balance on 1440 jobs" `Slow test_greedy_on_large_family;
    Alcotest.test_case "round-robin closed form at n=1000" `Slow
      test_round_robin_closed_form_large;
    Alcotest.test_case "opt-two at n=150" `Slow test_opt_two_medium;
    Alcotest.test_case "bignum at 2000 bits" `Slow test_bignum_large_ops;
    Alcotest.test_case "continuous greedy at scale" `Slow test_continuous_large;
    Alcotest.test_case "simulator at 64 cores" `Slow test_simulator_large;
    Alcotest.test_case "executor seeded variable-cost stress" `Slow
      test_executor_seeded_stress;
  ]
