(* End-to-end tests of the crsched binary (built by dune as a test
   dependency; the test process runs in _build/default/test). *)

let exe = Filename.concat ".." (Filename.concat "bin" "crsched.exe")

let run_capture args =
  let out = Filename.temp_file "crsched" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out) in
  let code = Sys.command cmd in
  let content = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, content)

let has needle s = Helpers.contains ~needle s

let with_instance_file body f =
  let path = Filename.temp_file "instance" ".txt" in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc body);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_gen_and_solve () =
  let code, out = run_capture "gen -f figure1" in
  Alcotest.(check int) "gen exits 0" 0 code;
  Alcotest.(check bool) "emits figure 1" true (has "9/10" out);
  with_instance_file out (fun path ->
      let code, out = run_capture (Printf.sprintf "solve %s -a greedy-balance" path) in
      Alcotest.(check int) "solve exits 0" 0 code;
      Alcotest.(check bool) "reports makespan" true (has "makespan: 6" out))

let test_compare_exact () =
  with_instance_file "1/2 1/2\n1/2\n" (fun path ->
      let code, out = run_capture (Printf.sprintf "compare %s --exact" path) in
      Alcotest.(check int) "exits 0" 0 code;
      Alcotest.(check bool) "prints optimum" true (has "exact optimum: 2" out);
      Alcotest.(check bool) "lists algorithms" true (has "round-robin" out))

let test_reduce_decide () =
  let code, out = run_capture "reduce 1 2 3 --decide" in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "YES verdict" true (has "partition: YES" out);
  let code, out = run_capture "reduce 3 3 3 3 2 --decide" in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "NO verdict" true (has "partition: NO" out)

let test_bounds () =
  with_instance_file "1/2 1/2\n1/2\n" (fun path ->
      let code, out = run_capture (Printf.sprintf "bounds %s" path) in
      Alcotest.(check int) "exits 0" 0 code;
      Alcotest.(check bool) "Observation 1 row" true (has "Observation 1" out);
      Alcotest.(check bool) "bin-packing row" true (has "bin-packing relaxation" out))

let test_export_verify_roundtrip () =
  with_instance_file "1/2 1/2\n1/2\n" (fun path ->
      let sched = Filename.temp_file "sched" ".txt" in
      let svg = Filename.temp_file "sched" ".svg" in
      Fun.protect
        ~finally:(fun () -> List.iter Sys.remove [ sched; svg ])
        (fun () ->
          let code, _ =
            run_capture
              (Printf.sprintf "export %s -a optimal --schedule %s --svg %s" path sched svg)
          in
          Alcotest.(check int) "export exits 0" 0 code;
          Alcotest.(check bool) "svg written" true
            (has "<svg" (In_channel.with_open_text svg In_channel.input_all));
          let code, out = run_capture (Printf.sprintf "verify %s %s" path sched) in
          Alcotest.(check int) "verify exits 0" 0 code;
          Alcotest.(check bool) "all properties listed" true (has "non-wasting" out)))

let test_bad_inputs () =
  let code, _ = run_capture "solve /nonexistent/file.txt" in
  Alcotest.(check bool) "missing file fails" true (code <> 0);
  with_instance_file "3/2\n" (fun path ->
      (* requirement > 1 is rejected at parse time *)
      let code, out = run_capture (Printf.sprintf "solve %s" path) in
      Alcotest.(check bool) "invalid requirement fails" true (code <> 0);
      Alcotest.(check bool) "helpful message" true (has "error" out))

let test_compare_json () =
  with_instance_file "1/2 1/2\n1/2\n" (fun path ->
      let code, out = run_capture (Printf.sprintf "compare %s --exact --json" path) in
      Alcotest.(check int) "exits 0" 0 code;
      Alcotest.(check bool) "campaign schema records" true
        (has "\"algorithm\":\"greedy-balance\"" out
        && has "\"baseline\":\"exact\"" out
        && has "\"outcome\":\"done\"" out);
      (* every line is a JSON object *)
      List.iter
        (fun line ->
          if String.trim line <> "" then
            Alcotest.(check bool) "json line" true
              (line.[0] = '{' && line.[String.length line - 1] = '}'))
        (String.split_on_char '\n' out))

let test_campaign () =
  let dir = Filename.temp_file "campaign" ".d" in
  Sys.remove dir;
  let code, out =
    run_capture
      (Printf.sprintf
         "campaign --seeds 1-6 -a greedy-balance -a round-robin --domains 2 --out %s"
         (Filename.quote dir))
  in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "summary printed" true
    (has "items 12" out && has "payload digest" out);
  let jsonl =
    In_channel.with_open_text (Filename.concat dir "campaign.jsonl")
      In_channel.input_all
  in
  Alcotest.(check int) "12 JSONL records" 12
    (List.length
       (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' jsonl)));
  Alcotest.(check bool) "summary JSON written" true
    (Sys.file_exists (Filename.concat dir "campaign-summary.json"));
  Alcotest.(check bool) "worst instance retained" true
    (Sys.file_exists (Filename.concat dir "campaign-worst.instance"));
  (* byte-identical payloads at a different pool size *)
  let dir1 = Filename.temp_file "campaign" ".d" in
  Sys.remove dir1;
  let code, out1 =
    run_capture
      (Printf.sprintf
         "campaign --seeds 1-6 -a greedy-balance -a round-robin --domains 1 --out %s"
         (Filename.quote dir1))
  in
  Alcotest.(check int) "sequential run exits 0" 0 code;
  let digest_of o =
    List.find_opt
      (fun l -> Helpers.contains ~needle:"payload digest" l)
      (String.split_on_char '\n' o)
  in
  Alcotest.(check bool) "payload digests match across pool sizes" true
    (digest_of out <> None && digest_of out = digest_of out1)

let test_campaign_invalid_spec () =
  (* Spec errors surface as one diagnostic line + exit 1, not a crash. *)
  let code, out = run_capture "campaign --seeds 9-2 -a greedy-balance" in
  Alcotest.(check int) "inverted range exits 1" 1 code;
  Alcotest.(check bool) "prefixed diagnostic" true (has "error: invalid campaign:" out);
  Alcotest.(check bool) "names the range" true (has "9..2" out);
  let code, out = run_capture "campaign -a no-such-algorithm" in
  Alcotest.(check int) "unknown algorithm exits 1" 1 code;
  Alcotest.(check bool) "lists valid algorithms" true
    (has "error: invalid campaign:" out && has "valid:" out)

let test_fuzz_and_replay () =
  (* Same seed range twice: byte-identical reports (at any pool size). *)
  let args = "fuzz --oracle exact-agreement --seed-range 1..10 -m 2 -n 2" in
  let code, out = run_capture (args ^ " --domains 2") in
  Alcotest.(check int) "fuzz exits 0" 0 code;
  Alcotest.(check bool) "summary line" true (has "10 seeds: 10 pass" out);
  Alcotest.(check bool) "report digest" true (has "report digest" out);
  let code1, out1 = run_capture (args ^ " --domains 1") in
  Alcotest.(check int) "rerun exits 0" 0 code1;
  Alcotest.(check string) "byte-identical reports" out out1;
  let code, out = run_capture "fuzz --oracle no-such-oracle" in
  Alcotest.(check int) "unknown oracle exits 1" 1 code;
  Alcotest.(check bool) "lists valid oracles" true (has "witness-certified" out);
  let code, out = run_capture "fuzz --seed-range 5..1" in
  Alcotest.(check int) "bad range exits 1" 1 code;
  Alcotest.(check bool) "range diagnostic" true (has "bad seed range" out);
  (* Replay the pinned corpus (copied into _build by the test deps). *)
  let code, out = run_capture "replay ../data/corpus" in
  Alcotest.(check int) "replay exits 0" 0 code;
  Alcotest.(check bool) "replays every entry" true
    (has "0 failures" out && has "seed-uniform-1.json" out);
  let code, out = run_capture "replay /nonexistent-corpus" in
  Alcotest.(check int) "missing corpus exits 1" 1 code;
  Alcotest.(check bool) "missing corpus diagnostic" true (has "ERROR" out)

let test_simulate () =
  let code, out = run_capture "simulate --cores 4 -w streaming" in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check bool) "policy table" true
    (has "fair-share" out && has "greedy-balance" out)

(* serve startup failures: distinct exit codes, messages naming the
   offending value. 3 = unparseable --listen, 4 = bind failure. *)
let test_serve_exit_codes () =
  let code, out = run_capture "serve --listen bogus-address" in
  Alcotest.(check int) "bad --listen exits 3" 3 code;
  Alcotest.(check bool) "names the bad address" true (has "bogus-address" out);
  let code, out = run_capture "serve --listen tcp:localhost:notaport" in
  Alcotest.(check int) "bad tcp port exits 3" 3 code;
  Alcotest.(check bool) "names the bad tcp address" true
    (has "tcp:localhost:notaport" out);
  (* An existing socket path is a bind conflict, never clobbered. *)
  let sock = Filename.temp_file "crsched" ".sock" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let code, out = run_capture (Printf.sprintf "serve --listen unix:%s" sock) in
      Alcotest.(check int) "occupied socket path exits 4" 4 code;
      Alcotest.(check bool) "names the occupied path" true (has sock out);
      Alcotest.(check bool) "socket path not clobbered" true (Sys.file_exists sock))

(* The concurrent-frontend flags are validated before any socket work:
   bad values exit 1 with a message naming every parameter. *)
let test_serve_param_validation () =
  let code, out = run_capture "serve --backlog 0 --stdio" in
  Alcotest.(check int) "backlog 0 exits 1" 1 code;
  Alcotest.(check bool) "message names backlog" true (has "backlog 0" out);
  let code, out = run_capture "serve --max-conns 0 --stdio" in
  Alcotest.(check int) "max-conns 0 exits 1" 1 code;
  Alcotest.(check bool) "message names max-conns" true (has "max-conns 0" out);
  let code, out = run_capture "serve --idle-timeout=-1 --stdio" in
  Alcotest.(check int) "negative idle-timeout exits 1" 1 code;
  Alcotest.(check bool) "message names idle-timeout" true
    (has "idle-timeout -1" out)

let test_serve_stdio () =
  let reqs = Filename.temp_file "serve" ".jsonl" in
  Out_channel.with_open_text reqs (fun oc ->
      Out_channel.output_string oc
        ("{\"proto\":\"crs-serve/1\",\"kind\":\"hello\"}\n"
        ^ "{\"proto\":\"crs-serve/1\",\"id\":1,\"kind\":\"solve\",\
           \"instance\":\"1/2 1/2\\n1/2\"}\n"
        ^ "{\"proto\":\"crs-serve/1\",\"kind\":\"shutdown\"}\n"));
  Fun.protect
    ~finally:(fun () -> Sys.remove reqs)
    (fun () ->
      let code, out =
        run_capture (Printf.sprintf "serve --stdio < %s" (Filename.quote reqs))
      in
      Alcotest.(check int) "stdio session exits 0" 0 code;
      Alcotest.(check bool) "speaks crs-serve/1" true (has "crs-serve/1" out);
      Alcotest.(check bool) "solve answered" true (has "\"makespan\":2" out);
      Alcotest.(check bool) "shutdown acknowledged" true
        (has "\"stopping\":true" out))

let suite =
  [
    Alcotest.test_case "gen | solve" `Quick test_gen_and_solve;
    Alcotest.test_case "compare --exact" `Quick test_compare_exact;
    Alcotest.test_case "compare --json (campaign schema)" `Quick test_compare_json;
    Alcotest.test_case "campaign end-to-end" `Quick test_campaign;
    Alcotest.test_case "campaign: invalid specs reported" `Quick
      test_campaign_invalid_spec;
    Alcotest.test_case "fuzz | replay" `Quick test_fuzz_and_replay;
    Alcotest.test_case "reduce --decide" `Quick test_reduce_decide;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "export | verify roundtrip" `Quick test_export_verify_roundtrip;
    Alcotest.test_case "bad inputs fail cleanly" `Quick test_bad_inputs;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "serve: startup exit codes" `Quick test_serve_exit_codes;
    Alcotest.test_case "serve: parameter validation" `Quick
      test_serve_param_validation;
    Alcotest.test_case "serve --stdio session" `Quick test_serve_stdio;
  ]
