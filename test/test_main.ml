let () =
  Alcotest.run "crsharing"
    [
      ("num", Test_num.suite);
      ("util", Test_util.suite);
      ("model", Test_model.suite);
      ("properties", Test_properties.suite);
      ("policy", Test_policy.suite);
      ("online", Test_online.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("algorithms", Test_algorithms.suite);
      ("dp_parity", Test_dp_parity.suite);
      ("registry", Test_registry.suite);
      ("reduction", Test_reduction.suite);
      ("binpack", Test_binpack.suite);
      ("discont", Test_discont.suite);
      ("generators", Test_generators.suite);
      ("exec", Test_exec.suite);
      ("campaign", Test_campaign.suite);
      ("fuzz", Test_fuzz.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("balance", Test_balance.suite);
      ("manycore", Test_manycore.suite);
      ("extension", Test_extension.suite);
      ("render", Test_render.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("stress", Test_stress.suite);
      ("cli", Test_cli.suite);
    ]
