(* Tests for the policy runner and stock policies. *)

module Q = Crs_num.Rational
open Crs_core

let q = Helpers.q

let test_initial_state () =
  let inst = Helpers.instance_of_strings [ [ "1/2" ]; [] ] in
  let s = Policy.initial inst in
  Alcotest.(check bool) "proc 0 active" true (Policy.active s 0);
  Alcotest.(check bool) "proc 1 done" false (Policy.active s 1);
  Alcotest.(check bool) "not done overall" false (Policy.is_done s);
  Alcotest.(check int) "jobs remaining" 1 (Policy.jobs_remaining s 0);
  Alcotest.check Helpers.check_q "remaining work" (q "1/2") (Policy.remaining_work s 0);
  Alcotest.check Helpers.check_q "remaining work of done proc" Q.zero
    (Policy.remaining_work s 1)

let test_advance () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/4" ] ] in
  let s = Policy.initial inst in
  let s = Policy.advance s [| q "1/2" |] in
  Alcotest.(check int) "time advanced" 2 s.Policy.time;
  Alcotest.(check int) "first job done" 1 s.Policy.next_job.(0);
  Alcotest.check Helpers.check_q "fresh volume" Q.one s.Policy.remaining_volume.(0);
  let s = Policy.advance s [| q "1/8" |] in
  Alcotest.check Helpers.check_q "half the second job left" Q.half
    s.Policy.remaining_volume.(0)

let test_run_completes () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1"; "1/4" ] ] in
  List.iter
    (fun (name, policy) ->
      let sched = Policy.run policy inst in
      let trace = Execution.run_exn inst sched in
      Alcotest.(check bool) (name ^ " completes") true trace.Execution.completed)
    Crs_algorithms.Registry.policies

let test_run_rejects_infeasible_policy () =
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  let bad _ = [| q "3/2" |] in
  Alcotest.check_raises "share > 1" (Failure "Policy.run: share outside [0,1]")
    (fun () -> ignore (Policy.run bad inst));
  let overused (s : Policy.state) =
    Array.make (Instance.m s.Policy.instance) (q "3/5")
  in
  let inst2 = Helpers.instance_of_strings [ [ "1" ]; [ "1" ] ] in
  Alcotest.check_raises "sum > 1" (Failure "Policy.run: resource overused")
    (fun () -> ignore (Policy.run overused inst2))

let test_run_fuel () =
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  Alcotest.check_raises "idle never finishes"
    (Failure "Policy.run: fuel exhausted (policy not making progress?)")
    (fun () -> ignore (Policy.run ~max_steps:5 Policy.idle inst))

let test_empty_instance () =
  let inst = Instance.create [| [||] |] in
  let sched = Policy.run Policy.uniform inst in
  Alcotest.(check int) "zero steps" 0 (Schedule.horizon sched)

let test_greedy_fill_priority () =
  (* greedy_fill feeds in the given order; the head gets its full usable
     amount. *)
  let inst = Helpers.instance_of_strings [ [ "3/4" ]; [ "3/4" ] ] in
  let by _ a b = a > b in
  let shares = Policy.greedy_fill ~by (Policy.initial inst) in
  Alcotest.check Helpers.check_q "high-priority proc 1 full" (q "3/4") shares.(1);
  Alcotest.check Helpers.check_q "leftover to proc 0" (q "1/4") shares.(0)

let test_uniform_caps () =
  (* uniform gives 1/k each, capped at what the job can use. *)
  let inst = Helpers.instance_of_strings [ [ "1/8" ]; [ "1" ] ] in
  let shares = Policy.uniform (Policy.initial inst) in
  Alcotest.check Helpers.check_q "capped at usable" (q "1/8") shares.(0);
  Alcotest.check Helpers.check_q "fair share" Q.half shares.(1)

let prop_policies_feasible_and_complete =
  Helpers.qcheck_case ~count:40 "stock policies always emit feasible schedules"
    (Helpers.gen_instance ()) (fun instance ->
      List.for_all
        (fun (_, policy) ->
          let sched = Policy.run policy instance in
          Result.is_ok (Schedule.check_feasible sched)
          && (Execution.run_exn instance sched).Execution.completed)
        Crs_algorithms.Registry.policies)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "advance semantics" `Quick test_advance;
    Alcotest.test_case "all stock policies complete" `Quick test_run_completes;
    Alcotest.test_case "infeasible policies rejected" `Quick
      test_run_rejects_infeasible_policy;
    Alcotest.test_case "fuel guard" `Quick test_run_fuel;
    Alcotest.test_case "instance with no jobs" `Quick test_empty_instance;
    Alcotest.test_case "greedy_fill respects priority" `Quick test_greedy_fill_priority;
    Alcotest.test_case "uniform caps at usable" `Quick test_uniform_caps;
    prop_policies_feasible_and_complete;
  ]
