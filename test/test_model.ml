(* Tests for the core model: jobs, instances, schedules, execution
   semantics (Section 3.1) and the alternative interpretation (Eq. 2). *)

module Q = Crs_num.Rational
open Crs_core

let q = Helpers.q

let test_job_validation () =
  Alcotest.check_raises "requirement > 1"
    (Invalid_argument "Job.make: requirement outside [0,1]") (fun () ->
      ignore (Job.make ~requirement:(q "3/2") ~size:Q.one));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Job.make: size must be positive") (fun () ->
      ignore (Job.make ~requirement:Q.half ~size:Q.zero));
  let j = Job.of_percent 25 in
  Alcotest.check Helpers.check_q "of_percent" (q "1/4") (Job.requirement j);
  Alcotest.check Helpers.check_q "work = r*p" (q "3/4")
    (Job.work (Job.make ~requirement:(q "1/2") ~size:(q "3/2")))

let test_instance_accessors () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/4" ]; [ "1" ]; [] ] in
  Alcotest.(check int) "m" 3 (Instance.m inst);
  Alcotest.(check int) "n_1" 2 (Instance.n_i inst 0);
  Alcotest.(check int) "n_3 empty" 0 (Instance.n_i inst 2);
  Alcotest.(check int) "n_max" 2 (Instance.n_max inst);
  Alcotest.(check int) "total_jobs" 3 (Instance.total_jobs inst);
  Alcotest.check Helpers.check_q "total_work" (q "7/4") (Instance.total_work inst);
  Alcotest.(check int) "|M_1|" 2 (Instance.m_j inst 1);
  Alcotest.(check int) "|M_2|" 1 (Instance.m_j inst 2);
  Alcotest.(check bool) "unit size" true (Instance.is_unit_size inst);
  Alcotest.check_raises "job out of range"
    (Invalid_argument "Instance.job: job out of range") (fun () ->
      ignore (Instance.job inst 1 1))

let test_instance_serialization () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/4" ]; [ "9/10" ] ] in
  let text = Instance.to_string inst in
  (match Instance.of_string text with
  | Ok inst' -> Alcotest.(check bool) "roundtrip" true (Instance.equal inst inst')
  | Error e -> Alcotest.fail e);
  (match Instance.of_string "# comment\n1/2 1/4\n\n9/10\n" with
  | Ok inst' -> Alcotest.(check bool) "comments and blanks" true (Instance.equal inst inst')
  | Error e -> Alcotest.fail e);
  (match Instance.of_string "1/2*3\n1" with
  | Ok sized ->
    Alcotest.check Helpers.check_q "sized job parses" (q "3")
      (Job.size (Instance.job sized 0 0))
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "empty input is an error" true
    (Result.is_error (Instance.of_string "# nothing\n"))

let test_instance_combinators () =
  let a = Helpers.instance_of_strings [ [ "1/2" ]; [ "1/4" ] ] in
  let b = Helpers.instance_of_strings [ [ "1/8" ]; [ "1/3"; "1/5" ] ] in
  let side = Instance.concat_processors a b in
  Alcotest.(check int) "concat m" 4 (Instance.m side);
  Alcotest.check Helpers.check_q "concat keeps rows" (q "1/3")
    (Job.requirement (Instance.job side 3 0));
  let seq = Instance.append_jobs a b in
  Alcotest.(check int) "append m" 2 (Instance.m seq);
  Alcotest.(check int) "append row length" 3 (Instance.n_i seq 1);
  Alcotest.check Helpers.check_q "append order" (q "1/3")
    (Job.requirement (Instance.job seq 1 1));
  Alcotest.check Helpers.check_q "work adds up"
    (Q.add (Instance.total_work a) (Instance.total_work b))
    (Instance.total_work seq);
  let scaled = Instance.scale_requirements Q.half a in
  Alcotest.check Helpers.check_q "scaled" (q "1/4")
    (Job.requirement (Instance.job scaled 0 0));
  Alcotest.check_raises "scale out of range"
    (Invalid_argument "Job.make: requirement outside [0,1]") (fun () ->
      ignore (Instance.scale_requirements (Q.of_int 3) a));
  let sub = Instance.sub_processors side [ 2; 0 ] in
  Alcotest.(check int) "sub m" 2 (Instance.m sub);
  Alcotest.check Helpers.check_q "sub order" (q "1/8")
    (Job.requirement (Instance.job sub 0 0));
  Alcotest.check_raises "sub out of range"
    (Invalid_argument "Instance.sub_processors: processor out of range") (fun () ->
      ignore (Instance.sub_processors a [ 5 ]));
  Alcotest.check_raises "append mismatched"
    (Invalid_argument "Instance.append_jobs: processor counts differ") (fun () ->
      ignore (Instance.append_jobs a (Instance.sub_processors a [ 0 ])))

(* Scheduling laws for the combinators: makespans compose sub-additively
   under both unions (run one after the other is always feasible). *)
let prop_combinator_makespans =
  Helpers.qcheck_case ~count:30 "GB makespan sub-additive under concat/append"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (s1, s2) ->
      let a = Helpers.random_instance (Random.State.make [| s1 |]) in
      let b = Helpers.random_instance (Random.State.make [| s2 |]) in
      let gb i = Crs_algorithms.Greedy_balance.makespan i in
      let opt i = Crs_algorithms.Solver.certified_lower_bound i in
      (* gb(a++b) <= 2·OPT(a++b) <= 2·(OPT(a)+OPT(b)) <= 2·(gb(a)+gb(b))
         by Theorem 7 and sub-additivity of the optimum. *)
      (Instance.m a <> Instance.m b
      || gb (Instance.append_jobs a b) <= 2 * (gb a + gb b))
      && opt (Instance.concat_processors a b) >= max (opt a) 1)

let test_schedule_serialization () =
  let sched = Helpers.schedule_of_strings [ [ "1/2"; "1/2" ]; [ "1"; "0" ] ] in
  (match Schedule.of_string (Schedule.to_string sched) with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (Schedule.equal sched s)
  | Error e -> Alcotest.fail e);
  (match Schedule.of_string "# comment\n1/2 1/2\n\n0.25 0.75\n" with
  | Ok s ->
    Alcotest.(check int) "comments skipped" 2 (Schedule.horizon s);
    Alcotest.check Helpers.check_q "decimal share" (q "3/4")
      (Schedule.share s ~step:1 ~proc:1)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "empty is error" true
    (Result.is_error (Schedule.of_string "# nothing"));
  Alcotest.(check bool) "ragged is error" true
    (Result.is_error (Schedule.of_string "1/2\n1/2 1/2"))

let test_schedule_feasibility () =
  let ok = Helpers.schedule_of_strings [ [ "1/2"; "1/2" ]; [ "1"; "0" ] ] in
  Alcotest.(check bool) "feasible" true (Result.is_ok (Schedule.check_feasible ok));
  let over = Helpers.schedule_of_strings [ [ "3/4"; "1/2" ] ] in
  (match Schedule.check_feasible over with
  | Ok () -> Alcotest.fail "overused schedule accepted"
  | Error msg ->
    (* The message must localize the violation: step, total, and the
       processor holding the largest share. *)
    Alcotest.(check bool) "overuse names step" true
      (Helpers.contains ~needle:"overused at step 0" msg);
    Alcotest.(check bool) "overuse names total" true
      (Helpers.contains ~needle:"total 5/4 > 1" msg);
    Alcotest.(check bool) "overuse names largest share" true
      (Helpers.contains ~needle:"proc 0 with 3/4" msg));
  let neg = Helpers.schedule_of_strings [ [ "-1/4"; "1/2" ] ] in
  (match Schedule.check_feasible neg with
  | Ok () -> Alcotest.fail "negative share accepted"
  | Error msg ->
    Alcotest.(check bool) "range error names step and proc" true
      (Helpers.contains ~needle:"at step 0, proc 0" msg);
    Alcotest.(check bool) "range error names value" true
      (Helpers.contains ~needle:"-1/4" msg));
  Alcotest.check Helpers.check_q "share beyond horizon" Q.zero
    (Schedule.share ok ~step:7 ~proc:0);
  Alcotest.check_raises "ragged rows" (Invalid_argument "Schedule.of_rows: ragged rows")
    (fun () -> ignore (Schedule.of_rows [| [| Q.one |]; [| Q.one; Q.zero |] |]))

let test_execution_basic () =
  (* One processor, two jobs 1/2 each: full resource finishes one job per
     step; makespan 2 (one job per step even though both fit in budget). *)
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "1" ]; [ "1" ] ] in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check bool) "completed" true trace.completed;
  Alcotest.(check int) "makespan 2: one job per step" 2 (Execution.makespan trace);
  (* The extra assigned resource is wasted, not passed to job 2. *)
  Alcotest.check Helpers.check_q "waste = 1" Q.one (Execution.wasted trace)

let test_execution_partial () =
  (* Job of requirement 1 fed 1/4 per step takes 4 steps. *)
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  let sched =
    Helpers.schedule_of_strings [ [ "1/4" ]; [ "1/4" ]; [ "1/4" ]; [ "1/4" ] ]
  in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check int) "makespan" 4 (Execution.makespan trace);
  Alcotest.(check int) "start step" 1 trace.start_step.(0).(0);
  Alcotest.(check int) "completion step" 4 trace.completion_step.(0).(0)

let test_execution_zero_requirement () =
  (* r = 0 jobs run at full speed with no resource. *)
  let inst = Helpers.instance_of_strings [ [ "0"; "0" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "0" ]; [ "0" ] ] in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check bool) "completed" true trace.completed;
  Alcotest.(check int) "one per step" 2 (Execution.makespan trace)

let test_execution_speed_cap () =
  (* Granting twice the requirement does not speed the job up (size 2). *)
  let inst =
    Instance.create [| [| Job.make ~requirement:(q "1/4") ~size:(q "2") |] |]
  in
  let sched = Helpers.schedule_of_strings [ [ "1" ]; [ "1" ] ] in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check int) "2 volume units at speed cap 1" 2 (Execution.makespan trace);
  Alcotest.check Helpers.check_q "consumed r per step" (q "1/4")
    trace.steps.(0).consumed.(0)

let test_execution_too_short () =
  let inst = Helpers.instance_of_strings [ [ "1" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "1/2" ] ] in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check bool) "not completed" false trace.completed;
  Alcotest.(check (option int)) "no makespan" None (Execution.makespan_opt trace)

let test_execution_wrong_width () =
  let inst = Helpers.instance_of_strings [ [ "1" ]; [ "1" ] ] in
  let sched = Helpers.schedule_of_strings [ [ "1" ] ] in
  Alcotest.(check bool) "width mismatch" true (Result.is_error (Execution.run inst sched))

let test_active_jobs_and_remaining () =
  let inst = Helpers.instance_of_strings [ [ "1/2"; "1/2" ]; [ "1" ] ] in
  let sched =
    Helpers.schedule_of_strings [ [ "1/2"; "1/2" ]; [ "1/2"; "1/2" ]; [ "0"; "1" ] ]
  in
  let trace = Execution.run_exn inst sched in
  Alcotest.(check (list (pair int int))) "e_1" [ (0, 0); (1, 0) ]
    (Execution.active_jobs trace 1);
  Alcotest.(check (list (pair int int))) "e_2" [ (0, 1); (1, 0) ]
    (Execution.active_jobs trace 2);
  let n1 = Execution.jobs_remaining trace 1 in
  Alcotest.(check (array int)) "n_i(1)" [| 2; 1 |] n1;
  let n2 = Execution.jobs_remaining trace 2 in
  Alcotest.(check (array int)) "n_i(2)" [| 1; 1 |] n2

(* The two model interpretations agree: Eq. (2) completion prefix sums
   match the volume-based execution, on random instances and schedules. *)
let prop_alternative_interpretation =
  Helpers.qcheck_case ~count:60 "Eq.(2) matches execution on random schedules"
    (Helpers.gen_instance_with_schedule ()) (fun (instance, schedule) ->
      let trace = Execution.run_exn instance schedule in
      trace.completed && Result.is_ok (Execution.verify_completion_times trace))

let prop_unused_capacity_consistent =
  Helpers.qcheck_case ~count:60 "unused capacity = makespan - total work"
    (Helpers.gen_instance ()) (fun instance ->
      let sched = Crs_algorithms.Greedy_balance.schedule instance in
      let trace = Execution.run_exn instance sched in
      let unused = Execution.unused_capacity trace in
      Q.equal unused
        (Q.sub (Q.of_int (Execution.makespan trace)) (Instance.total_work instance)))

let suite =
  [
    Alcotest.test_case "job: validation and work" `Quick test_job_validation;
    Alcotest.test_case "instance: accessors" `Quick test_instance_accessors;
    Alcotest.test_case "instance: serialization" `Quick test_instance_serialization;
    Alcotest.test_case "instance: combinators" `Quick test_instance_combinators;
    prop_combinator_makespans;
    Alcotest.test_case "schedule: serialization" `Quick test_schedule_serialization;
    Alcotest.test_case "schedule: feasibility" `Quick test_schedule_feasibility;
    Alcotest.test_case "execution: one job per step" `Quick test_execution_basic;
    Alcotest.test_case "execution: partial progress" `Quick test_execution_partial;
    Alcotest.test_case "execution: zero requirements" `Quick test_execution_zero_requirement;
    Alcotest.test_case "execution: speed cap" `Quick test_execution_speed_cap;
    Alcotest.test_case "execution: unfinished schedules" `Quick test_execution_too_short;
    Alcotest.test_case "execution: width mismatch" `Quick test_execution_wrong_width;
    Alcotest.test_case "execution: active jobs / remaining counts" `Quick
      test_active_jobs_and_remaining;
    prop_alternative_interpretation;
    prop_unused_capacity_consistent;
  ]
