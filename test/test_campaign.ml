(* Tests for the parallel experiment-campaign subsystem: the domain
   pool, the runner's timeout/error capture, the JSONL report, and the
   determinism contract (1 domain and N domains produce identical
   payloads). The pooled cases double as the tier-1 smoke campaign that
   exercises the parallel path on every `dune runtest`. *)

module C = Crs_campaign

(* ---- Pool ---- *)

let test_pool_oversubscription () =
  (* Far more tasks than domains: all run, results keep item order. *)
  let n = 200 in
  let input = Array.init n (fun i -> i) in
  let out = C.Pool.map ~domains:3 (fun i -> (2 * i) + 1) input in
  Alcotest.(check int) "all results" n (Array.length out);
  Array.iteri
    (fun i r -> Alcotest.(check int) "order preserved" ((2 * i) + 1) r)
    out

let test_pool_empty () =
  Alcotest.(check int) "empty map" 0 (Array.length (C.Pool.map ~domains:2 (fun x -> x) [||]))

let test_pool_submit_await () =
  let counter = Atomic.make 0 in
  C.Pool.with_pool ~domains:2 (fun pool ->
      for _ = 1 to 50 do
        C.Pool.submit pool (fun () -> Atomic.incr counter)
      done;
      Alcotest.(check bool) "no failure" true (C.Pool.await_all pool = None);
      Alcotest.(check int) "all tasks ran" 50 (Atomic.get counter);
      (* The pool is reusable after await_all. *)
      C.Pool.submit pool (fun () -> Atomic.incr counter);
      Alcotest.(check bool) "no failure (2nd batch)" true (C.Pool.await_all pool = None);
      Alcotest.(check int) "second batch ran" 51 (Atomic.get counter))

let test_pool_task_raises () =
  (* One poisoned task: reported by await_all, the rest still run. *)
  let ran = Atomic.make 0 in
  C.Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 20 do
        C.Pool.submit pool (fun () ->
            if i = 7 then failwith "poisoned" else Atomic.incr ran)
      done;
      match C.Pool.await_all pool with
      | Some (Failure msg) ->
        Alcotest.(check string) "failure surfaced" "poisoned" msg;
        Alcotest.(check int) "others completed" 19 (Atomic.get ran)
      | _ -> Alcotest.fail "expected the task failure to surface")

let test_pool_shutdown_rejects_submit () =
  let pool = C.Pool.create ~domains:1 in
  C.Pool.shutdown pool;
  C.Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "submit after shutdown rejected" true
    (try
       C.Pool.submit pool (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* ---- Spec ---- *)

let spec ?(seed_lo = 1) ?(seed_hi = 6) ?(fuel = Some 2_000_000)
    ?(algorithms = [ "greedy-balance"; "round-robin" ]) () =
  {
    C.Spec.family = C.Spec.Uniform;
    m = 3;
    n = 3;
    granularity = 10;
    seed_lo;
    seed_hi;
    algorithms;
    baseline = C.Spec.Exact;
    fuel;
  }

let test_spec_expand () =
  let items = C.Spec.expand (spec ()) in
  Alcotest.(check int) "6 seeds x 2 algorithms" 12 (Array.length items);
  Alcotest.(check int) "ids sequential" 11 items.(11).C.Spec.id;
  Alcotest.(check int) "seed-major order" 1 items.(1).C.Spec.seed;
  Alcotest.(check string) "algorithms alternate" "round-robin"
    items.(1).C.Spec.algorithm

let test_empty_campaign () =
  (* An inverted seed range is a spec error, not a silent no-op: validate
     names the range, the runner refuses it, and an empty record array
     still summarizes cleanly. *)
  let inverted = spec ~seed_lo:5 ~seed_hi:4 () in
  (match C.Spec.validate inverted with
  | Ok _ -> Alcotest.fail "inverted seed range accepted"
  | Error msg ->
    Alcotest.(check bool) "message names the range" true
      (Helpers.contains ~needle:"5..4" msg);
    Alcotest.(check bool) "message says empty" true
      (Helpers.contains ~needle:"empty seed range" msg));
  (try
     ignore (C.Runner.run ~domains:2 inverted);
     Alcotest.fail "runner accepted an invalid spec"
   with Invalid_argument _ -> ());
  let s = C.Report.summarize [||] in
  Alcotest.(check int) "empty summary" 0 s.C.Report.items;
  Alcotest.(check bool) "no mean ratio" true (s.C.Report.mean_ratio = None)

let test_validate_negative_paths () =
  (* Unknown algorithm: the error lists what would have been valid. *)
  (match C.Spec.validate (spec ~algorithms:[ "no-such-algorithm" ] ()) with
  | Ok _ -> Alcotest.fail "unknown algorithm accepted"
  | Error msg ->
    Alcotest.(check bool) "names the bad algorithm" true
      (Helpers.contains ~needle:"no-such-algorithm" msg);
    Alcotest.(check bool) "lists valid names" true
      (Helpers.contains ~needle:"greedy-balance" msg));
  (match C.Spec.validate (spec ~algorithms:[] ()) with
  | Ok _ -> Alcotest.fail "empty algorithm list accepted"
  | Error msg ->
    Alcotest.(check bool) "empty list rejected" true
      (Helpers.contains ~needle:"at least one algorithm" msg));
  (* A one-seed range (lo = hi) is fine. *)
  Alcotest.(check bool) "lo = hi accepted" true
    (Result.is_ok (C.Spec.validate (spec ~seed_lo:7 ~seed_hi:7 ())))

let test_spec_instance_deterministic () =
  let sp = spec () in
  Alcotest.(check bool) "same seed, same instance" true
    (Crs_core.Instance.equal
       (C.Spec.instance sp ~seed:17)
       (C.Spec.instance sp ~seed:17))

(* ---- Runner outcomes ---- *)

let test_timeout_recorded () =
  (* Tiny fuel: the exact baseline runs dry, the item records Timeout
     instead of hanging, and the heuristic makespan is kept. *)
  let records = C.Runner.run (spec ~seed_hi:1 ~fuel:(Some 3) ()) in
  Array.iter
    (fun (r : C.Report.record) ->
      Alcotest.(check string) "timeout outcome" "timeout"
        (C.Report.outcome_label r.C.Report.outcome);
      Alcotest.(check bool) "makespan retained" true (r.C.Report.makespan <> None);
      Alcotest.(check bool) "optimum absent" true (r.C.Report.optimum = None))
    records

let test_error_captured () =
  (* An unknown algorithm is captured as an error record, not an
     exception out of the campaign. *)
  let sp = spec ~seed_hi:1 ~algorithms:[ "greedy-balance" ] () in
  let item = { C.Spec.id = 0; seed = 1; algorithm = "no-such-algorithm" } in
  let r = C.Runner.run_item sp item in
  match r.C.Report.outcome with
  | C.Report.Error msg ->
    Alcotest.(check bool) "message names the algorithm" true
      (Helpers.contains ~needle:"no-such-algorithm" msg)
  | _ -> Alcotest.fail "expected an error outcome"

(* ---- Determinism across pool sizes (and the tier-1 smoke campaign) ---- *)

let test_determinism_across_domains () =
  let sp = spec ~seed_hi:8 () in
  let seq = C.Runner.run ~domains:1 sp in
  let par = C.Runner.run ~domains:2 sp in
  Alcotest.(check int) "same item count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "payload %d identical" i)
        (C.Report.payload r) (C.Report.payload par.(i)))
    seq;
  Alcotest.(check string) "payload digests equal" (C.Report.payload_digest seq)
    (C.Report.payload_digest par)

let test_determinism_under_stealing () =
  (* The executor contract at every pool size the steal paths can
     produce: 1 (no workers to steal from), 2/3 (stealing among
     underloaded peers), 8 (heavily oversubscribed on most CI boxes, so
     every interleaving of pop vs steal gets exercised). Both the
     payload digest AND the trace signature must be byte-identical. *)
  let sp = spec ~seed_hi:6 () in
  let run_traced domains =
    Crs_obs.Trace.reset ();
    Crs_obs.Trace.set_enabled true;
    let records = C.Runner.run ~domains sp in
    let signature = Crs_obs.Trace.signature () in
    Crs_obs.Trace.set_enabled false;
    Crs_obs.Trace.reset ();
    (C.Report.payload_digest records, signature)
  in
  let base_digest, base_sig = run_traced 1 in
  List.iter
    (fun domains ->
      let digest, signature = run_traced domains in
      Alcotest.(check string)
        (Printf.sprintf "payload digest identical at %d domains" domains)
        base_digest digest;
      Alcotest.(check string)
        (Printf.sprintf "trace signature identical at %d domains" domains)
        base_sig signature)
    [ 2; 3; 8 ]

let test_runner_exception_containment () =
  (* A poisoned item must not kill the campaign's worker domain: the
     runner captures per-item exceptions into Error records, so the
     parallel run completes and stays byte-identical to the sequential
     one even with a raising algorithm in the sweep. *)
  let sp = spec ~seed_hi:4 () in
  let items = C.Spec.expand sp in
  items.(3) <- { items.(3) with C.Spec.algorithm = "no-such-algorithm" };
  let eval = Array.map (C.Runner.run_item sp) in
  let seq = eval items in
  let par = Crs_exec.Exec.map ~domains:3 (C.Runner.run_item sp) items in
  Alcotest.(check string) "poisoned sweep still deterministic"
    (C.Report.payload_digest seq) (C.Report.payload_digest par);
  match par.(3).C.Report.outcome with
  | C.Report.Error msg ->
    Alcotest.(check bool) "error names the algorithm" true
      (Helpers.contains ~needle:"no-such-algorithm" msg)
  | _ -> Alcotest.fail "expected the poisoned item to record an error"

let test_smoke_campaign_summary () =
  (* Small pooled sweep: everything completes, ratios are sane, and the
     summary's worst record is replayable from its seed. *)
  let sp = spec ~seed_hi:10 () in
  let records = C.Runner.run ~domains:2 sp in
  let s = C.Report.summarize records in
  Alcotest.(check int) "all done" s.C.Report.items s.C.Report.completed;
  Alcotest.(check int) "no errors" 0 s.C.Report.errors;
  (match s.C.Report.mean_ratio with
  | Some q -> Alcotest.(check bool) "mean ratio >= 1" true (q >= 1.0)
  | None -> Alcotest.fail "expected ratios");
  match s.C.Report.worst with
  | Some w ->
    Alcotest.(check bool) "worst has a seed for replay" true (w.C.Report.seed <> None)
  | None -> Alcotest.fail "expected a worst record"

(* ---- Report encoding ---- *)

let test_jsonl_shape () =
  let records = C.Runner.run (spec ~seed_hi:2 ()) in
  let lines = String.split_on_char '\n' (String.trim (C.Report.jsonl records)) in
  Alcotest.(check int) "one line per record" (Array.length records)
    (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "object braces" true
        (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (Helpers.contains ~needle:(Printf.sprintf "\"%s\":" key) line))
        [ "id"; "family"; "seed"; "digest"; "algorithm"; "outcome"; "makespan";
          "optimum"; "ratio"; "wall_ns" ])
    lines

let test_payload_excludes_timing () =
  let records = C.Runner.run (spec ~seed_hi:1 ()) in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "wall_ns only in full record" true
        (Helpers.contains ~needle:"wall_ns" (C.Report.to_json r)
        && not (Helpers.contains ~needle:"wall_ns" (C.Report.payload r))))
    records

let test_json_escaping () =
  let r =
    {
      C.Report.id = 0; family = "f"; m = 1; n = 1; granularity = None;
      seed = None; digest = ""; algorithm = "a";
      outcome = C.Report.Error "a\"b\\c\nd\x01"; makespan = None;
      baseline = "exact"; optimum = None; ratio = None; counters = None;
      wall_ns = 0;
    }
  in
  Alcotest.(check bool) "quotes, backslashes, control chars escaped" true
    (Helpers.contains ~needle:{|"detail":"a\"b\\c\nd\u0001"|} (C.Report.payload r))

let suite =
  [
    Alcotest.test_case "pool: oversubscription, order preserved" `Quick
      test_pool_oversubscription;
    Alcotest.test_case "pool: empty input" `Quick test_pool_empty;
    Alcotest.test_case "pool: submit/await, reusable" `Quick test_pool_submit_await;
    Alcotest.test_case "pool: a raising task is contained" `Quick
      test_pool_task_raises;
    Alcotest.test_case "pool: shutdown rejects submit" `Quick
      test_pool_shutdown_rejects_submit;
    Alcotest.test_case "spec: expansion" `Quick test_spec_expand;
    Alcotest.test_case "spec: empty campaign" `Quick test_empty_campaign;
    Alcotest.test_case "spec: validate negative paths" `Quick
      test_validate_negative_paths;
    Alcotest.test_case "spec: deterministic instances" `Quick
      test_spec_instance_deterministic;
    Alcotest.test_case "runner: fuel exhaustion -> timeout record" `Quick
      test_timeout_recorded;
    Alcotest.test_case "runner: errors captured per item" `Quick test_error_captured;
    Alcotest.test_case "determinism: 1-domain == 2-domain payloads" `Quick
      test_determinism_across_domains;
    Alcotest.test_case "determinism: digests + trace signatures at 1/2/3/8" `Quick
      test_determinism_under_stealing;
    Alcotest.test_case "runner: poisoned item contained under stealing" `Quick
      test_runner_exception_containment;
    Alcotest.test_case "smoke campaign on the pool (tier-1)" `Quick
      test_smoke_campaign_summary;
    Alcotest.test_case "report: JSONL shape" `Quick test_jsonl_shape;
    Alcotest.test_case "report: payload excludes timing" `Quick
      test_payload_excludes_timing;
    Alcotest.test_case "report: JSON string escaping" `Quick test_json_escaping;
  ]
