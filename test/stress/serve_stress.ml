(* Concurrent serve-frontend stress for the @stress alias: full-scale
   Loadgen.run_multi over 4 live connections — a heavy closed-loop
   pass, a bursty open-loop pass, then a maximally-pipelined
   byte-identity pass against single-connection goldens — plus exact
   connection accounting and a graceful shutdown. Tier-1 runs the same
   machinery at smoke scale (test_serve); this is the torture loop. *)

module S = Crs_serve.Server
module L = Crs_serve.Loadgen
module P = Crs_serve.Protocol
module J = Crs_util.Stable_json

let solve_line instance =
  J.obj
    [
      ("proto", J.str P.version);
      ("kind", J.str "solve");
      ("instance", J.str (Crs_core.Instance.to_string instance));
    ]

let stats_int json path =
  let rec walk json = function
    | [] -> Some json
    | k :: rest -> Option.bind (J.member k json) (fun j -> walk j rest)
  in
  match walk json path with
  | Some (J.Int v) -> v
  | _ -> failwith ("serve stress: stats lack " ^ String.concat "." path)

let () =
  let conns = 4 in
  (* Queue above the pipelined pass's worst case (4 x 200 solves all in
     admission at once), so nothing sheds and byte-identity is total. *)
  let config =
    {
      S.default_config with
      S.workers = 2;
      queue = 1024;
      cache_capacity = 64;
      default_fuel = None;
      drain_grace_s = 0.1;
    }
  in
  let server = S.create config in
  let spec =
    { Crs_generators.Random_gen.default_spec with m = 3; jobs_min = 2; jobs_max = 4 }
  in
  let instances =
    Array.init 16 (fun i ->
        Crs_generators.Random_gen.instance ~spec (Random.State.make [| 500 + i |]))
  in
  (* Goldens prewarm the cache, so every concurrent response is the
     canonical bytes whatever the interleaving. *)
  let golden = Array.map (fun i -> S.handle_line server (solve_line i)) instances in
  let fds =
    Array.init conns (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let readers =
    Array.map
      (fun (sfd, _) ->
        match S.attach server sfd with
        | Some th -> th
        | None -> failwith "serve stress: connection refused below max-conns")
      fds
  in
  let clients = Array.map (fun (_, cfd) -> L.Client.of_fd cfd) fds in
  let workload n = List.init n (fun i -> solve_line instances.(i mod 16)) in
  let closed =
    L.run_multi ~seed:11 clients ~arrival:L.Closed_loop ~requests:(workload 2000)
  in
  if closed.L.sent <> 2000 || closed.L.received <> 2000 then
    failwith
      (Printf.sprintf "closed-loop lost requests: sent %d received %d"
         closed.L.sent closed.L.received);
  Printf.printf "stress ok: closed-loop %d requests over %d connections\n%!"
    closed.L.received conns;
  let bursty =
    L.run_multi ~seed:12 clients
      ~arrival:(L.Bursty { burst = 25; rate = 40.0 })
      ~requests:(workload 1000)
  in
  if bursty.L.sent <> 1000 || bursty.L.received <> 1000 then
    failwith
      (Printf.sprintf "bursty lost requests: sent %d received %d" bursty.L.sent
         bursty.L.received);
  Printf.printf "stress ok: bursty %d requests over %d connections\n%!"
    bursty.L.received conns;
  (* Maximal interleaving: every connection pipelines its whole slice
     in one burst of writes, then reads back positionally; each
     response must be byte-identical to the single-connection golden. *)
  let mismatches = Atomic.make 0 in
  let threads =
    Array.mapi
      (fun c cl ->
        Thread.create
          (fun () ->
            let ks = List.init 200 (fun j -> (c + j) mod 16) in
            List.iter (fun k -> L.Client.send_line cl (solve_line instances.(k))) ks;
            List.iter
              (fun k ->
                match L.Client.recv_line cl with
                | Some r when String.equal r golden.(k) -> ()
                | _ -> Atomic.incr mismatches)
              ks)
          ())
      clients
  in
  Array.iter Thread.join threads;
  if Atomic.get mismatches <> 0 then
    failwith
      (Printf.sprintf "%d concurrent responses diverged from the goldens"
         (Atomic.get mismatches));
  Printf.printf "stress ok: %d pipelined responses byte-identical\n%!"
    (conns * 200);
  let stats =
    match J.parse (J.obj (S.stats_payload server)) with
    | Ok v -> v
    | Error msg -> failwith ("serve stress: stats unparseable: " ^ msg)
  in
  if stats_int stats [ "connections"; "accepted" ] <> conns then
    failwith "accepted count wrong";
  if stats_int stats [ "connections"; "refused" ] <> 0 then
    failwith "spurious refusals";
  if stats_int stats [ "connections"; "live" ] <> conns then
    failwith "live count wrong";
  if stats_int stats [ "latency"; "solve"; "count" ] < 2000 + 1000 + (conns * 200)
  then failwith "solve latency histogram missed requests";
  let shutdown_line =
    J.obj [ ("proto", J.str P.version); ("kind", J.str "shutdown") ]
  in
  ignore (L.Client.rpc clients.(0) shutdown_line);
  Array.iter Thread.join readers;
  Array.iter
    (fun (_, cfd) -> try Unix.close cfd with Unix.Unix_error _ -> ())
    fds;
  S.drain server;
  Printf.printf "serve stress passed: %d connections, %d requests\n"
    conns
    (2000 + 1000 + (conns * 200))
