(* Seeded executor stress for the @stress alias: hundreds of
   variable-cost tasks at domains {1, 2, recommended}, asserting
   order-preserving results and exception containment at each size.
   Run with OCAMLRUNPARAM=b (the dune alias sets it) so a failure
   prints a backtrace.

   Deliberately an executable, not an alcotest suite: it is meant to be
   cheap to loop under rr/taskset/stress-ng when hunting a scheduling
   bug, and to run domains == recommended_domain_count, which the
   deterministic tier-1 suites pin instead. *)

module Exec = Crs_exec.Exec

let stress ~domains ~seed =
  let st = Random.State.make [| seed |] in
  let n = 800 in
  (* Cost spread over two orders of magnitude: the cheap tasks finish
     while the expensive ones are still running, so steals happen on
     every multi-domain run. *)
  let costs = Array.init n (fun i -> (i, 20 + Random.State.int st 8000)) in
  let work (i, c) =
    let acc = ref i in
    for k = 1 to c do
      acc := (!acc * 48271) + k
    done;
    (i, !acc)
  in
  let expect = Array.map work costs in
  let got = Exec.map ~domains work costs in
  if got <> expect then failwith (Printf.sprintf "order broken at %d domains" domains);
  (* Containment: one poisoned task among many, reported exactly once,
     executor reusable afterwards. *)
  Exec.with_exec ~domains (fun t ->
      let ran = Atomic.make 0 in
      for i = 1 to 100 do
        Exec.submit t (fun () ->
            if i = 37 then failwith "poisoned" else Atomic.incr ran)
      done;
      (match Exec.await_all t with
      | Some (Failure _) -> ()
      | Some e -> raise e
      | None -> failwith "poisoned task not reported");
      if Atomic.get ran <> 99 then failwith "containment lost tasks";
      Exec.submit t (fun () -> Atomic.incr ran);
      match Exec.await_all t with
      | None -> if Atomic.get ran <> 100 then failwith "reuse lost a task"
      | Some e -> raise e);
  Printf.printf "stress ok: %d tasks at %d domain%s (seed %d)\n%!" n domains
    (if domains = 1 then "" else "s")
    seed

let () =
  let recommended = Domain.recommended_domain_count () in
  let sizes = List.sort_uniq compare [ 1; 2; recommended ] in
  List.iter (fun domains -> stress ~domains ~seed:(1000 + domains)) sizes;
  Printf.printf "executor stress passed at domains %s (recommended %d)\n"
    (String.concat ", " (List.map string_of_int sizes))
    recommended
