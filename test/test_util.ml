(* Tests for crs_util: priority queue, union-find, misc helpers. *)

module PQ = Crs_util.Pqueue.Make (Int)
module UF = Crs_util.Union_find

let test_pqueue_basic () =
  Alcotest.(check bool) "empty" true (PQ.is_empty PQ.empty);
  Alcotest.(check (option int)) "find_min empty" None (PQ.find_min PQ.empty);
  let h = PQ.of_list [ 5; 3; 8; 1; 9; 1 ] in
  Alcotest.(check (option int)) "min" (Some 1) (PQ.find_min h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 5; 8; 9 ] (PQ.to_sorted_list h);
  Alcotest.(check int) "size" 6 (PQ.size h)

let test_pqueue_merge () =
  let a = PQ.of_list [ 4; 2 ] and b = PQ.of_list [ 3; 1 ] in
  Alcotest.(check (list int)) "merge drains sorted" [ 1; 2; 3; 4 ]
    (PQ.to_sorted_list (PQ.merge a b));
  Alcotest.(check (list int)) "merge with empty" [ 1; 3 ]
    (PQ.to_sorted_list (PQ.merge PQ.empty b))

let prop_pqueue_sorts =
  Helpers.qcheck_case "pqueue drains any list sorted"
    QCheck2.Gen.(list_size (int_bound 200) (int_range (-1000) 1000))
    (fun l -> PQ.to_sorted_list (PQ.of_list l) = List.sort compare l)

let prop_pqueue_pop_min =
  Helpers.qcheck_case "pop always yields the minimum"
    QCheck2.Gen.(list_size (int_range 1 50) (int_range (-100) 100))
    (fun l ->
      let h = PQ.of_list l in
      match PQ.pop h with
      | None -> false
      | Some (x, rest) ->
        x = List.fold_left min (List.hd l) l && PQ.size rest = List.length l - 1)

let test_union_find () =
  let uf = UF.create 6 in
  Alcotest.(check int) "initial count" 6 (UF.count uf);
  UF.union uf 0 1;
  UF.union uf 2 3;
  UF.union uf 1 2;
  Alcotest.(check bool) "same after chain" true (UF.same uf 0 3);
  Alcotest.(check bool) "separate" false (UF.same uf 0 4);
  Alcotest.(check int) "count after unions" 3 (UF.count uf);
  UF.union uf 0 3;
  Alcotest.(check int) "idempotent union" 3 (UF.count uf);
  let groups = UF.groups uf in
  Alcotest.(check int) "group count" 3 (Array.length groups);
  Alcotest.(check (list int)) "first group sorted" [ 0; 1; 2; 3 ] groups.(0);
  Alcotest.(check (list int)) "singleton group" [ 4 ] groups.(1)

let prop_union_find_partition =
  Helpers.qcheck_case "groups partition the universe"
    QCheck2.Gen.(list_size (int_bound 50) (pair (int_bound 19) (int_bound 19)))
    (fun edges ->
      let uf = UF.create 20 in
      List.iter (fun (a, b) -> UF.union uf a b) edges;
      let groups = UF.groups uf in
      let members = Array.to_list groups |> List.concat |> List.sort compare in
      members = List.init 20 (fun i -> i)
      && Array.length groups = UF.count uf)

let test_misc () =
  Alcotest.(check int) "array_sum_int" 10 (Crs_util.Misc.array_sum_int [| 1; 2; 3; 4 |]);
  Alcotest.(check int) "array_max_int" 4 (Crs_util.Misc.array_max_int [| 1; 4; 2 |]);
  Alcotest.(check int) "argmax first on ties" 1
    (Crs_util.Misc.array_argmax ~compare [| 1; 5; 5; 2 |]);
  Alcotest.(check int) "argmin" 0 (Crs_util.Misc.array_argmin ~compare [| 1; 5; 5; 2 |]);
  Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Crs_util.Misc.range 3);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Crs_util.Misc.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Crs_util.Misc.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Crs_util.Misc.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check string) "string_repeat" "ababab" (Crs_util.Misc.string_repeat "ab" 3);
  Alcotest.(check (list string)) "split_on_string" [ "a"; "b"; "" ]
    (Crs_util.Misc.split_on_string ~sep:"--" "a--b--");
  Alcotest.(check (float 1e-9)) "float_mean" 2.0 (Crs_util.Misc.float_mean [ 1.0; 2.0; 3.0 ])

module J = Crs_util.Stable_json

let test_stable_json_encode () =
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\nd\\te\\u0001"
    (J.escape "a\"b\\c\nd\te\x01");
  Alcotest.(check string) "float is %.6f" "0.333333" (J.float (1.0 /. 3.0));
  Alcotest.(check string) "obj keeps order" "{\"b\":1,\"a\":2}"
    (J.obj [ ("b", J.int 1); ("a", J.int 2) ]);
  Alcotest.(check string) "null options" "null" (J.str_opt None);
  Alcotest.(check string) "arr" "[1,true,\"x\"]"
    (J.arr [ J.int 1; J.bool true; J.str "x" ])

let test_stable_json_parse_roundtrip () =
  let src =
    J.obj
      [
        ("s", J.str "a\"b\nc");
        ("i", J.int (-42));
        ("f", J.float 1.5);
        ("b", J.bool false);
        ("n", J.str_opt None);
        ("l", J.arr [ J.int 1; J.obj [ ("k", J.str "v") ] ]);
      ]
  in
  match J.parse src with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok v ->
    Alcotest.(check string) "round trip" src (J.to_string v);
    (match J.member "i" v with
    | Some (J.Int -42) -> ()
    | _ -> Alcotest.fail "member i");
    (match J.member "missing" v with
    | None -> ()
    | Some _ -> Alcotest.fail "member missing should be None");
    (* Strictness: trailing garbage and malformed input are errors. *)
    Alcotest.(check bool) "trailing garbage rejected" true
      (Result.is_error (J.parse "{} x"));
    Alcotest.(check bool) "unterminated string rejected" true
      (Result.is_error (J.parse "\"abc"));
    Alcotest.(check bool) "bare comma rejected" true
      (Result.is_error (J.parse "[1,]"))

(* Negative paths: a strict line-delimited protocol depends on every
   malformed line failing loudly with a byte offset — most importantly
   trailing garbage after a complete value, which would otherwise let
   one line bleed into the next. *)
let test_stable_json_parse_negative () =
  let err src =
    match J.parse src with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" src
  in
  let check_msg src expected =
    let msg = err src in
    Alcotest.(check bool)
      (Printf.sprintf "%S error %S mentions %S" src msg expected)
      true
      (Helpers.contains ~needle:expected msg)
  in
  (* Trailing garbage: exact offset and the offending character. *)
  check_msg "{} x" "offset 3";
  check_msg "{} x" "'x'";
  check_msg "12ab" "offset 2";
  check_msg "12ab" "'a'";
  check_msg "truex" "offset 4";
  check_msg "[1] [2]" "offset 4";
  check_msg "\"done\"!" "offset 6";
  check_msg "null\u{00}" "offset 4";
  (* Other malformed inputs keep their offsets too. *)
  check_msg "" "offset 0";
  check_msg "{\"a\":}" "offset 5";
  check_msg "[1 2]" "offset 3";
  check_msg "\"\\q\"" "offset";
  check_msg "nul" "offset 0";
  (* Trailing whitespace is NOT garbage. *)
  Alcotest.(check bool) "trailing whitespace accepted" true
    (Result.is_ok (J.parse "{}  \n"))

let suite =
  [
    Alcotest.test_case "pqueue: basics" `Quick test_pqueue_basic;
    Alcotest.test_case "pqueue: merge" `Quick test_pqueue_merge;
    prop_pqueue_sorts;
    prop_pqueue_pop_min;
    Alcotest.test_case "union-find: unions and groups" `Quick test_union_find;
    prop_union_find_partition;
    Alcotest.test_case "misc helpers" `Quick test_misc;
    Alcotest.test_case "stable json: encoding" `Quick test_stable_json_encode;
    Alcotest.test_case "stable json: parse round-trip" `Quick
      test_stable_json_parse_roundtrip;
    Alcotest.test_case "stable json: negative paths carry offsets" `Quick
      test_stable_json_parse_negative;
  ]
